"""Model specs: Table 1 formulas, Table 2 distribution, Table 4 zoo, MoE."""

import pytest

from repro.errors import ConfigurationError
from repro.models import (
    MODEL_ZOO,
    closed_form_layer_bytes,
    get_model,
    layer_footprint,
    model_footprint,
    moe_layer,
    tensor_size_distribution,
    transformer_layer,
)
from repro.models.moe import MoEConfig
from repro.models.transformer import FP16, FP32, TensorKind
from repro.units import GiB, MiB


class TestTable1Formulas:
    """The tensor inventory must reproduce Table 1's closed forms."""

    @pytest.mark.parametrize(
        "dm,dffn,b,s",
        [(2304, 9216, 1, 2048), (8192, 32768, 4, 2048), (12288, 49152, 16, 1024)],
    )
    def test_totals_match_closed_form_up_to_small_terms(self, dm, dffn, b, s):
        layer = transformer_layer(dm, dffn, b, s)
        exact = layer_footprint(layer)
        closed = closed_form_layer_bytes(dm, dffn, b, s)
        # Differences are exactly the small terms the paper ignores:
        # LayerNorm params (8 d_m per layer-pair in FP16 terms) and the
        # b x s score tensors.
        assert exact.params_bytes - closed.params_bytes == 2 * 2 * 4 * dm
        assert exact.acts_bytes - closed.acts_bytes == 2 * 4 * b * s
        assert exact.optims_bytes - closed.optims_bytes == 2 * 3 * 4 * 2 * dm

    def test_gpt3_175b_section22_totals(self):
        """648 / 162 / 1944 GiB over 96 layers (Section 2.2)."""
        layer = transformer_layer(12288, 49152, 1, 2048)
        fp = layer_footprint(layer)
        assert 96 * fp.params_bytes / GiB == pytest.approx(648, rel=0.005)
        assert 96 * fp.acts_bytes / GiB == pytest.approx(162, rel=0.005)
        assert 96 * fp.optims_bytes / GiB == pytest.approx(1944, rel=0.005)

    def test_optims_are_three_fp32_per_param(self):
        layer = transformer_layer(128, 512, 1, 64)
        assert layer.optims_bytes == layer.param_count * 3 * FP32

    def test_params_include_gradients(self):
        layer = transformer_layer(128, 512, 1, 64)
        assert layer.params_bytes == layer.param_count * 2 * FP16

    def test_param_count_formula(self):
        dm, dffn = 128, 512
        layer = transformer_layer(dm, dffn, 1, 64)
        expected = 4 * dm * dm + 2 * dm * dffn + 4 * dm  # + LN params
        assert layer.param_count == expected

    def test_cross_attention_adds_a_block(self):
        plain = transformer_layer(128, 512, 1, 64)
        cross = transformer_layer(128, 512, 1, 64, cross_attention=True)
        assert cross.param_count - plain.param_count == 4 * 128 * 128 + 2 * 128

    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ConfigurationError):
            transformer_layer(0, 512, 1, 64)


class TestTable2Distribution:
    def test_large_entries_match_paper_exactly(self):
        layer = transformer_layer(12288, 49152, 16, 2048)
        dist = tensor_size_distribution(layer)
        large = {s: c for s, c in dist.items() if s >= 1.0}
        assert large == {
            3072.0: 4, 2304.0: 6, 1152.0: 4, 768.0: 20, 576.0: 12, 288.0: 8,
        }

    def test_counts_scale_with_multiplicity(self):
        layer = transformer_layer(256, 1024, 1, 32)
        dist = tensor_size_distribution(layer)
        assert sum(dist.values()) == (
            2 * len(layer.params) + 2 * len(layer.activations)
            + 3 * len(layer.optim_states)
        )


class TestModelZoo:
    def test_all_table4_rows_present(self):
        assert len(MODEL_ZOO) == 11
        assert "gpt3-175b" in MODEL_ZOO and "t5-moe-1.2t" in MODEL_ZOO

    def test_lookup_case_insensitive(self):
        assert get_model("GPT3-13B") is MODEL_ZOO["gpt3-13b"]

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError):
            get_model("gpt5")

    def test_gpt3_175b_computed_params_near_nominal(self):
        model = get_model("gpt3-175b").build(1, 2048)
        assert model.param_count == pytest.approx(175e9, rel=0.02)

    def test_gpt3_55b_computed_params_near_nominal(self):
        model = get_model("gpt3-55b").build(1, 2048)
        assert model.param_count == pytest.approx(55e9, rel=0.01)

    def test_t5_builds_encoder_and_decoder(self):
        model = get_model("t5-1.4b").build(1, 128)
        assert model.num_layers == 32  # 16 encoder + 16 decoder
        names = [layer.name for layer in model.layers]
        assert names[0].startswith("enc") and names[-1].startswith("dec")

    def test_t5_nominal_size(self):
        model = get_model("t5-1.4b").build(1, 128)
        assert model.param_count == pytest.approx(1.4e9, rel=0.15)

    def test_with_layers_scales_depth(self):
        base = get_model("gpt3-28b")
        deeper = base.with_layers(52)
        assert deeper.build(1, 128).num_layers == 52
        ratio = deeper.build(1, 128).param_count / base.build(1, 128).param_count
        assert ratio == pytest.approx(2.0)

    def test_t5_moe_total_params(self):
        model = get_model("t5-moe-1.2t").build(1, 128)
        assert model.param_count == pytest.approx(1.24e12, rel=0.02)


class TestMoE:
    def test_expert_param_count(self):
        config = MoEConfig(d_model=1024, d_ffn=16384, num_experts=2304)
        assert config.expert_param_count == 2 * 1024 * 16384
        assert config.total_expert_params == 2304 * 2 * 1024 * 16384

    def test_experts_per_gpu_even_sharding(self):
        config = MoEConfig(d_model=64, d_ffn=128, num_experts=16)
        assert config.experts_on_gpu(8) == 2
        with pytest.raises(ConfigurationError):
            config.experts_on_gpu(3)

    def test_moe_layer_has_router_and_experts(self):
        layer = moe_layer(64, 128, num_experts=4, batch_size=1, seq_len=8)
        names = [p.name for p in layer.params]
        assert any("router" in n for n in names)
        assert sum(".expert" in n for n in names) == 8  # w1+w2 per expert
        assert layer.num_experts == 4

    def test_moe_activations_match_dense(self):
        """Capacity-factor-1 routing keeps activation volume dense-like."""
        dense = transformer_layer(64, 128, 2, 8)
        moe = moe_layer(64, 128, num_experts=4, batch_size=2, seq_len=8)
        assert moe.acts_bytes == dense.acts_bytes

    def test_invalid_topk_rejected(self):
        with pytest.raises(ConfigurationError):
            MoEConfig(d_model=8, d_ffn=16, num_experts=2, top_k=3)


class TestModelFootprint:
    def test_model_totals_sum_layers(self):
        model = get_model("gpt3-1.7b").build(2, 256)
        fp = model_footprint(model)
        assert fp.params_bytes == sum(l.params_bytes for l in model.layers)
        assert fp.model_state_bytes == fp.params_bytes + fp.optims_bytes
        assert fp.total_bytes == fp.params_bytes + fp.acts_bytes + fp.optims_bytes
