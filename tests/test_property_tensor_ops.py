"""Property-based test: paged tensors stay byte-faithful under random ops.

A shadow numpy copy tracks what every tensor should contain while random
sequences of write / move / merge / release run against the real paged
memory (including the file-backed SSD tier). Any divergence means a bug
in the slot arithmetic, the move path or merge's repacking.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OutOfMemoryError
from repro.hardware.device import DeviceKind
from repro.memory import DevicePool, PageAllocator
from repro.units import KiB

PAGE = 8 * KiB


ops = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "write", "move", "merge", "release"]),
        st.integers(min_value=0, max_value=10**6),
    ),
    min_size=4,
    max_size=40,
)


@settings(max_examples=30, deadline=None)
@given(ops=ops)
def test_random_op_sequences_preserve_data(ops, tmp_path_factory):
    ssd_path = str(tmp_path_factory.mktemp("ssd") / "tier.bin")
    pools = {
        DeviceKind.GPU: DevicePool(DeviceKind.GPU, 32 * PAGE, page_bytes=PAGE),
        DeviceKind.CPU: DevicePool(DeviceKind.CPU, 64 * PAGE, page_bytes=PAGE),
        DeviceKind.SSD: DevicePool(
            DeviceKind.SSD, 64 * PAGE, page_bytes=PAGE,
            backend="file", file_path=ssd_path,
        ),
    }
    allocator = PageAllocator(pools)
    rng = np.random.default_rng(0)
    live: list[tuple[object, np.ndarray]] = []  # (tensor, shadow)
    devices = [DeviceKind.GPU, DeviceKind.CPU, DeviceKind.SSD]

    try:
        for op, arg in ops:
            if op == "alloc":
                nbytes = 1 + arg % (3 * PAGE)
                try:
                    tensor = allocator.allocate(
                        (nbytes,), np.uint8, devices[arg % 3]
                    )
                except OutOfMemoryError:
                    continue
                shadow = rng.integers(0, 256, size=nbytes, dtype=np.uint8)
                tensor.write_array(shadow)
                live.append((tensor, shadow))
            elif not live:
                continue
            elif op == "write":
                tensor, _ = live[arg % len(live)]
                shadow = rng.integers(0, 256, size=tensor.nbytes, dtype=np.uint8)
                tensor.write_array(shadow)
                live[arg % len(live)] = (tensor, shadow)
            elif op == "move":
                tensor, _ = live[arg % len(live)]
                try:
                    tensor.move(devices[arg % 3])
                except OutOfMemoryError:
                    continue
            elif op == "merge":
                tensor, _ = live[arg % len(live)]
                if tensor.device_index >= 0:
                    try:
                        tensor.merge()
                    except OutOfMemoryError:
                        continue
            elif op == "release":
                tensor, _ = live.pop(arg % len(live))
                tensor.release()

            # Every live tensor must read back its shadow exactly.
            for tensor, shadow in live:
                np.testing.assert_array_equal(tensor.read_array(), shadow)

        for tensor, _ in live:
            tensor.release()
        for pool in pools.values():
            assert pool.pages_in_use == 0
    finally:
        allocator.close()
