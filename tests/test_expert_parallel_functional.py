"""Functional expert parallelism: sharded experts, local updates."""

import numpy as np
import pytest

from repro.dp import ExpertParallelTrainer
from repro.errors import ConfigurationError, ShardingError
from repro.nn import MixedPrecisionAdam, TinyTransformerLM, cross_entropy, lm_synthetic_batches


def moe_model(seed=0, num_experts=4):
    return TinyTransformerLM(
        vocab_size=16, d_model=16, d_ffn=32, num_heads=2, num_layers=2,
        max_seq=8, num_experts=num_experts, seed=seed,
    )


class TestExpertParallel:
    def test_requires_moe_model(self):
        dense = TinyTransformerLM(
            vocab_size=16, d_model=16, d_ffn=32, num_heads=2, num_layers=1,
            max_seq=8,
        )
        with pytest.raises(ConfigurationError):
            ExpertParallelTrainer(dense, num_ranks=2)

    def test_uneven_expert_sharding_rejected(self):
        with pytest.raises(ShardingError):
            ExpertParallelTrainer(moe_model(num_experts=3), num_ranks=2)

    def test_matches_single_process_training(self):
        """Expert parallelism changes placement, not math."""
        batches = list(lm_synthetic_batches(16, 8, 8, 5, seed=1))

        reference = moe_model(seed=2)
        ref_opt = MixedPrecisionAdam(reference.parameters(), lr=1e-3)
        for batch in batches:
            loss = cross_entropy(reference(batch.inputs, True), batch.targets)
            reference.zero_grad()
            loss.backward()
            ref_opt.step()

        parallel_model = moe_model(seed=2)
        trainer = ExpertParallelTrainer(parallel_model, num_ranks=2, lr=1e-3)
        for batch in batches:
            trainer.train_step(batch)

        for (name, a), (_, b) in zip(
            reference.named_parameters(), parallel_model.named_parameters()
        ):
            np.testing.assert_allclose(a.data, b.data, atol=1e-6, err_msg=name)

    def test_parameter_partition_is_complete_and_disjoint(self):
        model = moe_model(num_experts=4)
        trainer = ExpertParallelTrainer(model, num_ranks=2)
        owned = [id(p) for params in trainer.expert_params_by_rank for p in params]
        dense = [id(p) for p in trainer.dense_params]
        assert len(owned) == len(set(owned))
        assert set(owned) | set(dense) == {id(p) for p in model.parameters()}
        assert not set(owned) & set(dense)

    def test_expert_state_is_sharded(self):
        """Each rank holds only its experts' optimizer states (1/N)."""
        model = moe_model(num_experts=4)
        trainer = ExpertParallelTrainer(model, num_ranks=4)
        per_rank = [trainer.expert_state_bytes(r) for r in range(4)]
        assert len(set(per_rank)) == 1  # experts are homogeneous
        single = ExpertParallelTrainer(moe_model(num_experts=4), num_ranks=1)
        assert sum(per_rank) == single.expert_state_bytes(0)

    def test_alltoall_traffic_accounted(self):
        model = moe_model(num_experts=4)
        trainer = ExpertParallelTrainer(model, num_ranks=2)
        batch = next(lm_synthetic_batches(16, 8, 4, 1, seed=3))
        trainer.train_step(batch)
        assert trainer.dispatch_bytes > 0
        assert trainer.allreduce_bytes > 0
        # Dense all-reduce covers exactly the dense gradients.
        dense_bytes = sum(p.data.nbytes for p in trainer.dense_params)
        assert trainer.allreduce_bytes == dense_bytes

    def test_learns(self):
        trainer = ExpertParallelTrainer(moe_model(seed=4), num_ranks=2, lr=2e-3)
        losses = [
            trainer.train_step(batch)
            for batch in lm_synthetic_batches(16, 8, 8, 60, seed=5)
        ]
        assert np.mean(losses[-6:]) < np.mean(losses[:6]) - 0.2

    def test_token_load_counting(self):
        trainer = ExpertParallelTrainer(moe_model(num_experts=4), num_ranks=2)
        batch = next(lm_synthetic_batches(16, 8, 4, 1, seed=6))
        counts = trainer.tokens_routed_to(batch)
        assert sum(counts) == batch.inputs.size
        assert len(counts) == 2
