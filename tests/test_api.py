"""The unified ``repro.api`` facade and the legacy-import shims.

``repro.api`` is the supported address for the whole toolkit; the old
top-level names (``repro.AngelConfig`` etc.) must keep working but warn.
"""

import warnings

import numpy as np
import pytest

import repro
from repro import api
from repro.units import KiB, MiB


def tiny_engine(**config_kwargs):
    from repro.nn import MixedPrecisionAdam, TinyTransformerLM

    model = TinyTransformerLM(
        vocab_size=16, d_model=16, d_ffn=32, num_heads=2, num_layers=2,
        max_seq=8, seed=1,
    )
    opt = MixedPrecisionAdam(model.parameters(), lr=2e-3)
    config = api.AngelConfig(
        gpu_memory_bytes=2 * MiB, cpu_memory_bytes=16 * MiB,
        page_bytes=32 * KiB, **config_kwargs,
    )
    return api.initialize(model, opt, config)


class TestFacade:
    def test_initialize_trains(self):
        from repro.nn import lm_synthetic_batches

        with tiny_engine() as engine:
            batch = next(iter(lm_synthetic_batches(16, 8, 4, 1, seed=2)))
            loss = engine(batch)
            engine.backward(loss)
            engine.step()
            assert np.isfinite(loss.item())

    def test_check_accepts_live_plan(self):
        from repro.nn import lm_synthetic_batches

        with tiny_engine(pipeline=True) as engine:
            for batch in lm_synthetic_batches(16, 8, 4, 2, seed=2):
                loss = engine(batch)
                engine.backward(loss)
                engine.step()
            plan = engine.executed_plan()
            budget = engine.config.gpu_memory_bytes
        assert plan is not None
        result = api.check(plan, gpu_budget_bytes=budget)
        assert result.ok, result.violations

    def test_check_accepts_simulated_plan(self):
        from repro.hardware.cluster import a100_cluster
        from repro.models import get_model
        from repro.scheduler.unified import UnifiedScheduler

        scheduler = UnifiedScheduler(a100_cluster(1))
        plan = scheduler.plan(get_model("gpt3-13b"), micro_batch=4)
        result = api.check(plan, gpu_budget_bytes=scheduler.gpu_budget)
        assert result.ok, result.violations

    def test_profile_returns_payload_and_telemetry(self):
        from repro.telemetry.bench import ProfileConfig

        config = ProfileConfig(
            steps=2, measure_overhead=False, compare_pipeline=False,
            watch=False,
        )
        payload, telemetry = api.profile(config)
        assert payload["benchmark"] == "telemetry_profile"
        assert payload["train"]["steps"] == 2
        assert telemetry.tracer.records

    def test_profile_overrides_replace_fields(self):
        from repro.telemetry.bench import ProfileConfig

        config = ProfileConfig(measure_overhead=False)
        payload, _ = api.profile(
            config, steps=1, compare_pipeline=False, watch=False,
        )
        assert payload["train"]["steps"] == 1

    def test_chaos_runs_reference_scenario(self, tmp_path):
        from repro.resilience import ChaosConfig

        config = ChaosConfig(steps=4, checkpoint_every=2, world_size=1)
        result = api.chaos(config, workdir=str(tmp_path))
        assert result.steps_completed == 4
        assert not result.degraded

    def test_report_renders_from_dict(self, tmp_path):
        from repro.telemetry.bench import ProfileConfig

        config = ProfileConfig(
            steps=1, measure_overhead=False, compare_pipeline=False,
            watch=False,
        )
        payload, _ = api.profile(config)
        written = api.report(payload, tmp_path / "run_report.md")
        assert any(str(p).endswith(".md") for p in written)
        text = (tmp_path / "run_report.md").read_text()
        assert "# " in text

    def test_all_names_exist(self):
        for name in api.__all__:
            assert hasattr(api, name), name


class TestLegacyShims:
    def test_old_imports_warn_but_work(self):
        with pytest.warns(DeprecationWarning, match="repro.api"):
            config_cls = repro.AngelConfig
        assert config_cls is api.AngelConfig
        with pytest.warns(DeprecationWarning):
            assert repro.AngelModel is api.AngelModel
        with pytest.warns(DeprecationWarning):
            assert repro.initialize is api.initialize

    def test_from_import_still_works(self):
        with pytest.warns(DeprecationWarning):
            from repro import AngelConfig
        assert AngelConfig is api.AngelConfig

    def test_supported_names_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert repro.api is api
            assert repro.errors is not None
            assert repro.units.MiB == MiB

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.does_not_exist

    def test_dir_lists_deprecated_names(self):
        names = dir(repro)
        assert "AngelConfig" in names and "api" in names
