"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_models_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt3-175b" in out and "t5-moe-1.2t" in out

    def test_plan_reports_both_systems(self, capsys):
        assert main(["plan", "--model", "gpt3-28b", "--servers", "1"]) == 0
        out = capsys.readouterr().out
        assert "deepspeed" in out and "angel-ptm" in out
        assert "max depth" in out

    def test_simulate_reports_throughput(self, capsys):
        assert main([
            "simulate", "--model", "gpt3-1.7b", "--batch", "2", "--servers", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "samples/s" in out and "GPU busy" in out

    def test_simulate_lock_free_reports_staleness(self, capsys):
        assert main([
            "simulate", "--model", "gpt3-55b", "--batch", "1",
            "--ssd", "--lock-free",
        ]) == 0
        assert "staleness" in capsys.readouterr().out

    def test_train_runs(self, capsys):
        assert main(["train", "--steps", "6"]) == 0
        out = capsys.readouterr().out
        assert "final loss" in out

    def test_experiment_dispatch(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_experiment_unknown_name(self, capsys):
        assert main(["experiment", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_chaos_reports_faults_and_counters(self, capsys, tmp_path):
        assert main([
            "chaos", "--steps", "6", "--seed", "3", "--ckpt-every", "2",
            "--tier-death-after", "700", "--rank-failure-at", "4",
            "--workdir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "steps completed : 6" in out
        assert "world size      : 2 -> 1" in out
        assert "tier_death" in out and "rank_failure" in out
        assert "recoveries" in out and "degradations" in out
        assert "final loss" in out and "Young/Daly" in out

    def test_profile_writes_bench_and_trace(self, capsys, tmp_path):
        import json

        assert main([
            "profile", "--steps", "2", "--no-overhead",
            "--outdir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "steps/s" in out and "per-tier traffic" in out
        bench = json.loads((tmp_path / "BENCH_telemetry.json").read_text())
        assert bench["train"]["steps_per_second"] > 0
        assert bench["per_tier_edge_bytes"]
        trace = json.loads((tmp_path / "telemetry_trace.json").read_text())
        meta = [e for e in trace["traceEvents"] if e.get("ph") == "M"]
        assert len(meta) >= 4  # train / updater / pcie / scheduler

    def test_profile_rejects_bad_steps(self, capsys, tmp_path):
        assert main(["profile", "--steps", "0",
                     "--outdir", str(tmp_path)]) == 2

    def test_chaos_unified_metrics_dump(self, capsys, tmp_path):
        assert main([
            "chaos", "--steps", "6", "--seed", "0",
            "--workdir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "unified metrics :" in out
        # Fault counters and retry latencies share one registry.
        assert "faults.retries" in out
        assert "retry.backoff_seconds" in out

    def test_chaos_fault_free_run(self, capsys, tmp_path):
        assert main([
            "chaos", "--steps", "4", "--transient-rate", "0",
            "--torn-rate", "0", "--workdir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "(none)" in out  # empty fault log
        assert "|delta| 0.0000" in out  # bit-for-bit with the reference


class TestReportCli:
    def _profile(self, outdir, steps=2):
        assert main([
            "profile", "--steps", str(steps), "--no-overhead",
            "--outdir", str(outdir),
        ]) == 0

    def test_profile_with_report_writes_run_report(self, capsys, tmp_path):
        assert main([
            "profile", "--steps", "3", "--no-overhead", "--report",
            "--outdir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "watchdog alerts" in out  # tight defaults always fire
        assert "run_report.md" in out
        markdown = (tmp_path / "run_report.md").read_text()
        assert "## Memory waterfall" in markdown
        assert "## Tier traffic" in markdown
        assert "## Anomalies" in markdown
        assert "No watchdog alerts fired." not in markdown
        assert (tmp_path / "run_report.html").exists()

    def test_report_build_from_bench_and_trace(self, capsys, tmp_path):
        self._profile(tmp_path)
        capsys.readouterr()
        assert main([
            "report", "build",
            "--bench", str(tmp_path / "BENCH_telemetry.json"),
            "--trace", str(tmp_path / "telemetry_trace.json"),
            "--html",
        ]) == 0
        assert "run_report.md" in capsys.readouterr().out
        markdown = (tmp_path / "run_report.md").read_text()
        assert "## Summary" in markdown and "## Trace" in markdown
        html = (tmp_path / "run_report.html").read_text()
        assert html.startswith("<!DOCTYPE html>")

    def test_report_build_missing_bench(self, capsys, tmp_path):
        assert main([
            "report", "build", "--bench", str(tmp_path / "missing.json"),
        ]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_report_compare_flags_injected_regression(self, capsys, tmp_path):
        import json

        self._profile(tmp_path)
        capsys.readouterr()
        baseline = json.loads((tmp_path / "BENCH_telemetry.json").read_text())
        regressed = json.loads(json.dumps(baseline))
        regressed["train"]["steps_per_second"] *= 0.5  # injected regression
        regressed["train"]["elapsed_seconds"] *= 2.0
        base_path = tmp_path / "BENCH_base.json"
        cur_path = tmp_path / "BENCH_cur.json"
        base_path.write_text(json.dumps(baseline))
        cur_path.write_text(json.dumps(regressed))
        # Regressions exit nonzero so CI can gate on the comparison.
        assert main(["report", "compare", str(base_path), str(cur_path)]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "train.steps_per_second" in out
        # Identical payloads pass.
        assert main(["report", "compare", str(base_path), str(base_path)]) == 0
        assert "OK — no regressions" in capsys.readouterr().out

    def test_report_compare_missing_file(self, capsys, tmp_path):
        assert main([
            "report", "compare", str(tmp_path / "a.json"),
            str(tmp_path / "b.json"),
        ]) == 2
        assert "no such file" in capsys.readouterr().err


class TestCheckCli:
    def _baseline_path(self):
        from pathlib import Path

        import repro

        return Path(repro.__file__).parent.parent.parent / "concurrency_baseline.json"

    def test_check_self_clean_against_committed_baseline(self, capsys):
        assert main([
            "check", "--self", "--baseline", str(self._baseline_path()),
        ]) == 0
        out = capsys.readouterr().out
        assert "accepted by baseline" in out
        assert "0 new" in out
        assert "check           : OK" in out

    def test_check_self_fails_without_baseline(self, capsys, tmp_path):
        # The accepted update_error publish counts as new when the
        # baseline is empty: the gate fails and names the finding.
        assert main([
            "check", "--self", "--baseline", str(tmp_path / "none.json"),
        ]) == 1
        captured = capsys.readouterr()
        assert "SA001" in captured.out
        assert "update_error" in captured.out
        assert "FAILED" in captured.err

    def test_check_update_baseline_round_trip(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        assert main([
            "check", "--self", "--update-baseline",
            "--baseline", str(baseline),
        ]) == 0
        assert baseline.exists()
        capsys.readouterr()
        assert main(["check", "--self", "--baseline", str(baseline)]) == 0

    def test_check_schedule_verifies_small_model(self, capsys):
        assert main([
            "check", "--schedule", "--model", "gpt3-1.7b", "--batch", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "schedule verified: 8 invariants, 0 violations" in out

    def test_check_json_payload(self, capsys):
        import json

        assert main([
            "check", "--json", "--model", "gpt3-1.7b", "--batch", "1",
            "--baseline", str(self._baseline_path()),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["self"]["new"] == []
        assert payload["schedule"]["ok"] is True
        names = [i["name"] for i in payload["schedule"]["invariants"]]
        assert "use-before-fetch" in names and "oom-at-trigger" in names
        # The default run also model-checks the coordinator protocol.
        assert payload["protocol"]["ok"] is True
        assert payload["protocol"]["kind"] == "protocol"

    def test_check_protocol_explores_clean_model(self, capsys):
        assert main(["check", "--protocol", "--depth", "5"]) == 0
        out = capsys.readouterr().out
        assert "protocol verified: 8 invariants, 0 violations" in out
        assert "states" in out

    def test_check_protocol_json_carries_stats(self, capsys):
        import json

        assert main([
            "check", "--protocol", "--json", "--depth", "4", "--workers", "2",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        protocol = payload["protocol"]
        assert protocol["ok"] is True
        assert protocol["stats"]["states"] > 0
        assert protocol["stats"]["depth"] == 4
        assert "schedule" not in payload  # explicit prong selection

    def test_check_cluster_verifies_workdir(self, capsys, tmp_path):
        import json

        events = [
            {"type": "generation_formed", "time": 0.0, "generation": 1,
             "world": 1, "members": {"w0i0": 0}},
            {"type": "complete", "time": 1.0, "generation": 1, "world": 1},
        ]
        (tmp_path / "membership_events.jsonl").write_text(
            "\n".join(json.dumps(e) for e in events) + "\n"
        )
        assert main(["check", "--cluster", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "cluster verified" in out

    def test_check_cluster_reports_counterexample(self, capsys, tmp_path):
        import json

        events = [
            {"type": "generation_formed", "time": 0.0, "generation": 1,
             "world": 2, "members": {"w0i0": 0, "w1i0": 1}},
            # Reformed without fencing generation 1 first.
            {"type": "generation_formed", "time": 1.0, "generation": 2,
             "world": 1, "members": {"w0i0": 0}},
        ]
        (tmp_path / "membership_events.jsonl").write_text(
            "\n".join(json.dumps(e) for e in events) + "\n"
        )
        assert main(["check", "--cluster", str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "fence-discipline" in captured.out
        assert "FAILED" in captured.err
