"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_models_lists_zoo(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gpt3-175b" in out and "t5-moe-1.2t" in out

    def test_plan_reports_both_systems(self, capsys):
        assert main(["plan", "--model", "gpt3-28b", "--servers", "1"]) == 0
        out = capsys.readouterr().out
        assert "deepspeed" in out and "angel-ptm" in out
        assert "max depth" in out

    def test_simulate_reports_throughput(self, capsys):
        assert main([
            "simulate", "--model", "gpt3-1.7b", "--batch", "2", "--servers", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "samples/s" in out and "GPU busy" in out

    def test_simulate_lock_free_reports_staleness(self, capsys):
        assert main([
            "simulate", "--model", "gpt3-55b", "--batch", "1",
            "--ssd", "--lock-free",
        ]) == 0
        assert "staleness" in capsys.readouterr().out

    def test_train_runs(self, capsys):
        assert main(["train", "--steps", "6"]) == 0
        out = capsys.readouterr().out
        assert "final loss" in out

    def test_experiment_dispatch(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_experiment_unknown_name(self, capsys):
        assert main(["experiment", "table99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
