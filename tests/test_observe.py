"""Observe subsystem: watchdog rules, OOM forensics, run reports."""

import json

import pytest

from repro.errors import ConfigurationError, OutOfMemoryError
from repro.hardware.device import DeviceKind
from repro.memory.allocator import PageAllocator
from repro.memory.pool import DevicePool
from repro.observe import (
    Alert,
    CacheThrashRule,
    ForensicRecorder,
    RetryStormRule,
    Severity,
    StalenessLagRule,
    StepSnapshot,
    TierBandwidthRule,
    Watchdog,
    WatchdogConfig,
    WaterlineRule,
    WorkerLivenessRule,
    alert_from_dict,
    compare,
    degrade_recommendation,
    format_compare,
    render_html,
    render_markdown,
    write_report,
)
from repro.runtime.events import EventBus
from repro.scheduler.tasks import Operation, Schedule, ScheduledTask
from repro.telemetry import Telemetry
from repro.units import GiB, KiB, MiB


def snap(step, counters=None, gauges=None, memory=None):
    return StepSnapshot(
        step=step, counters=counters or {}, gauges=gauges or {},
        memory=memory or {},
    )


class TestAlerts:
    def test_severity_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.CRITICAL

    def test_round_trip_through_dict(self):
        alert = Alert(
            rule="waterline", severity=Severity.CRITICAL,
            message="gpu nearly full", step=7, evidence={"tier": "gpu"},
        )
        assert alert_from_dict(alert.to_dict()) == alert

    def test_degrade_recommendation_for_retry_storm(self):
        alert = Alert(
            rule="retry_storm", severity=Severity.WARNING, message="", step=3,
            evidence={"retries_in_window": 9.0, "window_steps": 4},
        )
        recommendation = degrade_recommendation(alert)
        assert recommendation and "degrade_tier" in recommendation

    def test_degrade_recommendation_for_saturated_ssd_edge(self):
        alert = Alert(
            rule="tier_bandwidth", severity=Severity.WARNING, message="",
            step=3, evidence={"edge": "cpu->ssd", "bytes_per_step": 1e9},
        )
        assert "degrade_tier" in degrade_recommendation(alert)

    def test_no_recommendation_for_gpu_edge_or_info(self):
        gpu_edge = Alert(
            rule="tier_bandwidth", severity=Severity.WARNING, message="",
            step=1, evidence={"edge": "cpu->gpu"},
        )
        assert degrade_recommendation(gpu_edge) is None
        info = Alert(
            rule="retry_storm", severity=Severity.INFO, message="", step=1
        )
        assert degrade_recommendation(info) is None


class TestRules:
    def test_staleness_lag_from_gauge(self):
        rule = StalenessLagRule(interval=4, tolerance=1.5)
        assert rule.evaluate(snap(1, gauges={"updater.lag_iterations": 5})) == []
        fired = rule.evaluate(snap(2, gauges={"updater.lag_iterations": 7}))
        assert fired and fired[0].severity is Severity.WARNING
        assert fired[0].evidence["lag_iterations"] == 7.0

    def test_staleness_lag_escalates_to_critical(self):
        rule = StalenessLagRule(interval=1, tolerance=1.5)
        fired = rule.evaluate(snap(1, gauges={"updater.lag_iterations": 4}))
        assert fired and fired[0].severity is Severity.CRITICAL

    def test_staleness_lag_falls_back_to_counters(self):
        rule = StalenessLagRule(interval=1, tolerance=1.0)
        fired = rule.evaluate(
            snap(5, counters={"engine.steps": 6, "engine.update_sweeps": 2})
        )
        assert fired and "lags 4 iterations" in fired[0].message

    def test_cache_thrash_after_warmup(self):
        rule = CacheThrashRule(window=4, warmup_steps=2, floor=0.5, critical=0.2)
        hits, demands = 0, 0
        fired = []
        for step in range(1, 8):
            demands += 10  # all misses: rate 0
            fired += rule.evaluate(snap(
                step, counters={
                    "cache.prefetch_hits": hits,
                    "cache.demand_fetches": demands,
                },
            ))
        assert fired and fired[0].severity is Severity.CRITICAL
        assert fired[0].evidence["window_hit_rate"] == 0.0

    def test_cache_thrash_quiet_when_healthy(self):
        rule = CacheThrashRule(window=4, warmup_steps=1, floor=0.5, critical=0.2)
        hits = 0
        for step in range(1, 8):
            hits += 10  # all hits
            assert rule.evaluate(snap(
                step, counters={
                    "cache.prefetch_hits": hits,
                    "cache.demand_fetches": 0,
                },
            )) == []

    def test_tier_bandwidth_parses_edge_and_fires(self):
        rule = TierBandwidthRule(budget_bytes_per_step=1 * MiB, window=4)
        key = "pages.moved_bytes{dst=gpu,src=cpu}"
        assert rule.evaluate(snap(1, counters={key: 0})) == []
        fired = rule.evaluate(snap(2, counters={key: 8 * MiB}))
        assert fired and fired[0].evidence["edge"] == "cpu->gpu"
        assert fired[0].severity is Severity.CRITICAL  # 8x budget

    def test_waterline_near_miss_with_history(self):
        rule = WaterlineRule(margin=0.10, critical=0.02, history=8)
        healthy = {"gpu": {"used_bytes": 50, "free_bytes": 50}}
        assert rule.evaluate(snap(1, memory=healthy)) == []
        tight = {"gpu": {"used_bytes": 95, "free_bytes": 5}}
        fired = rule.evaluate(snap(2, memory=tight))
        assert fired and fired[0].severity is Severity.WARNING
        assert fired[0].evidence["tier"] == "gpu"
        # History carries the healthy sample too — the trajectory, not
        # just the instant.
        assert len(fired[0].evidence["recent_headroom"]) == 2

    def test_waterline_critical_when_exhausted(self):
        rule = WaterlineRule(margin=0.10, critical=0.02, history=8)
        fired = rule.evaluate(
            snap(1, memory={"gpu": {"used_bytes": 100, "free_bytes": 0}})
        )
        assert fired and fired[0].severity is Severity.CRITICAL

    def test_retry_storm_windowed_delta(self):
        rule = RetryStormRule(window=4, threshold=6, critical=16)
        assert rule.evaluate(snap(1, counters={"retry.attempts": 0})) == []
        assert rule.evaluate(snap(2, counters={"retry.attempts": 3})) == []
        fired = rule.evaluate(snap(3, counters={"retry.attempts": 9}))
        assert fired and fired[0].evidence["retries_in_window"] == 9.0

    def test_cooldown_suppresses_repeats_but_not_escalations(self):
        rule = WaterlineRule(margin=0.10, critical=0.02, history=8)
        rule.cooldown_steps = 4
        warn = {"gpu": {"used_bytes": 95, "free_bytes": 5}}
        crit = {"gpu": {"used_bytes": 100, "free_bytes": 0}}
        assert rule.evaluate(snap(1, memory=warn))  # fires
        assert rule.evaluate(snap(2, memory=warn)) == []  # cooldown
        assert rule.evaluate(snap(3, memory=crit))  # escalation bypasses
        assert rule.evaluate(snap(10, memory=warn))  # cooldown expired

    def test_worker_liveness_quiet_without_cluster_gauges(self):
        rule = WorkerLivenessRule(warning=1, critical=2)
        assert rule.evaluate(snap(1)) == []
        assert rule.evaluate(
            snap(2, gauges={"cluster.heartbeat.missed{worker=w0i0}": 0})
        ) == []

    def test_worker_liveness_warns_then_escalates(self):
        rule = WorkerLivenessRule(warning=1, critical=2)
        fired = rule.evaluate(
            snap(3, gauges={"cluster.heartbeat.missed{worker=w1i0}": 1})
        )
        assert fired and fired[0].severity is Severity.WARNING
        assert "w1i0" in fired[0].message
        fired = rule.evaluate(
            snap(9, gauges={
                "cluster.heartbeat.missed{worker=w1i0}": 2,
                "cluster.heartbeat.missed{worker=w2i0}": 1,
            })
        )
        assert fired and fired[0].severity is Severity.CRITICAL
        assert fired[0].evidence["workers"] == {"w1i0": 2.0, "w2i0": 1.0}

    def test_worker_liveness_validates_thresholds(self):
        with pytest.raises(ConfigurationError):
            WorkerLivenessRule(warning=3, critical=2)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            WatchdogConfig(update_interval=0)
        with pytest.raises(ConfigurationError):
            WatchdogConfig(waterline_margin=0.01, waterline_critical=0.05)


class TestWatchdog:
    def test_observe_step_publishes_everywhere(self):
        telemetry = Telemetry()
        bus = EventBus()
        watchdog = Watchdog(telemetry=telemetry, bus=bus)
        telemetry.gauge("updater.lag_iterations").set(10)
        fired = watchdog.observe_step(step=1)
        assert [a.rule for a in fired] == ["staleness_lag"]
        assert watchdog.alerts == fired
        assert watchdog.worst_severity is Severity.CRITICAL
        # Counted in the registry it watches...
        assert telemetry.registry.value(
            "watchdog.alerts", rule="staleness_lag", severity="CRITICAL"
        ) == 1
        # ...published on the bus under a unique one-shot name...
        assert bus.event("observe.alert.1.staleness_lag").done
        # ...and serializable for the BENCH payload.
        assert watchdog.payload()[0]["rule"] == "staleness_lag"

    def test_disabled_telemetry_still_evaluates_memory_rules(self):
        watchdog = Watchdog()  # NULL_TELEMETRY: no counters to read
        fired = watchdog.observe_step(
            step=1, memory={"gpu": {"used_bytes": 100, "free_bytes": 0}}
        )
        assert [a.rule for a in fired] == ["waterline"]

    def test_quiet_run_fires_nothing(self):
        watchdog = Watchdog(telemetry=Telemetry())
        for step in range(1, 6):
            assert watchdog.observe_step(step=step) == []
        assert watchdog.worst_severity is None


def build_allocator(gpu_pages=4, page_bytes=1 * KiB, forensics=None):
    pools = {
        DeviceKind.GPU: DevicePool(
            DeviceKind.GPU, gpu_pages * page_bytes, page_bytes
        ),
        DeviceKind.CPU: DevicePool(DeviceKind.CPU, 16 * page_bytes, page_bytes),
    }
    return PageAllocator(pools, forensics=forensics)


class TestForensics:
    def test_oom_error_carries_forensic_dump(self):
        recorder = ForensicRecorder()
        allocator = build_allocator(gpu_pages=2, forensics=recorder)
        schedule = Schedule([
            ScheduledTask(Operation.MOVE_TO_GPU, layer_index=0,
                          trigger_id=7, page_id=1, nbytes=1024),
            ScheduledTask(Operation.COMPUTE, layer_index=0, trigger_id=7,
                          op_id=7),
            ScheduledTask(Operation.COMPUTE, layer_index=1, trigger_id=9,
                          op_id=9),
        ])
        recorder.set_context(
            trigger_id=7, planned_tasks=schedule.at_trigger(7),
            pinned=["layer0.weight"],
        )
        recorder.sample(0, allocator.residency_report())
        allocator.allocate((256,), "float32", DeviceKind.GPU)
        allocator.allocate((256,), "float32", DeviceKind.GPU)
        recorder.sample(1, allocator.residency_report())
        with pytest.raises(OutOfMemoryError) as exc_info:
            allocator.allocate((256,), "float32", DeviceKind.GPU)
        dump = exc_info.value.forensics
        # Resident pages per tier, by name.
        assert dump.resident_pages["gpu"]["pages_in_use"] == 2
        assert dump.resident_pages["gpu"]["num_pages"] == 2
        assert dump.resident_pages["cpu"]["pages_in_use"] == 0
        assert len(dump.resident_tensors["gpu"]) == 2
        # The scheduler's plan at the failing trigger — and only that one.
        assert dump.trigger_id == 7
        assert [t["operation"] for t in dump.planned_tasks] == [
            "move_to_gpu", "compute",
        ]
        # The pinned set and the waterline trajectory.
        assert dump.pinned == ["layer0.weight"]
        assert [s["step"] for s in dump.waterline_history] == [0, 1]
        assert dump.requested_bytes == 1 * KiB
        # Human-readable, JSON-serializable.
        assert "trigger 7" in dump.summary()
        assert "2/2 pages resident" in dump.summary()
        json.dumps(dump.to_dict())
        allocator.close()

    def test_attach_is_idempotent_first_capture_wins(self):
        recorder = ForensicRecorder()
        allocator = build_allocator(forensics=recorder)
        exc = OutOfMemoryError("gpu-pool", 1024, 0)
        recorder.set_context(trigger_id=3)
        recorder.attach(exc, allocator)
        first = exc.forensics
        recorder.set_context(trigger_id=99)
        recorder.attach(exc, allocator)  # no-op: already attached
        assert exc.forensics is first
        assert exc.forensics.trigger_id == 3
        allocator.close()

    def test_timeline_is_bounded(self):
        recorder = ForensicRecorder(capacity=4)
        for step in range(10):
            recorder.sample(step, {"gpu": {"used_bytes": step}})
        assert [s.step for s in recorder.timeline] == [6, 7, 8, 9]
        assert recorder.timeline_payload()[0]["tiers"]["gpu"]["used_bytes"] == 6

    def test_engine_oom_on_unevictable_allocation(self):
        """An engine-level OOM (nothing evictable) explains itself."""
        from repro.engine.angel import AngelConfig, initialize
        from repro.nn import MixedPrecisionAdam, TinyTransformerLM

        model = TinyTransformerLM(
            vocab_size=16, d_model=16, d_ffn=32, num_heads=2,
            num_layers=1, max_seq=8, seed=0,
        )
        optimizer = MixedPrecisionAdam(model.parameters(), lr=1e-3)
        engine = initialize(model, optimizer, AngelConfig(
            gpu_memory_bytes=1 * MiB, cpu_memory_bytes=8 * MiB,
            ssd_bytes=0, page_bytes=64 * KiB,
        ))
        try:
            # Exhaust the CPU tier directly: nothing manages these
            # tensors, so eviction cannot save the allocation and the
            # pool-level OOM surfaces with forensics attached.
            with pytest.raises(OutOfMemoryError) as exc_info:
                for _ in range(1000):
                    engine.allocator.allocate(
                        (16 * KiB,), "float32", DeviceKind.CPU
                    )
            dump = exc_info.value.forensics
            assert dump is engine.forensics.last_dump
            assert dump.resident_pages["cpu"]["pages_in_use"] > 0
            assert dump.resident_tensors["cpu"]
        finally:
            engine.close()


def make_bench(steps_per_second=10.0, alerts=(), timeline=()):
    return {
        "benchmark": "telemetry_profile",
        "train": {
            "steps": 4, "elapsed_seconds": 4 / steps_per_second,
            "steps_per_second": steps_per_second, "final_loss": 3.2,
        },
        "simulated": {
            "model": "gpt3-13b", "samples_per_second": 2.0,
            "iteration_time_seconds": 2.0,
        },
        "overhead": {"overhead_fraction": 0.01},
        "per_tier_edge_bytes": {
            "pages.moved_bytes{dst=gpu,src=cpu}": 4 * MiB,
            "pages.moved_bytes{dst=cpu,src=gpu}": 3 * MiB,
        },
        "memory_timeline": list(timeline),
        "alerts": list(alerts),
        "telemetry": {
            "metrics": {
                "counters": {
                    "pages.moves{dst=gpu,src=cpu}": 64,
                    "pages.moves{dst=cpu,src=gpu}": 48,
                },
                "gauges": {}, "histograms": {},
            },
            "spans": {
                "fwd": {"count": 4, "total_seconds": 0.2, "max_seconds": 0.06},
            },
        },
    }


SAMPLE_TIMELINE = [
    {"step": step, "tiers": {
        "gpu": {"used_bytes": used * KiB, "free_bytes": (64 - used) * KiB},
        "cpu": {"used_bytes": 128 * KiB, "free_bytes": 128 * KiB},
    }}
    for step, used in enumerate([16, 48, 60])
]

SAMPLE_ALERT = {
    "rule": "waterline", "severity": "WARNING", "step": 2,
    "message": "gpu headroom 6.2% below the 10% margin (OOM near-miss)",
    "evidence": {"tier": "gpu", "headroom_fraction": 0.0625},
}


class TestReport:
    def test_markdown_has_all_sections(self):
        markdown = render_markdown(make_bench(
            alerts=[SAMPLE_ALERT], timeline=SAMPLE_TIMELINE
        ))
        assert "## Summary" in markdown
        assert "## Memory waterfall" in markdown
        assert "### gpu (capacity 64.0 KiB)" in markdown
        assert "## Tier traffic" in markdown
        assert "`pages.moved_bytes{dst=gpu,src=cpu}` | 4.00 MiB | 64" in markdown
        assert "## Anomalies" in markdown
        assert "`waterline`" in markdown and "OOM near-miss" in markdown
        assert "## Span breakdown" in markdown

    def test_empty_payload_degrades_gracefully(self):
        markdown = render_markdown({"benchmark": "x"})
        assert "No watchdog alerts fired." in markdown
        assert "_No residency timeline in this payload._" in markdown
        assert "_No page traffic recorded._" in markdown

    def test_write_report_markdown_and_html(self, tmp_path):
        bench = make_bench(alerts=[SAMPLE_ALERT], timeline=SAMPLE_TIMELINE)
        written = write_report(bench, tmp_path / "run_report.md", html=True)
        assert [p.rsplit(".", 1)[1] for p in written] == ["md", "html"]
        html = (tmp_path / "run_report.html").read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<table>" in html and "waterline" in html

    def test_render_html_escapes_and_structures(self):
        html = render_html("# T\n\n| a | b |\n|---|---|\n| 1 | <x> |\n\n```\nbar\n```")
        assert "<h1>T</h1>" in html
        assert "<td>&lt;x&gt;</td>" in html
        assert "<pre>" in html and "bar" in html

    def test_compare_flags_injected_regression(self):
        result = compare(make_bench(steps_per_second=10.0),
                         make_bench(steps_per_second=7.0))
        assert not result["ok"]
        regressed = {e["metric"] for e in result["regressions"]}
        assert "train.steps_per_second" in regressed
        assert "train.elapsed_seconds" in regressed
        text = format_compare(result)
        assert "REGRESSED" in text and "train.steps_per_second" in text

    def test_compare_ok_within_threshold(self):
        result = compare(make_bench(10.0), make_bench(9.8))
        assert result["ok"] and not result["regressions"]
        assert "OK — no regressions" in format_compare(result)

    def test_compare_counts_improvements(self):
        result = compare(make_bench(10.0), make_bench(14.0))
        assert result["ok"]
        improved = {e["metric"] for e in result["improvements"]}
        assert "train.steps_per_second" in improved


class TestProfileIntegration:
    def test_tight_profile_fires_alerts_and_samples_timeline(self):
        from repro.observe.report import render_markdown
        from repro.telemetry.bench import ProfileConfig, run_profile

        report, telemetry = run_profile(ProfileConfig(
            steps=5, measure_overhead=False
        ))
        # The deliberately tight GPU pool (16 pages) makes the watchdog's
        # job easy: the waterline and/or cache rules must fire.
        assert report["alerts"], "tight profile must fire >= 1 alert"
        assert report["memory_timeline"]
        assert {"gpu", "cpu"} <= set(report["memory_timeline"][0]["tiers"])
        markdown = render_markdown(report)
        assert "### gpu" in markdown  # waterfall rendered per tier
        assert "| `pages.moved_bytes{" in markdown  # traffic table
        assert "## Anomalies" in markdown
        assert "No watchdog alerts fired." not in markdown
        # Fired alerts are also counted back into the registry.
        counters = report["telemetry"]["metrics"]["counters"]
        assert any(k.startswith("watchdog.alerts") for k in counters)

    def test_watch_off_keeps_payload_shape(self):
        from repro.telemetry.bench import ProfileConfig, run_profile

        report, _ = run_profile(ProfileConfig(
            steps=2, measure_overhead=False, watch=False
        ))
        assert report["alerts"] == []
        assert report["memory_timeline"]  # engine samples regardless


class TestResilienceIntegration:
    def test_chaos_run_collects_alerts_and_recommendations(self, tmp_path):
        from repro.resilience import ChaosConfig, run_chaos

        telemetry = Telemetry()
        config = ChaosConfig(
            steps=8, checkpoint_every=4, seed=3,
            transient_read_rate=0.01, transient_write_rate=0.01,
            gpu_memory_bytes=1 * MiB,
        )
        # A storm-sensitive watchdog: a couple of retries in-window is
        # already a storm, so a modest fault rate reliably trips it.
        watchdog = Watchdog(telemetry=telemetry, config=WatchdogConfig(
            retry_window=8, retry_storm_threshold=2, retry_storm_critical=500,
        ))
        report = run_chaos(
            config, str(tmp_path), telemetry=telemetry, watchdog=watchdog
        )
        assert report.steps_completed == 8
        # Heavy transient rates retry constantly: the retry storm fires
        # and recommends (never forces) degrading the SSD tier.
        rules = {a.rule for a in report.alerts}
        assert "retry_storm" in rules
        assert any("degrade_tier" in r for r in report.recommendations)
        assert telemetry.registry.value(
            "watchdog.alerts", rule="retry_storm", severity="WARNING"
        ) >= 1


class TestVerificationSection:
    def _verification(self, ok=True):
        violations = [] if ok else [{
            "invariant": "use-before-fetch", "trigger_id": 7,
            "layer_index": 2, "page_id": 1, "tensor_id": -1,
            "message": "all-gather of layer 2 before page(s) [1] arrived",
            "provenance": [],
        }]
        return {
            "ok": ok, "model": "gpt3-13b",
            "invariants": [
                {"name": "use-before-fetch", "violations": len(violations)},
                {"name": "oom-at-trigger", "violations": 0},
            ],
            "violations": violations,
            "stats": {
                "peak_live_bytes": 2.0 * GiB,
                "gpu_budget_bytes": 4 * GiB,
            },
        }

    def test_verified_schedule_renders_verdict(self):
        bench = make_bench()
        bench["verification"] = self._verification(ok=True)
        markdown = render_markdown(bench)
        assert "## Verification" in markdown
        assert "schedule verified: 2 invariants, 0 violations" in markdown
        assert "`use-before-fetch`" in markdown
        assert "2.00 GiB" in markdown and "50.0%" in markdown

    def test_violations_render_as_counterexample_table(self):
        bench = make_bench()
        bench["verification"] = self._verification(ok=False)
        markdown = render_markdown(bench)
        assert "**schedule INVALID**: 1 violation(s)" in markdown
        assert "| `use-before-fetch` | 7 | 2 | 1 |" in markdown

    def test_payload_without_verification_degrades(self):
        markdown = render_markdown({"benchmark": "x"})
        assert "_No schedule verification in this payload._" in markdown
