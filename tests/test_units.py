"""Unit formatting and constants."""

import pytest

from repro.units import GB, GiB, KiB, MB, MiB, TB, fmt_bytes, fmt_seconds


def test_binary_and_decimal_prefixes_differ():
    assert MiB == 1024 * KiB
    assert MB == 1000**2
    assert GiB > GB
    assert TB == 1000**4


def test_fmt_bytes_picks_suffix():
    assert fmt_bytes(512) == "512B"
    assert fmt_bytes(4 * MiB) == "4.00MiB"
    assert fmt_bytes(3 * GiB) == "3.00GiB"


def test_fmt_bytes_terabytes_cap():
    assert fmt_bytes(5 * 1024 * GiB) == "5.00TiB"
    assert fmt_bytes(5000 * 1024 * GiB).endswith("TiB")


def test_fmt_seconds_scales():
    assert fmt_seconds(5e-7) == "0.5us"
    assert fmt_seconds(2.5e-3) == "2.50ms"
    assert fmt_seconds(3.25) == "3.250s"


@pytest.mark.parametrize("value", [0, 1, 1023, 1024, 1024**2 - 1])
def test_fmt_bytes_monotone_readable(value):
    assert isinstance(fmt_bytes(value), str)
