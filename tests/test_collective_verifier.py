"""Multi-rank collective agreement + post-hoc cluster-workdir replay."""

import json
from pathlib import Path
from types import SimpleNamespace

from repro.analysis.invariants import (
    COLLECTIVE_AGREEMENT,
    COLLECTIVE_ORDER,
    COLLECTIVE_SHAPE,
    COLLECTIVE_WORLD,
    FENCE_DISCIPLINE,
    GENERATION_MONOTONIC,
    INCARNATION_BUMP,
)
from repro.analysis.protocol import (
    CollectiveOp,
    collective_program_from_plan,
    verify_cluster_workdir,
    verify_collective_programs,
    worker_collective_program,
)

CONFIG = SimpleNamespace(steps=3, checkpoint_every=2)


def _program(world=2, rank=0):
    return worker_collective_program(
        CONFIG, world, rank, total_elements=1000
    )


# ----------------------------------------------------------------------
# Planned agreement
# ----------------------------------------------------------------------
class TestWorkerPrograms:
    def test_identical_across_ranks(self):
        programs = {rank: _program(rank=rank) for rank in range(2)}
        result = verify_collective_programs(programs)
        assert result.ok
        assert result.kind == "collective"
        assert result.stats["world"] == 2
        assert result.stats["ops_per_rank"] == len(programs[0])

    def test_checkpoint_steps_add_state_gathers(self):
        program = _program()
        # steps 0..2, checkpoint after step 2 (completed == 2): per step
        # grad reduce_scatter + param all_gather + loss all_gather, plus
        # 3 shard gathers for master/m/v at the checkpoint.
        per_step = 3 * CONFIG.steps
        assert len(program) == per_step + 3
        assert [op.kind for op in program[:3]] == [
            "reduce_scatter", "all_gather", "all_gather",
        ]
        ckpt = [op for op in program if op.label.startswith("ckpt")]
        assert [op.label for op in ckpt] == [
            "ckpt2/master", "ckpt2/m", "ckpt2/v",
        ]

    def test_shard_lengths_are_padded_equal(self):
        # 1000 elements over 3 ranks pads to ceil shards: every rank
        # contributes the same nbytes, which is what makes the programs
        # rank-invariant.
        programs = {rank: worker_collective_program(
            CONFIG, 3, rank, total_elements=1000
        ) for rank in range(3)}
        assert verify_collective_programs(programs).ok


class TestDisagreements:
    def test_sparse_rank_set(self):
        result = verify_collective_programs({0: _program(), 2: _program()})
        assert not result.ok
        assert result.violations[0].invariant == COLLECTIVE_WORLD

    def test_length_mismatch_names_the_deadlocking_rank(self):
        programs = {0: _program(), 1: _program()[:-1]}
        result = verify_collective_programs(programs)
        assert not result.ok
        assert len(result.violations) == 1
        violation = result.violations[0]
        assert violation.invariant == COLLECTIVE_ORDER
        assert "rank 1" in violation.message

    def test_reordered_collectives(self):
        swapped = list(_program())
        swapped[0], swapped[1] = swapped[1], swapped[0]
        result = verify_collective_programs({0: _program(), 1: swapped})
        assert not result.ok
        assert len(result.violations) == 1
        violation = result.violations[0]
        assert violation.invariant == COLLECTIVE_ORDER
        assert violation.trigger_id == 0

    def test_disagreeing_shard_length(self):
        # Rank 1 computes its shard over a different world size: same
        # op order, different payload bytes.
        programs = {
            0: _program(world=2),
            1: worker_collective_program(
                CONFIG, 3, 1, total_elements=1000
            ),
        }
        result = verify_collective_programs(programs)
        assert not result.ok
        assert len(result.violations) == 1
        assert result.violations[0].invariant == COLLECTIVE_SHAPE


class TestPlanExtraction:
    def test_from_fake_plan(self):
        from repro.scheduler.tasks import Operation

        tasks = [
            SimpleNamespace(operation=Operation.MOVE_TO_GPU, trigger_id=0,
                            layer_index=0, nbytes=64),
            SimpleNamespace(operation=Operation.ALL_GATHER, trigger_id=0,
                            layer_index=0, nbytes=4096),
            SimpleNamespace(operation=Operation.COMPUTE, trigger_id=0,
                            layer_index=0, nbytes=0),
            SimpleNamespace(operation=Operation.REDUCE_SCATTER,
                            trigger_id=9, layer_index=0, nbytes=4096),
        ]
        program = collective_program_from_plan(
            SimpleNamespace(schedule=tasks)
        )
        assert program == [
            CollectiveOp("all_gather", 4096, "t0/L0"),
            CollectiveOp("reduce_scatter", 4096, "t9/L0"),
        ]

    def test_real_plans_agree_across_identical_ranks(self):
        from repro.hardware.cluster import a100_cluster
        from repro.models import get_model
        from repro.scheduler.unified import UnifiedScheduler

        scheduler = UnifiedScheduler(a100_cluster(1))
        plan = scheduler.plan(get_model("gpt3-13b"), 4, seq_len=2048)
        program = collective_program_from_plan(plan)
        assert program, "the bench plan must issue collectives"
        assert verify_collective_programs({0: program, 1: program}).ok


# ----------------------------------------------------------------------
# Post-hoc workdir replay
# ----------------------------------------------------------------------
def _write_membership(workdir, events, torn_tail=False):
    lines = [json.dumps(event) for event in events]
    text = "\n".join(lines) + "\n"
    if torn_tail:
        text += '{"type": "generation_for'  # SIGKILL mid-write
    (Path(workdir) / "membership_events.jsonl").write_text(text)


def _write_stream(workdir, source, spans, role="rank"):
    directory = Path(workdir) / "telemetry"
    directory.mkdir(parents=True, exist_ok=True)
    events = [{"kind": "meta", "version": 1, "source": source, "role": role}]
    events += spans
    (directory / f"{source}.jsonl").write_text(
        "\n".join(json.dumps(event) for event in events) + "\n"
    )


def _step_spans(generation, step, ops, base=0.0, rank=0):
    """One step span plus its contained collective spans."""
    spans = [{
        "kind": "span", "name": f"step{step}", "track": "train",
        "start": base, "end": base + 1.0, "depth": 0,
        "args": {"step": step, "generation": generation, "rank": rank},
    }]
    for index, (name, nbytes) in enumerate(ops):
        start = base + 0.1 * (index + 1)
        spans.append({
            "kind": "span", "name": name, "track": "train",
            "start": start, "end": start + 0.05, "depth": 1,
            "args": {"nbytes": nbytes},
        })
    return spans


GOOD_EVENTS = [
    {"type": "join", "generation": 0, "worker": "w0i0", "slot": 0,
     "incarnation": 0},
    {"type": "join", "generation": 0, "worker": "w1i0", "slot": 1,
     "incarnation": 0},
    {"type": "generation_formed", "generation": 1, "world": 2,
     "members": {"w0i0": 0, "w1i0": 1}},
    {"type": "evicted", "generation": 1, "worker": "w1i0",
     "reason": "control connection lost"},
    {"type": "fenced", "generation": 1, "reason": "w1i0 evicted"},
    {"type": "generation_formed", "generation": 2, "world": 2,
     "members": {"w0i0": 0, "w1i1": 1}},
    {"type": "complete", "generation": 2, "world": 2},
]


class TestMembershipReplay:
    def test_clean_log(self, tmp_path):
        _write_membership(tmp_path, GOOD_EVENTS)
        result = verify_cluster_workdir(str(tmp_path))
        assert result.ok
        assert result.kind == "cluster"
        assert result.stats["membership_events"] == len(GOOD_EVENTS)

    def test_reform_without_fence(self, tmp_path):
        events = [e for e in GOOD_EVENTS if e["type"] != "fenced"]
        _write_membership(tmp_path, events)
        result = verify_cluster_workdir(str(tmp_path))
        assert not result.ok
        assert {v.invariant for v in result.violations} == {
            FENCE_DISCIPLINE
        }

    def test_generation_going_backwards(self, tmp_path):
        events = list(GOOD_EVENTS[:5]) + [
            {"type": "generation_formed", "generation": 1, "world": 1,
             "members": {"w0i0": 0}},
        ]
        _write_membership(tmp_path, events)
        result = verify_cluster_workdir(str(tmp_path))
        assert any(
            v.invariant == GENERATION_MONOTONIC for v in result.violations
        )

    def test_readmission_without_incarnation_bump(self, tmp_path):
        events = list(GOOD_EVENTS)
        events[5] = {"type": "generation_formed", "generation": 2,
                     "world": 2, "members": {"w0i0": 0, "w1i0": 1}}
        _write_membership(tmp_path, events)
        result = verify_cluster_workdir(str(tmp_path))
        assert any(
            v.invariant == INCARNATION_BUMP for v in result.violations
        )

    def test_torn_tail_is_tolerated(self, tmp_path):
        _write_membership(tmp_path, GOOD_EVENTS, torn_tail=True)
        result = verify_cluster_workdir(str(tmp_path))
        assert result.ok

    def test_empty_workdir_is_vacuously_ok(self, tmp_path):
        result = verify_cluster_workdir(str(tmp_path))
        assert result.ok
        assert result.stats["membership_events"] == 0


STEP_OPS = [("reduce_scatter", 4000), ("all_gather", 2000)]


class TestCollectiveReplay:
    def test_agreeing_ranks(self, tmp_path):
        _write_membership(tmp_path, GOOD_EVENTS)
        for source, rank in (("w0i0", 0), ("w1i0", 1)):
            _write_stream(tmp_path, source, _step_spans(
                2, 0, STEP_OPS, rank=rank
            ))
        result = verify_cluster_workdir(str(tmp_path))
        assert result.ok
        assert result.stats["rank_streams"] == 2
        assert result.stats["collectives_observed"] == 4

    def test_disagreeing_nbytes(self, tmp_path):
        _write_membership(tmp_path, GOOD_EVENTS)
        _write_stream(tmp_path, "w0i0", _step_spans(2, 0, STEP_OPS))
        _write_stream(tmp_path, "w1i0", _step_spans(
            2, 0, [("reduce_scatter", 4000), ("all_gather", 9999)], rank=1
        ))
        result = verify_cluster_workdir(str(tmp_path))
        assert not result.ok
        assert result.violations[0].invariant == COLLECTIVE_AGREEMENT
        assert "9999" in result.violations[0].message

    def test_killed_rank_prefix_is_legal(self, tmp_path):
        _write_membership(tmp_path, GOOD_EVENTS)
        _write_stream(tmp_path, "w0i0", _step_spans(2, 0, STEP_OPS))
        # w1 was SIGKILLed after the reduce_scatter: a strict prefix.
        _write_stream(tmp_path, "w1i0", _step_spans(
            2, 0, STEP_OPS[:1], rank=1
        ))
        result = verify_cluster_workdir(str(tmp_path))
        assert result.ok

    def test_diverging_prefix_is_not(self, tmp_path):
        _write_membership(tmp_path, GOOD_EVENTS)
        _write_stream(tmp_path, "w0i0", _step_spans(2, 0, STEP_OPS))
        _write_stream(tmp_path, "w1i0", _step_spans(
            2, 0, [("all_gather", 2000)], rank=1
        ))
        result = verify_cluster_workdir(str(tmp_path))
        assert not result.ok
        assert result.violations[0].invariant == COLLECTIVE_AGREEMENT

    def test_missing_nbytes_is_tolerated(self, tmp_path):
        # Streams from before the spans carried nbytes (or with
        # telemetry partially disabled) still verify on op order.
        _write_membership(tmp_path, GOOD_EVENTS)
        _write_stream(tmp_path, "w0i0", _step_spans(2, 0, STEP_OPS))
        _write_stream(tmp_path, "w1i0", _step_spans(
            2, 0, [("reduce_scatter", None), ("all_gather", None)], rank=1
        ))
        result = verify_cluster_workdir(str(tmp_path))
        assert result.ok

    def test_supervisor_streams_are_ignored(self, tmp_path):
        _write_membership(tmp_path, GOOD_EVENTS)
        _write_stream(tmp_path, "w0i0", _step_spans(2, 0, STEP_OPS))
        _write_stream(tmp_path, "supervisor", _step_spans(
            2, 0, [("all_gather", 1)]
        ), role="supervisor")
        result = verify_cluster_workdir(str(tmp_path))
        assert result.ok
        assert result.stats["rank_streams"] == 1
