"""Static schedule verifier: proofs on real plans, counterexamples on
adversarial ones."""

import dataclasses
from types import SimpleNamespace

import pytest

from repro.analysis.invariants import (
    DOUBLE_FREE,
    DOUBLE_MOVE,
    EVICT_PINNED,
    GATHER_BEFORE_USE,
    OOM_AT_TRIGGER,
    PAGE_SHARING,
    SCHEDULE_INVARIANTS,
    STALENESS_BOUND,
    USE_BEFORE_FETCH,
)
from repro.analysis.verifier import ScheduleVerifier, verify_plan
from repro.errors import ConfigurationError
from repro.hardware.cluster import a100_cluster
from repro.models import get_model
from repro.scheduler import Operation, Schedule, UnifiedScheduler
from repro.scheduler.tasks import ScheduledTask


@pytest.fixture(scope="module")
def planned():
    """The bench workload plan (gpt3-13b) — what CI's check job verifies."""
    scheduler = UnifiedScheduler(a100_cluster(1))
    plan = scheduler.plan(get_model("gpt3-13b"), 4, seq_len=2048)
    return scheduler, plan


def _mutated(plan, tasks):
    """The plan with its schedule replaced by ``tasks``."""
    return dataclasses.replace(plan, schedule=Schedule(list(tasks)))


def _layer_gathers(plan, layer_index):
    """The layer's (forward gather, backward gather), by op id."""
    gathers = sorted(
        (t for t in plan.schedule
         if t.operation == Operation.ALL_GATHER
         and t.layer_index == layer_index),
        key=lambda t: t.op_id,
    )
    assert len(gathers) == 2, "expected one forward and one backward gather"
    return gathers


class TestCleanPlan:
    def test_bench_plan_proves_all_invariants(self, planned):
        scheduler, plan = planned
        result = verify_plan(plan, scheduler.gpu_budget)
        assert result.ok, [v.message for v in result.violations]
        assert result.invariants_checked == SCHEDULE_INVARIANTS
        assert "0 violations" in result.summary()

    def test_small_plan_proves_all_invariants(self):
        scheduler = UnifiedScheduler(a100_cluster(1))
        plan = scheduler.plan(
            get_model("gpt3-1.7b").with_layers(4), 1, seq_len=128
        )
        assert verify_plan(plan, scheduler.gpu_budget).ok

    def test_stats_reflect_replay(self, planned):
        scheduler, plan = planned
        result = verify_plan(plan, scheduler.gpu_budget)
        assert result.stats["tasks"] == len(plan.schedule)
        assert result.stats["num_ops"] == plan.trace.num_ops
        assert 0 < result.stats["peak_live_bytes"] <= scheduler.gpu_budget

    def test_to_dict_is_machine_readable(self, planned):
        scheduler, plan = planned
        payload = verify_plan(plan, scheduler.gpu_budget).to_dict()
        assert payload["ok"] is True
        assert payload["model"] == plan.trace.model_name
        names = [entry["name"] for entry in payload["invariants"]]
        assert names == list(SCHEDULE_INVARIANTS)
        assert all(entry["violations"] == 0 for entry in payload["invariants"])

    def test_bad_update_interval_rejected(self, planned):
        _, plan = planned
        with pytest.raises(ConfigurationError):
            ScheduleVerifier.for_plan(plan, 1 << 40, update_interval=0)


class TestAdversarialSchedules:
    """Each hand-broken schedule yields exactly one counterexample."""

    def test_use_before_fetch(self, planned):
        scheduler, plan = planned
        tasks = list(plan.schedule)
        # Delay one page's staging move past its layer's forward gather
        # (but in time for the backward one): the forward gather finds the
        # page missing; nothing else breaks.
        found = None
        for layer in range(plan.trace.num_layers):
            fwd, bwd = _layer_gathers(plan, layer)
            if fwd.trigger_id < bwd.trigger_id:
                found = (fwd, bwd)
                break
        assert found, "no layer with distinct gather triggers"
        fwd, bwd = found
        index, move = next(
            (i, t) for i, t in enumerate(tasks)
            if t.operation == Operation.MOVE_TO_GPU
            and t.layer_index == fwd.layer_index
        )
        tasks[index] = dataclasses.replace(move, trigger_id=bwd.trigger_id)
        result = verify_plan(_mutated(plan, tasks), scheduler.gpu_budget)
        assert not result.ok
        assert len(result.violations) == 1
        violation = result.violations[0]
        assert violation.invariant == USE_BEFORE_FETCH
        assert violation.trigger_id == fwd.trigger_id
        assert violation.layer_index == move.layer_index
        assert violation.page_id == move.page_id

    def test_evict_pinned_page(self, planned):
        scheduler, plan = planned
        tasks = list(plan.schedule)
        # Inject an eviction inside an advanced forward gather's pin
        # window [trigger, op], with a re-stage before the backward
        # gather so the eviction is the only broken thing.
        found = None
        for layer in range(plan.trace.num_layers):
            fwd, bwd = _layer_gathers(plan, layer)
            if fwd.trigger_id < fwd.op_id < bwd.trigger_id:
                found = (fwd, bwd)
                break
        assert found, "no advanced forward gather with a later backward"
        fwd, bwd = found
        nbytes = plan.layer_pages[fwd.layer_index].page_nbytes(0)
        tasks.append(ScheduledTask(
            Operation.MOVE_TO_CPU, layer_index=fwd.layer_index,
            trigger_id=fwd.op_id, page_id=0, nbytes=nbytes,
        ))
        tasks.append(ScheduledTask(
            Operation.MOVE_TO_GPU, layer_index=fwd.layer_index,
            trigger_id=bwd.trigger_id, page_id=0, nbytes=nbytes,
        ))
        result = verify_plan(_mutated(plan, tasks), scheduler.gpu_budget)
        assert not result.ok
        assert len(result.violations) == 1
        violation = result.violations[0]
        assert violation.invariant == EVICT_PINNED
        assert violation.trigger_id == fwd.op_id
        assert violation.layer_index == fwd.layer_index
        assert violation.page_id == 0
        # Provenance: where the page had been before the bad eviction.
        assert [e[1] for e in violation.provenance] == ["move_to_gpu"]

    def test_mid_step_gpu_overflow(self, planned):
        scheduler, plan = planned
        tasks = list(plan.schedule)
        # Inflate one mid-step gather buffer beyond the whole GPU budget:
        # the ledger overflows exactly over that gather's live window.
        index, gather = next(
            (i, t) for i, t in enumerate(tasks)
            if t.operation == Operation.ALL_GATHER and t.trigger_id > 0
        )
        tasks[index] = dataclasses.replace(
            gather, nbytes=2 * scheduler.gpu_budget
        )
        result = verify_plan(_mutated(plan, tasks), scheduler.gpu_budget)
        assert not result.ok
        assert len(result.violations) == 1
        violation = result.violations[0]
        assert violation.invariant == OOM_AT_TRIGGER
        assert violation.trigger_id == gather.trigger_id

    def test_counterexamples_serialize(self, planned):
        scheduler, plan = planned
        tasks = [
            t for t in plan.schedule
            if not (t.operation == Operation.MOVE_TO_GPU
                    and t.layer_index == 0 and t.page_id == 0)
        ]
        payload = verify_plan(
            _mutated(plan, tasks), scheduler.gpu_budget
        ).to_dict()
        assert payload["ok"] is False
        assert payload["violations"], "dropping a staged page must be caught"
        entry = payload["violations"][0]
        assert {"invariant", "trigger_id", "layer_index", "page_id",
                "tensor_id", "message", "provenance"} <= set(entry)
        assert entry["invariant"] == USE_BEFORE_FETCH


class TestMoveAndGatherInvariants:
    def test_double_move(self, planned):
        scheduler, plan = planned
        tasks = list(plan.schedule)
        move = next(
            t for t in tasks if t.operation == Operation.MOVE_TO_GPU
        )
        duplicate = dataclasses.replace(
            move, trigger_id=move.trigger_id + 1
        )
        tasks.append(duplicate)
        result = verify_plan(_mutated(plan, tasks), scheduler.gpu_budget)
        doubles = result.of(DOUBLE_MOVE)
        assert len(doubles) == 1
        assert doubles[0].trigger_id == duplicate.trigger_id
        assert doubles[0].page_id == move.page_id
        assert [e[1] for e in doubles[0].provenance] == ["move_to_gpu"]

    def test_double_free(self, planned):
        scheduler, plan = planned
        tasks = list(plan.schedule)
        # Layer 0's pages leave the GPU with its backward (the last bwd
        # op); an eviction after that frees a page that is already gone.
        bwd_id = plan.trace.layers[0].bwd_id
        tasks.append(ScheduledTask(
            Operation.MOVE_TO_CPU, layer_index=0,
            trigger_id=bwd_id + 1, page_id=0,
            nbytes=plan.layer_pages[0].page_nbytes(0),
        ))
        result = verify_plan(_mutated(plan, tasks), scheduler.gpu_budget)
        frees = result.of(DOUBLE_FREE)
        assert len(frees) == 1
        assert frees[0].trigger_id == bwd_id + 1
        assert frees[0].page_id == 0

    def test_missing_gather_flagged(self, planned):
        scheduler, plan = planned
        gather = next(
            t for t in plan.schedule if t.operation == Operation.ALL_GATHER
        )
        tasks = [t for t in plan.schedule if t is not gather]
        result = verify_plan(_mutated(plan, tasks), scheduler.gpu_budget)
        missing = result.of(GATHER_BEFORE_USE)
        assert len(missing) == 1
        assert missing[0].trigger_id == gather.op_id

    def test_late_gather_flagged(self, planned):
        scheduler, plan = planned
        tasks = list(plan.schedule)
        index, gather = next(
            (i, t) for i, t in enumerate(tasks)
            if t.operation == Operation.ALL_GATHER
        )
        tasks[index] = dataclasses.replace(
            gather, trigger_id=gather.op_id + 1
        )
        result = verify_plan(_mutated(plan, tasks), scheduler.gpu_budget)
        late = result.of(GATHER_BEFORE_USE)
        assert len(late) == 1
        assert late[0].trigger_id == gather.op_id + 1

    def test_out_of_table_page_rejected(self, planned):
        scheduler, plan = planned
        tasks = list(plan.schedule)
        table = plan.layer_pages[0]
        tasks.append(ScheduledTask(
            Operation.MOVE_TO_GPU, layer_index=0, trigger_id=0,
            page_id=table.num_pages + 3, nbytes=table.page_bytes,
        ))
        result = verify_plan(_mutated(plan, tasks), scheduler.gpu_budget)
        assert len(result.of(PAGE_SHARING)) == 1
        # The invalid task is dropped from the replay: no cascade noise.
        assert len(result.violations) == 1

    def test_partial_page_move_rejected(self, planned):
        scheduler, plan = planned
        tasks = list(plan.schedule)
        index, move = next(
            (i, t) for i, t in enumerate(tasks)
            if t.operation == Operation.MOVE_TO_GPU
        )
        tasks[index] = dataclasses.replace(move, nbytes=move.nbytes // 2)
        result = verify_plan(_mutated(plan, tasks), scheduler.gpu_budget)
        sharing = result.of(PAGE_SHARING)
        assert len(sharing) == 1
        assert "minimum unit" in sharing[0].message


class TestStalenessBound:
    def _verifier(self, layers, accesses=()):
        trace = SimpleNamespace(
            model_name="stub",
            layers=layers,
            pattern=SimpleNamespace(accesses=list(accesses)),
            num_ops=3 * len(layers),
        )
        return ScheduleVerifier(trace, [], Schedule(), 1 << 40)

    def _layer(self, index, num_layers):
        return SimpleNamespace(
            layer_index=index,
            fwd_id=index,
            bwd_id=2 * num_layers - 1 - index,
            update_id=2 * num_layers + (num_layers - 1 - index),
        )

    def test_update_before_backward_flagged(self):
        layers = [self._layer(0, 2), self._layer(1, 2)]
        layers[1] = SimpleNamespace(
            layer_index=1, fwd_id=1, bwd_id=2, update_id=2
        )
        violations = []
        self._verifier(layers)._check_staleness(violations)
        assert [v.invariant for v in violations] == [STALENESS_BOUND]
        assert violations[0].layer_index == 1

    def test_forward_order_updates_flagged(self):
        # Updates increasing with layer index break Algorithm 2's
        # reverse sweep; the out-of-order pair is reported once.
        layers = [
            SimpleNamespace(layer_index=0, fwd_id=0, bwd_id=3, update_id=4),
            SimpleNamespace(layer_index=1, fwd_id=1, bwd_id=2, update_id=5),
        ]
        violations = []
        self._verifier(layers)._check_staleness(violations)
        assert [v.invariant for v in violations] == [STALENESS_BOUND]
        assert violations[0].trigger_id == 5

    def test_param_lifetime_must_reach_update(self):
        layers = [self._layer(0, 1)]
        kind = SimpleNamespace(name="PARAM")
        accesses = [SimpleNamespace(
            layer_index=0, kind=kind, tensor_id=7, name="w", end_id=1,
        )]
        violations = []
        self._verifier(layers, accesses)._check_staleness(violations)
        assert [v.invariant for v in violations] == [STALENESS_BOUND]
        assert violations[0].tensor_id == 7
