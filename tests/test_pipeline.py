"""Pipelined runtime: prefetch worker, writeback queue, live planning.

The load-bearing property is *prefetch determinism*: driving the engine
from a planned schedule with background workers must be bit-identical to
the synchronous demand-fetch path — page movement is byte-preserving, so
reordering it can change timing but never numerics, including when an
injected fault plan makes the SSD tier misbehave under retries.
"""

import threading
import time

import numpy as np
import pytest

from repro.engine import AngelConfig, initialize
from repro.errors import ConfigurationError, SchedulingError
from repro.hardware.device import DeviceKind
from repro.lockfree import WorkQueue
from repro.nn import MixedPrecisionAdam, TinyTransformerLM, lm_synthetic_batches
from repro.resilience import FaultPlan, RetryPolicy
from repro.runtime import MoveGroup, PrefetchWorker, WritebackQueue, coalesce_schedule
from repro.units import KiB, MiB


def tiny_model(seed=1, num_layers=2):
    return TinyTransformerLM(
        vocab_size=16, d_model=16, d_ffn=32, num_heads=2, num_layers=num_layers,
        max_seq=8, seed=seed,
    )


def train(steps=5, seed=3, **config_kwargs):
    """Train the tiny workload; returns (losses, params, engine facts)."""
    model = tiny_model(seed=seed)
    opt = MixedPrecisionAdam(model.parameters(), lr=2e-3)
    defaults = dict(
        gpu_memory_bytes=2 * MiB,
        cpu_memory_bytes=16 * MiB,
        page_bytes=32 * KiB,
    )
    defaults.update(config_kwargs)
    engine = initialize(model, opt, AngelConfig(**defaults))
    losses = []
    try:
        for batch in lm_synthetic_batches(16, 8, 4, steps, seed=seed + 1):
            loss = engine(batch)
            engine.backward(loss)
            engine.step()
            losses.append(loss.item())
        params = {m.name: m.param.data.copy() for m in engine._managed}
        facts = {
            "plan": engine.executed_plan(),
            "report": engine.pipeline_report(),
            "gpu_budget": engine.config.gpu_memory_bytes,
        }
    finally:
        engine.close()
    return losses, params, facts


class TestPrefetchDeterminism:
    def test_pipelined_bit_identical_to_sync(self):
        sync_losses, sync_params, _ = train(pipeline=False)
        pipe_losses, pipe_params, facts = train(pipeline=True)
        assert sync_losses == pipe_losses
        for name, array in sync_params.items():
            assert np.array_equal(array, pipe_params[name]), name
        assert facts["report"]["enabled"]

    def test_bit_identical_on_ssd_tier(self, tmp_path):
        common = dict(
            ssd_bytes=16 * MiB, ssd_path=str(tmp_path / "sync.bin"),
        )
        sync_losses, sync_params, _ = train(pipeline=False, **common)
        common["ssd_path"] = str(tmp_path / "pipe.bin")
        pipe_losses, pipe_params, facts = train(pipeline=True, **common)
        assert sync_losses == pipe_losses
        for name, array in sync_params.items():
            assert np.array_equal(array, pipe_params[name]), name
        # The async writeback actually carried state flushes.
        assert facts["report"]["writeback"]["flushed"] > 0

    def test_bit_identical_under_injected_faults(self, tmp_path):
        """Transient SSD faults healed by retries are numerics-neutral.

        The two runs hit fault sites at different I/Os (the pipelined run
        reorders them), but every transient is retried to success, so the
        bytes that land are identical either way.
        """
        def faulty(tag):
            return dict(
                ssd_bytes=16 * MiB,
                ssd_path=str(tmp_path / f"{tag}.bin"),
                fault_plan=FaultPlan(
                    seed=11, transient_read_rate=0.02,
                    transient_write_rate=0.02, max_transients=12,
                ),
                retry_policy=RetryPolicy(
                    max_attempts=8, base_delay=0.001, deadline=5.0,
                ),
            )

        sync_losses, sync_params, _ = train(pipeline=False, **faulty("sync"))
        pipe_losses, pipe_params, _ = train(pipeline=True, **faulty("pipe"))
        assert sync_losses == pipe_losses
        for name, array in sync_params.items():
            assert np.array_equal(array, pipe_params[name]), name

    def test_lock_free_pipelined_matches_lock_free_sync(self):
        kwargs = dict(lock_free=True, update_interval=2, steps=6)
        sync_losses, sync_params, _ = train(pipeline=False, **kwargs)
        pipe_losses, pipe_params, _ = train(pipeline=True, **kwargs)
        assert sync_losses == pipe_losses
        for name, array in sync_params.items():
            assert np.array_equal(array, pipe_params[name]), name


class TestProcessDataPlane:
    """io_workers="process": copies leave the GIL, numerics must not."""

    def test_process_mode_bit_identical_to_thread(self, tmp_path):
        common = dict(pipeline=True, ssd_bytes=16 * MiB)
        thread_losses, thread_params, _ = train(
            io_workers="thread", ssd_path=str(tmp_path / "t.bin"), **common
        )
        proc_losses, proc_params, facts = train(
            io_workers="process", ssd_path=str(tmp_path / "p.bin"), **common
        )
        assert thread_losses == proc_losses
        for name, array in thread_params.items():
            assert np.array_equal(array, proc_params[name]), name
        assert facts["report"]["writeback"]["flushed"] > 0

    def test_process_mode_bit_identical_to_sync(self):
        sync_losses, sync_params, _ = train(pipeline=False)
        proc_losses, proc_params, _ = train(
            pipeline=True, io_workers="process"
        )
        assert sync_losses == proc_losses
        for name, array in sync_params.items():
            assert np.array_equal(array, proc_params[name]), name

    def test_invalid_io_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="io_workers"):
            AngelConfig(io_workers="goroutine")

    def test_io_workers_roundtrips_through_dict(self):
        config = AngelConfig(io_workers="process")
        assert AngelConfig.from_dict(config.to_dict()) == config


class TestPageCopyService:
    def test_copy_between_shared_arenas(self):
        from repro.memory.arena import ArenaPoolBackend
        from repro.runtime.ioproc import PageCopyService

        src = ArenaPoolBackend(num_pages=4, page_bytes=256, shared=True)
        dst = ArenaPoolBackend(num_pages=4, page_bytes=256, shared=True)
        try:
            payload = bytes(range(256)) * 2
            src.write_from(1, 0, payload)
            with PageCopyService() as service:
                # One coalesced run: pages 1-2 of src into pages 0-1 of dst.
                service.copy(
                    src.descriptor(), dst.descriptor(), [(256, 0, 512)]
                )
            out = bytearray(512)
            dst.readinto(0, 0, out)
            assert bytes(out) == payload
        finally:
            src.close()
            dst.close()

    def test_scatter_stages_payload_into_arena(self):
        from repro.memory.arena import ArenaPoolBackend
        from repro.runtime.ioproc import PageCopyService

        dst = ArenaPoolBackend(num_pages=4, page_bytes=128, shared=True)
        try:
            payload = np.arange(256, dtype=np.uint8)
            with PageCopyService() as service:
                # Scatter halves of the payload into pages 3 and 1.
                service.scatter(
                    dst.descriptor(), payload,
                    [(0, 3 * 128, 128), (128, 1 * 128, 128)],
                )
            out = bytearray(128)
            dst.readinto(3, 0, out)
            assert bytes(out) == payload[:128].tobytes()
            dst.readinto(1, 0, out)
            assert bytes(out) == payload[128:].tobytes()
        finally:
            dst.close()

    def test_copy_after_close_rejected(self):
        from repro.errors import TransientIOError
        from repro.runtime.ioproc import PageCopyService

        service = PageCopyService()
        service.close()
        assert not service.alive
        with pytest.raises(TransientIOError, match="closed"):
            service.copy(("shm", "x"), ("shm", "y"), [(0, 0, 1)])


class TestLivePlan:
    def test_executed_plan_verifies_clean(self):
        from repro.analysis.verifier import verify_plan

        _, _, facts = train(pipeline=True)
        plan = facts["plan"]
        assert plan is not None
        result = verify_plan(plan, facts["gpu_budget"])
        assert result.ok, result.violations

    def test_injected_plan_is_executed_not_replanned(self):
        """One IterationPlan flows planner -> engine -> verifier."""
        from repro.engine import build_live_plan

        model = tiny_model()
        opt = MixedPrecisionAdam(model.parameters(), lr=2e-3)
        config = AngelConfig(
            gpu_memory_bytes=2 * MiB, cpu_memory_bytes=16 * MiB,
            page_bytes=32 * KiB, pipeline=True,
        )
        with initialize(model, opt, config) as engine:
            batches = list(lm_synthetic_batches(16, 8, 4, 3, seed=5))
            loss = engine(batches[0])
            engine.backward(loss)
            engine.step()
            planned = build_live_plan(engine)
        model = tiny_model()
        opt = MixedPrecisionAdam(model.parameters(), lr=2e-3)
        config = AngelConfig(
            gpu_memory_bytes=2 * MiB, cpu_memory_bytes=16 * MiB,
            page_bytes=32 * KiB, pipeline=True, plan=planned,
        )
        with initialize(model, opt, config) as engine:
            for batch in batches:
                loss = engine(batch)
                engine.backward(loss)
                engine.step()
            assert engine.executed_plan() is planned

    def test_plan_layer_mismatch_rejected(self):
        model = tiny_model()
        opt = MixedPrecisionAdam(model.parameters(), lr=2e-3)
        config = AngelConfig(
            gpu_memory_bytes=2 * MiB, cpu_memory_bytes=16 * MiB,
            page_bytes=32 * KiB, pipeline=True,
        )
        with initialize(model, opt, config) as engine:
            batch = next(iter(lm_synthetic_batches(16, 8, 4, 1, seed=5)))
            loss = engine(batch)
            engine.backward(loss)
            engine.step()
            plan = engine.executed_plan()
        other = tiny_model(num_layers=1)
        opt = MixedPrecisionAdam(other.parameters(), lr=2e-3)
        config = AngelConfig(
            gpu_memory_bytes=2 * MiB, cpu_memory_bytes=16 * MiB,
            page_bytes=32 * KiB, pipeline=True, plan=plan,
        )
        engine = initialize(other, opt, config)
        try:
            batch = next(iter(lm_synthetic_batches(16, 8, 4, 1, seed=5)))
            loss = engine(batch)
            engine.backward(loss)
            with pytest.raises(ConfigurationError, match="recorded"):
                engine.step()
        finally:
            engine.close()


class TestCoalescing:
    def test_groups_by_trigger_layer_direction(self):
        from repro.scheduler.tasks import Operation, Schedule, ScheduledTask

        tasks = [
            ScheduledTask(Operation.MOVE_TO_GPU, layer_index=0, page_id=0,
                          trigger_id=0, nbytes=10),
            ScheduledTask(Operation.MOVE_TO_GPU, layer_index=0, page_id=1,
                          trigger_id=0, nbytes=10),
            ScheduledTask(Operation.MOVE_TO_CPU, layer_index=0, page_id=0,
                          trigger_id=2, nbytes=10),
            ScheduledTask(Operation.MOVE_TO_GPU, layer_index=1, page_id=0,
                          trigger_id=0, nbytes=10),
            ScheduledTask(Operation.ALL_GATHER, layer_index=0, page_id=0,
                          trigger_id=1, nbytes=10),
        ]
        groups = coalesce_schedule(Schedule(tasks=list(tasks)))
        assert [
            (g.trigger_id, g.layer_index, g.fetch, g.pages) for g in groups
        ] == [(0, 0, True, 2), (0, 1, True, 1), (2, 0, False, 1)]
        assert groups[0].nbytes == 20

    def test_move_many_coalesces_and_dedups(self):
        from repro.memory.allocator import PageAllocator
        from repro.memory.pool import DevicePool

        pools = {
            DeviceKind.GPU: DevicePool(DeviceKind.GPU, 1 * MiB, 32 * KiB),
            DeviceKind.CPU: DevicePool(DeviceKind.CPU, 4 * MiB, 32 * KiB),
        }
        allocator = PageAllocator(pools)
        # Two tensors whose tails share one page (at-most-two-per-page).
        first = allocator.allocate((40 * KiB // 4,), np.float32, DeviceKind.CPU)
        second = allocator.allocate((40 * KiB // 4,), np.float32, DeviceKind.CPU)
        shared = set(map(id, first.page_list)) & set(map(id, second.page_list))
        assert shared, "expected a tail-shared page"
        first.write_array(np.arange(first.size, dtype=np.float32))
        second.write_array(np.arange(second.size, dtype=np.float32) * 2)
        moved = allocator.move_many([first, second], DeviceKind.GPU)
        unique_pages = {id(p) for t in (first, second) for p in t.page_list}
        assert moved == len(unique_pages) * 32 * KiB
        assert first.device_kind == DeviceKind.GPU
        assert second.device_kind == DeviceKind.GPU
        assert np.array_equal(
            first.read_array(), np.arange(first.size, dtype=np.float32)
        )
        # Idempotent: nothing left to move.
        assert allocator.move_many([first, second], DeviceKind.GPU) == 0


class TestWorkQueue:
    def test_fifo_and_per_key_pending(self):
        queue = WorkQueue()
        queue.put("a", 1)
        queue.put("b", 2)
        assert len(queue) == 2
        key, item = queue.get()
        assert (key, item) == ("a", 1)
        # Pending until task_done, so read-your-writes waits cover
        # items a worker has dequeued but not finished.
        done = threading.Event()

        def waiter():
            queue.wait_key("a")
            done.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.02)
        assert not done.is_set()
        queue.task_done("a")
        thread.join(timeout=5)
        assert done.is_set()
        queue.close()

    def test_get_returns_none_when_closed_and_drained(self):
        queue = WorkQueue()
        queue.put("a", 1)
        queue.close()
        assert queue.get() is not None
        queue.task_done("a")
        assert queue.get() is None

    def test_put_after_close_raises(self):
        queue = WorkQueue()
        queue.close()
        with pytest.raises(ConfigurationError):
            queue.put("a", 1)

    def test_abort_drops_queued_and_wakes_waiters(self):
        queue = WorkQueue()
        queue.put("a", 1)
        queue.put("a", 2)
        dropped = queue.abort()
        assert [item for _, item in dropped] == [1, 2]
        queue.wait_key("a")  # returns immediately: nothing pending
        queue.close()

    def test_wait_key_times_out_on_dead_consumer(self):
        queue = WorkQueue()
        queue.put("a", 1)
        with pytest.raises(TimeoutError, match="completion of 'a'"):
            queue.wait_key("a", timeout=0.05)
        queue.close()

    def test_put_times_out_when_full(self):
        queue = WorkQueue(maxsize=1)
        queue.put("a", 1)
        with pytest.raises(TimeoutError, match="queue capacity"):
            queue.put("b", 2, timeout=0.05)
        queue.close()

    def test_wait_idle_times_out_then_succeeds(self):
        queue = WorkQueue()
        queue.put("a", 1)
        with pytest.raises(TimeoutError):
            queue.wait_idle(timeout=0.05)
        queue.get()
        queue.task_done("a")
        queue.wait_idle(timeout=5)
        queue.close()

    def test_negative_timeout_rejected(self):
        queue = WorkQueue()
        with pytest.raises(ConfigurationError):
            queue.wait_idle(timeout=-1)
        queue.close()


class TestWritebackQueue:
    def test_flushes_and_barrier(self):
        landed = []
        queue = WritebackQueue(lambda fn: fn())
        queue.start()
        for i in range(5):
            queue.submit(i, lambda i=i: landed.append(i))
        queue.barrier()
        assert landed == [0, 1, 2, 3, 4]
        assert queue.stats()["flushed"] == 5
        queue.close()

    def test_wait_is_read_your_writes(self):
        gate = threading.Event()
        landed = []

        def slow_io(fn):
            gate.wait(timeout=5)
            return fn()

        queue = WritebackQueue(slow_io)
        queue.start()
        queue.submit("x", lambda: landed.append("x"))
        assert landed == []
        gate.set()
        queue.wait("x")
        assert landed == ["x"]
        queue.close()

    def test_wait_times_out_on_stuck_io(self):
        gate = threading.Event()
        queue = WritebackQueue(lambda fn: gate.wait(timeout=5) and fn())
        queue.start()
        queue.submit("x", lambda: None)
        with pytest.raises(TimeoutError):
            queue.wait("x", timeout=0.05)
        gate.set()
        queue.wait("x", timeout=5)
        queue.close()

    def test_worker_error_surfaces_on_next_submit(self):
        def explode(fn):
            raise SchedulingError("tier on fire")

        queue = WritebackQueue(explode)
        queue.start()
        queue.submit("x", lambda: None)
        # Surfaces the error instead of hanging on the dead worker.
        with pytest.raises(SchedulingError, match="tier on fire"):
            queue.barrier()
        with pytest.raises(SchedulingError, match="tier on fire"):
            queue.raise_if_failed()
        queue.close()


class TestPrefetchWorker:
    @staticmethod
    def groups():
        return [
            MoveGroup(trigger_id=0, layer_index=0, fetch=True, nbytes=10,
                      pages=1),
            MoveGroup(trigger_id=1, layer_index=1, fetch=True, nbytes=10,
                      pages=1),
            MoveGroup(trigger_id=4, layer_index=0, fetch=False, nbytes=10,
                      pages=1),
        ]

    def test_window_gates_fetches_and_eviction_waits_for_trigger(self):
        fetched, evicted = [], []
        worker = PrefetchWorker(
            self.groups(), fetched.append, evicted.append,
            num_ops=6, window=2,
        )
        worker.start()
        try:
            worker.begin_iteration()
            worker.await_layer(0, 0)
            worker.await_layer(1, 1)
            assert sorted(fetched) == [0, 1]
            assert evicted == []  # trigger 4 not yet due
            worker.advance(5)
            worker.finish_iteration()
            assert evicted == [0]
            # Second iteration replays the same schedule.
            worker.begin_iteration()
            worker.advance(5)
            worker.finish_iteration()
            assert sorted(fetched) == [0, 0, 1, 1]
        finally:
            worker.stop()

    def test_await_returns_stall_seconds(self):
        release = threading.Event()

        def slow_fetch(layer):
            release.wait(timeout=5)

        worker = PrefetchWorker(
            self.groups()[:1], slow_fetch, lambda layer: None,
            num_ops=6, window=2,
        )
        worker.start()
        try:
            worker.begin_iteration()
            timer = threading.Timer(0.05, release.set)
            timer.start()
            stalled = worker.await_layer(0, 0)
            assert stalled > 0.0
        finally:
            worker.stop()

    def test_worker_error_raised_at_step_boundary(self):
        def explode(layer):
            raise SchedulingError("bad move")

        worker = PrefetchWorker(
            self.groups()[:1], explode, lambda layer: None,
            num_ops=6, window=2,
        )
        worker.start()
        try:
            worker.begin_iteration()
            with pytest.raises(SchedulingError, match="bad move"):
                worker.finish_iteration()
        finally:
            worker.stop()


class TestConfigRoundTrip:
    def test_to_dict_from_dict(self):
        config = AngelConfig(
            gpu_memory_bytes=2 * MiB, pipeline=True, prefetch_window=3,
        )
        rebuilt = AngelConfig.from_dict(config.to_dict())
        assert rebuilt == config

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine fields"):
            AngelConfig.from_dict({"gpu_memory_byte": 1})

    def test_collaborators_not_serialized(self):
        config = AngelConfig(retry_policy=RetryPolicy())
        assert "retry_policy" not in config.to_dict()

    def test_validation_shared_with_post_init(self):
        with pytest.raises(ConfigurationError, match="prefetch_window"):
            AngelConfig.from_dict({"prefetch_window": 0})
