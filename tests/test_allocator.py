"""Page allocator: placement policy, movement, merge, accounting."""

import numpy as np
import pytest

from repro.errors import AllocationError, OutOfMemoryError, TensorStateError
from repro.hardware.device import DeviceKind
from repro.memory import DevicePool, PageAllocator
from repro.units import KiB, MiB

PAGE = 256 * KiB


@pytest.fixture
def alloc():
    pools = {
        DeviceKind.GPU: DevicePool(DeviceKind.GPU, 4 * MiB, page_bytes=PAGE),
        DeviceKind.CPU: DevicePool(DeviceKind.CPU, 16 * MiB, page_bytes=PAGE),
        DeviceKind.SSD: DevicePool(
            DeviceKind.SSD, 16 * MiB, page_bytes=PAGE, backend="file"
        ),
    }
    allocator = PageAllocator(pools)
    yield allocator
    allocator.close()


class TestPlacementPolicy:
    def test_small_tensor_gets_individual_page(self, alloc):
        """Paper: tensors smaller than a page occupy their own page."""
        a = alloc.allocate((10,), np.float32, DeviceKind.CPU)
        b = alloc.allocate((10,), np.float32, DeviceKind.CPU)
        assert len(a.page_list) == 1
        assert a.page_list[0] is not b.page_list[0]

    def test_large_tensor_spans_pages(self, alloc):
        nelems = (3 * PAGE) // 4  # 3 pages of float32
        t = alloc.allocate((nelems,), np.float32, DeviceKind.CPU)
        assert len(t.page_list) == 3

    def test_tails_share_a_page(self, alloc):
        """Two large tensors' sub-page tails pack into one shared page."""
        nelems = PAGE // 4 + PAGE // 16  # 1 full page + quarter-page tail
        a = alloc.allocate((nelems,), np.float32, DeviceKind.CPU)
        b = alloc.allocate((nelems,), np.float32, DeviceKind.CPU)
        assert a.page_list[-1] is b.page_list[-1]
        assert set(a.page_list[-1].tensor_ids) == {a.tensor_id, b.tensor_id}

    def test_at_most_two_tensors_per_shared_page(self, alloc):
        nelems = PAGE // 4 + PAGE // 32
        tensors = [
            alloc.allocate((nelems,), np.float32, DeviceKind.CPU) for _ in range(3)
        ]
        shared = tensors[0].page_list[-1]
        assert len(shared.tensor_ids) <= 2
        assert tensors[2].page_list[-1] is not shared

    def test_exact_page_multiple_has_no_tail(self, alloc):
        t = alloc.allocate((PAGE // 4,), np.float32, DeviceKind.CPU)
        assert len(t.page_list) == 1
        assert t.page_list[0].available_bytes == 0

    def test_zero_sized_tensor_rejected(self, alloc):
        with pytest.raises(AllocationError):
            alloc.allocate((0,), np.float32, DeviceKind.CPU)

    def test_oom_rolls_back_partial_allocation(self, alloc):
        gpu_pages = alloc.pool(DeviceKind.GPU).num_pages
        with pytest.raises(OutOfMemoryError):
            alloc.allocate(((gpu_pages + 2) * PAGE,), np.uint8, DeviceKind.GPU)
        assert alloc.pool(DeviceKind.GPU).pages_in_use == 0

    def test_mismatched_page_sizes_rejected(self):
        pools = {
            DeviceKind.GPU: DevicePool(DeviceKind.GPU, MiB, page_bytes=64 * KiB),
            DeviceKind.CPU: DevicePool(DeviceKind.CPU, MiB, page_bytes=128 * KiB),
        }
        with pytest.raises(AllocationError):
            PageAllocator(pools)


class TestDataPaths:
    def test_roundtrip_across_pages(self, alloc):
        shape = (PAGE // 2, 3)  # spans pages with a tail
        t = alloc.allocate(shape, np.float16, DeviceKind.CPU)
        data = np.random.default_rng(1).standard_normal(shape).astype(np.float16)
        t.write_array(data)
        assert np.array_equal(t.read_array(), data)

    def test_move_preserves_data_through_all_tiers(self, alloc):
        t = alloc.allocate((5000,), np.float32, DeviceKind.CPU)
        data = np.arange(5000, dtype=np.float32)
        t.write_array(data)
        for device in (DeviceKind.SSD, DeviceKind.GPU, DeviceKind.CPU):
            t.move(device)
            assert t.device_kind == device
            assert np.array_equal(t.read_array(), data)

    def test_move_carries_cotenant(self, alloc):
        nelems = PAGE // 4 + PAGE // 16
        a = alloc.allocate((nelems,), np.float32, DeviceKind.CPU)
        b = alloc.allocate((nelems,), np.float32, DeviceKind.CPU)
        assert a.page_list[-1] is b.page_list[-1]
        a.move(DeviceKind.SSD)
        # The shared tail page moved once; b now spans two devices.
        assert b.device_index == -1
        assert a.device_kind == DeviceKind.SSD

    def test_merge_makes_contiguous(self, alloc):
        nelems = PAGE // 4 + PAGE // 16
        a = alloc.allocate((nelems,), np.float32, DeviceKind.CPU)
        b = alloc.allocate((nelems,), np.float32, DeviceKind.CPU)
        data = np.random.default_rng(2).standard_normal(nelems).astype(np.float32)
        b.write_array(data)
        assert not b.is_contiguous
        b.merge()
        assert b.is_contiguous
        assert np.array_equal(b.read_array(), data)
        assert b.page_list[0].slot_of(b.tensor_id)[0] == 0

    def test_merge_noop_when_contiguous(self, alloc):
        t = alloc.allocate((PAGE,), np.uint8, DeviceKind.CPU)
        pages_before = list(t.page_list)
        t.merge()
        assert t.page_list == pages_before

    def test_write_shape_mismatch_rejected(self, alloc):
        t = alloc.allocate((10, 10), np.float32, DeviceKind.CPU)
        with pytest.raises(TensorStateError):
            t.write_array(np.zeros((5, 5), dtype=np.float32))


class TestLifecycle:
    def test_release_returns_pages(self, alloc):
        pool = alloc.pool(DeviceKind.CPU)
        t = alloc.allocate((PAGE,), np.uint8, DeviceKind.CPU)
        used = pool.pages_in_use
        t.release()
        assert pool.pages_in_use == used - 1
        assert t.is_released

    def test_release_keeps_shared_page_for_cotenant(self, alloc):
        nelems = PAGE // 4 + PAGE // 16
        a = alloc.allocate((nelems,), np.float32, DeviceKind.CPU)
        b = alloc.allocate((nelems,), np.float32, DeviceKind.CPU)
        shared = a.page_list[-1]
        data = np.random.default_rng(3).standard_normal(nelems).astype(np.float32)
        b.write_array(data)
        a.release()
        assert shared.tensor_ids == (b.tensor_id,)
        assert np.array_equal(b.read_array(), data)

    def test_double_release_rejected(self, alloc):
        t = alloc.allocate((10,), np.float32, DeviceKind.CPU)
        t.release()
        with pytest.raises(TensorStateError):
            t.release()

    def test_read_after_release_rejected(self, alloc):
        t = alloc.allocate((10,), np.float32, DeviceKind.CPU)
        t.release()
        with pytest.raises(TensorStateError):
            t.read_array()

    def test_internal_fragmentation_measured(self, alloc):
        # A 1-element tensor wastes almost a whole page.
        alloc.allocate((1,), np.float32, DeviceKind.CPU)
        frag = alloc.internal_fragmentation(DeviceKind.CPU)
        assert frag == pytest.approx(1 - 4 / PAGE)

    def test_bytes_requested_tracks_totals(self, alloc):
        alloc.allocate((100,), np.float32, DeviceKind.CPU)
        alloc.allocate((50,), np.float16, DeviceKind.CPU)
        assert alloc.bytes_requested == 400 + 100
