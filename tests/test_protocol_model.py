"""Protocol model checker: clean proofs on the real rule table,
exactly one minimal counterexample per seeded mutation.

The adversarial tests mirror the schedule verifier's discipline
(``test_analysis_verifier.py``): every mutant must produce exactly one
violation, on the intended invariant, whose provenance is a minimal
action trace naming the offending action.
"""

import pytest

from repro.analysis.invariants import (
    BARRIER_RELEASE_FULL,
    COMPLETE_IMPLIES_DONE,
    FENCE_NEVER_PATCH,
    GENERATION_MONOTONIC,
    INCARNATION_BUMP,
    NO_SPLIT_BRAIN,
    PROTOCOL_INVARIANTS,
    RENDEZVOUS_CONVERGENCE,
    UNIQUE_RANK_PER_SLOT,
)
from repro.analysis.protocol import (
    ProtocolConfig,
    ProtocolExplorer,
    explore_protocol,
)
from repro.cluster import rules as R
from repro.cluster.rules import RULES, BarrierInfo, MemberInfo


def _mutant(**overrides):
    """A copy of the production rule table with entries replaced."""
    table = dict(RULES)
    table.update(overrides)
    return table


def _one_violation(result, invariant):
    """The exactly-one-minimal-counterexample discipline."""
    assert not result.ok
    assert len(result.violations) == 1
    violation = result.violations[0]
    assert violation.invariant == invariant
    trace = [event for _trigger, event in violation.provenance]
    assert trace, "counterexample must carry the action trace"
    # The violation names the action that completed the counterexample.
    assert trace[-1] in violation.message or trace[-1] in str(violation)
    assert violation.trigger_id == len(trace) - 1
    return trace


class TestCleanModel:
    def test_depth6_is_clean_and_fast(self):
        result = explore_protocol(depth=6)
        assert result.ok
        assert result.kind == "protocol"
        assert tuple(result.invariants_checked) == tuple(PROTOCOL_INVARIANTS)
        assert result.stats["states"] > 100
        assert result.stats["transitions"] >= result.stats["states"] - 1

    def test_deeper_exploration_stays_clean(self):
        result = explore_protocol(depth=10)
        assert result.ok
        # Completion is reachable: the model can actually finish a run.
        assert result.stats["terminal_complete"] >= 1

    def test_partial_order_reduction_prunes(self):
        result = explore_protocol(depth=8)
        assert result.ok
        assert result.stats["pruned"] > 0

    def test_summary_names_the_protocol_kind(self):
        result = explore_protocol(depth=4)
        assert "protocol verified" in result.summary()


class TestSeededMutants:
    """Each invariant has teeth: drop its guard, get its counterexample."""

    def test_fence_check_dropped_from_barrier_release(self):
        def no_fence_check(state, worker, name, generation):
            # Mutation: the barrier path no longer honours the fence.
            if generation != state.generation or worker not in state.members:
                return "stale", []
            barrier = state.barriers.setdefault(
                (generation, name), BarrierInfo()
            )
            barrier.arrived.add(worker)
            if barrier.arrived >= set(state.members):
                barrier.released = True
                barrier.rejoin = bool(state.pending)
                return "released", []
            return "wait", []

        result = ProtocolExplorer(
            rules=_mutant(barrier_arrive=no_fence_check)
        ).explore(depth=8)
        trace = _one_violation(result, FENCE_NEVER_PATCH)
        assert trace == [
            "join w0i0", "join w1i0", "form quorum", "crash w0i0",
            "barrier w1i0 step0",
        ]

    def test_early_release_at_quorum_minus_one(self):
        def early_release(state, worker, name, generation):
            if generation != state.generation or worker not in state.members:
                return "stale", []
            if state.fenced:
                return "fenced", []
            barrier = state.barriers.setdefault(
                (generation, name), BarrierInfo()
            )
            barrier.arrived.add(worker)
            if len(barrier.arrived) >= len(state.members) - 1:
                barrier.released = True
                barrier.rejoin = bool(state.pending)
                return "released", []
            return "wait", []

        result = ProtocolExplorer(
            rules=_mutant(barrier_arrive=early_release)
        ).explore(depth=8)
        trace = _one_violation(result, BARRIER_RELEASE_FULL)
        assert len(trace) == 4  # join, join, form, first barrier arrival

    def test_stale_generation_check_dropped(self):
        def zombie_barriers(state, worker, name, generation):
            # Mutation: arrivals from old generations are accepted into
            # their own (generation, name) barrier and may release it.
            if state.fenced and generation == state.generation:
                return "fenced", []
            barrier = state.barriers.setdefault(
                (generation, name), BarrierInfo()
            )
            barrier.arrived.add(worker)
            world = max(1, len(state.members))
            if len(barrier.arrived) >= world:
                barrier.released = True
                barrier.rejoin = bool(state.pending)
                return "released", []
            return "wait", []

        config = ProtocolConfig(
            world_size=2, steps=1, max_crashes=0, max_respawns=0,
            max_expiries=1,
        )
        result = ProtocolExplorer(
            config=config, rules=_mutant(barrier_arrive=zombie_barriers)
        ).explore(depth=11)
        # The minimal zombie: w0 is expired (fencing generation 1), w1
        # re-forms generation 2 alone, then the partitioned w0 arrives
        # at its generation-1 barrier and the mutant releases it.
        trace = _one_violation(result, NO_SPLIT_BRAIN)
        assert trace == [
            "join w0i0", "grace elapses", "form grace", "expire w0i0",
            "join w1i0", "grace elapses", "form grace",
            "barrier w0i0 step0",
        ]

    def test_form_without_generation_advance(self):
        def stuck_generation(state, now):
            events = R.form(state, now)
            state.generation -= 1  # undo the bump: patch, don't advance
            return events

        result = ProtocolExplorer(
            rules=_mutant(form=stuck_generation)
        ).explore(depth=6)
        trace = _one_violation(result, GENERATION_MONOTONIC)
        assert trace[-1].startswith("form")

    def test_form_with_colliding_ranks(self):
        def all_rank_zero(state, now):
            state.generation += 1
            state.fenced = False
            state.fence_reason = None
            state.members = {
                worker: MemberInfo(
                    worker, info["slot"], info["incarnation"], 0,
                )
                for worker, info in state.pending.items()
            }
            state.pending = {}
            return [(R.EVENT_GENERATION, {
                "world": len(state.members),
                "members": {w: m.rank for w, m in state.members.items()},
            })]

        result = ProtocolExplorer(
            rules=_mutant(form=all_rank_zero)
        ).explore(depth=6)
        trace = _one_violation(result, UNIQUE_RANK_PER_SLOT)
        assert trace == ["join w0i0", "join w1i0", "form quorum"]

    def test_respawn_without_incarnation_bump(self):
        result = ProtocolExplorer(
            rules=_mutant(next_incarnation=lambda incarnation: incarnation)
        ).explore(depth=8)
        trace = _one_violation(result, INCARNATION_BUMP)
        assert any(event.startswith("crash") for event in trace)
        assert trace[-1].startswith("form")

    def test_complete_with_one_straggler(self):
        def any_done(state, worker):
            member = state.members.get(worker)
            if member is not None:
                member.done = True
            if (
                not state.fenced and state.members and not state.complete
                and any(m.done for m in state.members.values())
            ):
                state.complete = True
                return True, [(R.EVENT_COMPLETE,
                               {"world": len(state.members)})]
            return state.complete, []

        config = ProtocolConfig(
            world_size=2, steps=1, max_crashes=0, max_respawns=0,
            max_expiries=0,
        )
        result = ProtocolExplorer(
            config=config, rules=_mutant(done=any_done)
        ).explore(depth=8)
        trace = _one_violation(result, COMPLETE_IMPLIES_DONE)
        assert trace == [
            "join w0i0", "join w1i0", "form quorum",
            "barrier w0i0 step0", "barrier w1i0 step0",
            "resolve w0i0 step0", "done w0i0",
        ]

    def test_eviction_without_fence_deadlocks_joiners(self):
        def no_fence_disconnect(state, worker, now):
            # Mutation: a lost worker is silently dropped; the surviving
            # generation is never fenced, so pending joiners starve.
            state.pending.pop(worker, None)
            member = state.members.pop(worker, None)
            if member is None:
                return []
            state.evictions += 1
            return [(R.EVENT_EVICTED,
                     {"worker": worker, "reason": "control connection lost"})]

        config = ProtocolConfig(
            world_size=2, steps=2, max_crashes=1, max_respawns=0,
            max_expiries=0,
        )
        result = ProtocolExplorer(
            config=config, rules=_mutant(disconnect=no_fence_disconnect)
        ).explore(depth=8)
        trace = _one_violation(result, RENDEZVOUS_CONVERGENCE)
        assert trace == [
            "join w0i0", "grace elapses", "form grace", "crash w0i0",
            "join w1i0",
        ]


class TestFenceResetsGrace:
    """Regression: the PR-6 fence-resets-grace-clock behavior is both
    reachable and invariant-clean in the model."""

    CONFIG = ProtocolConfig(
        world_size=3, slots=2, min_world=1, steps=1,
        max_crashes=1, max_respawns=1, max_expiries=0,
    )

    def test_second_generation_needs_a_second_grace(self):
        explorer = ProtocolExplorer(config=self.CONFIG)
        # Reachable: a crash fences generation 1, the grace clock
        # restarts, elapses again, and generation 2 forms.
        trace = explorer.find(
            lambda system, _t: (
                system.graces >= 2 and system.coord.generation == 2
            ),
            depth=12,
        )
        assert trace == [
            "join w0i0", "grace elapses", "form grace", "crash w0i0",
            "join w1i0", "grace elapses", "form grace",
        ]
        # Unreachable with a single grace: the fence reset the clock, so
        # generation 2 REQUIRES a second grace elapse. If the fence ever
        # stops restarting the window this probe starts succeeding.
        assert explorer.find(
            lambda system, _t: (
                system.graces == 1 and system.coord.generation == 2
            ),
            depth=12,
        ) is None

    def test_grace_path_formations_stay_invariant_clean(self):
        result = ProtocolExplorer(config=self.CONFIG).explore(depth=10)
        assert result.ok


class TestRulesTableIsShared:
    """The anti-drift property the tentpole is built on."""

    @staticmethod
    def _coordinator(tmp_path, rules=None):
        from repro.cluster.coordinator import Coordinator
        from repro.cluster.protocol import ClusterConfig

        return Coordinator(
            ClusterConfig(world_size=1, steps=1),
            workdir=str(tmp_path), rules=rules,
        )

    def test_coordinator_dispatches_the_same_table(self, tmp_path):
        coordinator = self._coordinator(tmp_path)
        try:
            assert coordinator.rules.keys() == RULES.keys()
            for name, rule in RULES.items():
                assert coordinator.rules[name] is rule
        finally:
            coordinator._events_file.close()

    def test_injected_mutant_table_reaches_the_coordinator(self, tmp_path):
        calls = []

        def spy_heartbeat(state, worker, generation, now, step=None):
            calls.append(worker)
            return R.heartbeat(state, worker, generation, now, step=step)

        coordinator = self._coordinator(
            tmp_path, rules=_mutant(heartbeat=spy_heartbeat)
        )
        try:
            reply = coordinator._op_heartbeat("w0i0", {"generation": 0})
        finally:
            coordinator._events_file.close()
        assert calls == ["w0i0"]
        assert reply["fenced"] is True  # not a member of any generation

    def test_mutations_must_target_dispatched_entries(self):
        """Composition caveat, documented by test: rules compose by
        direct module calls (disconnect -> evict -> fence), so a table
        override of a *callee* never fires through a dispatched caller.
        This is why every mutant above patches the dispatched entry."""
        def no_fence_evict(state, worker, reason, now):
            member = state.members.pop(worker, None)
            if member is None:
                return []
            state.evictions += 1
            return [(R.EVENT_EVICTED,
                     {"worker": worker, "reason": reason})]

        config = ProtocolConfig(
            world_size=2, steps=2, max_crashes=1, max_respawns=0,
            max_expiries=0,
        )
        # A crash dispatches rules["disconnect"], which calls the
        # module-level evict() — the table override is invisible.
        result = ProtocolExplorer(
            config=config, rules=_mutant(evict=no_fence_evict)
        ).explore(depth=8)
        assert result.ok


@pytest.mark.parametrize("depth", [0, 1, 2])
def test_tiny_depths_never_violate(depth):
    result = explore_protocol(depth=depth)
    assert result.ok
    assert result.stats["deepest_trace"] <= depth
