"""Experiment harnesses: structure and paper-shape assertions.

These run the same code the benchmarks drive, at reduced scale where the
full configuration is slow, and assert the qualitative results the paper
reports (who wins, roughly by how much, where crossovers fall).
"""

import pytest

from repro.experiments import (
    ablation_allocators,
    ablation_scheduler,
    figure8,
    figure9,
    idle_analysis,
    table1,
    table2,
    table6,
)
from repro.experiments.common import Report


class TestReportRendering:
    def test_render_aligns_columns(self):
        report = Report("T", ["a", "bb"], notes=["n"])
        report.add_row("xxx", 1)
        text = report.render()
        assert "T" in text and "xxx" in text and "note: n" in text


class TestTable1:
    def test_model_totals_match_paper(self):
        result = table1.run()
        assert result.model_params_gib == pytest.approx(648, rel=0.005)
        assert result.model_acts_gib == pytest.approx(162, rel=0.005)
        assert result.model_optims_gib == pytest.approx(1944, rel=0.005)

    def test_report_mentions_all_rows(self):
        text = table1.format_report(table1.run())
        for token in ("Params", "Acts", "Optims", "648"):
            assert token in text


class TestTable2:
    def test_large_entries_match(self):
        dist = table2.run()
        assert table2.large_entries(dist) == {
            s: c for s, c in table2.PAPER_DISTRIBUTION.items() if s >= 1.0
        }


class TestFigure8:
    def test_superlinear_scaling(self):
        result = figure8.run(server_counts=(32, 96))
        speedup = result.speedup(256, 768)
        assert speedup >= 3.0  # paper: 3.12x for 3x GPUs
        assert result.scaling_exponent >= 1.0


class TestFigure9:
    def test_near_linear_but_below_gpt(self):
        result = figure9.run(server_counts=(4, 16))
        assert 0.9 <= result.scaling_exponent <= 1.02
        # Model grows with the cluster at 9 experts/GPU/layer.
        assert result.points[1].num_experts == 4 * result.points[0].num_experts


class TestTable6:
    def test_lockfree_speedup_shape(self):
        rows = table6.run_throughput()
        by_key = {(r.label, r.lock_free): r for r in rows}
        sync = by_key[("10T", False)]
        lockfree = by_key[("10T", True)]
        assert 2.0 <= lockfree.samples_per_second / sync.samples_per_second <= 6.0
        assert lockfree.staleness > 1.0
        # Near-linear 1T -> 10T sync scaling (9x GPUs).
        ratio = sync.samples_per_second / by_key[("1T", False)].samples_per_second
        assert 7.0 <= ratio <= 11.0

    def test_convergence_parity(self):
        rows = table6.run_convergence(num_batches=400, lr=2e-3)
        by_mode = {r.mode: r for r in rows}
        sync, lockfree = by_mode["synchronous"], by_mode["lock-free"]
        # Both learn...
        assert sync.final_loss < sync.first_loss
        assert lockfree.final_loss < lockfree.first_loss
        # ...and the staleness penalty is small (paper: ~0.9%).
        gap = abs(lockfree.final_loss - sync.final_loss) / sync.final_loss
        assert gap < 0.10


class TestIdleAnalysis:
    def test_ssd_idle_dwarfs_cpu_only(self):
        result = idle_analysis.run()
        assert result.cpu_only_idle < 0.30
        assert result.ssd_idle > 0.50
        assert result.lockfree_idle < result.ssd_idle


class TestAllocatorAblation:
    def test_page_allocator_has_lowest_overhead(self):
        result = ablation_allocators.run()
        page = result.overhead("page-4MiB")
        assert page <= result.overhead("caching") + 1e-9
        assert page <= result.overhead("chunk") + 1e-9
        assert page < 1.15
        for stats in result.stats.values():
            assert stats.failed_at is None


class TestSchedulerAblation:
    def test_optimizations_never_hurt(self):
        result = ablation_scheduler.run(model_name="gpt3-13b", micro_batch=2)
        assert result.full >= result.no_phase2 - 1e-9
        assert result.full >= result.no_cache - 1e-9
        assert result.full >= result.neither - 1e-9

    def test_phase2_matters_somewhere(self):
        result = ablation_scheduler.run(model_name="gpt3-13b", micro_batch=2)
        assert result.phase2_gain() > 0.0
