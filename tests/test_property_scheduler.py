"""Property-based tests: Algorithm 1's schedules are always executable.

The strongest invariant in the system: for ANY model shape and ANY GPU
budget under which Phase 1 succeeds, the emitted schedule must replay on
physical page pools without running out of memory and without gathering a
layer whose pages are absent. This is the end-to-end contract between the
planner's byte arithmetic and the memory subsystem.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OutOfMemoryError
from repro.hardware.cluster import a100_cluster
from repro.models import get_model
from repro.runtime import ScheduleExecutor
from repro.scheduler.cache import CachePlan
from repro.scheduler.lifetime import LifetimeScheduler
from repro.scheduler.memory_model import MemoryModel
from repro.scheduler.pages import build_layer_pages
from repro.scheduler.tasks import Operation
from repro.scheduler.unified import IterationPlan, UnifiedScheduler
from repro.tracer import Tracer
from repro.units import GiB, MiB


@settings(max_examples=25, deadline=None)
@given(
    num_layers=st.integers(min_value=2, max_value=20),
    batch=st.integers(min_value=1, max_value=4),
    budget_gib=st.floats(min_value=0.7, max_value=4.0),
    num_ranks=st.sampled_from([1, 2, 8]),
)
def test_any_feasible_schedule_replays_within_budget(
    num_layers, batch, budget_gib, num_ranks
):
    cluster = a100_cluster(1)
    scheduler = UnifiedScheduler(cluster)
    config = get_model("gpt3-1.7b").with_layers(num_layers)
    trace = Tracer(scheduler.cost).trace(config.build(batch, 512))
    pages = build_layer_pages(trace, num_ranks, scheduler.page_bytes)
    budget = int(budget_gib * GiB)
    memory = MemoryModel(trace, budget, num_ranks=num_ranks)
    try:
        schedule = LifetimeScheduler(trace, pages, memory).schedule()
    except OutOfMemoryError:
        # The planner declared the configuration infeasible — fine.
        return
    plan = IterationPlan(
        trace=trace, schedule=schedule, cache=CachePlan(frozenset(), 0, {}),
        layer_pages=pages, num_ranks=num_ranks, micro_batch=batch,
    )
    with ScheduleExecutor(plan, budget, scheduler.page_bytes) as executor:
        report = executor.run()  # must not raise

    # Structural invariants of the emitted schedule.
    assert report.computes_executed == 2 * trace.num_layers
    assert report.gathers_executed == 2 * trace.num_layers
    moves = schedule.of(Operation.MOVE_TO_GPU)
    evictions = schedule.of(Operation.MOVE_TO_CPU)
    # Every eviction is matched by a later re-staging of the same page.
    staged = {}
    for task in schedule.tasks:
        key = (task.layer_index, task.page_id)
        if task.operation == Operation.MOVE_TO_GPU:
            staged[key] = staged.get(key, 0) + 1
        elif task.operation == Operation.MOVE_TO_CPU:
            staged[key] = staged.get(key, 0) - 1
    bwd = {layer.layer_index: layer.bwd_id for layer in trace.layers}
    assert all(count >= 0 for count in staged.values())
    # Gathers never trigger after their compute op.
    for task in schedule.of(Operation.ALL_GATHER):
        assert task.trigger_id <= task.op_id
