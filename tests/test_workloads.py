"""Workload trace generation from model specs."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.bfc import BfcAllocator
from repro.memory.fragmentation import replay
from repro.models import get_model
from repro.units import GiB
from repro.workloads import WorkloadOptions, peak_live_bytes, training_trace


@pytest.fixture(scope="module")
def model():
    return get_model("gpt3-1.7b").with_layers(2).build(1, 128)


class TestTrainingTrace:
    def test_trace_balances_allocs_and_frees(self, model):
        trace = training_trace(model, WorkloadOptions(num_iterations=2))
        allocs = sum(1 for e in trace if e.op == "alloc")
        frees = sum(1 for e in trace if e.op == "free")
        assert allocs == frees  # every allocation is released per iteration

    def test_recompute_lowers_peak(self, model):
        with_rc = training_trace(model, WorkloadOptions(use_recompute=True))
        without = training_trace(model, WorkloadOptions(use_recompute=False))
        assert peak_live_bytes(with_rc) < peak_live_bytes(without)

    def test_sharding_shrinks_staging(self, model):
        one = training_trace(
            model, WorkloadOptions(num_ranks=1, use_recompute=True)
        )
        eight = training_trace(
            model, WorkloadOptions(num_ranks=8, use_recompute=True)
        )
        # Optimizer staging is per-shard: the 8-rank trace's largest
        # staging allocation is ~1/8 of the 1-rank one.
        largest_stage = lambda trace: max(e.nbytes for e in trace if e.op == "alloc")
        assert largest_stage(eight) <= largest_stage(one)

    def test_no_staging_option(self, model):
        trace = training_trace(
            model, WorkloadOptions(offload_staging=False, num_iterations=1)
        )
        optim_bytes = model.layers[0].optims_bytes // len(model.layers[0].params)
        # Without staging, no FP32-sized (x3) allocations appear.
        big = max(e.nbytes for e in trace if e.op == "alloc")
        assert big < model.layers[0].optims_bytes

    def test_replayable_through_allocators(self, model):
        trace = training_trace(model, WorkloadOptions(num_iterations=2))
        stats = replay(BfcAllocator(8 * GiB), trace)
        assert stats.failed_at is None
        assert stats.peak_live_bytes == peak_live_bytes(trace)
        assert stats.overhead_ratio >= 1.0

    def test_invalid_options_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadOptions(num_iterations=0)
        with pytest.raises(ConfigurationError):
            WorkloadOptions(num_ranks=0)

    def test_iterations_scale_trace_linearly(self, model):
        one = training_trace(model, WorkloadOptions(num_iterations=1))
        three = training_trace(model, WorkloadOptions(num_iterations=3))
        assert len(three) == 3 * len(one)
