"""Functional ZeRO-3: sharded parameters gathered around computation."""

import numpy as np
import pytest

from repro.dp import Zero3Engine, ZeroDataParallelTrainer
from repro.errors import ShardingError
from repro.nn import TinyTransformerLM, lm_synthetic_batches


def tiny(seed=0):
    return TinyTransformerLM(
        vocab_size=16, d_model=16, d_ffn=32, num_heads=2, num_layers=2,
        max_seq=8, seed=seed,
    )


class TestZero3Semantics:
    def test_parameters_dropped_outside_compute(self):
        """ZeRO-3's invariant: full parameters exist only around use."""
        engine = Zero3Engine(tiny(seed=1), num_ranks=4)
        assert not engine.parameters_materialized
        for param in engine.model.parameters():
            assert not param.data.any()
        batch = next(lm_synthetic_batches(16, 8, 4, 1, seed=2))
        engine.train_step(batch)
        assert not engine.parameters_materialized
        for param in engine.model.parameters():
            assert not param.data.any()

    def test_full_parameter_roundtrip(self):
        model = tiny(seed=3)
        originals = [p.data.copy() for p in model.parameters()]
        engine = Zero3Engine(model, num_ranks=4)
        for index, original in enumerate(originals):
            np.testing.assert_array_equal(engine.full_parameter(index), original)

    def test_rank_count_invariance(self):
        """Training is invariant to the shard count (up to fp32
        summation order in the micro-batch gradient accumulation)."""
        batches = list(lm_synthetic_batches(16, 8, 8, 5, seed=4))
        losses = {}
        finals = {}
        for ranks in (1, 2, 4):
            engine = Zero3Engine(tiny(seed=5), num_ranks=ranks, lr=1e-3)
            losses[ranks] = [engine.train_step(b) for b in batches]
            finals[ranks] = [
                engine.full_parameter(i)
                for i in range(len(engine.model.parameters()))
            ]
        for ranks in (2, 4):
            np.testing.assert_allclose(losses[1], losses[ranks], atol=1e-6)
            for a, b in zip(finals[1], finals[ranks]):
                np.testing.assert_allclose(a, b, atol=1e-5)

    def test_matches_zero1_replica_trainer(self):
        """ZeRO-3 and the replica (ZeRO-1) trainer optimize identically."""
        batches = list(lm_synthetic_batches(16, 8, 8, 5, seed=6))
        z3 = Zero3Engine(tiny(seed=7), num_ranks=2, lr=1e-3)
        z1 = ZeroDataParallelTrainer(lambda: tiny(seed=7), num_ranks=2, lr=1e-3)
        for batch in batches:
            z3.train_step(batch)
            z1.train_step(batch)
        for index, param in enumerate(z1._params[0]):
            np.testing.assert_allclose(
                z3.full_parameter(index), param.data, atol=1e-6
            )

    def test_learns(self):
        engine = Zero3Engine(tiny(seed=8), num_ranks=2, lr=2e-3)
        losses = [
            engine.train_step(batch)
            for batch in lm_synthetic_batches(16, 8, 8, 60, seed=9)
        ]
        assert np.mean(losses[-6:]) < np.mean(losses[:6]) - 0.2

    def test_evaluate_leaves_parameters_dropped(self):
        engine = Zero3Engine(tiny(seed=8), num_ranks=2)
        batch = next(lm_synthetic_batches(16, 8, 4, 1, seed=9))
        loss = engine.evaluate(batch)
        assert loss > 0
        assert not engine.parameters_materialized


class TestZero3Memory:
    def test_resident_state_shrinks_with_ranks(self):
        """ZeRO's 1/N claim: per-rank persistent state bytes."""
        one = Zero3Engine(tiny(seed=10), num_ranks=1).resident_state_bytes(0)
        four = Zero3Engine(tiny(seed=10), num_ranks=4).resident_state_bytes(0)
        assert four <= one / 4 + 4096  # padding slack

    def test_gather_traffic_accounted(self):
        engine = Zero3Engine(tiny(seed=11), num_ranks=2)
        batch = next(lm_synthetic_batches(16, 8, 4, 1, seed=12))
        engine.train_step(batch)
        param_bytes = sum(p.data.nbytes for p in engine.model.parameters())
        # Two micro-batches gather the full parameters once each.
        assert engine.gather_bytes == 2 * param_bytes
        assert engine.reduce_bytes == param_bytes

    def test_uneven_batch_rejected(self):
        engine = Zero3Engine(tiny(seed=13), num_ranks=3)
        batch = next(lm_synthetic_batches(16, 8, 4, 1, seed=14))
        with pytest.raises(ShardingError):
            engine.train_step(batch)
