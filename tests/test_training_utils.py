"""LR schedules, gradient clipping, metrics recorder, cluster config I/O."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.config_io import (
    cluster_from_dict,
    cluster_to_dict,
    load_cluster,
    save_cluster,
)
from repro.hardware.cluster import a100_cluster
from repro.metrics import MetricsRecorder
from repro.nn import Adam, Tensor
from repro.nn.schedule import ConstantLR, WarmupCosineLR, WarmupLinearLR, clip_grad_norm
from repro.units import GB, GiB


class TestClipGradNorm:
    def _params(self, *grads):
        params = []
        for grad in grads:
            p = Tensor(np.zeros_like(grad), requires_grad=True)
            p.grad = np.asarray(grad, dtype=np.float32)
            params.append(p)
        return params

    def test_returns_preclip_norm(self):
        params = self._params([3.0], [4.0])
        norm = clip_grad_norm(params, max_norm=100.0)
        assert norm == pytest.approx(5.0)
        # Under the limit: untouched.
        np.testing.assert_allclose(params[0].grad, [3.0])

    def test_scales_down_to_max_norm(self):
        params = self._params([3.0], [4.0])
        clip_grad_norm(params, max_norm=1.0)
        total = sum(float((p.grad ** 2).sum()) for p in params)
        assert np.sqrt(total) == pytest.approx(1.0, rel=1e-5)

    def test_skips_missing_grads(self):
        p = Tensor(np.zeros(2), requires_grad=True)
        assert clip_grad_norm([p], max_norm=1.0) == 0.0

    def test_invalid_max_norm(self):
        with pytest.raises(ConfigurationError):
            clip_grad_norm([], max_norm=0.0)


class TestSchedules:
    def test_constant(self):
        schedule = ConstantLR(0.1)
        assert schedule.lr_at(0) == schedule.lr_at(1000) == 0.1

    def test_warmup_cosine_shape(self):
        schedule = WarmupCosineLR(1.0, warmup_steps=10, total_steps=110, min_lr=0.1)
        assert schedule.lr_at(0) == pytest.approx(0.1, rel=0.2)  # ramping
        assert schedule.lr_at(9) == pytest.approx(1.0)           # warmup end
        assert schedule.lr_at(60) < 1.0                          # decaying
        assert schedule.lr_at(10_000) == pytest.approx(0.1)      # floor

    def test_warmup_is_monotone(self):
        schedule = WarmupCosineLR(1.0, warmup_steps=20, total_steps=100)
        rates = [schedule.lr_at(s) for s in range(20)]
        assert rates == sorted(rates)

    def test_warmup_linear_hits_zero(self):
        schedule = WarmupLinearLR(0.5, warmup_steps=5, total_steps=50)
        assert schedule.lr_at(50) == 0.0
        assert schedule.lr_at(4) == pytest.approx(0.5)

    def test_apply_sets_optimizer_lr(self):
        p = Tensor(np.zeros(1), requires_grad=True)
        optimizer = Adam([p], lr=9.0)
        schedule = ConstantLR(0.25)
        assert schedule.apply(optimizer, step=3) == 0.25
        assert optimizer.lr == 0.25

    def test_invalid_configs(self):
        with pytest.raises(ConfigurationError):
            WarmupCosineLR(1.0, warmup_steps=10, total_steps=10)
        with pytest.raises(ConfigurationError):
            WarmupCosineLR(1.0, warmup_steps=1, total_steps=5, min_lr=2.0)
        with pytest.raises(ConfigurationError):
            ConstantLR(0.0)


class TestMetricsRecorder:
    def test_records_and_summarizes(self):
        recorder = MetricsRecorder()
        for i in range(5):
            recorder.start_step()
            recorder.end_step(loss=5.0 - i, samples=8, lr=0.1)
        assert recorder.num_steps == 5
        assert recorder.throughput() > 0
        assert recorder.mean_loss(tail=1) == pytest.approx(1.0)
        summary = recorder.summary()
        assert summary["steps"] == 5
        assert summary["final_loss"] == pytest.approx(1.0)

    def test_end_without_start_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRecorder().end_step(loss=1.0, samples=1)

    def test_engine_memory_snapshot(self):
        from repro.engine import AngelConfig, initialize
        from repro.nn import MixedPrecisionAdam, TinyTransformerLM, lm_synthetic_batches
        from repro.units import KiB, MiB

        model = TinyTransformerLM(
            vocab_size=16, d_model=16, d_ffn=32, num_heads=2, num_layers=2,
            max_seq=8,
        )
        opt = MixedPrecisionAdam(model.parameters())
        with initialize(model, opt, AngelConfig(
            gpu_memory_bytes=2 * MiB, cpu_memory_bytes=16 * MiB,
            page_bytes=32 * KiB,
        )) as engine:
            recorder = MetricsRecorder()
            batch = next(lm_synthetic_batches(16, 8, 4, 1, seed=1))
            recorder.start_step()
            loss = engine(batch)
            engine.backward(loss)
            engine.step()
            record = recorder.end_step(loss.item(), samples=4, engine=engine)
        assert record.gpu_pages > 0
        assert recorder.peak_pages("gpu") == record.gpu_pages

    def test_csv_export(self, tmp_path):
        recorder = MetricsRecorder()
        recorder.start_step()
        recorder.end_step(loss=2.0, samples=4, lr=0.3, grad_norm=1.5)
        path = tmp_path / "metrics.csv"
        recorder.to_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("step,loss,samples")
        assert lines[1].split(",")[1] == "2.0"


class TestClusterConfigIO:
    def test_roundtrip_default_cluster(self, tmp_path):
        cluster = a100_cluster(3)
        path = str(tmp_path / "cluster.json")
        save_cluster(cluster, path)
        loaded = load_cluster(path)
        assert loaded.num_servers == 3
        assert loaded.num_gpus == 24
        assert loaded.server.gpus[0].memory_bytes == cluster.server.gpus[0].memory_bytes
        assert loaded.server.pcie.bandwidth == cluster.server.pcie.bandwidth
        assert loaded.server.ssd.memory_bytes == cluster.server.ssd.memory_bytes

    def test_custom_fields(self):
        cluster = cluster_from_dict({
            "num_servers": 2,
            "server": {
                "num_gpus": 4,
                "gpu_memory_gib": 80,
                "nvlink_gbps": 300,
                "ssd_tb": None,
            },
        })
        assert cluster.num_gpus == 8
        assert cluster.server.gpus[0].memory_bytes == 80 * GiB
        assert cluster.server.nvlink.bandwidth == 300 * GB
        assert cluster.server.ssd is None

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            cluster_from_dict({"server": {"quantum_links": 5}})

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(ConfigurationError):
            load_cluster(str(path))

    def test_serialized_dict_is_json_safe(self):
        json.dumps(cluster_to_dict(a100_cluster(1)))

    def test_cli_accepts_cluster_file(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "c.json")
        save_cluster(a100_cluster(2), path)
        assert main(["simulate", "--model", "gpt3-1.7b", "--batch", "2",
                     "--cluster", path]) == 0
        assert "16 GPUs" in capsys.readouterr().out
