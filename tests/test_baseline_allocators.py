"""Baseline allocators: BFC, caching (PyTorch-like), chunk (PatrickStar)."""

import pytest

from repro.errors import AllocationError, OutOfMemoryError
from repro.memory.bfc import BfcAllocator
from repro.memory.caching import CachingAllocator
from repro.memory.chunk import ChunkAllocator
from repro.memory.fragmentation import TraceEvent, replay
from repro.units import KiB, MiB


class TestBfc:
    def test_best_fit_picks_smallest_block(self):
        bfc = BfcAllocator(10 * KiB, alignment=256)
        a = bfc.alloc(1, 4 * KiB)
        b = bfc.alloc(2, 2 * KiB)
        bfc.alloc(3, 4 * KiB)
        bfc.free(1)  # hole of 4K at offset 0
        bfc.free(2)  # hole of 2K after it -> coalesce to 6K at 0
        # A 1K request best-fits into the coalesced 6K block head.
        offset = bfc.alloc(4, 1 * KiB)
        assert offset == 0

    def test_coalesce_both_neighbours(self):
        bfc = BfcAllocator(3 * KiB, alignment=256)
        bfc.alloc(1, KiB)
        bfc.alloc(2, KiB)
        bfc.alloc(3, KiB)
        bfc.free(1)
        bfc.free(3)
        bfc.free(2)  # should merge all three into one block
        assert bfc.largest_free_block == 3 * KiB
        assert bfc.external_fragmentation() == 0.0

    def test_external_fragmentation_metric(self):
        bfc = BfcAllocator(4 * KiB, alignment=256)
        ids = [bfc.alloc(i, KiB) for i in range(4)]
        bfc.free(0)
        bfc.free(2)  # two non-adjacent 1K holes
        assert bfc.external_fragmentation() == pytest.approx(0.5)

    def test_oom_when_no_block_fits(self):
        bfc = BfcAllocator(4 * KiB, alignment=256)
        bfc.alloc(1, KiB)
        bfc.alloc(2, KiB)
        bfc.alloc(3, KiB)
        bfc.free(2)  # 1K hole + 1K tail, but not contiguous
        with pytest.raises(OutOfMemoryError):
            bfc.alloc(4, 2 * KiB)

    def test_alignment_rounding(self):
        bfc = BfcAllocator(KiB, alignment=256)
        bfc.alloc(1, 100)
        assert bfc.reserved_bytes == 256

    def test_double_alloc_same_id_rejected(self):
        bfc = BfcAllocator(KiB)
        bfc.alloc(1, 100)
        with pytest.raises(AllocationError):
            bfc.alloc(1, 100)

    def test_free_unknown_rejected(self):
        with pytest.raises(AllocationError):
            BfcAllocator(KiB).free(9)


class TestCaching:
    def test_reuses_cached_block_of_same_size(self):
        caching = CachingAllocator(MiB)
        caching.alloc(1, 100 * KiB)
        caching.free(1)
        caching.alloc(2, 100 * KiB)
        assert caching.reserved_bytes == 100 * KiB + (100 * KiB % 512)

    def test_small_block_handed_out_whole(self):
        """Sub-split-threshold reuse wastes the block remainder."""
        caching = CachingAllocator(MiB)
        caching.alloc(1, 64 * KiB)
        caching.free(1)
        caching.alloc(2, KiB)  # gets the whole 64K block
        assert caching.reserved_bytes == 64 * KiB

    def test_large_block_splits(self):
        caching = CachingAllocator(16 * MiB)
        caching.alloc(1, 8 * MiB)
        caching.free(1)
        caching.alloc(2, 2 * MiB)
        # Remainder returns to cache: still 8 MiB reserved, 6 MiB cached.
        assert caching.reserved_bytes == 8 * MiB
        assert caching.cached_bytes == 6 * MiB

    def test_cache_flush_on_pressure(self):
        """cudaMalloc-failure path: cache is dropped and retried."""
        caching = CachingAllocator(MiB)
        caching.alloc(1, 600 * KiB)
        caching.free(1)
        caching.alloc(2, 800 * KiB)  # doesn't fit alongside the cache
        assert caching.reserved_bytes == 800 * KiB
        assert caching.cached_bytes == 0

    def test_oom_beyond_capacity(self):
        caching = CachingAllocator(MiB)
        with pytest.raises(OutOfMemoryError):
            caching.alloc(1, 2 * MiB)

    def test_fragmentation_grows_with_mixed_sizes(self):
        caching = CachingAllocator(64 * MiB)
        for i, size in enumerate([3 * KiB, 700 * KiB, 13 * KiB, 300 * KiB]):
            caching.alloc(i, size)
        for i in range(4):
            caching.free(i)
        assert caching.fragmentation() == pytest.approx(1.0)


class TestChunk:
    def test_tensor_larger_than_chunk_rejected(self):
        chunk = ChunkAllocator(8 * MiB, chunk_bytes=MiB)
        with pytest.raises(AllocationError):
            chunk.alloc(1, 2 * MiB)

    def test_append_only_packing(self):
        chunk = ChunkAllocator(8 * MiB, chunk_bytes=MiB)
        chunk.alloc(1, 400 * KiB)
        chunk.alloc(2, 400 * KiB)
        assert chunk.reserved_bytes == MiB  # both in one chunk
        chunk.alloc(3, 400 * KiB)  # doesn't fit the tail -> new chunk
        assert chunk.reserved_bytes == 2 * MiB

    def test_freed_space_unavailable_until_chunk_empties(self):
        """The intra-chunk fragmentation the paper criticizes."""
        chunk = ChunkAllocator(2 * MiB, chunk_bytes=MiB)
        chunk.alloc(1, 600 * KiB)
        chunk.alloc(2, 300 * KiB)
        chunk.free(1)  # 600K freed but NOT reusable
        assert chunk.intra_chunk_fragmentation() == pytest.approx(
            1 - 300 / 1024, rel=1e-3
        )
        chunk.alloc(3, 600 * KiB)  # must open the second chunk
        assert chunk.reserved_bytes == 2 * MiB

    def test_empty_chunk_recycles(self):
        chunk = ChunkAllocator(2 * MiB, chunk_bytes=MiB)
        chunk.alloc(1, 900 * KiB)
        chunk.free(1)
        chunk.alloc(2, 900 * KiB)
        assert chunk.reserved_bytes == MiB

    def test_oom_at_chunk_budget(self):
        chunk = ChunkAllocator(MiB, chunk_bytes=MiB)
        chunk.alloc(1, 900 * KiB)
        with pytest.raises(OutOfMemoryError):
            chunk.alloc(2, 900 * KiB)


class TestReplayHarness:
    def test_replay_records_peaks(self):
        bfc = BfcAllocator(MiB)
        trace = [
            TraceEvent.alloc(1, 100 * KiB),
            TraceEvent.alloc(2, 200 * KiB),
            TraceEvent.free(1),
            TraceEvent.alloc(3, 50 * KiB),
        ]
        stats = replay(bfc, trace)
        assert stats.peak_live_bytes == 300 * KiB
        assert stats.failed_at is None
        assert stats.overhead_ratio >= 1.0

    def test_replay_stops_at_first_failure(self):
        bfc = BfcAllocator(100 * KiB)
        trace = [
            TraceEvent.alloc(1, 60 * KiB),
            TraceEvent.alloc(2, 60 * KiB),
            TraceEvent.alloc(3, 10 * KiB),
        ]
        stats = replay(bfc, trace)
        assert stats.failed_at == 1
        assert stats.events_replayed == 1
