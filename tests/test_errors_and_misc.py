"""Error hierarchy, auto-batch simulation, MoE engine details."""

import pytest

from repro import errors
from repro.engine.moe import MoESimEngine
from repro.hardware.cluster import a100_cluster
from repro.models import get_model
from repro.models.moe import MoEConfig
from repro.scheduler.unified import UnifiedScheduler


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        subclasses = [
            errors.ConfigurationError,
            errors.OutOfMemoryError,
            errors.AllocationError,
            errors.PageStateError,
            errors.TensorStateError,
            errors.SchedulingError,
            errors.SimulationError,
            errors.CommunicationError,
            errors.ShardingError,
            errors.GradientError,
            errors.CheckpointError,
        ]
        for cls in subclasses:
            assert issubclass(cls, errors.ReproError)

    def test_oom_carries_accounting(self):
        err = errors.OutOfMemoryError("gpu0", requested_bytes=100, available_bytes=40)
        assert err.device == "gpu0"
        assert err.requested_bytes == 100
        assert err.available_bytes == 40
        assert "gpu0" in str(err) and "100" in str(err)

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.SchedulingError("nope")


class TestAutoBatch:
    def test_simulate_none_batch_uses_planner_maximum(self):
        from repro.engine.planner import CapacityPlanner

        cluster = a100_cluster(1)
        scheduler = UnifiedScheduler(cluster)
        config = get_model("gpt3-13b")
        result = scheduler.simulate(config, micro_batch=None)
        expected = CapacityPlanner(cluster, cost_model=scheduler.cost).max_micro_batch(
            config, "angel-ptm"
        )
        assert result.plan.micro_batch == expected

    def test_auto_batch_beats_batch_one(self):
        scheduler = UnifiedScheduler(a100_cluster(1))
        config = get_model("gpt3-13b")
        auto = scheduler.simulate(config, micro_batch=None)
        one = scheduler.simulate(config, micro_batch=1)
        assert auto.samples_per_second > one.samples_per_second


class TestMoEEngineDetails:
    def _engine(self, servers=8):
        return MoESimEngine(a100_cluster(servers))

    def test_ssd_slows_sync_iteration(self):
        moe = MoEConfig(d_model=1024, d_ffn=16384, num_experts=2304)
        engine = self._engine()
        plain = engine.simulate(moe, 16, micro_batch=8)
        with_ssd = engine.simulate(moe, 16, micro_batch=8, use_ssd=True)
        assert with_ssd.iteration_time > plain.iteration_time

    def test_lock_free_without_ssd_changes_little(self):
        """Without SSD the update path is short; lock-free gains less
        than it does with SSD (the paper's motivation is SSD-specific)."""
        moe = MoEConfig(d_model=1024, d_ffn=16384, num_experts=2304)
        engine = self._engine()
        sync_plain = engine.simulate(moe, 16, micro_batch=8)
        lf_plain = engine.simulate(moe, 16, micro_batch=8, lock_free=True)
        sync_ssd = engine.simulate(moe, 16, micro_batch=8, use_ssd=True)
        lf_ssd = engine.simulate(moe, 16, micro_batch=8, use_ssd=True, lock_free=True)
        gain_plain = lf_plain.samples_per_second / sync_plain.samples_per_second
        gain_ssd = lf_ssd.samples_per_second / sync_ssd.samples_per_second
        assert gain_ssd > gain_plain

    def test_total_params_scale_with_experts(self):
        small = MoEConfig(d_model=256, d_ffn=512, num_experts=64)
        large = MoEConfig(d_model=256, d_ffn=512, num_experts=128)
        engine = self._engine(servers=8)
        a = engine.simulate(small, 4, micro_batch=4)
        b = engine.simulate(large, 4, micro_batch=4)
        assert b.total_params > 1.9 * a.total_params

    def test_requires_positive_layers(self):
        from repro.errors import ConfigurationError

        moe = MoEConfig(d_model=64, d_ffn=128, num_experts=64)
        with pytest.raises(ConfigurationError):
            self._engine().simulate(moe, 0, micro_batch=1)
