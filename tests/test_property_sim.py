"""Property-based tests of simulator and collective-model invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.cluster import a100_cluster
from repro.sim import Simulator
from repro.zero import CollectiveModel
from repro.units import MiB


@settings(max_examples=60, deadline=None)
@given(
    durations=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1, max_size=30,
    ),
    stream_picks=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=30),
    dep_offsets=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=30),
)
def test_random_dags_respect_lower_bounds(durations, stream_picks, dep_offsets):
    """For any random DAG:

    - makespan >= busiest stream's total work,
    - makespan >= every dependency chain we can sample,
    - within one stream intervals never overlap.
    """
    n = min(len(durations), len(stream_picks), len(dep_offsets))
    sim = Simulator()
    tasks = []
    for i in range(n):
        deps = []
        offset = dep_offsets[i]
        if i - offset >= 0:
            deps.append(tasks[i - offset])
        tasks.append(
            sim.add_task(f"t{i}", sim.stream(f"s{stream_picks[i]}"), durations[i], deps=deps)
        )
    timeline = sim.run()

    per_stream = timeline.per_stream()
    for busy in per_stream.values():
        assert timeline.makespan >= busy - 1e-9

    # Chain lower bound: any dependency path's duration sum.
    ends = {iv.task: iv for iv in timeline.intervals}
    for i in range(n):
        offset = dep_offsets[i]
        if i - offset >= 0:
            parent, child = ends[f"t{i - offset}"], ends[f"t{i}"]
            assert child.start >= parent.end - 1e-9

    # No overlap within a stream.
    by_stream = {}
    for iv in timeline.intervals:
        by_stream.setdefault(iv.stream, []).append(iv)
    for intervals in by_stream.values():
        intervals.sort(key=lambda iv: iv.start)
        for a, b in zip(intervals, intervals[1:]):
            assert a.end <= b.start + 1e-9


@settings(max_examples=60, deadline=None)
@given(
    nbytes=st.integers(min_value=0, max_value=1024 * MiB),
    ranks=st.sampled_from([1, 2, 4, 8, 16, 32, 64]),
)
def test_collective_costs_nonnegative_and_monotone_in_bytes(nbytes, ranks):
    model = CollectiveModel(a100_cluster(8))
    gather = model.all_gather(nbytes, ranks)
    assert gather >= 0
    assert model.all_gather(nbytes + MiB, ranks) >= gather
    assert model.all_reduce(nbytes, ranks) >= gather
    assert model.reduce_scatter(nbytes, ranks) == pytest.approx(gather)


@settings(max_examples=40, deadline=None)
@given(
    nbytes=st.integers(min_value=1, max_value=256 * MiB),
)
def test_cross_server_collectives_never_faster(nbytes):
    """Adding servers to the ring never speeds up a fixed-size gather."""
    model = CollectiveModel(a100_cluster(8))
    intra = model.all_gather(nbytes, 8)
    inter = model.all_gather(nbytes, 16)
    assert inter >= intra - 1e-12
