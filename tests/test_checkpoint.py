"""Checkpointing, crash recovery and elastic re-sharding (Section 3.1)."""

import numpy as np
import pytest

from repro.checkpoint import (
    ShardedCheckpoint,
    Snapshot,
    capture_engine_state,
    capture_training_state,
    load_snapshot,
    reshard,
    restore_engine_state,
    restore_training_state,
    save_snapshot,
)
from repro.checkpoint.reshard import merge_shards, split_even
from repro.engine import AngelConfig, initialize
from repro.errors import CheckpointError, ShardingError
from repro.nn import MixedPrecisionAdam, TinyTransformerLM, cross_entropy, lm_synthetic_batches
from repro.units import KiB, MiB


def tiny_model(seed=0):
    return TinyTransformerLM(
        vocab_size=16, d_model=16, d_ffn=32, num_heads=2, num_layers=2,
        max_seq=8, seed=seed,
    )


def train_steps(model, optimizer, batches):
    losses = []
    for batch in batches:
        loss = cross_entropy(model(batch.inputs, True), batch.targets)
        model.zero_grad()
        loss.backward()
        optimizer.step()
        losses.append(loss.item())
    return losses


class TestSnapshotIO:
    def test_roundtrip(self, tmp_path):
        snapshot = Snapshot(metadata={"step": 7})
        snapshot.add_array("w", np.arange(12, dtype=np.float32).reshape(3, 4))
        path = str(tmp_path / "ckpt.npz")
        save_snapshot(snapshot, path)
        loaded = load_snapshot(path)
        assert loaded.metadata["step"] == 7
        np.testing.assert_array_equal(loaded.arrays["w"], snapshot.arrays["w"])

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_snapshot(str(tmp_path / "nope.npz"))

    def test_corruption_detected(self, tmp_path):
        snapshot = Snapshot()
        snapshot.add_array("w", np.ones(64, dtype=np.float32))
        path = str(tmp_path / "ckpt.npz")
        save_snapshot(snapshot, path)
        # Flip bytes in the middle of the file.
        with open(path, "r+b") as handle:
            handle.seek(400)
            handle.write(b"\xff" * 16)
        with pytest.raises(CheckpointError):
            load_snapshot(path)

    def test_duplicate_array_name_rejected(self):
        snapshot = Snapshot()
        snapshot.add_array("w", np.ones(2))
        with pytest.raises(CheckpointError):
            snapshot.add_array("w", np.ones(2))

    def test_foreign_npz_rejected(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, w=np.ones(2))
        with pytest.raises(CheckpointError):
            load_snapshot(path)


class TestCrashRecovery:
    def test_resume_is_bitwise_identical(self, tmp_path):
        """Train 10 steps; vs train 5, checkpoint, 'crash', restore, 5."""
        batches = list(lm_synthetic_batches(16, 8, 4, 10, seed=2))

        straight = tiny_model(seed=1)
        opt_straight = MixedPrecisionAdam(straight.parameters(), lr=1e-3)
        train_steps(straight, opt_straight, batches)

        first = tiny_model(seed=1)
        opt_first = MixedPrecisionAdam(first.parameters(), lr=1e-3)
        train_steps(first, opt_first, batches[:5])
        path = str(tmp_path / "ckpt.npz")
        save_snapshot(capture_training_state(first, opt_first, step=5), path)

        resumed = tiny_model(seed=99)  # different init: must be overwritten
        opt_resumed = MixedPrecisionAdam(resumed.parameters(), lr=1e-3)
        step = restore_training_state(load_snapshot(path), resumed, opt_resumed)
        assert step == 5
        losses = train_steps(resumed, opt_resumed, batches[5:])
        assert losses  # the run continued

        for (name, a), (_, b) in zip(
            straight.named_parameters(), resumed.named_parameters()
        ):
            np.testing.assert_array_equal(a.data, b.data, err_msg=name)
        for m_a, m_b in zip(opt_straight.m, opt_resumed.m):
            np.testing.assert_array_equal(m_a, m_b)

    def test_architecture_mismatch_rejected(self, tmp_path):
        model = tiny_model()
        opt = MixedPrecisionAdam(model.parameters())
        snapshot = capture_training_state(model, opt)
        other = TinyTransformerLM(
            vocab_size=16, d_model=16, d_ffn=32, num_heads=2, num_layers=3,
            max_seq=8,
        )
        with pytest.raises(CheckpointError):
            restore_training_state(
                snapshot, other, MixedPrecisionAdam(other.parameters())
            )


class TestEngineCheckpoint:
    def _engine(self, seed=1):
        model = tiny_model(seed=seed)
        opt = MixedPrecisionAdam(model.parameters(), lr=1e-3)
        config = AngelConfig(
            gpu_memory_bytes=2 * MiB, cpu_memory_bytes=16 * MiB,
            ssd_bytes=16 * MiB, page_bytes=64 * KiB,
        )
        return initialize(model, opt, config)

    def test_engine_resume_matches(self):
        batches = list(lm_synthetic_batches(16, 8, 4, 8, seed=3))

        straight = self._engine()
        for batch in batches:
            loss = straight(batch)
            straight.backward(loss)
            straight.step()

        first = self._engine()
        for batch in batches[:4]:
            loss = first(batch)
            first.backward(loss)
            first.step()
        snapshot = capture_engine_state(first, step=4)
        first.close()

        resumed = self._engine(seed=42)
        assert restore_engine_state(snapshot, resumed) == 4
        for batch in batches[4:]:
            loss = resumed(batch)
            resumed.backward(loss)
            resumed.step()

        for a, b in zip(straight._managed, resumed._managed):
            np.testing.assert_array_equal(
                a.master.read_array(), b.master.read_array(), err_msg=a.name
            )
        straight.close()
        resumed.close()


class TestReshard:
    def test_split_and_merge_roundtrip(self):
        array = np.arange(10, dtype=np.float32)
        shards = split_even(array, 3)
        assert len(shards) == 3
        assert all(s.size == 4 for s in shards)  # padded to ceil(10/3)
        np.testing.assert_array_equal(merge_shards(shards, 10), array)

    def test_reshard_exact_across_rank_counts(self):
        state = {
            "master": np.random.default_rng(0).standard_normal(37).astype(np.float32),
            "m": np.random.default_rng(1).standard_normal(37).astype(np.float32),
        }
        for src, dst in [(8, 2), (2, 8), (3, 5), (7, 1)]:
            sharded = ShardedCheckpoint.from_full_state(state, src)
            moved = reshard(sharded, dst)
            assert moved.num_ranks == dst
            restored = moved.to_full_state()
            for name in state:
                np.testing.assert_array_equal(restored[name], state[name])

    def test_rank_state_covers_everything_once(self):
        state = {"w": np.arange(16, dtype=np.float32)}
        sharded = ShardedCheckpoint.from_full_state(state, 4)
        rebuilt = np.concatenate([sharded.rank_state(r)["w"] for r in range(4)])
        np.testing.assert_array_equal(rebuilt[:16], state["w"])

    def test_bad_rank_rejected(self):
        sharded = ShardedCheckpoint.from_full_state({"w": np.ones(4)}, 2)
        with pytest.raises(ShardingError):
            sharded.rank_state(2)

    @pytest.mark.parametrize("src,dst", [(2, 4), (4, 2), (2, 1)])
    def test_elastic_rescale_training(self, src, dst):
        """Pause on K ranks, rescale to N, resume: exactly equivalent."""
        from repro.dp import ZeroDataParallelTrainer

        def factory():
            return tiny_model(seed=7)

        batches = list(lm_synthetic_batches(16, 8, 8, 6, seed=5))

        straight = ZeroDataParallelTrainer(factory, num_ranks=src, lr=1e-3)
        for batch in batches:
            straight.train_step(batch)

        paused = ZeroDataParallelTrainer(factory, num_ranks=src, lr=1e-3)
        for batch in batches[:3]:
            paused.train_step(batch)
        resumed = ZeroDataParallelTrainer.rescale(paused, factory, dst)
        assert resumed.num_ranks == dst
        for batch in batches[3:]:
            resumed.train_step(batch)

        for a, b in zip(straight._params[0], resumed._params[0]):
            np.testing.assert_allclose(a.data, b.data, atol=1e-6)
