"""Unified scheduler: Algorithm 1, memory model, cache plan, simulation."""

import pytest

from repro.errors import OutOfMemoryError, SchedulingError
from repro.hardware.cluster import a100_cluster
from repro.hardware.server import a100_server
from repro.models import get_model
from repro.scheduler import (
    LifetimeScheduler,
    MemoryModel,
    Operation,
    Schedule,
    ScheduledTask,
    UnifiedScheduler,
    build_layer_pages,
    plan_gpu_cache,
)
from repro.tracer import CostModel, Tracer
from repro.units import GiB, MiB


@pytest.fixture
def cost():
    server = a100_server()
    return CostModel(gpu=server.gpus[0], cpu=server.cpu)


def make_trace(cost, num_layers=4, batch=1, seq=128, model="gpt3-1.7b"):
    spec = get_model(model).with_layers(num_layers).build(batch, seq)
    return Tracer(cost).trace(spec)


class TestScheduleStructure:
    def test_pop_last_movement(self):
        plan = Schedule()
        plan.append(ScheduledTask(Operation.MOVE_TO_GPU, 0, 0, page_id=0, nbytes=8))
        plan.append(ScheduledTask(Operation.COMPUTE, 0, 0, op_id=0))
        plan.append(ScheduledTask(Operation.MOVE_TO_GPU, 1, 0, page_id=0, nbytes=8))
        popped = plan.pop_last_movement()
        assert popped.layer_index == 1
        assert len(plan) == 2

    def test_pop_without_movement_raises(self):
        plan = Schedule()
        plan.append(ScheduledTask(Operation.COMPUTE, 0, 0, op_id=0))
        with pytest.raises(SchedulingError):
            plan.pop_last_movement()

    def test_negative_trigger_rejected(self):
        with pytest.raises(SchedulingError):
            ScheduledTask(Operation.COMPUTE, 0, -1)


class TestMemoryModel:
    def test_base_includes_activations(self, cost):
        trace = make_trace(cost)
        memory = MemoryModel(trace, gpu_budget_bytes=10 * GiB)
        fwd_live = memory.live_at(trace.layers[0].fwd_id)
        assert fwd_live > 0

    def test_add_remove_roundtrip(self, cost):
        trace = make_trace(cost)
        memory = MemoryModel(trace, gpu_budget_bytes=10 * GiB)
        before = memory.live_at(2)
        memory.add_resident(MiB, 1, 3)
        assert memory.live_at(2) == before + MiB
        memory.remove_resident(MiB, 1, 3)
        assert memory.live_at(2) == before

    def test_remove_more_than_added_rejected(self, cost):
        trace = make_trace(cost)
        memory = MemoryModel(trace, gpu_budget_bytes=10 * GiB)
        with pytest.raises(SchedulingError):
            memory.remove_resident(MiB, 0, 0)

    def test_cache_raises_floor(self, cost):
        trace = make_trace(cost)
        plain = MemoryModel(trace, gpu_budget_bytes=10 * GiB)
        cached = MemoryModel(trace, gpu_budget_bytes=10 * GiB, cache_bytes=GiB)
        assert cached.peak_live() == pytest.approx(plain.peak_live() + GiB)

    def test_earliest_feasible_finds_earliest(self, cost):
        trace = make_trace(cost)
        memory = MemoryModel(trace, gpu_budget_bytes=10 * GiB)
        # Occupy nearly the whole budget at op 2 only.
        memory.add_resident(int(9.9 * GiB), 2, 2)
        got = memory.earliest_feasible(int(0.2 * GiB), latest=5, end_op=5)
        assert got == 3  # cannot cross the op-2 spike

    def test_earliest_feasible_none_when_infeasible(self, cost):
        trace = make_trace(cost)
        memory = MemoryModel(trace, gpu_budget_bytes=10 * GiB)
        memory.add_resident(int(9.9 * GiB), 5, 5)
        assert memory.earliest_feasible(GiB, latest=5, end_op=5) is None

    def test_span_bounds_checked(self, cost):
        trace = make_trace(cost)
        memory = MemoryModel(trace, gpu_budget_bytes=10 * GiB)
        with pytest.raises(SchedulingError):
            memory.add_resident(1, 0, trace.num_ops)


class TestAlgorithm1:
    def _schedule(self, cost, gpu_budget, num_layers=4, batch=1, num_ranks=8):
        trace = make_trace(cost, num_layers=num_layers, batch=batch)
        pages = build_layer_pages(trace, num_ranks, page_bytes=4 * MiB)
        memory = MemoryModel(trace, gpu_budget, num_ranks=num_ranks)
        return trace, pages, LifetimeScheduler(trace, pages, memory).schedule()

    def test_every_page_moved_exactly_once(self, cost):
        trace, pages, plan = self._schedule(cost, gpu_budget=36 * GiB)
        moves = plan.of(Operation.MOVE_TO_GPU)
        expected = sum(table.num_pages for table in pages)
        assert len(moves) == expected
        keys = {(m.layer_index, m.page_id) for m in moves}
        assert len(keys) == expected

    def test_compute_op_per_forward_and_backward(self, cost):
        trace, _, plan = self._schedule(cost, gpu_budget=36 * GiB)
        computes = plan.of(Operation.COMPUTE)
        assert len(computes) == 2 * trace.num_layers
        assert sorted(t.op_id for t in computes) == list(range(2 * trace.num_layers))

    def test_gather_never_after_its_compute(self, cost):
        _, _, plan = self._schedule(cost, gpu_budget=36 * GiB)
        for task in plan.of(Operation.ALL_GATHER):
            assert task.trigger_id <= task.op_id

    def test_phase2_advances_gathers_when_memory_allows(self, cost):
        """With a roomy budget, most gathers should be pre-triggered."""
        _, _, plan = self._schedule(cost, gpu_budget=36 * GiB)
        gathers = plan.of(Operation.ALL_GATHER)
        advanced = [t for t in gathers if t.trigger_id < t.op_id]
        assert len(advanced) >= len(gathers) // 2

    def test_moves_prioritized_at_trigger_zero_with_room(self, cost):
        _, _, plan = self._schedule(cost, gpu_budget=36 * GiB)
        moves = plan.of(Operation.MOVE_TO_GPU)
        assert all(m.trigger_id == 0 for m in moves)

    def test_tight_memory_defers_moves(self, cost):
        """With a tight budget some moves must wait past trigger 0."""
        trace, _, plan = self._schedule(
            cost, gpu_budget=int(1.2 * GiB), num_layers=8, num_ranks=1
        )
        moves = plan.of(Operation.MOVE_TO_GPU)
        assert any(m.trigger_id > 0 for m in moves)

    def test_infeasible_model_raises_oom(self, cost):
        with pytest.raises(OutOfMemoryError):
            self._schedule(cost, gpu_budget=64 * MiB, num_ranks=1)

    def test_memory_budget_never_exceeded(self, cost):
        """Replaying the schedule keeps live bytes within budget."""
        budget = int(1.5 * GiB)
        trace = make_trace(cost, num_layers=8)
        pages = build_layer_pages(trace, 1, page_bytes=4 * MiB)
        memory = MemoryModel(trace, budget, num_ranks=1)
        LifetimeScheduler(trace, pages, memory).schedule()
        assert memory.peak_live() <= budget


class TestCachePlan:
    def test_small_model_fully_cached(self, cost):
        trace = make_trace(cost, num_layers=2)
        pages = build_layer_pages(trace, 8)
        plan = plan_gpu_cache(trace, pages, gpu_budget_bytes=36 * GiB, num_ranks=8)
        assert plan.num_cached == trace.num_layers

    def test_large_model_not_cached(self, cost):
        trace = Tracer(cost).trace(get_model("gpt3-55b").build(1, 2048))
        pages = build_layer_pages(trace, 8)
        plan = plan_gpu_cache(trace, pages, gpu_budget_bytes=36 * GiB, num_ranks=8)
        assert plan.num_cached < trace.num_layers

    def test_cache_prefers_last_layers(self, cost):
        """Update order is reverse, so the last layers cache first."""
        trace = Tracer(cost).trace(get_model("gpt3-28b").build(4, 2048))
        pages = build_layer_pages(trace, 8)
        plan = plan_gpu_cache(trace, pages, gpu_budget_bytes=36 * GiB, num_ranks=8)
        if 0 < plan.num_cached < trace.num_layers:
            last = trace.num_layers - 1
            assert plan.is_cached(last)
            assert not plan.is_cached(0)

    def test_cache_bytes_sum(self, cost):
        trace = make_trace(cost, num_layers=2)
        pages = build_layer_pages(trace, 8)
        plan = plan_gpu_cache(trace, pages, gpu_budget_bytes=36 * GiB, num_ranks=8)
        assert plan.cache_bytes == sum(plan.layer_bytes.values())


class TestUnifiedScheduler:
    def test_simulation_produces_throughput(self):
        scheduler = UnifiedScheduler(a100_cluster(1))
        result = scheduler.simulate(get_model("gpt3-1.7b"), micro_batch=4)
        assert result.samples_per_second > 0
        assert result.iteration_time > 0
        assert 0 < result.gpu_busy_fraction <= 1.0

    def test_larger_batch_is_more_efficient(self):
        scheduler = UnifiedScheduler(a100_cluster(1))
        config = get_model("gpt3-1.7b")
        small = scheduler.simulate(config, micro_batch=1)
        large = scheduler.simulate(config, micro_batch=16)
        per_sample_small = 1 / small.samples_per_second
        per_sample_large = 1 / large.samples_per_second
        assert per_sample_large < per_sample_small

    def test_lock_free_not_slower(self):
        scheduler = UnifiedScheduler(a100_cluster(1))
        config = get_model("gpt3-28b")
        sync = scheduler.simulate(config, micro_batch=2, use_ssd=True)
        lockfree = scheduler.simulate(
            config, micro_batch=2, use_ssd=True, lock_free=True
        )
        assert lockfree.samples_per_second >= sync.samples_per_second
        assert lockfree.staleness >= 0

    def test_ssd_slows_synchronous_training(self):
        scheduler = UnifiedScheduler(a100_cluster(1))
        config = get_model("gpt3-55b")
        plain = scheduler.simulate(config, micro_batch=1)
        with_ssd = scheduler.simulate(config, micro_batch=1, use_ssd=True)
        assert with_ssd.iteration_time > plain.iteration_time

    def test_ssd_requires_tier(self):
        cluster = a100_cluster(1, ssd_bytes=None)
        scheduler = UnifiedScheduler(cluster)
        with pytest.raises(SchedulingError):
            scheduler.simulate(get_model("gpt3-55b"), micro_batch=1, use_ssd=True)

    def test_plan_is_reusable(self):
        scheduler = UnifiedScheduler(a100_cluster(1))
        plan = scheduler.plan(get_model("gpt3-1.7b"), micro_batch=2)
        a = scheduler.simulate_plan(plan)
        b = scheduler.simulate_plan(plan)
        assert a.iteration_time == b.iteration_time


class TestSteadyState:
    def test_steady_state_not_slower_reported_correctly(self):
        """The marginal iteration is at most the cold iteration plus the
        cross-iteration dependency stalls, and stays positive."""
        scheduler = UnifiedScheduler(a100_cluster(1))
        plan = scheduler.plan(get_model("gpt3-13b"), micro_batch=4)
        cold = scheduler.simulate_plan(plan)
        steady = scheduler.simulate_plan(plan, steady_state=True)
        assert steady.iteration_time > 0
        # With per-layer update overlap the steady iteration is within a
        # modest factor of the cold one.
        assert steady.iteration_time < 1.5 * cold.iteration_time

    def test_lock_free_steady_state_ignores_update_stalls(self):
        """Lock-free: the GPU never waits for updates, so the steady
        iteration equals the GPU path even when updates are slow (SSD)."""
        scheduler = UnifiedScheduler(a100_cluster(1))
        plan = scheduler.plan(get_model("gpt3-55b"), micro_batch=1)
        sync = scheduler.simulate_plan(plan, use_ssd=True, steady_state=True)
        lockfree = scheduler.simulate_plan(
            plan, use_ssd=True, lock_free=True, steady_state=True
        )
        assert lockfree.iteration_time < sync.iteration_time


class TestBreakdown:
    def test_breakdown_fractions_consistent(self):
        scheduler = UnifiedScheduler(a100_cluster(1))
        result = scheduler.simulate(get_model("gpt3-1.7b"), micro_batch=2)
        breakdown = result.breakdown()
        assert breakdown["compute"] > 0
        assert breakdown["compute_fraction"] == pytest.approx(
            breakdown["compute"] / result.iteration_time
        )
        assert breakdown["critical_stream"] is not None
        # The bottleneck of a compute-bound small model is the GPU stream.
        assert breakdown["critical_stream"] == "gpu"
