"""Chaos training: seeded fault plans against the supervised driver.

The acceptance bar for the resilience subsystem: with a fixed seed, a run
that suffers transient SSD faults heals bit-for-bit; a run that addition-
ally loses the SSD tier permanently and crashes a rank mid-run recovers
from checkpoint, finishes, and lands within tolerance of the fault-free
loss — with every retry/degradation/recovery observable in the counters.
"""

import numpy as np
import pytest

from repro.errors import RankFailedError
from repro.metrics import FaultCounters, MetricsRecorder
from repro.resilience import (
    ChaosConfig,
    FaultKind,
    ResilientTrainer,
    engine_factory,
    make_batches,
    make_fault_plan,
    run_chaos,
    run_reference,
)
from repro.runtime.events import EventBus


def reference_losses(**kwargs):
    kwargs.setdefault("steps", 8)
    kwargs.setdefault("checkpoint_every", 3)
    return run_reference(ChaosConfig(**kwargs))


class TestTransientFaultsHealBitForBit:
    def test_losses_identical_to_fault_free_run(self, tmp_path):
        config = ChaosConfig(
            steps=8, checkpoint_every=3, seed=1,
            transient_read_rate=0.01, transient_write_rate=0.01,
            max_transients=12, torn_write_rate=0.005, max_torn_writes=4,
        )
        reference = reference_losses(seed=1)
        report = run_chaos(config, str(tmp_path))
        assert report.losses == reference  # bit-for-bit
        assert report.counters.transient_faults == 12
        assert report.counters.torn_writes == 4
        assert report.counters.retries >= 12
        assert report.counters.tier_deaths == 0
        assert report.counters.recoveries == 0

    def test_chaos_runs_are_seed_deterministic(self, tmp_path):
        config = ChaosConfig(
            steps=6, checkpoint_every=2, seed=5,
            transient_read_rate=0.02, max_transients=6,
        )
        first = run_chaos(config, str(tmp_path / "a"))
        second = run_chaos(config, str(tmp_path / "b"))
        assert first.losses == second.losses
        assert [(r.op_index, r.kind) for r in first.fault_log] == [
            (r.op_index, r.kind) for r in second.fault_log
        ]


class TestFullRecoveryLadder:
    CONFIG = dict(
        steps=10, checkpoint_every=3, seed=3,
        transient_read_rate=0.005, transient_write_rate=0.005,
        max_transients=8, die_after_ops=900, rank_failure_at_step=7,
    )

    def test_tier_death_and_rank_failure_recover_within_tolerance(self, tmp_path):
        config = ChaosConfig(**self.CONFIG)
        reference = reference_losses(steps=10, seed=3)
        counters = FaultCounters()
        bus = EventBus()
        report = run_chaos(config, str(tmp_path), bus=bus, counters=counters)

        # The run completed all steps despite losing the SSD tier and a rank.
        assert report.steps_completed == 10
        assert len(report.losses) == 10
        assert report.degraded
        assert report.final_world_size == 1  # elastic shrink 2 -> 1

        # Every rung of the ladder is observable in the counters.
        assert counters.tier_deaths == 1
        assert counters.degradations == 1
        assert counters.rank_failures == 1
        assert counters.recoveries == 1
        assert counters.checkpoints_restored == 1
        assert counters.reshards == 1
        assert counters.retries >= 1
        assert counters.checkpoints_saved >= 2

        # Recovery events were published on the bus.
        assert bus.event("resilience.degrade.1").done
        assert bus.event("resilience.recovery.1").done
        assert bus.event("resilience.rank_failure.1").done

        # Convergence matches the fault-free run within tolerance.
        assert abs(report.final_loss - reference[-1]) < 0.1
        assert max(
            abs(a - b) for a, b in zip(reference, report.losses)
        ) < 0.25

        # Counters surface through the standard metrics summary.
        recorder = MetricsRecorder(resilience=counters)
        assert recorder.summary()["resilience"]["recoveries"] == 1

    def test_ladder_is_deterministic(self, tmp_path):
        config = ChaosConfig(**self.CONFIG)
        first = run_chaos(config, str(tmp_path / "a"))
        second = run_chaos(config, str(tmp_path / "b"))
        assert first.losses == second.losses
        assert first.recovery_steps == second.recovery_steps

    def test_fault_log_records_the_injected_schedule(self, tmp_path):
        config = ChaosConfig(**self.CONFIG)
        report = run_chaos(config, str(tmp_path))
        kinds = [record.kind for record in report.fault_log]
        assert FaultKind.TIER_DEATH in kinds
        assert FaultKind.RANK_FAILURE in kinds
        assert any(
            k in kinds
            for k in (FaultKind.TRANSIENT_READ, FaultKind.TRANSIENT_WRITE)
        )


class TestRecoveryMechanics:
    def test_rank_failure_without_checkpoint_dir_contents_uses_initial(self, tmp_path):
        # Failure before the first periodic checkpoint: the step-0 initial
        # checkpoint makes the run recoverable from scratch.
        config = ChaosConfig(steps=5, checkpoint_every=10, seed=2,
                             rank_failure_at_step=2)
        reference = reference_losses(steps=5, checkpoint_every=10, seed=2)
        report = run_chaos(config, str(tmp_path))
        assert report.steps_completed == 5
        assert report.recovery_steps == [0]
        # Restore + replay of deterministic batches reproduces the run.
        np.testing.assert_allclose(report.losses, reference, atol=1e-2)

    def test_corrupt_newest_checkpoint_falls_back_to_older(self, tmp_path):
        config = ChaosConfig(steps=6, checkpoint_every=2, seed=4)
        plan = make_fault_plan(
            ChaosConfig(steps=6, checkpoint_every=2, seed=4, rank_failure_at_step=5)
        )
        trainer = ResilientTrainer(
            engine_factory(config, plan, None),
            checkpoint_dir=str(tmp_path),
            checkpoint_every=2,
            fault_plan=plan,
            world_size=2,
        )
        batches = make_batches(config)
        # Corrupt the newest checkpoint as soon as it lands by truncating
        # it behind the trainer's back before the scheduled rank failure.
        original_save = trainer.save_checkpoint

        def sabotaging_save(engine, step):
            path = original_save(engine, step)
            if step == 4:
                with open(path, "r+b") as handle:
                    handle.truncate(100)
            return path

        trainer.save_checkpoint = sabotaging_save
        report = trainer.train(batches)
        trainer.close()
        assert report.steps_completed == 6
        # Fell back past the corrupt step-4 file to the step-2 checkpoint.
        assert report.recovery_steps == [2]

    def test_max_recoveries_guard_reraises(self, tmp_path):
        config = ChaosConfig(steps=4, checkpoint_every=2, seed=6,
                             rank_failure_at_step=1)
        plan = make_fault_plan(config)
        trainer = ResilientTrainer(
            engine_factory(config, plan, None),
            checkpoint_dir=str(tmp_path),
            checkpoint_every=2,
            fault_plan=plan,
            world_size=2,
            max_recoveries=0,
        )
        with pytest.raises(RankFailedError):
            trainer.train(make_batches(config))
