"""The Page abstraction: slots, the two-tensor invariant, movement."""

import numpy as np
import pytest

from repro.errors import AllocationError, OutOfMemoryError, PageStateError
from repro.hardware.device import DeviceKind
from repro.memory import DEFAULT_PAGE_BYTES, DevicePool, Page, PageState
from repro.units import MiB


@pytest.fixture
def pools():
    gpu = DevicePool(DeviceKind.GPU, 8 * MiB, page_bytes=MiB)
    cpu = DevicePool(DeviceKind.CPU, 8 * MiB, page_bytes=MiB)
    yield gpu, cpu
    gpu.close()
    cpu.close()


class TestPageSlots:
    def test_default_page_size_is_4mib(self):
        assert DEFAULT_PAGE_BYTES == 4 * MiB

    def test_allocate_returns_sequential_offsets(self):
        page = Page(total_bytes=100)
        assert page.allocate(40, tensor_id=1) == 0
        assert page.allocate(30, tensor_id=2) == 40
        assert page.available_bytes == 30

    def test_at_most_two_tensors(self):
        page = Page(total_bytes=100)
        page.allocate(10, 1)
        page.allocate(10, 2)
        with pytest.raises(AllocationError):
            page.allocate(10, 3)

    def test_same_tensor_twice_rejected(self):
        page = Page(total_bytes=100)
        page.allocate(10, 1)
        with pytest.raises(AllocationError):
            page.allocate(10, 1)

    def test_overallocation_rejected(self):
        page = Page(total_bytes=100)
        with pytest.raises(AllocationError):
            page.allocate(101, 1)

    def test_release_frees_slot(self):
        page = Page(total_bytes=100)
        page.allocate(60, 1)
        page.release(1)
        assert page.is_empty
        assert page.available_bytes == 100

    def test_release_unknown_tensor(self):
        page = Page(total_bytes=100)
        with pytest.raises(AllocationError):
            page.release(42)

    def test_freed_head_space_not_reused_until_empty(self):
        """Pages never compact in place: tail allocation only."""
        page = Page(total_bytes=100)
        page.allocate(60, 1)
        page.allocate(40, 2)
        page.release(1)
        # 60 head bytes are free but unusable; tail is full.
        assert page.available_bytes == 0
        page.release(2)
        assert page.available_bytes == 100

    def test_slot_of_reports_offset(self):
        page = Page(total_bytes=100)
        page.allocate(30, 7)
        page.allocate(20, 8)
        assert page.slot_of(7) == (0, 30)
        assert page.slot_of(8) == (30, 20)

    def test_zero_allocation_rejected(self):
        page = Page(total_bytes=100)
        with pytest.raises(AllocationError):
            page.allocate(0, 1)


class TestPagePlacement:
    def test_detached_page_has_no_device(self):
        page = Page()
        assert page.device_index == -1
        assert not page.has_storage

    def test_acquired_page_reports_device(self, pools):
        gpu, _ = pools
        page = gpu.acquire()
        assert page.device_index == int(DeviceKind.GPU)
        assert page.state == PageState.RESIDENT

    def test_move_changes_device_and_preserves_bytes(self, pools):
        gpu, cpu = pools
        page = cpu.acquire()
        page.allocate(100, 1)
        payload = np.random.default_rng(0).bytes(100)
        page.write(0, payload)
        page.move(gpu)
        assert page.device_index == int(DeviceKind.GPU)
        assert page.read(0, 100) == payload
        assert cpu.pages_in_use == 0
        assert gpu.pages_in_use == 1

    def test_move_to_same_pool_is_noop(self, pools):
        gpu, _ = pools
        page = gpu.acquire()
        page.move(gpu)
        assert gpu.pages_in_use == 1

    def test_move_fails_cleanly_when_target_full(self, pools):
        gpu, cpu = pools
        fillers = [gpu.acquire() for _ in range(gpu.num_pages)]
        page = cpu.acquire()
        with pytest.raises(OutOfMemoryError):
            page.move(gpu)
        # Source residency is unchanged after the failed move.
        assert page.device_index == int(DeviceKind.CPU)
        assert page.state == PageState.RESIDENT
        for filler in fillers:
            gpu.release(filler)

    def test_out_of_range_access_rejected(self, pools):
        gpu, _ = pools
        page = gpu.acquire()
        with pytest.raises(AllocationError):
            page.read(0, page.total_bytes + 1)

    def test_release_nonempty_page_rejected(self, pools):
        gpu, _ = pools
        page = gpu.acquire()
        page.allocate(10, 1)
        with pytest.raises(PageStateError):
            gpu.release(page)
        page.release(1)
        gpu.release(page)
