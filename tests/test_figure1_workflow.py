"""Integration: the six-step hierarchical-memory workflow of Figure 1.

"The GPU (1) fetches the parameters from the CPU, (2) performs forward and
backward computations on the GPU, and then (3) sends the calculated
gradients back to the CPU. The CPU (4) loads optimizer states from the SSD
storage, (5) performs optimizer updating on CPU, and (6) stores the
optimizer states on the SSD storage."

Each numbered step is observed through the functional engine's pools,
buffers and paged tensors over one real training iteration.
"""

import numpy as np
import pytest

from repro.engine import AngelConfig, initialize
from repro.hardware.device import DeviceKind
from repro.nn import MixedPrecisionAdam, TinyTransformerLM, lm_synthetic_batches
from repro.units import KiB, MiB


@pytest.fixture
def engine():
    model = TinyTransformerLM(
        vocab_size=16, d_model=16, d_ffn=32, num_heads=2, num_layers=2,
        max_seq=8, seed=21,
    )
    optimizer = MixedPrecisionAdam(model.parameters(), lr=1e-3)
    config = AngelConfig(
        gpu_memory_bytes=2 * MiB,
        cpu_memory_bytes=16 * MiB,
        ssd_bytes=16 * MiB,
        page_bytes=32 * KiB,
    )
    with initialize(model, optimizer, config) as wrapped:
        yield wrapped


def test_figure1_six_step_workflow(engine):
    batch = next(lm_synthetic_batches(16, 8, 4, 1, seed=22))
    gpu_pool = engine.allocator.pool(DeviceKind.GPU)
    ssd_pool = engine.allocator.pool(DeviceKind.SSD)

    # Before the iteration: FP16 params buffered on CPU, FP32 states on
    # SSD, nothing on the GPU.
    assert gpu_pool.pages_in_use == 0
    for managed in engine._managed:
        assert managed.fp16.device_kind == DeviceKind.CPU
        assert managed.master.device_kind == DeviceKind.SSD

    # (1) the forward fetches parameters CPU -> GPU.
    loss = engine(batch)
    assert gpu_pool.pages_in_use > 0
    touched = [m for m in engine._managed if m.first_access >= 0]
    assert len(touched) == len(engine._managed)

    # (2) computation happened against the fetched values: the loss is a
    # finite scalar produced from the paged FP16 parameters.
    assert np.isfinite(loss.item())

    # (3) backward sends gradients to the CPU buffers.
    engine.backward(loss)
    assert engine._buffers.has_uncleared

    # (4)-(6): the update sweep loads FP32 states from SSD, updates on
    # CPU, and stores them back. Capture SSD contents before and after.
    masters_before = [m.master.read_array().copy() for m in engine._managed]
    assert engine.step()
    for managed, before in zip(engine._managed, masters_before):
        after = managed.master.read_array()
        assert managed.master.device_kind == DeviceKind.SSD  # (6) stored back
        assert not np.array_equal(after, before)             # (5) updated
        # (4)+(5): the refreshed FP16 buffer equals the rounded master.
        np.testing.assert_array_equal(
            managed.fp16.read_array().astype(np.float32),
            after.astype(np.float16).astype(np.float32),
        )
    # Gradient buffers were consumed by the sweep.
    assert not engine._buffers.has_uncleared


def test_iteration_is_repeatable(engine):
    """The workflow loops: a second iteration behaves like the first."""
    losses = []
    for batch in lm_synthetic_batches(16, 8, 4, 3, seed=23):
        loss = engine(batch)
        engine.backward(loss)
        assert engine.step()
        losses.append(loss.item())
    assert all(np.isfinite(losses))
    report = engine.memory_report()
    assert report["ssd"]["pages_in_use"] > 0
    assert report["gpu"]["peak_pages"] <= engine.allocator.pool(
        DeviceKind.GPU
    ).num_pages
