"""Discrete-event simulator: stream ordering, dependencies, timelines."""

import pytest

from repro.errors import SimulationError
from repro.sim import Interval, Simulator, Timeline


class TestSimulatorBasics:
    def test_single_task(self):
        sim = Simulator()
        sim.add_task("a", sim.stream("s"), 2.0)
        assert sim.run().makespan == 2.0

    def test_stream_serializes_in_submission_order(self):
        sim = Simulator()
        s = sim.stream("s")
        sim.add_task("a", s, 1.0)
        sim.add_task("b", s, 1.0)
        timeline = sim.run()
        assert timeline.end_of("a") == 1.0
        assert timeline.end_of("b") == 2.0

    def test_independent_streams_overlap(self):
        sim = Simulator()
        sim.add_task("a", sim.stream("s1"), 3.0)
        sim.add_task("b", sim.stream("s2"), 2.0)
        assert sim.run().makespan == 3.0

    def test_cross_stream_dependency(self):
        sim = Simulator()
        a = sim.add_task("a", sim.stream("s1"), 3.0)
        sim.add_task("b", sim.stream("s2"), 1.0, deps=[a])
        timeline = sim.run()
        assert timeline.end_of("b") == 4.0

    def test_diamond_dependency(self):
        sim = Simulator()
        a = sim.add_task("a", sim.stream("s1"), 1.0)
        b = sim.add_task("b", sim.stream("s2"), 2.0, deps=[a])
        c = sim.add_task("c", sim.stream("s3"), 3.0, deps=[a])
        sim.add_task("d", sim.stream("s4"), 1.0, deps=[b, c])
        timeline = sim.run()
        assert timeline.end_of("d") == 5.0  # 1 + max(2, 3) + 1

    def test_zero_duration_task(self):
        sim = Simulator()
        a = sim.add_task("a", sim.stream("s"), 0.0)
        sim.add_task("b", sim.stream("s"), 1.0, deps=[a])
        assert sim.run().makespan == 1.0

    def test_duplicate_task_name_rejected(self):
        sim = Simulator()
        sim.add_task("a", sim.stream("s"), 1.0)
        with pytest.raises(SimulationError):
            sim.add_task("a", sim.stream("s"), 1.0)

    def test_negative_duration_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.add_task("a", sim.stream("s"), -1.0)

    def test_foreign_dependency_rejected(self):
        sim1, sim2 = Simulator(), Simulator()
        a = sim1.add_task("a", sim1.stream("s"), 1.0)
        with pytest.raises(SimulationError):
            sim2.add_task("b", sim2.stream("s"), 1.0, deps=[a])

    def test_stream_kind_conflict_rejected(self):
        sim = Simulator()
        sim.stream("s", "compute")
        with pytest.raises(SimulationError):
            sim.stream("s", "pcie")

    def test_stream_kind_reuse_generic_ok(self):
        sim = Simulator()
        first = sim.stream("s", "compute")
        assert sim.stream("s") is first

    def test_empty_simulation(self):
        assert Simulator().run().makespan == 0.0


class TestOverlapSemantics:
    def test_prefetch_pattern_hides_transfer(self):
        """Move(i+1) issued during compute(i) — the classic overlap."""
        sim = Simulator()
        pcie, gpu = sim.stream("pcie", "pcie"), sim.stream("gpu", "compute")
        move0 = sim.add_task("m0", pcie, 1.0)
        c0 = sim.add_task("c0", gpu, 5.0, deps=[move0])
        move1 = sim.add_task("m1", pcie, 1.0)  # overlaps with c0
        sim.add_task("c1", gpu, 5.0, deps=[move1])
        timeline = sim.run()
        assert timeline.makespan == 11.0  # 1 + 5 + 5: second move hidden

    def test_serialized_pattern_pays_transfer(self):
        """Move(i+1) issued only after compute(i) — no overlap."""
        sim = Simulator()
        pcie, gpu = sim.stream("pcie", "pcie"), sim.stream("gpu", "compute")
        move0 = sim.add_task("m0", pcie, 1.0)
        c0 = sim.add_task("c0", gpu, 5.0, deps=[move0])
        move1 = sim.add_task("m1", pcie, 1.0, deps=[c0])
        sim.add_task("c1", gpu, 5.0, deps=[move1])
        assert sim.run().makespan == 12.0


class TestTimeline:
    def _timeline(self):
        sim = Simulator()
        gpu = sim.stream("gpu", "compute")
        pcie = sim.stream("pcie", "pcie")
        m = sim.add_task("m", pcie, 2.0)
        sim.add_task("c", gpu, 6.0, deps=[m])
        return sim.run()

    def test_busy_time_by_stream(self):
        timeline = self._timeline()
        assert timeline.busy_time(stream="gpu") == 6.0
        assert timeline.busy_time(kind="pcie") == 2.0

    def test_utilization(self):
        timeline = self._timeline()
        assert timeline.utilization(stream="gpu") == pytest.approx(6 / 8)
        assert timeline.idle_fraction("pcie") == pytest.approx(1 - 2 / 8)

    def test_critical_stream(self):
        assert self._timeline().critical_stream() == "gpu"

    def test_end_of_unknown_task(self):
        with pytest.raises(SimulationError):
            self._timeline().end_of("missing")

    def test_invalid_interval_rejected(self):
        with pytest.raises(SimulationError):
            Timeline([Interval("t", "s", "k", start=2.0, end=1.0)])

    def test_per_stream_accounting(self):
        busy = self._timeline().per_stream()
        assert busy == {"pcie": 2.0, "gpu": 6.0}

    def test_empty_timeline(self):
        t = Timeline([])
        assert t.makespan == 0.0
        assert t.utilization() == 0.0
        assert t.critical_stream() is None


class TestChromeTraceExport:
    def _timeline(self):
        from repro.sim import Simulator

        sim = Simulator()
        gpu = sim.stream("gpu", "compute")
        pcie = sim.stream("h2d", "pcie")
        m = sim.add_task("move", pcie, 0.5)
        sim.add_task("fwd", gpu, 2.0, deps=[m])
        return sim.run()

    def test_trace_structure(self):
        from repro.sim import to_chrome_trace

        trace = to_chrome_trace(self._timeline())
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in slices}
        assert names == {"move", "fwd"}
        assert trace["otherData"]["makespan_seconds"] == 2.5
        # Distinct threads per stream; metadata rows name them.
        tids = {e["tid"] for e in slices}
        assert len(tids) == 2

    def test_time_scaling(self):
        from repro.sim import to_chrome_trace

        trace = to_chrome_trace(self._timeline(), time_unit=1e-3)
        fwd = next(e for e in trace["traceEvents"]
                   if e.get("name") == "fwd" and e["ph"] == "X")
        assert fwd["ts"] == 500.0  # 0.5s at 1ms->1us
        assert fwd["dur"] == 2000.0

    def test_save_roundtrip(self, tmp_path):
        import json

        from repro.sim import save_chrome_trace

        path = tmp_path / "trace.json"
        save_chrome_trace(self._timeline(), str(path))
        loaded = json.loads(path.read_text())
        assert "traceEvents" in loaded
