"""Result-object helpers of the experiment harnesses."""

import pytest

from repro.experiments.common import Report, pct_str, ratio_str
from repro.experiments.figure7 import Figure7Result, ThroughputCell
from repro.experiments.figure8 import Figure8Result, ScalePoint
from repro.experiments.table5 import ScaleRow, Table5Result


class TestReport:
    def test_column_alignment(self):
        report = Report("Title", ["col", "x"])
        report.add_row("a-long-cell", 1)
        report.add_row("b", 22)
        lines = report.render().splitlines()
        # Header and rows align: the second column starts at one offset.
        header = lines[2]
        row = lines[4]
        assert header.index("x") == row.index("1")

    def test_notes_render_last(self):
        report = Report("T", ["a"], notes=["first", "second"])
        lines = report.render().splitlines()
        assert lines[-2].endswith("first")
        assert lines[-1].endswith("second")

    def test_format_helpers(self):
        assert ratio_str(1.5) == "1.50x"
        assert pct_str(0.257) == "25.7%"


class TestFigure7Result:
    def _result(self):
        return Figure7Result(cells=[
            ThroughputCell("m", "deepspeed", 1, 10.0, 4),
            ThroughputCell("m", "angel-ptm", 1, 13.0, 5),
            ThroughputCell("m", "megatron", 1, None, 0),
        ])

    def test_normalized_to_deepspeed(self):
        result = self._result()
        assert result.normalized("m", "angel-ptm", 1) == pytest.approx(1.3)
        assert result.normalized("m", "deepspeed", 1) == pytest.approx(1.0)

    def test_oom_propagates_as_none(self):
        assert self._result().normalized("m", "megatron", 1) is None

    def test_unknown_cell_raises(self):
        with pytest.raises(KeyError):
            self._result().get("m", "angel-ptm", 4)


class TestFigure8Result:
    def test_speedup_and_exponent(self):
        result = Figure8Result(points=[
            ScalePoint(256, 12, 10.0, 10.0 / 256),
            ScalePoint(768, 12, 33.0, 33.0 / 768),
        ])
        assert result.speedup(256, 768) == pytest.approx(3.3)
        assert result.scaling_exponent > 1.0

    def test_sublinear_exponent_below_one(self):
        result = Figure8Result(points=[
            ScalePoint(256, 12, 10.0, 10.0 / 256),
            ScalePoint(768, 12, 25.0, 25.0 / 768),
        ])
        assert result.scaling_exponent < 1.0


class TestTable5Result:
    def _result(self):
        return Table5Result(rows=[
            ScaleRow("gpt", "deepspeed", 26, 28.0, 36, 7.6),
            ScaleRow("gpt", "angel-ptm", 26, 28.0, 38, 11.0),
            ScaleRow("gpt", "angel-ptm", 68, 55.0, 1, 0.46),
        ])

    def test_scale_improvement(self):
        result = self._result()
        assert result.scale_improvement("gpt") == pytest.approx(55 / 28 - 1)

    def test_best_throughput_at_scale(self):
        result = self._result()
        assert result.best_throughput("gpt", "angel-ptm", 28.0) == 11.0
        assert result.best_throughput("gpt", "angel-ptm", 55.0) == 0.46
        assert result.best_throughput("gpt", "angel-ptm", 99.0) == 0.0
