"""Tracer: logical IDs, life-times, cost model."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.server import a100_server
from repro.models import get_model
from repro.models.transformer import TensorKind, transformer_layer
from repro.tracer import AccessPattern, CostModel, TensorAccess, Tracer


@pytest.fixture
def cost():
    server = a100_server()
    return CostModel(gpu=server.gpus[0], cpu=server.cpu)


@pytest.fixture
def trace(cost):
    model = get_model("gpt3-1.7b").with_layers(4).build(batch_size=2, seq_len=128)
    return Tracer(cost).trace(model)


class TestTensorAccess:
    def test_lifetime_length(self):
        access = TensorAccess(0, "t", 2, 5, 0.0, 0.0, 8, TensorKind.PARAM, 0)
        assert access.lifetime == 4
        assert access.live_at(2) and access.live_at(5)
        assert not access.live_at(1) and not access.live_at(6)

    def test_reversed_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            TensorAccess(0, "t", 5, 2, 0.0, 0.0, 8, TensorKind.PARAM, 0)

    def test_pattern_bounds_checked(self):
        access = TensorAccess(0, "t", 0, 9, 0.0, 0.0, 8, TensorKind.PARAM, 0)
        with pytest.raises(ConfigurationError):
            AccessPattern(accesses=(access,), num_ops=5)

    def test_live_bytes_accounting(self):
        accesses = (
            TensorAccess(0, "a", 0, 2, 0.0, 0.0, 10, TensorKind.PARAM, 0),
            TensorAccess(1, "b", 1, 3, 0.0, 0.0, 20, TensorKind.ACTIVATION, 0),
        )
        pattern = AccessPattern(accesses=accesses, num_ops=4)
        assert pattern.live_bytes_at(0) == 10
        assert pattern.live_bytes_at(1) == 30
        assert pattern.live_bytes_at(3) == 20
        assert pattern.peak_live_bytes() == 30
        assert pattern.peak_live_bytes(TensorKind.PARAM) == 10


class TestTracerIds:
    def test_op_id_layout(self, trace):
        """fwd i -> i, bwd i -> 2L-1-i, update i -> 2L + (L-1-i)."""
        num_layers = trace.num_layers
        assert trace.num_ops == 3 * num_layers
        for layer in trace.layers:
            i = layer.layer_index
            assert layer.fwd_id == i
            assert layer.bwd_id == 2 * num_layers - 1 - i
            assert layer.update_id == 2 * num_layers + (num_layers - 1 - i)

    def test_updates_run_in_reverse_layer_order(self, trace):
        """Algorithm 2: for l_i in reverse(model)."""
        update_ids = [layer.update_id for layer in trace.layers]
        assert update_ids == sorted(update_ids, reverse=True)

    def test_param_lives_from_forward_to_update(self, trace):
        params = [
            a for a in trace.pattern.accesses
            if a.kind == TensorKind.PARAM and not a.name.endswith(".grad")
        ]
        for access in params:
            layer = trace.layers[access.layer_index]
            assert access.first_id == layer.fwd_id
            assert access.end_id == layer.update_id

    def test_grad_lives_from_backward_to_update(self, trace):
        grads = [a for a in trace.pattern.accesses if a.name.endswith(".grad")]
        assert grads
        for access in grads:
            layer = trace.layers[access.layer_index]
            assert access.first_id == layer.bwd_id
            assert access.end_id == layer.update_id

    def test_optim_touched_only_at_update(self, trace):
        optims = trace.pattern.by_kind(TensorKind.OPTIM)
        assert optims
        for access in optims:
            layer = trace.layers[access.layer_index]
            assert access.first_id == access.end_id == layer.update_id

    def test_recompute_shrinks_activation_lifetime(self, cost):
        model = get_model("gpt3-1.7b").with_layers(2).build(1, 64)
        with_rc = Tracer(cost, use_recompute=True).trace(model)
        without = Tracer(cost, use_recompute=False).trace(model)
        acts_rc = with_rc.pattern.by_kind(TensorKind.ACTIVATION)
        acts_plain = without.pattern.by_kind(TensorKind.ACTIVATION)
        assert all(a.end_id == a.first_id for a in acts_rc)
        assert all(
            a.end_id == with_rc.layers[a.layer_index].bwd_id for a in acts_plain
        )
        assert with_rc.pattern.peak_live_bytes(TensorKind.ACTIVATION) < (
            without.pattern.peak_live_bytes(TensorKind.ACTIVATION)
        )

    def test_tensor_ids_unique(self, trace):
        ids = [a.tensor_id for a in trace.pattern.accesses]
        assert len(ids) == len(set(ids))

    def test_totals_match_model(self, cost):
        model = get_model("gpt3-1.7b").with_layers(3).build(1, 64)
        trace = Tracer(cost).trace(model)
        assert trace.total_param_count == model.param_count
        assert trace.total_optim_bytes == model.optims_bytes


class TestCostModel:
    def test_efficiency_saturates(self, cost):
        assert cost.efficiency(1) < cost.efficiency(8) < cost.efficiency(64)
        assert cost.efficiency(1024) < cost.base_efficiency

    def test_backward_twice_forward(self, cost):
        layer = transformer_layer(256, 1024, 2, 64)
        assert cost.backward_time(layer, 2, 64) == pytest.approx(
            2 * cost.forward_time(layer, 2, 64)
        )

    def test_forward_time_scales_with_tokens(self, cost):
        layer = transformer_layer(256, 1024, 2, 64)
        assert cost.forward_time(layer, 2, 128) == pytest.approx(
            2 * cost.forward_time(layer, 2, 64)
        )

    def test_moe_flops_count_only_routed_experts(self, cost):
        from repro.models.moe import moe_layer

        dense = transformer_layer(64, 128, 1, 16)
        moe = moe_layer(64, 128, num_experts=8, batch_size=1, seq_len=16)
        # The MoE layer has ~8x the FFN params but routed FLOPs stay close
        # to dense (one expert per token + router).
        assert cost.layer_flops(moe, 1, 16) < 1.5 * cost.layer_flops(dense, 1, 16)

    def test_cpu_update_uses_adam_bandwidth(self):
        server = a100_server()
        fast = CostModel(gpu=server.gpus[0], cpu=server.cpu, adam_bandwidth=20e9)
        slow = CostModel(gpu=server.gpus[0], cpu=server.cpu, adam_bandwidth=5e9)
        assert slow.cpu_update_time(10**9) == pytest.approx(
            4 * fast.cpu_update_time(10**9)
        )

    def test_gpu_update_faster_than_cpu(self, cost):
        assert cost.gpu_update_time(10**9) < cost.cpu_update_time(10**9)

    def test_invalid_batch_rejected(self, cost):
        with pytest.raises(ConfigurationError):
            cost.efficiency(0)


class TestTracerMoE:
    def test_moe_layer_tensors_traced(self, cost):
        from repro.models import get_model

        model = get_model("t5-moe-1.2t").with_experts(8).with_layers(2).build(1, 64)
        trace = Tracer(cost).trace(model)
        names = [a.name for a in trace.pattern.accesses]
        assert any(".expert0." in n for n in names)
        assert any(".router" in n for n in names)
        # Every expert's params + grads + optim states are covered.
        expert_params = [n for n in names if ".expert" in n and not n.endswith(".grad")
                         and not n.endswith(".optim")]
        assert len(expert_params) == 2 * 8 * 2  # layers x experts x (w1,w2)

    def test_t5_decoder_cross_attention_traced(self, cost):
        from repro.models import get_model

        model = get_model("t5-1.4b").with_layers(2).build(1, 64)
        trace = Tracer(cost).trace(model)
        names = [a.name for a in trace.pattern.accesses]
        assert any(".xattn." in n for n in names)
