"""Capacity planner and baseline engines (DeepSpeed-like, Megatron-like)."""

import pytest

from repro.baselines import DeepSpeedEngine, MegatronEngine
from repro.engine.planner import CapacityPlanner
from repro.engine.moe import MoESimEngine
from repro.errors import OutOfMemoryError
from repro.hardware.cluster import a100_cluster
from repro.models import get_model
from repro.models.moe import MoEConfig


@pytest.fixture(scope="module")
def cluster():
    return a100_cluster(1)


@pytest.fixture(scope="module")
def planner(cluster):
    return CapacityPlanner(cluster)


class TestCapacityPlanner:
    def test_angel_fits_small_model(self, planner):
        assert planner.angel_fits(get_model("gpt3-1.7b")).fits

    def test_angel_exceeds_deepspeed_capacity(self, planner):
        """The headline Table 5 shape: Angel ~2x DeepSpeed max scale."""
        base = get_model("gpt3-28b")
        ds = planner.max_layers(base, "deepspeed")
        angel = planner.max_layers(base, "angel-ptm")
        assert 1.7 <= angel / ds <= 2.4

    def test_max_layers_is_maximal(self, planner):
        base = get_model("gpt3-28b")
        best = planner.max_layers(base, "deepspeed")
        assert planner.deepspeed_fits(base.with_layers(best)).fits
        assert not planner.deepspeed_fits(base.with_layers(best + 1)).fits

    def test_max_batch_is_maximal(self, planner):
        config = get_model("gpt3-28b")
        best = planner.max_micro_batch(config, "angel-ptm")
        assert planner.angel_fits(config, micro_batch=best).fits
        assert not planner.angel_fits(config, micro_batch=best + 1).fits

    def test_batch_shrinks_with_model_size(self, planner):
        base = get_model("gpt3-28b")
        small = planner.max_micro_batch(base, "angel-ptm")
        large = planner.max_micro_batch(base.with_layers(60), "angel-ptm")
        assert large < small

    def test_ssd_extends_angel_capacity(self, planner):
        base = get_model("gpt3-28b")
        plain = planner.max_layers(base, "angel-ptm", use_ssd=False)
        with_ssd = planner.max_layers(base, "angel-ptm", use_ssd=True)
        assert with_ssd > plain

    def test_unknown_system_rejected(self, planner):
        with pytest.raises(ValueError):
            planner.max_layers(get_model("gpt3-28b"), "tensorflow")

    def test_report_carries_reason(self, planner):
        huge = get_model("gpt3-28b").with_layers(400)
        report = planner.deepspeed_fits(huge)
        assert not report.fits
        assert "CPU" in report.reason or "GPU" in report.reason


class TestDeepSpeedEngine:
    def test_simulates_supported_model(self, cluster):
        result = DeepSpeedEngine(cluster).simulate(get_model("gpt3-13b"), 4)
        assert result.samples_per_second > 0

    def test_raises_oom_beyond_capacity(self, cluster):
        engine = DeepSpeedEngine(cluster)
        with pytest.raises(OutOfMemoryError):
            engine.simulate(get_model("gpt3-120b"), 1)

    def test_angel_faster_at_same_scale(self, cluster):
        """Figure 7's core claim on a mid-size model."""
        from repro.scheduler.unified import UnifiedScheduler

        config = get_model("gpt3-13b")
        ds = DeepSpeedEngine(cluster).simulate(config, 8)
        angel = UnifiedScheduler(cluster).simulate(config, 8)
        assert angel.samples_per_second > ds.samples_per_second

    def test_end_of_step_update_not_overlapped(self, cluster):
        """DeepSpeed's CPU pass serializes after backward: its GPU idle
        fraction exceeds Angel-PTM's on the same workload."""
        from repro.scheduler.unified import UnifiedScheduler

        config = get_model("gpt3-28b")
        ds = DeepSpeedEngine(cluster).simulate(config, 2)
        angel = UnifiedScheduler(cluster).simulate(config, 2)
        assert ds.gpu_busy_fraction < angel.gpu_busy_fraction


class TestMegatronEngine:
    def test_vanilla_dp_for_small_model(self, cluster):
        choice = MegatronEngine(cluster).best_strategy(get_model("gpt3-1.7b"))
        assert choice.tensor_parallel == 1
        assert choice.pipeline_parallel == 1
        assert choice.data_parallel == 8

    def test_oom_for_large_model_on_one_server(self, cluster):
        with pytest.raises(OutOfMemoryError):
            MegatronEngine(cluster).best_strategy(get_model("gpt3-55b"))

    def test_more_servers_enable_larger_models(self):
        config = get_model("gpt3-30b").with_layers(37)
        with pytest.raises(OutOfMemoryError):
            MegatronEngine(a100_cluster(1)).best_strategy(config)
        choice = MegatronEngine(a100_cluster(4)).best_strategy(config)
        assert choice.degree == 32

    def test_model_parallelism_used_when_needed(self):
        config = get_model("gpt3-30b").with_layers(37)
        choice = MegatronEngine(a100_cluster(4)).best_strategy(config)
        assert choice.tensor_parallel * choice.pipeline_parallel > 1

    def test_factorizations_cover_gpu_count(self, cluster):
        engine = MegatronEngine(cluster)
        for tp, pp, dp in engine._factorizations():
            assert tp * pp * dp == cluster.num_gpus


class TestMoEEngine:
    def test_simulation_scales_with_cluster(self):
        moe64 = MoEConfig(d_model=256, d_ffn=512, num_experts=64)
        result8 = MoESimEngine(a100_cluster(1)).simulate(moe64, 4, micro_batch=4)
        moe128 = MoEConfig(d_model=256, d_ffn=512, num_experts=128)
        result16 = MoESimEngine(a100_cluster(2)).simulate(moe128, 4, micro_batch=4)
        ratio = result16.samples_per_second / result8.samples_per_second
        assert 1.5 < ratio < 2.1  # near-linear

    def test_lock_free_speedup_with_ssd(self):
        moe = MoEConfig(d_model=1024, d_ffn=16384, num_experts=2304)
        engine = MoESimEngine(a100_cluster(8))
        sync = engine.simulate(moe, 16, micro_batch=8, use_ssd=True)
        lockfree = engine.simulate(
            moe, 16, micro_batch=8, use_ssd=True, lock_free=True
        )
        assert lockfree.samples_per_second > 1.5 * sync.samples_per_second
        assert lockfree.staleness > 0

    def test_experts_per_gpu_reported(self):
        moe = MoEConfig(d_model=64, d_ffn=128, num_experts=72)
        result = MoESimEngine(a100_cluster(1)).simulate(moe, 2, micro_batch=2)
        assert result.experts_per_gpu == 9


class TestPatrickStarEngine:
    def test_chunk_exceeds_largest_tensor(self):
        from repro.baselines import PatrickStarEngine

        engine = PatrickStarEngine(a100_cluster(1))
        config = get_model("gpt3-28b")
        chunk = engine.chunk_bytes(config)
        model = config.build(1, 2048)
        largest = max(
            p.bytes_single for layer in model.layers for p in layer.params
        )
        assert chunk >= largest
        assert chunk & (chunk - 1) == 0  # power of two

    def test_chunk_floor_for_small_models(self):
        from repro.baselines import PatrickStarEngine
        from repro.units import MiB

        engine = PatrickStarEngine(a100_cluster(1))
        assert engine.chunk_bytes(get_model("gpt3-1.7b")) >= 64 * MiB

    def test_pages_not_slower_than_chunks(self):
        from repro.baselines import PatrickStarEngine
        from repro.scheduler.unified import UnifiedScheduler

        cluster = a100_cluster(1)
        config = get_model("gpt3-28b")
        pages = UnifiedScheduler(cluster).simulate(config, 2)
        chunks = PatrickStarEngine(cluster).simulate(config, 2)
        assert pages.samples_per_second >= chunks.samples_per_second * 0.999


class TestPlannerSsdBranches:
    def test_ssd_overflow_reported(self):
        """A model whose optimizer states exceed even the SSD is refused."""
        from repro.units import GiB

        small_ssd = a100_cluster(1, ssd_bytes=64 * GiB)
        planner = CapacityPlanner(small_ssd)
        huge = get_model("gpt3-28b").with_layers(40)
        report = planner.angel_fits(huge, use_ssd=True)
        assert not report.fits
        assert "SSD" in report.reason

    def test_working_set_bound_reported(self):
        planner = CapacityPlanner(a100_cluster(1))
        config = get_model("gpt3-175b")  # one gathered layer ~9.9 GiB
        report = planner.angel_fits(config, micro_batch=64)
        assert not report.fits
        assert "working set" in report.reason
