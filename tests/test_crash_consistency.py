"""Crash-consistency: a save killed at any point never corrupts the
latest good snapshot, and a torn final file is always *detected*.

Section 3.1's claim is "a crash mid-save never loses the previous
checkpoint"; these tests kill saves at randomized byte offsets and at
every structural point (mid-write, pre-rename, post-crash temp litter)
and assert the previous snapshot always restores with checksums intact.
"""

import glob
import os

import numpy as np
import pytest

from repro.checkpoint.snapshot import Snapshot, load_snapshot, save_snapshot
from repro.errors import CheckpointError


def make_snapshot(seed: int) -> Snapshot:
    rng = np.random.default_rng(seed)
    snapshot = Snapshot(metadata={"step": seed})
    snapshot.add_array("weights", rng.normal(size=(32, 8)).astype(np.float32))
    snapshot.add_array("moments", rng.normal(size=(64,)).astype(np.float32))
    return snapshot


def assert_is_version(snapshot: Snapshot, seed: int) -> None:
    expected = make_snapshot(seed)
    assert snapshot.metadata["step"] == seed
    for name in expected.arrays:
        np.testing.assert_array_equal(snapshot.arrays[name], expected.arrays[name])


class TestKilledSaves:
    def test_failure_during_write_preserves_previous(self, tmp_path, monkeypatch):
        path = str(tmp_path / "ckpt.npz")
        save_snapshot(make_snapshot(1), path)

        import repro.checkpoint.snapshot as snapshot_module

        def exploding_savez(handle, **payload):
            handle.write(b"partial garbage")
            raise OSError("disk error mid-write")

        monkeypatch.setattr(snapshot_module.np, "savez", exploding_savez)
        with pytest.raises(OSError):
            save_snapshot(make_snapshot(2), path)
        monkeypatch.undo()

        assert glob.glob(str(tmp_path / "*.tmp")) == []  # staging cleaned
        assert_is_version(load_snapshot(path), 1)

    def test_failure_at_rename_preserves_previous(self, tmp_path, monkeypatch):
        path = str(tmp_path / "ckpt.npz")
        save_snapshot(make_snapshot(1), path)

        def exploding_replace(src, dst):
            raise OSError("killed before rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError):
            save_snapshot(make_snapshot(2), path)
        monkeypatch.undo()

        assert glob.glob(str(tmp_path / "*.tmp")) == []
        assert_is_version(load_snapshot(path), 1)

    def test_crash_leftover_temp_files_do_not_affect_load(self, tmp_path):
        """A hard crash can strand staging files; they must be inert."""
        path = str(tmp_path / "ckpt.npz")
        save_snapshot(make_snapshot(1), path)
        full = (tmp_path / "full.npz")
        save_snapshot(make_snapshot(2), str(full))
        payload = full.read_bytes()
        rng = np.random.default_rng(7)
        for i, offset in enumerate(rng.integers(0, len(payload), size=8)):
            (tmp_path / f"stranded{i}.tmp").write_bytes(payload[: int(offset)])
        assert_is_version(load_snapshot(path), 1)

    def test_data_is_fsynced_before_rename(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        real_replace = os.replace

        def recording_fsync(fd):
            synced.append("fsync")
            return real_fsync(fd)

        def recording_replace(src, dst):
            synced.append("replace")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "fsync", recording_fsync)
        monkeypatch.setattr(os, "replace", recording_replace)
        save_snapshot(make_snapshot(1), str(tmp_path / "ckpt.npz"))
        # File contents are durable before the rename publishes them,
        # and the directory entry is synced after.
        assert synced[0] == "fsync"
        assert "replace" in synced
        assert synced.index("fsync") < synced.index("replace")
        assert synced.index("replace") < len(synced) - 1  # dir fsync after


class TestTornFinalFiles:
    def test_truncation_at_random_offsets_is_always_detected(self, tmp_path):
        """If the final file itself is torn (lost fsync, dying disk), the
        checksummed manifest must refuse it — never silently load."""
        path = tmp_path / "ckpt.npz"
        save_snapshot(make_snapshot(3), str(path))
        payload = path.read_bytes()
        rng = np.random.default_rng(11)
        offsets = sorted(set(int(x) for x in rng.integers(1, len(payload) - 1, size=16)))
        for offset in offsets:
            torn = tmp_path / f"torn-{offset}.npz"
            torn.write_bytes(payload[:offset])
            with pytest.raises(CheckpointError):
                load_snapshot(str(torn))

    def test_flipped_bytes_fail_checksum(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_snapshot(make_snapshot(4), str(path))
        payload = bytearray(path.read_bytes())
        # Flip bytes inside the payload body (past the zip local header).
        payload[len(payload) // 2] ^= 0xFF
        torn = tmp_path / "flipped.npz"
        torn.write_bytes(bytes(payload))
        with pytest.raises(CheckpointError):
            load_snapshot(str(torn))

    def test_intact_file_round_trips(self, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_snapshot(make_snapshot(5), str(path))
        assert_is_version(load_snapshot(str(path)), 5)
