"""Distributed telemetry: per-process export + cluster trace collection."""

import json
import pickle

import pytest

from repro import api
from repro.errors import ConfigurationError
from repro.observe.watchdog import Watchdog
from repro.telemetry import ManualClock, Telemetry
from repro.telemetry.collect import (
    TraceCollector,
    align_streams,
    load_stream,
    load_streams,
    membership_anchors,
    merge_rollup,
    parse_metric_key,
    read_jsonl,
    render_top,
    replay_watchdog,
    tail_state,
    tenant_traffic,
)
from repro.telemetry.export import SinkSpec, telemetry_dir
from repro.telemetry.registry import Histogram, nearest_rank

TORN_TAIL = '{"kind": "metrics", "step": 4, "counters": {"tru'


def _anchor_events(trace):
    return [e for e in trace["traceEvents"] if e.get("cat") == "anchor"]


def _span_events(trace, lane=None):
    events = [
        e for e in trace["traceEvents"]
        if e.get("ph") == "X" and e.get("cat") not in
        ("anchor", "alert", "membership")
    ]
    if lane is None:
        return events
    # build_chrome_trace stores the track (lane) name in ``cat``.
    return [e for e in events if e.get("cat") == lane]


class TestNearestRank:
    def test_empty_and_bounds(self):
        assert nearest_rank([], 99) == 0.0
        assert nearest_rank([5.0], 0) == 5.0
        assert nearest_rank([5.0], 100) == 5.0

    def test_unsorted_input_is_sorted(self):
        samples = [9.0, 1.0, 5.0, 3.0, 7.0]
        assert nearest_rank(samples, 50) == 5.0
        assert nearest_rank(samples, 100) == 9.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            nearest_rank([1.0], 101)
        with pytest.raises(ConfigurationError):
            nearest_rank([1.0], -1)

    def test_histogram_merge_and_percentile(self):
        a = Histogram("h", {})
        a.observe(1.0)
        a.observe(2.0)
        b = Histogram("h", {})
        b.merge(a.samples)
        b.merge([10.0])
        assert sorted(b.samples) == [1.0, 2.0, 10.0]
        assert b.percentile(100) == 10.0
        # merge() copies: mutating the donor doesn't leak into b.
        a.observe(99.0)
        assert 99.0 not in b.samples


class TestSinkFormat:
    def test_meta_is_first_line_and_flushed_at_open(self, tmp_path):
        spec = SinkSpec(str(tmp_path / "telemetry"))
        sink = spec.open("w0i0", role="rank", tenant="ads")
        # Before any step/flush the meta line is already on disk.
        events, skipped = read_jsonl(sink.path)
        assert skipped == 0
        assert events[0]["kind"] == "meta"
        assert events[0]["source"] == "w0i0"
        assert events[0]["role"] == "rank"
        assert events[0]["tenant"] == "ads"
        assert events[0]["version"] == 1
        sink.close()

    def test_spans_metrics_and_alerts_roundtrip(self, tmp_path):
        clock = ManualClock(100.0)
        spec = SinkSpec(str(tmp_path / "telemetry"))
        with spec.open("w0i0", clock=clock) as sink:
            telemetry = sink.telemetry
            with telemetry.span("step0", track="train", step=0):
                clock.advance(0.25)
            telemetry.counter("worker.steps").inc()
            telemetry.gauge("worker.step").set(1)
            telemetry.histogram("step.seconds").observe(0.25)
            sink.step(0)
        events, skipped = read_jsonl(spec.path_for("w0i0"))
        assert skipped == 0
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "meta"
        span = next(e for e in events if e["kind"] == "span")
        # Span times are absolute local perf seconds (tracer epoch added
        # back), so the collector only needs one offset per stream.
        assert span["start"] == pytest.approx(100.0)
        assert span["end"] == pytest.approx(100.25)
        metrics = next(e for e in events if e["kind"] == "metrics")
        assert metrics["counters"]["worker.steps"] == 1
        assert metrics["gauges"]["worker.step"] == 1
        assert metrics["histograms"]["step.seconds"] == [0.25]

    def test_anchor_flushes_immediately(self, tmp_path):
        spec = SinkSpec(str(tmp_path / "telemetry"))
        sink = spec.open("w1i0", clock=ManualClock(5.0))
        sink.anchor("generation:1", rank=1)
        # No close, no step: the anchor must already be durable.
        events, _ = read_jsonl(sink.path)
        assert any(
            e["kind"] == "anchor" and e["name"] == "generation:1"
            for e in events
        )
        sink.close()

    def test_spec_is_picklable_and_validates(self, tmp_path):
        spec = SinkSpec(str(tmp_path), flush_interval=3)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        with pytest.raises(ConfigurationError):
            SinkSpec(str(tmp_path), flush_interval=0)

    def test_parse_metric_key(self):
        assert parse_metric_key("a.b") == ("a.b", {})
        assert parse_metric_key("a{t=ads,w=w1}") == \
            ("a", {"t": "ads", "w": "w1"})


class TestCrashTolerance:
    """A SIGKILLed writer leaves a truncated tail the collector skips."""

    def test_torn_tail_skipped_complete_events_kept(self, tmp_path):
        spec = SinkSpec(str(tmp_path / "telemetry"))
        sink = spec.open("w1i0", clock=ManualClock(0.0))
        sink.telemetry.counter("worker.steps").inc(4)
        sink.step(3)
        sink.tear()  # what _maybe_kill does right before SIGKILL
        events, skipped = read_jsonl(sink.path)
        assert skipped == 1
        assert [e["kind"] for e in events] == ["meta", "metrics"]
        assert events[1]["counters"]["worker.steps"] == 4

    def test_stream_without_meta_is_dropped(self, tmp_path):
        directory = tmp_path / "telemetry"
        directory.mkdir()
        (directory / "garbage.jsonl").write_text(TORN_TAIL)
        assert load_stream(str(directory / "garbage.jsonl")) is None
        assert load_streams(str(tmp_path)) == []

    def test_future_schema_version_refused(self, tmp_path):
        directory = tmp_path / "telemetry"
        directory.mkdir()
        path = directory / "w0i0.jsonl"
        path.write_text(json.dumps(
            {"kind": "meta", "version": 99, "source": "w0i0"}
        ) + "\n")
        with pytest.raises(ConfigurationError):
            load_stream(str(path))


def _two_skewed_streams(tmp_path):
    """Two sinks whose ManualClocks disagree by thousands of seconds.

    Both record the same ``generation:1`` moment, then one span each —
    the satellite scenario: anchors must coincide in the merged trace and
    span order inside each lane must survive alignment.
    """
    spec = SinkSpec(str(tmp_path / "telemetry"))
    clock_a = ManualClock(1000.0)
    with spec.open("w0i0", clock=clock_a) as a:
        a.anchor("generation:1", rank=0)
        with a.telemetry.span("step0", track="train"):
            clock_a.advance(0.5)
        with a.telemetry.span("step1", track="train"):
            clock_a.advance(0.5)
        a.step(1)
    clock_b = ManualClock(5.0)  # skewed ~995s against clock_a
    with spec.open("w1i0", clock=clock_b) as b:
        b.anchor("generation:1", rank=1)
        with b.telemetry.span("step0", track="train"):
            clock_b.advance(0.5)
        with b.telemetry.span("step1", track="train"):
            clock_b.advance(0.5)
        b.step(1)
    return spec


class TestClockAlignment:
    def test_skewed_clocks_coincide_on_anchor(self, tmp_path):
        _two_skewed_streams(tmp_path)
        collected = TraceCollector(str(tmp_path)).collect()
        assert collected.rank_lanes == ["w0i0", "w1i0"]
        # One stream aligned by wall fallback published its anchors; the
        # other matched them.
        methods = sorted(s.alignment for s in collected.streams)
        assert methods == ["anchor", "wall"]
        anchors = _anchor_events(collected.trace)
        assert len(anchors) == 2
        assert anchors[0]["ts"] == pytest.approx(anchors[1]["ts"], abs=1e-6)

    def test_span_order_preserved_per_lane(self, tmp_path):
        _two_skewed_streams(tmp_path)
        collected = TraceCollector(str(tmp_path)).collect()
        for lane in ("w0i0", "w1i0"):
            spans = _span_events(collected.trace, lane)
            names = [e["name"] for e in
                     sorted(spans, key=lambda e: e["ts"])]
            assert names == ["step0", "step1"]

    def test_membership_anchors_take_precedence(self, tmp_path):
        spec = SinkSpec(str(tmp_path / "telemetry"))
        clock = ManualClock(50.0)
        with spec.open("w0i0", clock=clock) as sink:
            sink.anchor("generation:1")
        # Coordinator wall truth: generation 1 formed at t=1234.0.
        (tmp_path / "membership_events.jsonl").write_text(json.dumps(
            {"type": "generation_formed", "generation": 1, "time": 1234.0,
             "members": {"w0i0": {}}}
        ) + "\n")
        streams = load_streams(str(tmp_path))
        from repro.telemetry.collect import load_membership
        align_streams(
            streams, membership_anchors(load_membership(str(tmp_path)))
        )
        assert streams[0].alignment == "anchor"
        assert streams[0].offset == pytest.approx(1234.0 - 50.0)

    def test_membership_lane_in_trace(self, tmp_path):
        _two_skewed_streams(tmp_path)
        (tmp_path / "membership_events.jsonl").write_text(json.dumps(
            {"type": "generation_formed", "generation": 1, "time": 7.0,
             "members": {}}
        ) + "\n")
        collected = TraceCollector(str(tmp_path)).collect()
        members = [e for e in collected.trace["traceEvents"]
                   if e.get("cat") == "membership"]
        assert [e["name"] for e in members] == ["generation_formed"]


class TestRollup:
    def _write(self, spec, source, tenant, counters, gauges=None,
               hist=None):
        with spec.open(source, role="job", tenant=tenant) as sink:
            for key, value in counters.items():
                sink.telemetry.counter(key).inc(value)
            for key, value in (gauges or {}).items():
                sink.telemetry.gauge(key).set(value)
            for value in hist or []:
                sink.telemetry.histogram("queue.wait").observe(value)
            sink.step(1)

    def test_counters_sum_gauges_max_histograms_merge(self, tmp_path):
        spec = SinkSpec(str(tmp_path / "telemetry"))
        self._write(spec, "job-0001", "ads", {"pages.moved_bytes": 100},
                    gauges={"mem.used": 7}, hist=[1.0, 2.0])
        self._write(spec, "job-0002", "nlp", {"pages.moved_bytes": 50},
                    gauges={"mem.used": 3}, hist=[10.0])
        streams = load_streams(str(tmp_path))
        rollup = merge_rollup(streams)
        assert rollup["counters"]["pages.moved_bytes"] == 150
        assert rollup["gauges"]["mem.used"] == 7
        assert rollup["histograms"]["queue.wait"]["count"] == 3
        assert rollup["histograms"]["queue.wait"]["p99"] == 10.0
        assert rollup["per_source"]["job-0001"]["tenant"] == "ads"
        assert rollup["per_source"]["job-0002"]["last_step"] == 1

    def test_tenant_traffic_totals(self, tmp_path):
        spec = SinkSpec(str(tmp_path / "telemetry"))
        self._write(spec, "job-0001", "ads",
                    {"pages.moved_bytes": 100, "pages.moves": 2,
                     "io.read_bytes": 10})
        self._write(spec, "job-0002", "ads", {"pages.moved_bytes": 40})
        self._write(spec, "job-0003", "nlp", {"io.write_bytes": 5})
        # Untenanted streams (supervisor, ranks) don't pollute totals.
        self._write(spec, "gateway", None, {"pages.moved_bytes": 999})
        traffic = tenant_traffic(load_streams(str(tmp_path)))
        assert set(traffic) == {"ads", "nlp"}
        assert traffic["ads"]["pages_moved_bytes"] == 140
        assert traffic["ads"]["page_moves"] == 2
        assert traffic["ads"]["jobs"] == 2
        assert traffic["nlp"]["io_write_bytes"] == 5

    def test_replay_fires_on_fleet_totals_not_per_stream(self, tmp_path):
        # Each stream's retry counter alone stays below the storm
        # threshold (6); the merged sum crosses it.
        spec = SinkSpec(str(tmp_path / "telemetry"))
        for source in ("w0i0", "w1i0"):
            with spec.open(source) as sink:
                counter = sink.telemetry.counter("retry.attempts")
                sink.step(0)
                counter.inc(4)
                sink.step(1)
        streams = load_streams(str(tmp_path))
        alerts = replay_watchdog(streams, Watchdog())
        assert any(a.rule == "retry_storm" for a in alerts)
        # Per-stream replay stays quiet.
        for stream in streams:
            assert replay_watchdog([stream], Watchdog()) == []


class TestTop:
    def test_tail_state_and_render(self, tmp_path):
        spec = SinkSpec(str(tmp_path / "telemetry"))
        with spec.open("w0i0") as sink:
            sink.telemetry.counter("pages.moved_bytes").inc(2048)
            sink.telemetry.gauge(
                "cluster.heartbeat.missed", worker="w1i0"
            ).set(2)
            sink.step(5)
        with spec.open("job-0001", role="job", tenant="ads") as sink:
            sink.telemetry.gauge("quota.pages_in_use", tenant="ads").set(9)
            sink.telemetry.counter("quota.rejections", tenant="ads").inc()
            sink.telemetry.counter("pages.moved_bytes").inc(4096)
            sink.step(3)
        state = tail_state(str(tmp_path))
        assert state["ranks"]["w0i0"]["step"] == 5
        assert state["ranks"]["w1i0"]["missed"] == 2
        assert state["tenants"]["ads"]["pages_in_use"] == 9
        assert state["tenants"]["ads"]["rejections"] == 1
        text = render_top(state)
        assert "w0i0" in text and "ads" in text
        assert "2.0KiB" in text  # rank page traffic formatted

    def test_cli_top_once(self, tmp_path, capsys):
        from repro.cli import main

        spec = SinkSpec(str(tmp_path / "telemetry"))
        with spec.open("w0i0") as sink:
            sink.step(1)
        assert main(["top", str(tmp_path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "w0i0" in out
        # Single-frame mode never emits the clear-screen escape.
        assert "\x1b[2J" not in out

    def test_cli_top_rejects_missing_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["top", str(tmp_path / "nope"), "--once"]) == 2


class TestTraceCollectCli:
    def test_collect_writes_artifacts_and_gates(self, tmp_path, capsys):
        from repro.cli import main

        _two_skewed_streams(tmp_path)
        code = main([
            "trace", "collect", str(tmp_path), "--min-rank-lanes", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "rank lanes" in out
        trace = json.loads((tmp_path / "cluster_trace.json").read_text())
        assert any(e.get("cat") == "anchor" for e in trace["traceEvents"])
        rollup = json.loads(
            (tmp_path / "telemetry_rollup.json").read_text()
        )
        assert set(rollup["per_source"]) == {"w0i0", "w1i0"}

    def test_collect_fails_below_min_lanes(self, tmp_path, capsys):
        from repro.cli import main

        _two_skewed_streams(tmp_path)
        assert main([
            "trace", "collect", str(tmp_path), "--min-rank-lanes", "3",
        ]) == 1

    def test_collect_rejects_missing_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "collect", str(tmp_path / "nope")]) == 2

    def test_api_trace_collect(self, tmp_path):
        _two_skewed_streams(tmp_path)
        out = tmp_path / "trace.json"
        collected = api.trace_collect(str(tmp_path), out=str(out))
        assert out.exists()
        assert collected.rank_lanes == ["w0i0", "w1i0"]
        assert collected.skipped_lines == 0


class TestSupervisorSink:
    def test_supervisor_spawn_config_carries_spec(self, tmp_path):
        """The spawn config carries a picklable SinkSpec, never the live
        telemetry object — the bug this PR fixes was workers getting
        ``telemetry=None`` and exporting nothing."""
        from dataclasses import replace

        from repro.cluster.protocol import ClusterConfig

        config = ClusterConfig(world_size=2)
        spec = SinkSpec(telemetry_dir(str(tmp_path)))
        spawn = replace(config, telemetry=Telemetry(enabled=True),
                        sink=spec)
        clone = pickle.loads(pickle.dumps(replace(spawn, telemetry=None)))
        assert clone.sink == spec
        assert clone.sink.path_for("w0i0").endswith(
            "telemetry/w0i0.jsonl"
        )
