"""Property-based tests of memory-management invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OutOfMemoryError
from repro.hardware.device import DeviceKind
from repro.memory import DevicePool, PageAllocator
from repro.memory.bfc import BfcAllocator
from repro.memory.page import MAX_TENSORS_PER_PAGE
from repro.units import KiB

PAGE = 16 * KiB


def fresh_allocator(capacity_pages=64):
    pools = {
        DeviceKind.GPU: DevicePool(
            DeviceKind.GPU, capacity_pages * PAGE, page_bytes=PAGE, backend="null"
        ),
        DeviceKind.CPU: DevicePool(
            DeviceKind.CPU, capacity_pages * PAGE, page_bytes=PAGE, backend="null"
        ),
    }
    return PageAllocator(pools)


# Each action: (nbytes to allocate) or (index of live tensor to free,
# encoded as negative).
actions = st.lists(
    st.one_of(
        st.integers(min_value=1, max_value=3 * PAGE),      # allocate nbytes
        st.integers(min_value=-20, max_value=-1),          # free live[i % len]
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(actions=actions)
def test_allocator_invariants_under_random_churn(actions):
    """Random allocate/free sequences preserve the core invariants:

    - every page holds at most two tensors,
    - pool page accounting equals the pages referenced by live tensors,
    - released pages return to the free list (no leaks),
    - live tensors' slots exactly cover their byte size.
    """
    alloc = fresh_allocator()
    pool = alloc.pool(DeviceKind.CPU)
    live = []
    for action in actions:
        if action > 0:
            try:
                tensor = alloc.allocate((action,), np.uint8, DeviceKind.CPU)
            except OutOfMemoryError:
                continue
            live.append(tensor)
        elif live:
            victim = live.pop(abs(action) % len(live) if len(live) else 0)
            victim.release()

        referenced = {
            page.page_id for tensor in live for page in tensor.page_list
        }
        assert pool.pages_in_use == len(referenced)
        for tensor in live:
            assert sum(
                page.slot_of(tensor.tensor_id)[1] for page in tensor.page_list
            ) == tensor.nbytes
            for page in tensor.page_list:
                assert len(page.tensor_ids) <= MAX_TENSORS_PER_PAGE

    for tensor in live:
        tensor.release()
    assert pool.pages_in_use == 0


@settings(max_examples=60, deadline=None)
@given(actions=actions)
def test_moves_preserve_accounting(actions):
    """Moving tensors between tiers conserves total page counts."""
    alloc = fresh_allocator()
    gpu = alloc.pool(DeviceKind.GPU)
    cpu = alloc.pool(DeviceKind.CPU)
    live = []
    for i, action in enumerate(actions):
        if action > 0:
            try:
                live.append(alloc.allocate((action,), np.uint8, DeviceKind.CPU))
            except OutOfMemoryError:
                continue
        elif live:
            tensor = live[abs(action) % len(live)]
            target = DeviceKind.GPU if i % 2 else DeviceKind.CPU
            try:
                tensor.move(target)
            except OutOfMemoryError:
                continue
        total_pages = len({
            page.page_id for tensor in live for page in tensor.page_list
        })
        assert gpu.pages_in_use + cpu.pages_in_use == total_pages


@settings(max_examples=80, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=8 * KiB), min_size=1, max_size=40),
    frees=st.lists(st.integers(min_value=0, max_value=39), max_size=40),
)
def test_bfc_blocks_never_overlap(sizes, frees):
    """BFC invariant: live blocks are disjoint and free bytes conserved."""
    bfc = BfcAllocator(512 * KiB, alignment=64)
    live = {}
    for req_id, nbytes in enumerate(sizes):
        try:
            offset = bfc.alloc(req_id, nbytes)
        except OutOfMemoryError:
            continue
        rounded = (nbytes + 63) // 64 * 64
        live[req_id] = (offset, rounded)
    for index in frees:
        if index in live:
            bfc.free(index)
            del live[index]

    spans = sorted(live.values())
    for (off_a, len_a), (off_b, _) in zip(spans, spans[1:]):
        assert off_a + len_a <= off_b
    assert bfc.free_bytes == bfc.capacity_bytes - sum(l for _, l in live.values())


@settings(max_examples=40, deadline=None)
@given(
    data=st.lists(
        st.integers(min_value=1, max_value=2 * PAGE), min_size=1, max_size=10
    )
)
def test_roundtrip_bytes_with_random_sizes(data):
    """Functional pools: write/read roundtrips for arbitrary sizes."""
    pools = {
        DeviceKind.CPU: DevicePool(
            DeviceKind.CPU, 64 * PAGE, page_bytes=PAGE, backend="ram"
        )
    }
    alloc = PageAllocator(pools)
    rng = np.random.default_rng(0)
    tensors = []
    for nbytes in data:
        tensor = alloc.allocate((nbytes,), np.uint8, DeviceKind.CPU)
        payload = rng.integers(0, 256, size=nbytes, dtype=np.uint8)
        tensor.write_array(payload)
        tensors.append((tensor, payload))
    for tensor, payload in tensors:
        assert np.array_equal(tensor.read_array(), payload)
    alloc.close()
