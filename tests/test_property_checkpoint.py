"""Property-based tests: snapshots and re-sharding over random states."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.checkpoint import ShardedCheckpoint, Snapshot, load_snapshot, reshard, save_snapshot
from repro.checkpoint.reshard import merge_shards, split_even

arrays = hnp.arrays(
    dtype=st.sampled_from([np.float32, np.float16, np.int64]),
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=8),
    elements=st.integers(min_value=-100, max_value=100),
)


@settings(max_examples=40, deadline=None)
@given(data=st.dictionaries(st.text(
    alphabet="abcdefgh", min_size=1, max_size=6), arrays, min_size=1, max_size=5,
))
def test_snapshot_roundtrip_any_arrays(data, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("snap") / "s.npz")
    snapshot = Snapshot(metadata={"step": 1})
    for name, array in data.items():
        snapshot.add_array(name, array)
    save_snapshot(snapshot, path)
    loaded = load_snapshot(path)
    assert set(loaded.arrays) == set(data)
    for name, array in data.items():
        np.testing.assert_array_equal(loaded.arrays[name], array)
        assert loaded.arrays[name].dtype == array.dtype


@settings(max_examples=60, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=200),
    ranks=st.integers(min_value=1, max_value=9),
)
def test_split_merge_identity(size, ranks):
    array = np.arange(size, dtype=np.float32)
    shards = split_even(array, ranks)
    assert len(shards) == ranks
    assert len({s.size for s in shards}) == 1  # equal shard sizes
    np.testing.assert_array_equal(merge_shards(shards, size), array)


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=4),
    src=st.integers(min_value=1, max_value=6),
    dst=st.integers(min_value=1, max_value=6),
)
def test_reshard_preserves_state_exactly(sizes, src, dst):
    rng = np.random.default_rng(0)
    state = {
        f"t{i}": rng.standard_normal(size).astype(np.float32)
        for i, size in enumerate(sizes)
    }
    sharded = ShardedCheckpoint.from_full_state(state, src)
    moved = reshard(sharded, dst)
    restored = moved.to_full_state()
    for name, array in state.items():
        np.testing.assert_array_equal(restored[name], array)


@settings(max_examples=30, deadline=None)
@given(
    num_servers=st.integers(min_value=1, max_value=16),
    num_gpus=st.sampled_from([1, 2, 4, 8]),
    gpu_gib=st.integers(min_value=16, max_value=96),
    with_ssd=st.booleans(),
)
def test_cluster_config_roundtrip(num_servers, num_gpus, gpu_gib, with_ssd):
    """Random cluster descriptions survive dict serialization exactly."""
    from repro.hardware.config_io import cluster_from_dict, cluster_to_dict

    config = {
        "num_servers": num_servers,
        "server": {
            "num_gpus": num_gpus,
            "gpu_memory_gib": gpu_gib,
            "ssd_tb": 11 if with_ssd else None,
        },
    }
    cluster = cluster_from_dict(config)
    assert cluster.num_gpus == num_servers * num_gpus
    rebuilt = cluster_from_dict(cluster_to_dict(cluster))
    assert rebuilt.num_servers == cluster.num_servers
    assert rebuilt.server.num_gpus == cluster.server.num_gpus
    assert rebuilt.server.gpus[0].memory_bytes == cluster.server.gpus[0].memory_bytes
    assert (rebuilt.server.ssd is None) == (cluster.server.ssd is None)
