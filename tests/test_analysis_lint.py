"""Concurrency lint: thread-role races, lock cycles, baseline gating."""

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis.baseline import compare, load_baseline, save_baseline
from repro.analysis.invariants import (
    LOCK_ORDER_CYCLE,
    SHARED_STATE_RACE,
    SHM_LIFECYCLE,
    SPAWN_PICKLE,
    UNBOUNDED_RECV,
)
from repro.analysis.lint import lint_tree
from repro.errors import ConfigurationError


def _lint_source(tmp_path: Path, source: str):
    (tmp_path / "module.py").write_text(textwrap.dedent(source))
    return lint_tree(tmp_path)


RACY = """
    import threading

    class Worker:
        def __init__(self):
            self.count = 0
            self.thread = None

        def start(self):
            self.thread = threading.Thread(target=self._loop)
            self.thread.start()

        def _loop(self):
            while True:
                self.count += 1

        def progress(self):
            return self.count
"""


class TestSharedStateRace:
    def test_cross_thread_write_flagged(self, tmp_path):
        findings = _lint_source(tmp_path, RACY)
        assert [f.rule for f in findings] == [SHARED_STATE_RACE]
        finding = findings[0]
        assert finding.subject == "Worker.count"
        assert "thread:_loop" in finding.roles
        assert "main" in finding.roles
        assert finding.fingerprint == (
            f"{SHARED_STATE_RACE}:module.py:Worker.count"
        )

    def test_lock_mediation_accepted(self, tmp_path):
        findings = _lint_source(tmp_path, """
            import threading

            class Worker:
                def __init__(self):
                    self.count = 0
                    self._lock = threading.Lock()

                def start(self):
                    threading.Thread(target=self._loop).start()

                def _loop(self):
                    with self._lock:
                        self.count += 1

                def progress(self):
                    return self.count
        """)
        assert findings == []

    def test_mediated_attribute_types_exempt(self, tmp_path):
        findings = _lint_source(tmp_path, """
            import queue
            import threading

            class Worker:
                def __init__(self):
                    self.jobs = queue.Queue()
                    self.done = threading.Event()

                def start(self):
                    threading.Thread(target=self._loop).start()

                def _loop(self):
                    while not self.done.is_set():
                        self.jobs.get(True, 0.1)

                def stop(self):
                    self.done.set()
        """)
        assert findings == []

    def test_init_only_publish_is_safe(self, tmp_path):
        findings = _lint_source(tmp_path, """
            import threading

            class Worker:
                def __init__(self):
                    self.config = {"a": 1}

                def start(self):
                    threading.Thread(target=self._loop).start()

                def _loop(self):
                    return self.config["a"]
        """)
        assert findings == []

    def test_single_threaded_class_skipped(self, tmp_path):
        findings = _lint_source(tmp_path, """
            class Counter:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1
        """)
        assert findings == []

    def test_role_propagation_through_helpers(self, tmp_path):
        # The write happens in a helper called from the thread entry; the
        # read happens in a helper called from the public API.
        findings = _lint_source(tmp_path, """
            import threading

            class Worker:
                def __init__(self):
                    self.state = 0

                def start(self):
                    threading.Thread(target=self._loop).start()

                def _loop(self):
                    self._bump()

                def _bump(self):
                    self.state += 1

                def snapshot(self):
                    return self._read()

                def _read(self):
                    return self.state
        """)
        assert [f.subject for f in findings] == ["Worker.state"]


class TestLockOrderCycle:
    def test_abba_cycle_flagged(self, tmp_path):
        findings = _lint_source(tmp_path, """
            import threading

            class Transfer:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()

                def forward(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def backward(self):
                    with self._b_lock:
                        with self._a_lock:
                            pass
        """)
        cycles = [f for f in findings if f.rule == LOCK_ORDER_CYCLE]
        assert len(cycles) == 1
        assert "_a_lock" in cycles[0].subject
        assert "_b_lock" in cycles[0].subject

    def test_consistent_order_accepted(self, tmp_path):
        findings = _lint_source(tmp_path, """
            import threading

            class Transfer:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()

                def forward(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def also_forward(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass
        """)
        assert [f for f in findings if f.rule == LOCK_ORDER_CYCLE] == []


UNPICKLABLE_SPAWN = """
    import threading
    from dataclasses import dataclass
    from multiprocessing import get_context

    @dataclass
    class JobConfig:
        steps: int
        lock: threading.Lock
        done: threading.Event

    def launch(config: JobConfig):
        ctx = get_context("spawn")
        proc = ctx.Process(target=work, args=(config, 0))
        proc.start()
        return proc

    def work(config, slot):
        pass
"""


class TestSpawnPickle:
    def test_unpicklable_config_crossing_spawn_flagged(self, tmp_path):
        findings = _lint_source(tmp_path, UNPICKLABLE_SPAWN)
        rules = sorted({f.rule for f in findings})
        assert rules == [SPAWN_PICKLE]
        subjects = sorted(f.subject for f in findings)
        assert subjects == ["JobConfig.done", "JobConfig.lock"]
        assert all("spawn" in f.message for f in findings)

    def test_replace_strip_is_clean(self, tmp_path):
        findings = _lint_source(tmp_path, """
            import threading
            from dataclasses import dataclass, replace
            from multiprocessing import get_context

            @dataclass
            class JobConfig:
                steps: int
                lock: threading.Lock | None

            def launch(config: JobConfig):
                ctx = get_context("spawn")
                spawn_config = replace(config, lock=None)
                proc = ctx.Process(target=work, args=(spawn_config,))
                proc.start()
                return proc

            def work(config):
                pass
        """)
        assert findings == []

    def test_constructed_config_tracked(self, tmp_path):
        findings = _lint_source(tmp_path, """
            import threading
            from dataclasses import dataclass
            from multiprocessing import get_context

            @dataclass
            class JobConfig:
                bus: threading.Condition

            def launch():
                config = JobConfig(bus=threading.Condition())
                get_context("spawn").Process(
                    target=work, args=(config,)
                ).start()

            def work(config):
                pass
        """)
        assert [f.subject for f in findings] == ["JobConfig.bus"]


class TestShmLifecycle:
    def test_missing_cleanup_flagged(self, tmp_path):
        findings = _lint_source(tmp_path, """
            from multiprocessing import shared_memory

            def make_region(nbytes):
                shm = shared_memory.SharedMemory(create=True, size=nbytes)
                return shm.name
        """)
        assert [f.rule for f in findings] == [SHM_LIFECYCLE]
        assert findings[0].subject == "make_region"

    def test_close_and_unlink_accepted(self, tmp_path):
        findings = _lint_source(tmp_path, """
            from multiprocessing import shared_memory

            def roundtrip(nbytes):
                shm = shared_memory.SharedMemory(create=True, size=nbytes)
                try:
                    return bytes(shm.buf[:4])
                finally:
                    shm.close()
                    shm.unlink()
        """)
        assert findings == []

    def test_class_owning_lifecycle_accepted(self, tmp_path):
        # Lifecycle split across methods of one class is fine: the class
        # is the ownership scope.
        findings = _lint_source(tmp_path, """
            from multiprocessing import shared_memory

            class Region:
                def __init__(self, nbytes):
                    self.shm = shared_memory.SharedMemory(
                        create=True, size=nbytes
                    )

                def close(self):
                    self.shm.close()
                    self.shm.unlink()
        """)
        assert findings == []


class TestUnboundedRecv:
    def test_bare_recv_flagged(self, tmp_path):
        findings = _lint_source(tmp_path, """
            class Client:
                def __init__(self, conn):
                    self.conn = conn

                def call(self, message):
                    self.conn.send(message)
                    return self.conn.recv()
        """)
        assert [f.rule for f in findings] == [UNBOUNDED_RECV]
        assert findings[0].subject == "Client.call.recv"

    def test_poll_guard_accepted(self, tmp_path):
        findings = _lint_source(tmp_path, """
            class Client:
                def __init__(self, conn):
                    self.conn = conn

                def call(self, message, timeout):
                    self.conn.send(message)
                    if not self.conn.poll(timeout):
                        raise TimeoutError("no reply")
                    return self.conn.recv()
        """)
        assert findings == []

    def test_bare_wait_join_get_flagged(self, tmp_path):
        findings = _lint_source(tmp_path, """
            class Pool:
                def drain(self, event, thread, jobs):
                    event.wait()
                    thread.join()
                    return jobs.get()
        """)
        assert sorted(f.subject for f in findings) == [
            "Pool.drain.get", "Pool.drain.join", "Pool.drain.wait",
        ]

    def test_timeouts_accepted(self, tmp_path):
        findings = _lint_source(tmp_path, """
            class Pool:
                def drain(self, event, thread, jobs, cond):
                    event.wait(5.0)
                    thread.join(timeout=1.0)
                    with cond:
                        cond.wait_for(lambda: True, timeout=2.0)
                    return jobs.get(True, 0.5)
        """)
        assert findings == []


class TestBaseline:
    def test_round_trip_and_compare(self, tmp_path):
        findings = _lint_source(tmp_path, RACY)
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, findings)
        accepted = load_baseline(baseline_path)
        assert set(accepted) == {f.fingerprint for f in findings}
        verdict = compare(findings, accepted)
        assert verdict["new"] == []
        assert len(verdict["accepted"]) == len(findings)
        assert verdict["resolved"] == []

    def test_new_finding_detected(self, tmp_path):
        findings = _lint_source(tmp_path, RACY)
        verdict = compare(findings, {})
        assert len(verdict["new"]) == 1

    def test_resolved_entries_reported(self, tmp_path):
        verdict = compare([], {"SA001:gone.py:Old.attr": "was accepted"})
        assert verdict["resolved"] == ["SA001:gone.py:Old.attr"]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "accepted": []}))
        with pytest.raises(ConfigurationError):
            load_baseline(path)


class TestRealTree:
    def test_repo_is_clean_against_committed_baseline(self):
        root = Path(repro.__file__).parent
        repo_root = root.parent.parent
        baseline = load_baseline(repo_root / "concurrency_baseline.json")
        verdict = compare(lint_tree(root), baseline)
        assert verdict["new"] == [], [
            f.fingerprint for f in verdict["new"]
        ]
        # The accepted entries still exist — the baseline is not stale.
        assert verdict["resolved"] == []

    def test_trainer_race_fix_is_recognized(self):
        # The satellite fix: sweep-progress counters are lock-mediated,
        # so only the accepted update_error publish remains under SA001.
        root = Path(repro.__file__).parent
        sa001 = {
            f.fingerprint for f in lint_tree(root) if f.rule == SHARED_STATE_RACE
        }
        assert sa001 == {
            "SA001:lockfree/threaded.py:LockFreeTrainer.update_error"
        }

    def test_supervisor_recv_paths_are_bounded(self):
        # The PR-9 satellite fix: every supervisor-side recv polls with a
        # timeout first, so a dead coordinator cannot hang the launcher.
        # Only the documented worker/coordinator exceptions remain.
        root = Path(repro.__file__).parent
        sa005 = sorted(
            f.fingerprint for f in lint_tree(root) if f.rule == UNBOUNDED_RECV
        )
        assert not any(":cluster/supervisor.py:" in fp for fp in sa005)
        assert "SA005:cluster/worker.py:CoordinatorClient.call.recv" in sa005

    def test_spawn_config_strip_is_the_only_sa003(self):
        # run_cluster strips telemetry via replace() before spawning; the
        # linter's single-file view cannot see the interprocedural strip,
        # so exactly this one accepted finding remains.
        root = Path(repro.__file__).parent
        sa003 = [f.fingerprint for f in lint_tree(root) if f.rule == SPAWN_PICKLE]
        assert sa003 == ["SA003:cluster/supervisor.py:ClusterConfig.telemetry"]
