"""Concurrency lint: thread-role races, lock cycles, baseline gating."""

import json
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis.baseline import compare, load_baseline, save_baseline
from repro.analysis.invariants import LOCK_ORDER_CYCLE, SHARED_STATE_RACE
from repro.analysis.lint import lint_tree
from repro.errors import ConfigurationError


def _lint_source(tmp_path: Path, source: str):
    (tmp_path / "module.py").write_text(textwrap.dedent(source))
    return lint_tree(tmp_path)


RACY = """
    import threading

    class Worker:
        def __init__(self):
            self.count = 0
            self.thread = None

        def start(self):
            self.thread = threading.Thread(target=self._loop)
            self.thread.start()

        def _loop(self):
            while True:
                self.count += 1

        def progress(self):
            return self.count
"""


class TestSharedStateRace:
    def test_cross_thread_write_flagged(self, tmp_path):
        findings = _lint_source(tmp_path, RACY)
        assert [f.rule for f in findings] == [SHARED_STATE_RACE]
        finding = findings[0]
        assert finding.subject == "Worker.count"
        assert "thread:_loop" in finding.roles
        assert "main" in finding.roles
        assert finding.fingerprint == (
            f"{SHARED_STATE_RACE}:module.py:Worker.count"
        )

    def test_lock_mediation_accepted(self, tmp_path):
        findings = _lint_source(tmp_path, """
            import threading

            class Worker:
                def __init__(self):
                    self.count = 0
                    self._lock = threading.Lock()

                def start(self):
                    threading.Thread(target=self._loop).start()

                def _loop(self):
                    with self._lock:
                        self.count += 1

                def progress(self):
                    return self.count
        """)
        assert findings == []

    def test_mediated_attribute_types_exempt(self, tmp_path):
        findings = _lint_source(tmp_path, """
            import queue
            import threading

            class Worker:
                def __init__(self):
                    self.jobs = queue.Queue()
                    self.done = threading.Event()

                def start(self):
                    threading.Thread(target=self._loop).start()

                def _loop(self):
                    while not self.done.is_set():
                        self.jobs.get()

                def stop(self):
                    self.done.set()
        """)
        assert findings == []

    def test_init_only_publish_is_safe(self, tmp_path):
        findings = _lint_source(tmp_path, """
            import threading

            class Worker:
                def __init__(self):
                    self.config = {"a": 1}

                def start(self):
                    threading.Thread(target=self._loop).start()

                def _loop(self):
                    return self.config["a"]
        """)
        assert findings == []

    def test_single_threaded_class_skipped(self, tmp_path):
        findings = _lint_source(tmp_path, """
            class Counter:
                def __init__(self):
                    self.count = 0

                def bump(self):
                    self.count += 1
        """)
        assert findings == []

    def test_role_propagation_through_helpers(self, tmp_path):
        # The write happens in a helper called from the thread entry; the
        # read happens in a helper called from the public API.
        findings = _lint_source(tmp_path, """
            import threading

            class Worker:
                def __init__(self):
                    self.state = 0

                def start(self):
                    threading.Thread(target=self._loop).start()

                def _loop(self):
                    self._bump()

                def _bump(self):
                    self.state += 1

                def snapshot(self):
                    return self._read()

                def _read(self):
                    return self.state
        """)
        assert [f.subject for f in findings] == ["Worker.state"]


class TestLockOrderCycle:
    def test_abba_cycle_flagged(self, tmp_path):
        findings = _lint_source(tmp_path, """
            import threading

            class Transfer:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()

                def forward(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def backward(self):
                    with self._b_lock:
                        with self._a_lock:
                            pass
        """)
        cycles = [f for f in findings if f.rule == LOCK_ORDER_CYCLE]
        assert len(cycles) == 1
        assert "_a_lock" in cycles[0].subject
        assert "_b_lock" in cycles[0].subject

    def test_consistent_order_accepted(self, tmp_path):
        findings = _lint_source(tmp_path, """
            import threading

            class Transfer:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()

                def forward(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def also_forward(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass
        """)
        assert [f for f in findings if f.rule == LOCK_ORDER_CYCLE] == []


class TestBaseline:
    def test_round_trip_and_compare(self, tmp_path):
        findings = _lint_source(tmp_path, RACY)
        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, findings)
        accepted = load_baseline(baseline_path)
        assert set(accepted) == {f.fingerprint for f in findings}
        verdict = compare(findings, accepted)
        assert verdict["new"] == []
        assert len(verdict["accepted"]) == len(findings)
        assert verdict["resolved"] == []

    def test_new_finding_detected(self, tmp_path):
        findings = _lint_source(tmp_path, RACY)
        verdict = compare(findings, {})
        assert len(verdict["new"]) == 1

    def test_resolved_entries_reported(self, tmp_path):
        verdict = compare([], {"SA001:gone.py:Old.attr": "was accepted"})
        assert verdict["resolved"] == ["SA001:gone.py:Old.attr"]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "accepted": []}))
        with pytest.raises(ConfigurationError):
            load_baseline(path)


class TestRealTree:
    def test_repo_is_clean_against_committed_baseline(self):
        root = Path(repro.__file__).parent
        repo_root = root.parent.parent
        baseline = load_baseline(repo_root / "concurrency_baseline.json")
        verdict = compare(lint_tree(root), baseline)
        assert verdict["new"] == [], [
            f.fingerprint for f in verdict["new"]
        ]
        # The accepted entries still exist — the baseline is not stale.
        assert verdict["resolved"] == []

    def test_trainer_race_fix_is_recognized(self):
        # The satellite fix: sweep-progress counters are lock-mediated,
        # so only the accepted update_error publish remains.
        root = Path(repro.__file__).parent
        fingerprints = {f.fingerprint for f in lint_tree(root)}
        assert fingerprints == {
            "SA001:lockfree/threaded.py:LockFreeTrainer.update_error"
        }
