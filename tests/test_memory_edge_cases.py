"""Edge cases of the memory subsystem not covered elsewhere."""

import numpy as np
import pytest

from repro.errors import AllocationError, OutOfMemoryError, TensorStateError
from repro.hardware.device import DeviceKind
from repro.memory import DevicePool, PageAllocator
from repro.memory.fragmentation import TraceEvent
from repro.units import KiB

PAGE = 16 * KiB


def small_allocator(gpu_pages=4, cpu_pages=16):
    return PageAllocator({
        DeviceKind.GPU: DevicePool(DeviceKind.GPU, gpu_pages * PAGE, page_bytes=PAGE),
        DeviceKind.CPU: DevicePool(DeviceKind.CPU, cpu_pages * PAGE, page_bytes=PAGE),
    })


class TestShareTailFlag:
    def test_share_tail_false_gets_exclusive_pages(self):
        with small_allocator() as alloc:
            nelems = PAGE + PAGE // 4  # full page + tail
            a = alloc.allocate((nelems,), np.uint8, DeviceKind.CPU, share_tail=False)
            b = alloc.allocate((nelems,), np.uint8, DeviceKind.CPU, share_tail=False)
            assert a.page_list[-1] is not b.page_list[-1]
            assert a.is_contiguous and b.is_contiguous

    def test_shared_candidate_not_reused_after_release(self):
        with small_allocator() as alloc:
            nelems = PAGE + PAGE // 4
            a = alloc.allocate((nelems,), np.uint8, DeviceKind.CPU)
            shared = a.page_list[-1]
            a.release()
            # The open shared page was returned to the pool; a fresh
            # allocation must not reference the stale page object.
            b = alloc.allocate((nelems,), np.uint8, DeviceKind.CPU)
            assert all(p.has_storage for p in b.page_list)


class TestMergeEdgeCases:
    def test_merge_oom_leaves_tensor_intact(self):
        """Merge needs fresh pages; if none exist the tensor survives."""
        with small_allocator(gpu_pages=3) as alloc:
            nelems = PAGE + PAGE // 4
            a = alloc.allocate((nelems,), np.uint8, DeviceKind.GPU)
            b = alloc.allocate((nelems,), np.uint8, DeviceKind.GPU)  # shares tail
            data = np.arange(nelems, dtype=np.uint8)
            b.write_array(data)
            assert not b.is_contiguous
            with pytest.raises(OutOfMemoryError):
                b.merge()  # needs 2 fresh pages; only 0 free
            np.testing.assert_array_equal(b.read_array(), data)

    def test_merge_split_device_rejected(self):
        with small_allocator() as alloc:
            nelems = PAGE + PAGE // 4
            a = alloc.allocate((nelems,), np.uint8, DeviceKind.CPU)
            b = alloc.allocate((nelems,), np.uint8, DeviceKind.CPU)
            a.move(DeviceKind.GPU)  # carries the shared tail page along
            assert b.device_index == -1
            with pytest.raises(TensorStateError):
                b.merge()


class TestAllocatorRegistry:
    def test_release_of_foreign_tensor_rejected(self):
        with small_allocator() as alloc_a, small_allocator() as alloc_b:
            tensor = alloc_a.allocate((10,), np.uint8, DeviceKind.CPU)
            with pytest.raises(TensorStateError):
                alloc_b.release(tensor)
            tensor.release()

    def test_tensors_listing(self):
        with small_allocator() as alloc:
            a = alloc.allocate((10,), np.uint8, DeviceKind.CPU)
            b = alloc.allocate((10,), np.uint8, DeviceKind.CPU)
            assert set(t.tensor_id for t in alloc.tensors) == {
                a.tensor_id, b.tensor_id,
            }
            a.release()
            assert [t.tensor_id for t in alloc.tensors] == [b.tensor_id]

    def test_move_to_unconfigured_device_rejected(self):
        with small_allocator() as alloc:
            tensor = alloc.allocate((10,), np.uint8, DeviceKind.CPU)
            with pytest.raises(AllocationError):
                tensor.move(DeviceKind.SSD)


class TestTraceEventHelpers:
    def test_constructors(self):
        alloc_event = TraceEvent.alloc(3, 128)
        free_event = TraceEvent.free(3)
        assert alloc_event.op == "alloc" and alloc_event.nbytes == 128
        assert free_event.op == "free" and free_event.req_id == 3

    def test_unknown_op_rejected_by_replay(self):
        from repro.memory.bfc import BfcAllocator
        from repro.memory.fragmentation import replay

        with pytest.raises(ValueError):
            replay(BfcAllocator(1024), [TraceEvent("defrag", 1, 0)])
