"""Edge cases of the memory subsystem not covered elsewhere."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError, OutOfMemoryError, TensorStateError
from repro.hardware.device import DeviceKind
from repro.memory import DevicePool, PageAllocator
from repro.memory.fragmentation import TraceEvent
from repro.units import KiB

PAGE = 16 * KiB


def small_allocator(gpu_pages=4, cpu_pages=16):
    return PageAllocator({
        DeviceKind.GPU: DevicePool(DeviceKind.GPU, gpu_pages * PAGE, page_bytes=PAGE),
        DeviceKind.CPU: DevicePool(DeviceKind.CPU, cpu_pages * PAGE, page_bytes=PAGE),
    })


class TestShareTailFlag:
    def test_share_tail_false_gets_exclusive_pages(self):
        with small_allocator() as alloc:
            nelems = PAGE + PAGE // 4  # full page + tail
            a = alloc.allocate((nelems,), np.uint8, DeviceKind.CPU, share_tail=False)
            b = alloc.allocate((nelems,), np.uint8, DeviceKind.CPU, share_tail=False)
            assert a.page_list[-1] is not b.page_list[-1]
            assert a.is_contiguous and b.is_contiguous

    def test_shared_candidate_not_reused_after_release(self):
        with small_allocator() as alloc:
            nelems = PAGE + PAGE // 4
            a = alloc.allocate((nelems,), np.uint8, DeviceKind.CPU)
            shared = a.page_list[-1]
            a.release()
            # The open shared page was returned to the pool; a fresh
            # allocation must not reference the stale page object.
            b = alloc.allocate((nelems,), np.uint8, DeviceKind.CPU)
            assert all(p.has_storage for p in b.page_list)


class TestMergeEdgeCases:
    def test_merge_oom_leaves_tensor_intact(self):
        """Merge needs fresh pages; if none exist the tensor survives."""
        with small_allocator(gpu_pages=3) as alloc:
            nelems = PAGE + PAGE // 4
            a = alloc.allocate((nelems,), np.uint8, DeviceKind.GPU)
            b = alloc.allocate((nelems,), np.uint8, DeviceKind.GPU)  # shares tail
            data = np.arange(nelems, dtype=np.uint8)
            b.write_array(data)
            assert not b.is_contiguous
            with pytest.raises(OutOfMemoryError):
                b.merge()  # needs 2 fresh pages; only 0 free
            np.testing.assert_array_equal(b.read_array(), data)

    def test_merge_split_device_rejected(self):
        with small_allocator() as alloc:
            nelems = PAGE + PAGE // 4
            a = alloc.allocate((nelems,), np.uint8, DeviceKind.CPU)
            b = alloc.allocate((nelems,), np.uint8, DeviceKind.CPU)
            a.move(DeviceKind.GPU)  # carries the shared tail page along
            assert b.device_index == -1
            with pytest.raises(TensorStateError):
                b.merge()


class TestAllocatorRegistry:
    def test_release_of_foreign_tensor_rejected(self):
        with small_allocator() as alloc_a, small_allocator() as alloc_b:
            tensor = alloc_a.allocate((10,), np.uint8, DeviceKind.CPU)
            with pytest.raises(TensorStateError):
                alloc_b.release(tensor)
            tensor.release()

    def test_tensors_listing(self):
        with small_allocator() as alloc:
            a = alloc.allocate((10,), np.uint8, DeviceKind.CPU)
            b = alloc.allocate((10,), np.uint8, DeviceKind.CPU)
            assert set(t.tensor_id for t in alloc.tensors) == {
                a.tensor_id, b.tensor_id,
            }
            a.release()
            assert [t.tensor_id for t in alloc.tensors] == [b.tensor_id]

    def test_move_to_unconfigured_device_rejected(self):
        with small_allocator() as alloc:
            tensor = alloc.allocate((10,), np.uint8, DeviceKind.CPU)
            with pytest.raises(AllocationError):
                tensor.move(DeviceKind.SSD)


class TestTraceEventHelpers:
    def test_constructors(self):
        alloc_event = TraceEvent.alloc(3, 128)
        free_event = TraceEvent.free(3)
        assert alloc_event.op == "alloc" and alloc_event.nbytes == 128
        assert free_event.op == "free" and free_event.req_id == 3

    def test_unknown_op_rejected_by_replay(self):
        from repro.memory.bfc import BfcAllocator
        from repro.memory.fragmentation import replay

        with pytest.raises(ValueError):
            replay(BfcAllocator(1024), [TraceEvent("defrag", 1, 0)])


# ---------------------------------------------------------------------------
# Arena storage API (zero-copy rework)
# ---------------------------------------------------------------------------
class TestArenaBackends:
    def test_view_window_is_writable_and_aliased(self):
        from repro.memory.arena import ArenaPoolBackend

        backend = ArenaPoolBackend(num_pages=4, page_bytes=64)
        try:
            backend.view(2, 8, 4)[:] = b"abcd"
            out = bytearray(4)
            assert backend.readinto(2, 8, out) == 4
            assert bytes(out) == b"abcd"
        finally:
            backend.close()

    def test_view_outside_arena_rejected(self):
        from repro.memory.arena import ArenaPoolBackend

        backend = ArenaPoolBackend(num_pages=2, page_bytes=64)
        try:
            with pytest.raises(AllocationError):
                backend.view(1, 32, 64)  # spills past the last page
        finally:
            backend.close()

    def test_shared_arena_exports_descriptor(self):
        from repro.memory.arena import SHM_DESCRIPTOR, ArenaPoolBackend

        private = ArenaPoolBackend(num_pages=2, page_bytes=64)
        shared = ArenaPoolBackend(num_pages=2, page_bytes=64, shared=True)
        try:
            assert private.descriptor() is None
            kind, name = shared.descriptor()
            assert kind == SHM_DESCRIPTOR and name == shared.name
        finally:
            private.close()
            shared.close()

    def test_file_backend_pread_fallback_roundtrip(self):
        from repro.memory.arena import FilePoolBackend

        backend = FilePoolBackend(num_pages=4, page_bytes=64, use_mmap=False)
        try:
            payload = bytes(range(64))
            assert backend.write_from(3, 0, payload) == 64
            out = bytearray(64)
            assert backend.readinto(3, 0, out) == 64
            assert bytes(out) == payload
        finally:
            backend.close()

    def test_file_backend_short_read_is_an_error(self, monkeypatch):
        """EOF mid-range must raise, never silently truncate the page."""
        import os

        from repro.memory.arena import FilePoolBackend

        backend = FilePoolBackend(num_pages=2, page_bytes=64, use_mmap=False)
        try:
            monkeypatch.setattr(os, "pread", lambda fd, n, off: b"")
            with pytest.raises(AllocationError, match="short read"):
                backend.readinto(0, 0, bytearray(64))
        finally:
            backend.close()

    def test_legacy_bytes_backend_adapted_with_warning(self):
        class BytesBackend:
            def __init__(self):
                self.store = {}

            def read(self, index, offset, nbytes):
                return self.store.get((index, offset), bytes(nbytes))

            def write(self, index, offset, data):
                self.store[(index, offset)] = bytes(data)

            def close(self):
                pass

        with pytest.warns(DeprecationWarning, match="bytes-based"):
            pool = DevicePool(
                DeviceKind.CPU, 4 * PAGE, page_bytes=PAGE,
                backend=BytesBackend(),
            )
        alloc = PageAllocator({DeviceKind.CPU: pool})
        with alloc:
            tensor = alloc.allocate((PAGE,), np.uint8, DeviceKind.CPU)
            data = np.arange(PAGE, dtype=np.uint8)
            tensor.write_array(data)
            np.testing.assert_array_equal(tensor.read_array(), data)

    def test_legacy_short_read_rejected(self):
        from repro.memory.arena import LegacyBackendAdapter

        class ShortReader:
            def read(self, index, offset, nbytes):
                return b"\x00" * (nbytes // 2)

            def write(self, index, offset, data):
                pass

            def close(self):
                pass

        with pytest.warns(DeprecationWarning):
            adapted = LegacyBackendAdapter(ShortReader())
        with pytest.raises(AllocationError, match="short read"):
            adapted.readinto(0, 0, bytearray(32))


class TestMovePagesApi:
    def three_tier(self, gpu_pages=6, cpu_pages=32, ssd_pages=32):
        return PageAllocator({
            DeviceKind.GPU: DevicePool(
                DeviceKind.GPU, gpu_pages * PAGE, page_bytes=PAGE
            ),
            DeviceKind.CPU: DevicePool(
                DeviceKind.CPU, cpu_pages * PAGE, page_bytes=PAGE
            ),
            DeviceKind.SSD: DevicePool(
                DeviceKind.SSD, ssd_pages * PAGE, page_bytes=PAGE,
                backend="file",
            ),
        })

    def test_shared_tail_moves_exactly_once(self):
        """Two tensors sharing a tail page: the group moves each unique
        page once — MoveReport counts pages, not tensor references."""
        with self.three_tier() as alloc:
            nelems = PAGE + PAGE // 4
            a = alloc.allocate((nelems,), np.uint8, DeviceKind.CPU)
            b = alloc.allocate((nelems,), np.uint8, DeviceKind.CPU)
            assert a.page_list[-1] is b.page_list[-1]  # shared tail
            unique_pages = {id(p) for t in (a, b) for p in t.page_list}
            data_a = np.arange(nelems, dtype=np.uint8)
            data_b = data_a[::-1].copy()
            a.write_array(data_a)
            b.write_array(data_b)

            report = alloc.move_pages([a, b], DeviceKind.GPU)
            assert report.pages_moved == len(unique_pages) == 3
            assert report.bytes_moved == 3 * PAGE
            np.testing.assert_array_equal(a.read_array(), data_a)
            np.testing.assert_array_equal(b.read_array(), data_b)

    def test_move_plan_skips_resident_pages(self):
        from repro.memory import MovePlan

        with self.three_tier() as alloc:
            tensor = alloc.allocate((PAGE,), np.uint8, DeviceKind.GPU)
            plan = alloc.plan_move([tensor], DeviceKind.GPU)
            assert isinstance(plan, MovePlan) and not plan.pages
            report = alloc.move_pages(plan)
            assert report.pages_moved == 0

    def test_deprecated_move_names_warn_and_delegate(self):
        with self.three_tier() as alloc:
            tensor = alloc.allocate((PAGE,), np.uint8, DeviceKind.CPU)
            data = np.arange(PAGE, dtype=np.uint8)
            tensor.write_array(data)
            with pytest.warns(DeprecationWarning, match="move_pages"):
                tensor.move(DeviceKind.GPU)
            assert tensor.device_kind is DeviceKind.GPU
            with pytest.warns(DeprecationWarning, match="move_pages"):
                moved = alloc.move_many([tensor], DeviceKind.SSD)
            assert moved == PAGE  # old name returns bytes moved
            np.testing.assert_array_equal(tensor.read_array(), data)


# Interleaved-churn property: which tensor, and what to do with it.
# Devices move it; "cycle" releases and reallocates it with fresh bytes.
churn = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.sampled_from(["gpu", "cpu", "ssd", "cycle"]),
    ),
    min_size=1,
    max_size=25,
)


@settings(max_examples=40, deadline=None)
@given(actions=churn)
def test_churn_across_tiers_preserves_bytes(actions):
    """Random interleaved acquire/release/move across all three tiers:
    every live tensor reads back exactly the bytes last written, no
    matter which arenas its pages have visited or who shares its tail."""
    devices = {
        "gpu": DeviceKind.GPU, "cpu": DeviceKind.CPU, "ssd": DeviceKind.SSD,
    }
    rng = np.random.default_rng(0)
    alloc = PageAllocator({
        DeviceKind.GPU: DevicePool(DeviceKind.GPU, 8 * PAGE, page_bytes=PAGE),
        DeviceKind.CPU: DevicePool(DeviceKind.CPU, 32 * PAGE, page_bytes=PAGE),
        DeviceKind.SSD: DevicePool(
            DeviceKind.SSD, 32 * PAGE, page_bytes=PAGE, backend="file"
        ),
    })
    with alloc:
        # Odd sizes so tails are shared between neighbours at birth.
        sizes = [PAGE // 2, PAGE + PAGE // 4, 2 * PAGE, PAGE // 3,
                 PAGE + PAGE // 2, 3 * PAGE // 4]
        live, expected = [], []
        for size in sizes:
            data = rng.integers(0, 256, size=size, dtype=np.uint8)
            tensor = alloc.allocate((size,), np.uint8, DeviceKind.CPU)
            tensor.write_array(data)
            live.append(tensor)
            expected.append(data)

        for index, action in actions:
            tensor = live[index]
            if action == "cycle":
                tensor.release()
                data = rng.integers(
                    0, 256, size=sizes[index], dtype=np.uint8
                )
                tensor = alloc.allocate(
                    (sizes[index],), np.uint8, DeviceKind.CPU
                )
                tensor.write_array(data)
                live[index] = tensor
                expected[index] = data
                continue
            # Move a pair so MoveGroups span tensors (and shared tails).
            partner = live[(index + 1) % len(live)]
            try:
                alloc.move_pages([tensor, partner], devices[action])
            except OutOfMemoryError:
                continue  # tiny GPU pool; the property is about bytes

        for tensor, data in zip(live, expected):
            np.testing.assert_array_equal(tensor.read_array(), data)
