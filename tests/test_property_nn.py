"""Property-based tests of autograd and lock-free semantics."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import MixedPrecisionAdam, Tensor, softmax
from repro.nn.functional import layer_norm


small_floats = hnp.arrays(
    dtype=np.float32,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=6),
    elements=st.floats(min_value=-5, max_value=5, width=32),
)


@settings(max_examples=60, deadline=None)
@given(x=small_floats)
def test_softmax_rows_sum_to_one(x):
    out = softmax(Tensor(x)).numpy()
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-4)
    assert (out >= 0).all()


@settings(max_examples=60, deadline=None)
@given(x=small_floats)
def test_sum_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    np.testing.assert_array_equal(t.grad, np.ones_like(x))


@settings(max_examples=60, deadline=None)
@given(
    x=hnp.arrays(
        dtype=np.float32,
        shape=st.tuples(st.integers(1, 5), st.integers(2, 8)),
        elements=st.floats(min_value=-3, max_value=3, width=32),
    )
)
def test_layer_norm_output_standardized(x):
    dim = x.shape[-1]
    w = Tensor(np.ones(dim, dtype=np.float32))
    b = Tensor(np.zeros(dim, dtype=np.float32))
    out = layer_norm(Tensor(x), w, b).numpy()
    np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)
    # Variance ~1 unless the row is (near-)constant.
    variances = x.var(axis=-1)
    for row_var, row in zip(variances, out):
        if row_var > 1e-3:
            np.testing.assert_allclose(row.var(), 1.0, atol=0.05)


@settings(max_examples=40, deadline=None)
@given(
    grads=st.lists(
        hnp.arrays(
            dtype=np.float32, shape=(4,),
            elements=st.floats(min_value=-1, max_value=1, width=32),
        ),
        min_size=1, max_size=6,
    )
)
def test_gradient_buffer_accumulation_matches_fp16_sum(grads):
    """Buffered accumulation equals an FP16-rounded running sum."""
    from repro.lockfree import GradientBuffers

    param = Tensor(np.zeros(4, dtype=np.float32), requires_grad=True)
    buffers = GradientBuffers([param])
    expected = np.zeros(4, dtype=np.float32)
    for grad in grads:
        buffers.accumulate(0, grad)
        expected = (expected + grad).astype(np.float16).astype(np.float32)
    drained, count = buffers.drain(0)
    assert count == len(grads)
    np.testing.assert_array_equal(drained, expected)


@settings(max_examples=30, deadline=None)
@given(
    grad=hnp.arrays(
        dtype=np.float32, shape=(3,),
        elements=st.floats(min_value=-2, max_value=2, width=32),
    ),
)
def test_apply_gradient_equals_step(grad):
    """apply_gradient on buffered grads == step() with .grad set."""
    a = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    b = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
    opt_a = MixedPrecisionAdam([a], lr=1e-2)
    opt_b = MixedPrecisionAdam([b], lr=1e-2)

    a.grad = grad.copy()
    opt_a.step()

    opt_b.bump_step()
    b.data[...] = opt_b.apply_gradient(0, grad.copy())

    np.testing.assert_array_equal(a.data, b.data)
    np.testing.assert_array_equal(opt_a.master[0], opt_b.master[0])
