"""Event bus and schedule execution over functional pools."""

import pytest

from repro.errors import OutOfMemoryError, SchedulingError
from repro.hardware.cluster import a100_cluster
from repro.models import get_model
from repro.runtime import EventBus, ScheduleExecutor
from repro.scheduler.unified import UnifiedScheduler
from repro.units import GiB, MiB


class TestEventBus:
    def test_callback_after_completion_fires_immediately(self):
        bus = EventBus()
        bus.complete("a")
        fired = []
        bus.event("a").on_complete(lambda: fired.append(1))
        assert fired == [1]

    def test_callback_before_completion_deferred(self):
        bus = EventBus()
        fired = []
        bus.event("a").on_complete(lambda: fired.append(1))
        assert fired == []
        bus.complete("a")
        assert fired == [1]

    def test_double_completion_rejected(self):
        bus = EventBus()
        bus.complete("a")
        with pytest.raises(SchedulingError):
            bus.complete("a")

    def test_when_all_barrier(self):
        bus = EventBus()
        fired = []
        bus.when_all(["a", "b"], lambda: fired.append(1))
        bus.complete("a")
        assert fired == []
        bus.complete("b")
        assert fired == [1]

    def test_when_all_empty_fires_now(self):
        bus = EventBus()
        fired = []
        bus.when_all([], lambda: fired.append(1))
        assert fired == [1]

    def test_incomplete_listing(self):
        bus = EventBus()
        bus.event("a")
        bus.complete("b")
        assert bus.incomplete == ["a"]

    def test_event_is_a_stable_latch(self):
        bus = EventBus()
        assert bus.event("a") is bus.event("a")

    def test_callbacks_fire_in_registration_order(self):
        bus = EventBus()
        fired = []
        bus.event("a").on_complete(lambda: fired.append(1))
        bus.event("a").on_complete(lambda: fired.append(2))
        bus.complete("a")
        assert fired == [1, 2]

    def test_when_all_mixed_done_and_pending(self):
        bus = EventBus()
        bus.complete("a")
        fired = []
        bus.when_all(["a", "b"], lambda: fired.append(1))
        assert fired == []
        bus.complete("b")
        assert fired == [1]

    def test_when_all_fires_exactly_once(self):
        bus = EventBus()
        fired = []
        bus.when_all(["a"], lambda: fired.append(1))
        bus.complete("a")
        bus.complete("b")  # unrelated completion must not re-fire
        assert fired == [1]

    def test_when_all_duplicate_names(self):
        bus = EventBus()
        fired = []
        bus.when_all(["a", "a"], lambda: fired.append(1))
        bus.complete("a")
        assert fired == [1]

    def test_callback_may_chain_completions(self):
        bus = EventBus()
        fired = []
        bus.event("b").on_complete(lambda: fired.append("b"))
        bus.event("a").on_complete(lambda: bus.complete("b"))
        bus.complete("a")
        assert fired == ["b"]
        assert bus.event("b").done

    def test_late_registration_on_drained_event(self):
        # Callbacks attached after completion fire, and the already-fired
        # list is not retained (no double dispatch on re-registration).
        bus = EventBus()
        bus.complete("a")
        fired = []
        bus.event("a").on_complete(lambda: fired.append(1))
        bus.event("a").on_complete(lambda: fired.append(2))
        assert fired == [1, 2]


class TestScheduleExecutor:
    def _plan(self, num_layers=6, micro_batch=2, budget=None):
        cluster = a100_cluster(1)
        kwargs = {} if budget is None else {"gpu_reserve_fraction": 0.0}
        scheduler = UnifiedScheduler(cluster, **kwargs)
        config = get_model("gpt3-1.7b").with_layers(num_layers)
        return scheduler, scheduler.plan(config, micro_batch=micro_batch)

    def test_replay_executes_everything(self):
        scheduler, plan = self._plan()
        with ScheduleExecutor(
            plan, scheduler.gpu_budget, scheduler.page_bytes
        ) as executor:
            report = executor.run()
        expected_pages = sum(t.num_pages for t in plan.layer_pages)
        assert report.moves_executed == expected_pages
        assert report.computes_executed == 2 * plan.trace.num_layers
        assert report.gathers_executed == 2 * plan.trace.num_layers
        assert report.op_order == sorted(report.op_order)

    def test_replay_respects_gpu_budget(self):
        """The pool is sized to the scheduler's budget; a valid schedule
        must replay without OOM."""
        scheduler, plan = self._plan(num_layers=12, micro_batch=4)
        with ScheduleExecutor(
            plan, scheduler.gpu_budget, scheduler.page_bytes
        ) as executor:
            report = executor.run()  # would raise OutOfMemoryError if wrong
        assert 0 < report.peak_gpu_fraction <= 1.0

    def test_tight_budget_schedule_still_replays(self):
        """A schedule produced under a tight budget (deferred moves) stays
        within that same budget when executed."""
        cluster = a100_cluster(1)
        scheduler = UnifiedScheduler(cluster)
        config = get_model("gpt3-1.7b").with_layers(16)
        # Plan against a deliberately tight budget via a large model on a
        # single rank: pages must be staged in waves.
        from repro.scheduler.memory_model import MemoryModel
        from repro.scheduler.lifetime import LifetimeScheduler
        from repro.scheduler.pages import build_layer_pages
        from repro.scheduler.unified import IterationPlan
        from repro.scheduler.cache import CachePlan
        from repro.tracer import Tracer

        trace = Tracer(scheduler.cost).trace(config.build(1, 512))
        pages = build_layer_pages(trace, 1, scheduler.page_bytes)
        budget = int(1.5 * GiB)
        memory = MemoryModel(trace, budget, num_ranks=1)
        schedule = LifetimeScheduler(trace, pages, memory).schedule()
        plan = IterationPlan(
            trace=trace, schedule=schedule,
            cache=CachePlan(frozenset(), 0, {}),
            layer_pages=pages, num_ranks=1, micro_batch=1,
        )
        with ScheduleExecutor(plan, budget, scheduler.page_bytes) as executor:
            report = executor.run()
        assert report.peak_gpu_pages <= report.gpu_pool_pages

    def test_corrupt_schedule_detected(self):
        """Dropping the move tasks makes the gather fail fast."""
        scheduler, plan = self._plan()
        from repro.scheduler.tasks import Operation

        plan.schedule.tasks[:] = [
            t for t in plan.schedule.tasks if t.operation != Operation.MOVE_TO_GPU
        ]
        with ScheduleExecutor(
            plan, scheduler.gpu_budget, scheduler.page_bytes
        ) as executor:
            with pytest.raises(SchedulingError):
                executor.run()

    def test_undersized_pool_raises_oom(self):
        scheduler, plan = self._plan(num_layers=6, micro_batch=4)
        with ScheduleExecutor(
            plan, gpu_budget_bytes=32 * MiB, page_bytes=scheduler.page_bytes
        ) as executor:
            with pytest.raises(OutOfMemoryError):
                executor.run()
