"""Hardware specs: devices, links, servers, clusters, topology routing."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import (
    ClusterSpec,
    DeviceKind,
    DeviceSpec,
    LinkKind,
    LinkSpec,
    Topology,
    a100_server,
)
from repro.hardware.cluster import a100_cluster
from repro.units import GB, GiB


class TestDeviceSpec:
    def test_device_kind_matches_paper_indices(self):
        assert int(DeviceKind.GPU) == 0
        assert int(DeviceKind.CPU) == 1
        assert int(DeviceKind.SSD) == 2

    def test_ssd_is_not_compute(self):
        assert not DeviceKind.SSD.is_compute
        assert DeviceKind.GPU.is_compute and DeviceKind.CPU.is_compute

    def test_rejects_nonpositive_memory(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(DeviceKind.GPU, "g", 0, 1.0)

    def test_rejects_computing_ssd(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(DeviceKind.SSD, "s", 1, 1.0, compute_flops=1.0)


class TestLinkSpec:
    def test_transfer_time_includes_latency(self):
        link = LinkSpec(LinkKind.PCIE, "p", bandwidth=32 * GB, latency=1e-5)
        assert link.transfer_time(32 * GB) == pytest.approx(1.0 + 1e-5)

    def test_zero_bytes_is_free(self):
        link = LinkSpec(LinkKind.PCIE, "p", bandwidth=1.0, latency=5.0)
        assert link.transfer_time(0) == 0.0

    def test_negative_bytes_rejected(self):
        link = LinkSpec(LinkKind.PCIE, "p", bandwidth=1.0)
        with pytest.raises(ConfigurationError):
            link.transfer_time(-1)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            LinkSpec(LinkKind.NIC, "n", bandwidth=0.0)


class TestA100Server:
    def test_table3_defaults(self):
        server = a100_server()
        assert server.num_gpus == 8
        assert server.gpus[0].memory_bytes == 40 * GiB
        assert server.cpu.memory_bytes == 32 * 32 * GiB
        assert server.pcie.bandwidth == 32 * GB
        assert server.ssd_io.bandwidth == pytest.approx(3.5 * GB)
        assert server.nic.bandwidth == pytest.approx(16 * 12.5 * GB)

    def test_link_between_tiers(self):
        server = a100_server()
        assert server.link_between(DeviceKind.CPU, DeviceKind.GPU) is server.pcie
        assert server.link_between(DeviceKind.GPU, DeviceKind.GPU) is server.nvlink
        assert server.link_between(DeviceKind.CPU, DeviceKind.SSD) is server.ssd_io

    def test_gpu_to_ssd_must_stage(self):
        server = a100_server()
        with pytest.raises(ConfigurationError):
            server.link_between(DeviceKind.GPU, DeviceKind.SSD)

    def test_server_without_ssd(self):
        server = a100_server(ssd_bytes=None)
        assert server.ssd is None
        with pytest.raises(ConfigurationError):
            server.link_between(DeviceKind.CPU, DeviceKind.SSD)

    def test_total_memory_sums_tiers(self):
        server = a100_server()
        expected = 8 * 40 * GiB + 1024 * GiB + server.ssd.memory_bytes
        assert server.total_memory_bytes == expected


class TestClusterSpec:
    def test_gpu_count_scales(self):
        assert a100_cluster(4).num_gpus == 32

    def test_aggregate_pcie_scales_per_gpu(self):
        cluster = a100_cluster(2)
        assert cluster.aggregate_pcie_bandwidth == pytest.approx(16 * 32 * GB)

    def test_cross_server_flag(self):
        assert not a100_cluster(1).cross_server
        assert a100_cluster(2).cross_server

    def test_rejects_zero_servers(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(server=a100_server(), num_servers=0)


class TestTopology:
    def test_routes_gpu_to_ssd_through_cpu(self):
        topo = Topology(a100_server())
        route = topo.route("a100.gpu0", "a100.ssd")
        assert [link.kind for link in route] == [LinkKind.PCIE, LinkKind.SSD_IO]

    def test_gpu_to_gpu_uses_nvlink(self):
        topo = Topology(a100_server())
        route = topo.route("a100.gpu0", "a100.gpu7")
        assert [link.kind for link in route] == [LinkKind.NVLINK]

    def test_self_route_is_empty(self):
        topo = Topology(a100_server())
        assert topo.route("a100.cpu", "a100.cpu") == []

    def test_transfer_time_serializes_hops(self):
        topo = Topology(a100_server())
        direct = topo.transfer_time("a100.cpu", "a100.ssd", 3_500_000_000)
        assert direct == pytest.approx(1.0, rel=1e-3)

    def test_unknown_endpoint_rejected(self):
        topo = Topology(a100_server())
        with pytest.raises(ConfigurationError):
            topo.route("a100.gpu0", "nope")

    def test_devices_of_kind(self):
        topo = Topology(a100_server())
        assert len(topo.devices_of_kind(DeviceKind.GPU)) == 8
        assert len(topo.devices_of_kind(DeviceKind.SSD)) == 1


class TestClusterTopology:
    def test_cross_server_route_uses_nic(self):
        from repro.hardware import ClusterTopology
        from repro.hardware.cluster import a100_cluster

        topo = ClusterTopology(a100_cluster(3))
        route = topo.route("a1000.gpu0", "a1001.gpu5")
        kinds = [link.kind for link in route]
        assert LinkKind.NIC in kinds
        assert kinds[0] == LinkKind.PCIE and kinds[-1] == LinkKind.PCIE

    def test_any_server_pair_is_one_nic_hop(self):
        from repro.hardware import ClusterTopology
        from repro.hardware.cluster import a100_cluster

        topo = ClusterTopology(a100_cluster(4))
        # Switched fabric: server 0 -> 3 does not traverse 1 and 2.
        route = topo.route("a1000.cpu", "a1003.cpu")
        assert [link.kind for link in route] == [LinkKind.NIC]

    def test_local_routes_unchanged(self):
        from repro.hardware import ClusterTopology
        from repro.hardware.cluster import a100_cluster

        topo = ClusterTopology(a100_cluster(2))
        route = topo.route("a1000.gpu0", "a1000.gpu1")
        assert [link.kind for link in route] == [LinkKind.NVLINK]

    def test_device_count_scales(self):
        from repro.hardware import ClusterTopology
        from repro.hardware.cluster import a100_cluster

        topo = ClusterTopology(a100_cluster(2))
        assert len(topo.devices_of_kind(DeviceKind.GPU)) == 16
        assert len(topo.devices_of_kind(DeviceKind.CPU)) == 2
