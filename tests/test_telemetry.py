"""Telemetry subsystem: clocks, registry, spans, facade and integrations."""

import json
import threading

import pytest

from repro.errors import ConfigurationError, RetryExhaustedError, TransientIOError
from repro.telemetry import (
    NULL_INSTRUMENT,
    NULL_SPAN,
    NULL_TELEMETRY,
    Clock,
    ManualClock,
    MetricsRegistry,
    SpanTracer,
    Telemetry,
)
from repro.telemetry.chrome import named_tracks


class TestClock:
    def test_real_clock_facets_advance(self):
        clock = Clock()
        assert clock.perf() <= clock.perf()
        assert clock.monotonic() <= clock.monotonic()
        assert clock.wall() > 0

    def test_manual_clock_only_moves_when_told(self):
        clock = ManualClock()
        assert clock.perf() == clock.monotonic() == clock.wall() == 0.0
        clock.advance(2.5)
        assert clock.perf() == 2.5
        assert clock.monotonic() == 2.5
        assert clock.wall() == 2.5

    def test_manual_clock_sleep_advances_and_records(self):
        clock = ManualClock(start=10.0)
        clock.sleep(0.25)
        clock.sleep(0.0)
        assert clock.now == 10.25
        assert clock.sleeps == [0.25, 0.0]

    def test_manual_clock_rejects_negative_advance(self):
        with pytest.raises(ConfigurationError):
            ManualClock().advance(-1.0)


class TestMetricsRegistry:
    def test_counter_get_or_create_by_identity(self):
        registry = MetricsRegistry()
        a = registry.counter("pages.moves", src="cpu", dst="gpu")
        b = registry.counter("pages.moves", dst="gpu", src="cpu")
        assert a is b  # label order is irrelevant
        a.inc()
        a.inc(3)
        assert registry.value("pages.moves", src="cpu", dst="gpu") == 4

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("x").inc(-1)

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(ConfigurationError):
            registry.gauge("metric")

    def test_gauge_set_and_add(self):
        gauge = MetricsRegistry().gauge("cache.bytes")
        gauge.set(100)
        gauge.add(-30)
        assert gauge.value == 70

    def test_histogram_summary_and_percentile(self):
        histogram = MetricsRegistry().histogram("lat")
        for v in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(v)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["min"] == 1.0 and summary["max"] == 4.0
        assert histogram.percentile(0) == 1.0
        assert histogram.percentile(100) == 4.0
        with pytest.raises(ConfigurationError):
            histogram.percentile(101)

    def test_dump_partitions_by_kind(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(0.5)
        dump = registry.dump()
        assert dump["counters"] == {"c": 2}
        assert dump["gauges"] == {"g": 7}
        assert dump["histograms"]["h"]["count"] == 1

    def test_unregistered_value_is_zero(self):
        assert MetricsRegistry().value("never.recorded") == 0

    def test_null_instrument_summary_matches_empty_histogram(self):
        # Report code reads the same keys from either, so the shapes must
        # never drift apart.
        empty = MetricsRegistry().histogram("h").summary()
        assert NULL_INSTRUMENT.summary() == empty
        assert empty == {"count": 0, "sum": 0.0, "mean": 0.0,
                         "min": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}


class TestConcurrentRecording:
    """Threads hammer shared instruments while dump() snapshots them."""

    THREADS = 8
    ITERATIONS = 500

    def _hammer(self, registry, record):
        barrier = threading.Barrier(self.THREADS + 1)

        def worker():
            barrier.wait()
            for _ in range(self.ITERATIONS):
                record()

        threads = [
            threading.Thread(target=worker) for _ in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        # Concurrent dumps must neither crash nor corrupt the totals.
        for _ in range(50):
            registry.dump()
        for thread in threads:
            thread.join()

    def test_counter_total_is_exact_under_contention(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        self._hammer(registry, lambda: counter.inc(3))
        assert counter.value == 3 * self.THREADS * self.ITERATIONS

    def test_gauge_add_is_exact_under_contention(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("pages")
        self._hammer(registry, lambda: gauge.add(2))
        assert gauge.value == 2 * self.THREADS * self.ITERATIONS

    def test_histogram_count_and_sum_are_exact_under_contention(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        self._hammer(registry, lambda: histogram.observe(0.5))
        expected = self.THREADS * self.ITERATIONS
        assert histogram.count == expected
        assert histogram.sum == pytest.approx(0.5 * expected)
        summary = histogram.summary()
        assert summary["count"] == expected
        assert summary["min"] == summary["max"] == 0.5

    def test_get_or_create_race_yields_one_instrument(self):
        registry = MetricsRegistry()
        seen = []
        barrier = threading.Barrier(self.THREADS)

        def worker():
            barrier.wait()
            seen.append(registry.counter("shared", tier="gpu"))

        threads = [
            threading.Thread(target=worker) for _ in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert all(instrument is seen[0] for instrument in seen)


class TestSpanTracer:
    def test_nested_spans_durations_and_depth(self):
        clock = ManualClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("outer", track="train"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.5)
            clock.advance(0.25)
        inner, outer = tracer.records
        assert (inner.name, outer.name) == ("inner", "outer")
        assert inner.track == "train"  # inherited from the enclosing span
        assert inner.depth == 1 and outer.depth == 0
        assert inner.duration == pytest.approx(0.5)
        assert outer.duration == pytest.approx(1.75)

    def test_span_track_defaults_to_thread_name(self):
        tracer = SpanTracer(clock=ManualClock())
        with tracer.span("work"):
            pass
        assert tracer.records[0].track == threading.current_thread().name

    def test_disabled_tracer_returns_shared_null_span(self):
        tracer = SpanTracer(enabled=False)
        assert tracer.span("a") is tracer.span("b") is NULL_SPAN
        with tracer.span("a"):
            pass
        tracer.instant("marker")
        assert tracer.records == []

    def test_instant_records_zero_duration(self):
        clock = ManualClock()
        tracer = SpanTracer(clock=clock)
        clock.advance(3.0)
        tracer.instant("retry", track="faults", error="TransientIOError")
        record = tracer.records[0]
        assert record.duration == 0.0
        assert record.start == pytest.approx(3.0)
        assert record.args == {"error": "TransientIOError"}

    def test_breakdown_aggregates_by_name(self):
        clock = ManualClock()
        tracer = SpanTracer(clock=clock)
        for seconds in (1.0, 3.0):
            with tracer.span("step", track="train"):
                clock.advance(seconds)
        stats = tracer.breakdown()["step"]
        assert stats["count"] == 2
        assert stats["total_seconds"] == pytest.approx(4.0)
        assert stats["max_seconds"] == pytest.approx(3.0)

    def test_reset_clears_and_rebases_epoch(self):
        clock = ManualClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("old"):
            clock.advance(1.0)
        tracer.reset()
        assert tracer.records == []
        with tracer.span("new"):
            clock.advance(0.5)
        assert tracer.records[0].start == pytest.approx(0.0)

    def test_chrome_export_names_tracks(self):
        clock = ManualClock()
        tracer = SpanTracer(clock=clock)
        for track in ("train", "updater", "pcie", "scheduler"):
            with tracer.span(f"work.{track}", track=track):
                clock.advance(0.001)
        trace = tracer.to_chrome_trace(
            track_order=["train", "updater", "pcie", "scheduler"]
        )
        assert named_tracks(trace) == ["train", "updater", "pcie", "scheduler"]
        slices = [e for e in trace["traceEvents"] if e.get("ph") == "X"]
        assert len(slices) == 4
        assert all(e["dur"] > 0 for e in slices)
        json.dumps(trace)  # must be serializable as-is

    def test_spans_record_across_threads(self):
        tracer = SpanTracer(clock=Clock())

        def worker():
            with tracer.span("thread.work"):
                pass

        thread = threading.Thread(target=worker, name="sidecar")
        with tracer.span("main.work"):
            thread.start()
            thread.join()
        tracks = {r.name: r.track for r in tracer.records}
        assert tracks["thread.work"] == "sidecar"
        assert tracks["main.work"] == threading.current_thread().name


class TestTelemetryFacade:
    def test_disabled_facade_is_free(self):
        telemetry = Telemetry(enabled=False)
        assert telemetry.span("x") is NULL_SPAN
        assert telemetry.counter("c") is NULL_INSTRUMENT
        assert telemetry.gauge("g") is NULL_INSTRUMENT
        assert telemetry.histogram("h") is NULL_INSTRUMENT
        telemetry.record_page_move("cpu", "gpu", 4096)
        telemetry.record_io("ssd", "read", 1)
        telemetry.record_collective("all_gather", 1)
        dump = telemetry.dump()
        assert dump["metrics"]["counters"] == {}
        assert dump["spans"] == {}

    def test_null_telemetry_is_shared_and_disabled(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.span("x") is NULL_SPAN

    def test_domain_vocabulary_lands_in_registry(self):
        telemetry = Telemetry(clock=ManualClock())
        telemetry.record_page_move("gpu", "cpu", 4096)
        telemetry.record_page_move("gpu", "cpu", 4096)
        telemetry.record_io("ssd", "write", 100)
        telemetry.record_collective("all_reduce", 640)
        counters = telemetry.dump()["metrics"]["counters"]
        assert counters["pages.moved_bytes{dst=cpu,src=gpu}"] == 8192
        assert counters["pages.moves{dst=cpu,src=gpu}"] == 2
        assert counters["io.write_bytes{tier=ssd}"] == 100
        assert counters["collective.all_reduce_bytes"] == 640

    def test_dump_is_unified(self):
        clock = ManualClock()
        telemetry = Telemetry(clock=clock)
        with telemetry.span("step", track="train"):
            clock.advance(0.1)
        telemetry.counter("engine.steps").inc()
        dump = telemetry.dump()
        assert dump["metrics"]["counters"]["engine.steps"] == 1
        assert dump["spans"]["step"]["count"] == 1


class TestFaultCountersCompat:
    def test_kwargs_init_and_attribute_access(self):
        from repro.metrics import FaultCounters

        counters = FaultCounters(retries=3, recoveries=1)
        assert counters.retries == 3
        assert counters.recoveries == 1
        assert counters.torn_writes == 0
        counters.retries += 1
        assert counters.retries == 4
        assert counters.as_dict()["retries"] == 4

    def test_unknown_field_rejected(self):
        from repro.metrics import FaultCounters

        with pytest.raises(ConfigurationError):
            FaultCounters(bogus=1)

    def test_shares_registry_with_telemetry(self):
        from repro.metrics import FaultCounters

        telemetry = Telemetry(clock=ManualClock())
        counters = FaultCounters(registry=telemetry.registry)
        counters.transient_faults = 5
        dump = telemetry.dump()["metrics"]["counters"]
        assert dump["faults.transient_faults"] == 5


class TestRetryWithManualClock:
    def _failing(self, times):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= times:
                raise TransientIOError("flaky")
            return "ok"

        return fn, calls

    def test_backoff_schedule_is_deterministic(self):
        from repro.resilience.retry import RetryPolicy

        def run_once():
            clock = ManualClock()
            policy = RetryPolicy(
                max_attempts=4, base_delay=0.1, multiplier=2.0,
                max_delay=10.0, jitter=0.5, seed=7, clock=clock,
            )
            fn, _ = self._failing(3)
            assert policy.run(fn) == "ok"
            return list(clock.sleeps)

        first, second = run_once(), run_once()
        assert first == second  # seeded jitter: bit-reproducible
        assert len(first) == 3
        # Exponential envelope: base * 2**(n-1) <= delay <= 1.5x that.
        for n, delay in enumerate(first, start=1):
            raw = 0.1 * 2.0 ** (n - 1)
            assert raw <= delay <= raw * 1.5

    def test_deadline_enforced_on_manual_time(self):
        from repro.resilience.retry import RetryPolicy

        clock = ManualClock()
        policy = RetryPolicy(
            max_attempts=100, base_delay=1.0, multiplier=1.0, jitter=0.0,
            max_delay=1.0, deadline=3.5, seed=0, clock=clock,
        )
        fn, calls = self._failing(1000)
        with pytest.raises(RetryExhaustedError):
            policy.run(fn)
        # Sleeps of 1s each: attempts at t=0,1,2,3; the next would land
        # past the 3.5s deadline, so exactly 3 backoffs happened.
        assert clock.sleeps == [1.0, 1.0, 1.0]
        assert calls["n"] == 4

    def test_retry_metrics_flow_through_telemetry(self):
        from repro.resilience.retry import RetryPolicy

        clock = ManualClock()
        telemetry = Telemetry(clock=clock)
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.01, jitter=0.0, seed=0,
            clock=clock, telemetry=telemetry,
        )
        fn, _ = self._failing(2)
        assert policy.run(fn) == "ok"
        dump = telemetry.dump()["metrics"]
        assert dump["counters"]["retry.attempts"] == 2
        assert dump["histograms"]["retry.backoff_seconds"]["count"] == 2


class TestEngineIntegration:
    def _engine(self, telemetry):
        from repro.engine.angel import AngelConfig, initialize
        from repro.nn import MixedPrecisionAdam, TinyTransformerLM
        from repro.units import KiB, MiB

        model = TinyTransformerLM(
            vocab_size=16, d_model=16, d_ffn=32, num_heads=2, num_layers=2,
            max_seq=8, seed=0,
        )
        optimizer = MixedPrecisionAdam(model.parameters(), lr=1e-3)
        config = AngelConfig(
            gpu_memory_bytes=1 * MiB, cpu_memory_bytes=64 * MiB,
            page_bytes=16 * KiB, telemetry=telemetry,
        )
        return initialize(model, optimizer, config)

    def _run_steps(self, engine, steps=2):
        from repro.nn import lm_synthetic_batches

        for batch in lm_synthetic_batches(16, 8, 4, steps, seed=1):
            loss = engine(batch)
            engine.backward(loss)
            engine.step()

    def test_engine_records_traffic_and_spans(self):
        telemetry = Telemetry()
        engine = self._engine(telemetry)
        try:
            self._run_steps(engine)
        finally:
            engine.close()
        counters = telemetry.dump()["metrics"]["counters"]
        edges = {k: v for k, v in counters.items()
                 if k.startswith("pages.moved_bytes")}
        assert edges and all(v > 0 for v in edges.values())
        assert counters["engine.steps"] == 2
        names = {r.name for r in telemetry.tracer.records}
        assert any(n.startswith("fwd/") for n in names)
        assert any(n.startswith("bwd/") for n in names)
        assert any(n.startswith("update_sweep/") for n in names)

    def test_engine_without_telemetry_records_nothing(self):
        engine = self._engine(None)
        try:
            assert engine.telemetry is NULL_TELEMETRY
            assert engine.telemetry.span("probe") is NULL_SPAN
            self._run_steps(engine, steps=1)
        finally:
            engine.close()
        assert NULL_TELEMETRY.registry.dump()["counters"] == {}
        assert NULL_TELEMETRY.tracer.records == []


class TestLockFreeThreadBoundary:
    def test_sweep_spans_land_on_updater_track(self):
        from repro.lockfree import LockFreeTrainer
        from repro.nn import MixedPrecisionAdam, TinyTransformerLM, lm_synthetic_batches

        model = TinyTransformerLM(
            vocab_size=16, d_model=16, d_ffn=32, num_heads=2, num_layers=2,
            max_seq=8, seed=0,
        )
        telemetry = Telemetry()
        trainer = LockFreeTrainer(
            model, MixedPrecisionAdam(model.parameters(), lr=1e-3),
            telemetry=telemetry,
        )
        with telemetry.span("train_loop", track="train"):
            log = trainer.train(lm_synthetic_batches(16, 8, 4, 4, seed=1))
        assert log.sweeps >= 1
        records = telemetry.tracer.records
        sweep_records = [r for r in records
                         if r.name.startswith("update_sweep/")]
        assert sweep_records and all(r.track == "updater" for r in sweep_records)
        train_records = [r for r in records if r.name == "train_loop"]
        assert train_records[0].track == "train"
        # The sweep histogram observed every productive sweep.
        summary = telemetry.registry.histogram("updater.sweep_seconds").summary()
        assert summary["count"] == log.sweeps
        # Tracks from both threads coexist in one Chrome export.
        tracks = named_tracks(telemetry.tracer.to_chrome_trace())
        assert "updater" in tracks and "train" in tracks


class TestSharedChromeSerialization:
    def test_sim_and_runtime_exports_share_format(self):
        from repro.sim import Simulator, to_chrome_trace

        sim = Simulator()
        sim.add_task("fwd", "compute", 1.0)
        sim_trace = to_chrome_trace(sim.run())

        clock = ManualClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("fwd", track="compute"):
            clock.advance(1.0)
        span_trace = tracer.to_chrome_trace()

        for trace in (sim_trace, span_trace):
            assert trace["displayTimeUnit"] == "ms"
            meta = [e for e in trace["traceEvents"]
                    if e.get("cat") == "__metadata"]
            assert meta and all(e["ph"] == "M" for e in meta)
        assert named_tracks(sim_trace)[0] == "compute"
        assert named_tracks(span_trace) == ["compute"]


class TestProfileHarness:
    def test_run_profile_report_shape(self):
        from repro.telemetry.bench import ProfileConfig, run_profile

        config = ProfileConfig(steps=2, measure_overhead=False)
        report, telemetry = run_profile(config)
        assert report["train"]["steps_per_second"] > 0
        edges = report["per_tier_edge_bytes"]
        assert edges and all(v > 0 for v in edges.values())
        assert report["simulated"]["samples_per_second"] > 0
        tracks = named_tracks(telemetry.tracer.to_chrome_trace())
        assert len(tracks) >= 4
        json.dumps(report)  # BENCH payload must serialize as-is
