"""Autograd correctness: analytic gradients vs central finite differences."""

import numpy as np
import pytest

from repro.errors import GradientError
from repro.nn import Tensor, cross_entropy, gelu, layer_norm, mse_loss, no_grad, softmax


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar fn w.r.t. x."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn()
        flat[i] = orig - eps
        down = fn()
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_gradient(build_loss, *arrays, rtol=2e-2, atol=2e-3):
    """Compare autograd gradients to numeric ones for every input."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    loss = build_loss(*tensors)
    loss.backward()
    for tensor, array in zip(tensors, arrays):
        expected = numeric_grad(
            lambda: build_loss(*[Tensor(a) for a in arrays]).item(), array
        )
        np.testing.assert_allclose(tensor.grad, expected, rtol=rtol, atol=atol)


RNG = np.random.default_rng(42)


class TestPrimitiveGradients:
    def test_add_broadcast(self):
        a = RNG.standard_normal((3, 4)).astype(np.float32)
        b = RNG.standard_normal((4,)).astype(np.float32)
        check_gradient(lambda x, y: ((x + y) ** 2).sum(), a, b)

    def test_mul(self):
        a = RNG.standard_normal((2, 3)).astype(np.float32)
        b = RNG.standard_normal((2, 3)).astype(np.float32)
        check_gradient(lambda x, y: (x * y).sum(), a, b)

    def test_matmul(self):
        a = RNG.standard_normal((3, 4)).astype(np.float32)
        b = RNG.standard_normal((4, 2)).astype(np.float32)
        check_gradient(lambda x, y: ((x @ y) ** 2).sum(), a, b)

    def test_batched_matmul(self):
        a = RNG.standard_normal((2, 3, 4)).astype(np.float32)
        b = RNG.standard_normal((2, 4, 3)).astype(np.float32)
        check_gradient(lambda x, y: (x @ y).sum(), a, b)

    def test_div(self):
        a = RNG.standard_normal((3,)).astype(np.float32)
        b = (RNG.standard_normal((3,)) + 3.0).astype(np.float32)
        check_gradient(lambda x, y: (x / y).sum(), a, b)

    def test_pow(self):
        a = (np.abs(RNG.standard_normal((4,))) + 0.5).astype(np.float32)
        check_gradient(lambda x: (x ** 3).sum(), a)

    def test_mean_axis(self):
        a = RNG.standard_normal((3, 5)).astype(np.float32)
        check_gradient(lambda x: (x.mean(axis=1) ** 2).sum(), a)

    def test_reshape_transpose(self):
        a = RNG.standard_normal((2, 6)).astype(np.float32)
        check_gradient(
            lambda x: (x.reshape(3, 4).transpose(1, 0) ** 2).sum(), a
        )

    def test_getitem(self):
        a = RNG.standard_normal((5, 3)).astype(np.float32)
        check_gradient(lambda x: (x[1:4] ** 2).sum(), a)

    def test_exp_log_tanh(self):
        a = (np.abs(RNG.standard_normal((4,))) + 0.5).astype(np.float32)
        check_gradient(lambda x: x.exp().sum(), a)
        check_gradient(lambda x: x.log().sum(), a)
        check_gradient(lambda x: x.tanh().sum(), a)

    def test_sub_neg(self):
        a = RNG.standard_normal((3,)).astype(np.float32)
        b = RNG.standard_normal((3,)).astype(np.float32)
        check_gradient(lambda x, y: ((x - y) ** 2).sum(), a, b)

    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        loss = (x * 2.0 + x * 3.0).sum()
        loss.backward()
        np.testing.assert_allclose(x.grad, np.full(3, 5.0))


class TestCompositeGradients:
    def test_softmax(self):
        a = RNG.standard_normal((2, 5)).astype(np.float32)
        check_gradient(lambda x: (softmax(x) ** 2).sum(), a)

    def test_gelu(self):
        a = RNG.standard_normal((7,)).astype(np.float32)
        check_gradient(lambda x: gelu(x).sum(), a)

    def test_layer_norm(self):
        x = RNG.standard_normal((2, 8)).astype(np.float32)
        w = (RNG.standard_normal((8,)) * 0.1 + 1.0).astype(np.float32)
        b = RNG.standard_normal((8,)).astype(np.float32)
        check_gradient(lambda a, c, d: (layer_norm(a, c, d) ** 2).sum(), x, w, b)

    def test_cross_entropy(self):
        logits = RNG.standard_normal((3, 4, 6)).astype(np.float32)
        targets = RNG.integers(0, 6, size=(3, 4))
        check_gradient(lambda x: cross_entropy(x, targets), logits)

    def test_cross_entropy_matches_uniform_bound(self):
        logits = Tensor(np.zeros((2, 3, 8), dtype=np.float32), requires_grad=True)
        targets = np.zeros((2, 3), dtype=np.int64)
        assert cross_entropy(logits, targets).item() == pytest.approx(np.log(8))

    def test_mse(self):
        pred = RNG.standard_normal((4, 2)).astype(np.float32)
        target = RNG.standard_normal((4, 2)).astype(np.float32)
        check_gradient(lambda x: mse_loss(x, target), pred)

    def test_cross_entropy_shape_mismatch(self):
        logits = Tensor(np.zeros((2, 3, 8), dtype=np.float32), requires_grad=True)
        with pytest.raises(GradientError):
            cross_entropy(logits, np.zeros((2, 4), dtype=np.int64))


class TestAutogradMechanics:
    def test_backward_needs_scalar(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(GradientError):
            (x * 2).backward()

    def test_backward_on_constant_rejected(self):
        x = Tensor(np.ones(2))
        with pytest.raises(GradientError):
            x.sum().backward()

    def test_no_grad_suppresses_tape(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = (x * 2).sum()
        assert not y.requires_grad

    def test_cast_fp16_rounds_but_passes_gradient(self):
        value = np.array([1.0 + 2**-13], dtype=np.float32)
        x = Tensor(value, requires_grad=True)
        y = x.cast_fp16()
        assert y.data[0] == np.float32(np.float16(value[0]))
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_deep_chain_does_not_recurse(self):
        x = Tensor(np.ones(1), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.sum().backward()  # iterative topo sort: no RecursionError
        np.testing.assert_allclose(x.grad, [1.0])

    def test_detach_breaks_graph(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad
