"""Examples stay runnable: subprocess smoke tests for the fast ones."""

import subprocess
import sys

import pytest


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, f"examples/{name}.py"],
        capture_output=True, text=True, timeout=timeout, cwd=".",
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_runs_and_learns():
    out = run_example("quickstart")
    assert "final loss" in out
    assert "memory tiers" in out


def test_capacity_planning_runs():
    out = run_example("capacity_planning")
    assert "deepspeed" in out and "angel-ptm + SSD" in out
    assert "larger model" in out


@pytest.mark.parametrize("name", ["finetune_hierarchical"])
def test_other_examples_run(name):
    out = run_example(name)
    assert "loss" in out
