"""Device pools: pre-allocation, capacity accounting, backends."""

import os

import pytest

from repro.errors import AllocationError, OutOfMemoryError, PageStateError
from repro.hardware.device import DeviceKind
from repro.memory import DevicePool
from repro.memory.pool import FilePoolBackend
from repro.units import KiB, MiB


class TestPoolAccounting:
    def test_capacity_rounds_to_whole_pages(self):
        pool = DevicePool(DeviceKind.CPU, 10 * MiB + 1, page_bytes=4 * MiB)
        assert pool.num_pages == 2
        assert pool.capacity_bytes == 8 * MiB

    def test_acquire_release_cycle(self):
        pool = DevicePool(DeviceKind.CPU, 4 * MiB, page_bytes=MiB)
        pages = [pool.acquire() for _ in range(4)]
        assert pool.pages_in_use == 4
        assert pool.free_bytes == 0
        for page in pages:
            pool.release(page)
        assert pool.pages_in_use == 0
        assert pool.peak_in_use == 4

    def test_oom_when_exhausted(self):
        pool = DevicePool(DeviceKind.GPU, MiB, page_bytes=MiB)
        pool.acquire()
        with pytest.raises(OutOfMemoryError) as err:
            pool.acquire()
        assert err.value.device == pool.name

    def test_double_release_rejected(self):
        pool = DevicePool(DeviceKind.CPU, 2 * MiB, page_bytes=MiB)
        page = pool.acquire()
        storage = page._detach()
        pool.release_storage(storage)
        with pytest.raises(PageStateError):
            pool.release_storage(storage)

    def test_wrong_pool_release_rejected(self):
        pool_a = DevicePool(DeviceKind.CPU, MiB, page_bytes=MiB)
        pool_b = DevicePool(DeviceKind.CPU, MiB, page_bytes=MiB)
        page = pool_a.acquire()
        with pytest.raises(PageStateError):
            pool_b.release(page)

    def test_capacity_smaller_than_page_rejected(self):
        with pytest.raises(AllocationError):
            DevicePool(DeviceKind.CPU, 100, page_bytes=MiB)

    def test_unknown_backend_rejected(self):
        with pytest.raises(AllocationError):
            DevicePool(DeviceKind.CPU, MiB, page_bytes=MiB, backend="cloud")


class TestBackends:
    @pytest.mark.parametrize("backend", ["ram", "file"])
    def test_roundtrip(self, backend):
        with DevicePool(
            DeviceKind.SSD if backend == "file" else DeviceKind.CPU,
            MiB, page_bytes=64 * KiB, backend=backend,
        ) as pool:
            page = pool.acquire()
            page.allocate(1000, 1)
            page.write(100, b"hello hierarchical memory")
            assert page.read(100, 25) == b"hello hierarchical memory"
            page.release(1)
            pool.release(page)

    def test_file_backend_creates_and_cleans_tempfile(self):
        pool = DevicePool(DeviceKind.SSD, MiB, page_bytes=64 * KiB, backend="file")
        path = pool._backend.path
        assert os.path.exists(path)
        assert os.path.getsize(path) == pool.capacity_bytes
        pool.close()
        assert not os.path.exists(path)

    def test_file_backend_explicit_path_not_deleted(self, tmp_path):
        path = str(tmp_path / "ssd.bin")
        pool = DevicePool(
            DeviceKind.SSD, MiB, page_bytes=64 * KiB, backend="file", file_path=path
        )
        pool.close()
        assert os.path.exists(path)

    def test_null_backend_reads_zeros(self):
        pool = DevicePool(DeviceKind.CPU, MiB, page_bytes=64 * KiB, backend="null")
        page = pool.acquire()
        page.allocate(16, 1)
        page.write(0, b"x" * 16)
        assert page.read(0, 16) == bytes(16)

    def test_ram_pages_are_independent(self):
        pool = DevicePool(DeviceKind.CPU, 2 * MiB, page_bytes=MiB)
        a, b = pool.acquire(), pool.acquire()
        a.allocate(4, 1)
        b.allocate(4, 2)
        a.write(0, b"aaaa")
        b.write(0, b"bbbb")
        assert a.read(0, 4) == b"aaaa"
        assert b.read(0, 4) == b"bbbb"
