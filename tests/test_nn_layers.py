"""Layers, optimizers, data generators of the numpy substrate."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn import (
    Adam,
    FFN,
    LayerNorm,
    Linear,
    MixedPrecisionAdam,
    MoEFFN,
    MultiHeadAttention,
    SGD,
    Tensor,
    TinyTransformerLM,
    TransformerBlock,
    copy_task_batches,
    cross_entropy,
    lm_synthetic_batches,
)

RNG = np.random.default_rng(0)


class TestModules:
    def test_linear_shapes(self):
        layer = Linear(8, 16, RNG)
        out = layer(Tensor(np.zeros((2, 4, 8), dtype=np.float32)))
        assert out.shape == (2, 4, 16)

    def test_named_parameters_are_qualified(self):
        block = TransformerBlock(16, 32, 2, RNG)
        names = dict(block.named_parameters())
        assert "attn.wq.weight" in names
        assert "ffn.w1.weight" in names
        assert "ln1.weight" in names

    def test_parameter_count(self):
        layer = Linear(8, 16, RNG, bias=True)
        assert layer.num_parameters == 8 * 16 + 16

    def test_layernorm_normalizes(self):
        ln = LayerNorm(32)
        x = Tensor(RNG.standard_normal((4, 32)).astype(np.float32) * 5 + 3)
        out = ln(x).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_attention_is_causal(self):
        """Changing a future token must not change earlier outputs."""
        attn = MultiHeadAttention(16, 4, np.random.default_rng(1))
        x = RNG.standard_normal((1, 6, 16)).astype(np.float32)
        base = attn(Tensor(x)).numpy()
        x2 = x.copy()
        x2[0, 5] += 10.0
        changed = attn(Tensor(x2)).numpy()
        np.testing.assert_allclose(changed[0, :5], base[0, :5], atol=1e-5)
        assert not np.allclose(changed[0, 5], base[0, 5])

    def test_attention_head_divisibility(self):
        with pytest.raises(ConfigurationError):
            MultiHeadAttention(10, 3, RNG)

    def test_moe_routes_every_token(self):
        moe = MoEFFN(16, 32, num_experts=4, rng=np.random.default_rng(2))
        x = Tensor(RNG.standard_normal((2, 8, 16)).astype(np.float32))
        out = moe(x)
        assert out.shape == (2, 8, 16)
        # With top-1 routing and softmax gates < 1, output is non-zero.
        assert np.abs(out.numpy()).sum() > 0

    def test_moe_gradient_reaches_router_and_experts(self):
        moe = MoEFFN(8, 16, num_experts=2, rng=np.random.default_rng(3))
        x = Tensor(RNG.standard_normal((1, 4, 8)).astype(np.float32))
        (moe(x) ** 2).sum().backward()
        assert moe.router.weight.grad is not None
        touched = [e for e in moe.experts if e.w1.weight.grad is not None]
        assert touched  # at least one expert received tokens

    def test_lm_forward_shapes(self):
        model = TinyTransformerLM(
            vocab_size=11, d_model=16, d_ffn=32, num_heads=4, num_layers=2,
            max_seq=8,
        )
        logits = model(np.zeros((3, 8), dtype=np.int64))
        assert logits.shape == (3, 8, 11)

    def test_forward_hooks_fire(self):
        layer = Linear(4, 4, RNG)
        seen = []
        layer.add_forward_hook(seen.append)
        layer(Tensor(np.zeros((1, 4), dtype=np.float32)))
        assert seen == [layer]

    def test_mixed_precision_changes_output(self):
        """FP16 rounding must actually flow through the compute."""
        layer = Linear(64, 64, np.random.default_rng(5), bias=False)
        x = Tensor(RNG.standard_normal((1, 64)).astype(np.float32))
        exact = layer(x, mixed_precision=False).numpy()
        rounded = layer(x, mixed_precision=True).numpy()
        assert not np.array_equal(exact, rounded)
        np.testing.assert_allclose(exact, rounded, rtol=1e-2, atol=1e-2)


class TestOptimizers:
    def _quadratic(self):
        target = np.array([3.0, -2.0], dtype=np.float32)
        param = Tensor(np.zeros(2, dtype=np.float32), requires_grad=True)
        return param, target

    def test_sgd_converges_on_quadratic(self):
        param, target = self._quadratic()
        opt = SGD([param], lr=0.1)
        for _ in range(200):
            loss = ((param - Tensor(target)) ** 2).sum()
            param.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_adam_converges_on_quadratic(self):
        param, target = self._quadratic()
        opt = Adam([param], lr=0.1)
        for _ in range(300):
            loss = ((param - Tensor(target)) ** 2).sum()
            param.zero_grad()
            loss.backward()
            opt.step()
        np.testing.assert_allclose(param.data, target, atol=1e-2)

    def test_adam_matches_reference_step(self):
        """One Adam step against the textbook formula."""
        param = Tensor(np.array([1.0], dtype=np.float32), requires_grad=True)
        opt = Adam([param], lr=0.1, betas=(0.9, 0.999), eps=1e-8)
        param.grad = np.array([0.5], dtype=np.float32)
        opt.step()
        m = 0.1 * 0.5
        v = 0.001 * 0.25
        mhat, vhat = m / 0.1, v / 0.001
        expected = 1.0 - 0.1 * mhat / (np.sqrt(vhat) + 1e-8)
        np.testing.assert_allclose(param.data, [expected], rtol=1e-6)

    def test_mixed_precision_master_stays_fp32(self):
        param = Tensor(np.array([1.0 + 2**-20], dtype=np.float32), requires_grad=True)
        opt = MixedPrecisionAdam([param], lr=0.0)
        # lr=0: master unchanged, but the visible parameter is FP16-rounded.
        param.grad = np.zeros(1, dtype=np.float32)
        opt.step()
        assert opt.master[0][0] == np.float32(1.0 + 2**-20)
        assert param.data[0] == np.float32(np.float16(1.0 + 2**-20))

    def test_sgd_momentum_accelerates(self):
        param, target = self._quadratic()
        plain = SGD([param], lr=0.01)
        losses_plain = self._run_steps(param, target, plain, 50)
        param2, _ = self._quadratic()
        momentum = SGD([param2], lr=0.01, momentum=0.9)
        losses_momentum = self._run_steps(param2, target, momentum, 50)
        assert losses_momentum[-1] < losses_plain[-1]

    @staticmethod
    def _run_steps(param, target, opt, n):
        losses = []
        for _ in range(n):
            loss = ((param - Tensor(target)) ** 2).sum()
            param.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        return losses


class TestData:
    def test_lm_batches_shapes_and_shift(self):
        batches = list(lm_synthetic_batches(16, 8, 4, 3, seed=0))
        assert len(batches) == 3
        for batch in batches:
            assert batch.inputs.shape == (4, 8)
            assert batch.targets.shape == (4, 8)
            # Next-token structure: targets[t] == inputs[t+1].
            np.testing.assert_array_equal(batch.inputs[:, 1:], batch.targets[:, :-1])

    def test_chain_seed_fixes_distribution(self):
        a = next(lm_synthetic_batches(16, 8, 4, 1, seed=1, chain_seed=9))
        b = next(lm_synthetic_batches(16, 8, 4, 1, seed=2, chain_seed=9))
        # Different samples from the same chain.
        assert not np.array_equal(a.inputs, b.inputs)

    def test_deterministic_given_seed(self):
        a = next(lm_synthetic_batches(16, 8, 4, 1, seed=3))
        b = next(lm_synthetic_batches(16, 8, 4, 1, seed=3))
        np.testing.assert_array_equal(a.inputs, b.inputs)

    def test_copy_task_structure(self):
        batch = next(copy_task_batches(10, 8, 4, 1, seed=0))
        half = 4
        np.testing.assert_array_equal(batch.targets[:, half:], batch.inputs[:, :half])
        assert (batch.inputs[:, half:] == 0).all()

    def test_copy_task_odd_length_rejected(self):
        with pytest.raises(ConfigurationError):
            next(copy_task_batches(10, 7, 4, 1))

    def test_markov_chain_is_learnable(self):
        """A bigram counter beats uniform on the synthetic chain."""
        batches = list(lm_synthetic_batches(8, 32, 16, 10, seed=5))
        counts = np.ones((8, 8))
        for batch in batches[:8]:
            for row_in, row_out in zip(batch.inputs, batch.targets):
                np.add.at(counts, (row_in, row_out), 1)
        probs = counts / counts.sum(axis=1, keepdims=True)
        test = batches[9]
        nll = -np.log(probs[test.inputs.reshape(-1), test.targets.reshape(-1)]).mean()
        assert nll < np.log(8) * 0.9


class TestBF16:
    def test_round_bf16_truncates_mantissa(self):
        from repro.nn import round_bf16

        value = np.array([1.0 + 2**-9], dtype=np.float32)
        rounded = round_bf16(value)
        # 7-bit mantissa: 1 + 2^-9 rounds back to 1 + 2^-7 or 1.0.
        bits = rounded.view(np.uint32)
        assert (bits & 0xFFFF == 0).all()

    def test_round_bf16_ties_to_even(self):
        from repro.nn import round_bf16

        # Exactly halfway between two bf16 values with even low bit: down.
        value = np.array([1.0 + 2**-8], dtype=np.float32)
        assert round_bf16(value)[0] == np.float32(1.0)

    def test_bf16_wider_range_than_fp16(self):
        from repro.nn import round_bf16

        big = np.array([1e30], dtype=np.float32)
        assert np.isfinite(round_bf16(big)[0])           # bf16 keeps it
        with np.errstate(over="ignore"):                 # fp16 overflows
            assert np.isinf(big.astype(np.float16).astype(np.float32))[0]

    def test_compute_dtype_switch(self):
        from repro.nn import Tensor, get_compute_dtype, set_compute_dtype

        x = Tensor(np.array([1.0 + 2**-9], dtype=np.float32))
        try:
            set_compute_dtype("bf16")
            assert get_compute_dtype() == "bf16"
            bf = x.cast_compute().numpy()[0]
            set_compute_dtype("fp16")
            fp = x.cast_compute().numpy()[0]
            set_compute_dtype("fp32")
            exact = x.cast_compute().numpy()[0]
            assert exact == np.float32(1.0 + 2**-9)
            assert bf == np.float32(1.0)          # 7-bit mantissa drops it
            assert fp == np.float32(1.0 + 2**-9)  # 10-bit mantissa keeps it
        finally:
            set_compute_dtype("fp16")

    def test_invalid_dtype_rejected(self):
        from repro.errors import GradientError
        from repro.nn import set_compute_dtype

        with pytest.raises(GradientError):
            set_compute_dtype("fp8")

    def test_training_under_bf16(self):
        from repro.nn import set_compute_dtype

        try:
            set_compute_dtype("bf16")
            model = TinyTransformerLM(
                vocab_size=16, d_model=16, d_ffn=32, num_heads=2,
                num_layers=2, max_seq=8, seed=11,
            )
            opt = MixedPrecisionAdam(model.parameters(), lr=2e-3)
            losses = []
            for batch in lm_synthetic_batches(16, 8, 8, 60, seed=12):
                loss = cross_entropy(model(batch.inputs, True), batch.targets)
                model.zero_grad()
                loss.backward()
                opt.step()
                losses.append(loss.item())
            assert np.mean(losses[-6:]) < np.mean(losses[:6]) - 0.2
        finally:
            set_compute_dtype("fp16")
