"""Functional Angel engine: the Figure 6 API over paged memory tiers."""

import numpy as np
import pytest

from repro.engine import AngelConfig, initialize
from repro.errors import ConfigurationError, OutOfMemoryError
from repro.hardware.device import DeviceKind
from repro.nn import Adam, MixedPrecisionAdam, TinyTransformerLM, lm_synthetic_batches
from repro.units import KiB, MiB


def tiny_model(seed=1, num_layers=2):
    return TinyTransformerLM(
        vocab_size=16, d_model=16, d_ffn=32, num_heads=2, num_layers=num_layers,
        max_seq=8, seed=seed,
    )


def make_engine(model=None, **config_kwargs):
    model = model or tiny_model()
    opt = MixedPrecisionAdam(model.parameters(), lr=2e-3)
    defaults = dict(
        gpu_memory_bytes=2 * MiB,
        cpu_memory_bytes=16 * MiB,
        page_bytes=32 * KiB,
    )
    defaults.update(config_kwargs)
    return initialize(model, opt, AngelConfig(**defaults))


class TestInitialize:
    def test_requires_mixed_precision_adam(self):
        model = tiny_model()
        with pytest.raises(ConfigurationError):
            initialize(model, Adam(model.parameters()), AngelConfig())

    def test_states_placed_on_cpu_without_ssd(self):
        with make_engine() as engine:
            report = engine.memory_report()
            assert "ssd" not in report
            assert report["cpu"]["pages_in_use"] > 0

    def test_states_placed_on_ssd_when_enabled(self):
        with make_engine(ssd_bytes=16 * MiB) as engine:
            managed = engine._managed[0]
            assert managed.master.device_kind == DeviceKind.SSD
            assert managed.moment1.device_kind == DeviceKind.SSD
            # FP16 buffered params stay in CPU memory (Algorithm 2).
            assert managed.fp16.device_kind == DeviceKind.CPU

    def test_lock_free_needs_interval(self):
        with pytest.raises(ConfigurationError):
            AngelConfig(lock_free=True, update_interval=1)


class TestTrainingLoop:
    def test_figure6_loop_learns(self):
        with make_engine() as engine:
            losses = []
            for batch in lm_synthetic_batches(16, 8, 8, 80, seed=2):
                loss = engine(batch)
                engine.backward(loss)
                engine.step()
                losses.append(loss.item())
            assert np.mean(losses[-8:]) < np.mean(losses[:8]) - 0.2

    def test_pages_are_authoritative_for_master_state(self):
        """After a step, the paged FP32 master equals the optimizer's."""
        with make_engine() as engine:
            for batch in lm_synthetic_batches(16, 8, 4, 3, seed=3):
                loss = engine(batch)
                engine.backward(loss)
                engine.step()
            for managed in engine._managed:
                np.testing.assert_array_equal(
                    managed.master.read_array(),
                    engine.optimizer.master[managed.index],
                )
                np.testing.assert_array_equal(
                    managed.fp16.read_array().astype(np.float32),
                    managed.param.data,
                )

    def test_parameters_move_to_gpu_on_forward(self):
        with make_engine() as engine:
            batch = next(lm_synthetic_batches(16, 8, 4, 1, seed=4))
            engine(batch)
            report = engine.memory_report()
            assert report["gpu"]["pages_in_use"] > 0

    def test_eviction_under_tight_gpu_pool(self):
        """A GPU pool smaller than the model forces LRU eviction."""
        model = tiny_model(num_layers=4)
        with make_engine(model=model, gpu_memory_bytes=256 * KiB) as engine:
            for batch in lm_synthetic_batches(16, 8, 4, 2, seed=5):
                loss = engine(batch)
                engine.backward(loss)
                engine.step()
            gpu = engine.allocator.pool(DeviceKind.GPU)
            # The pool never exceeded capacity and something was evicted
            # back to CPU at some point.
            assert gpu.peak_in_use <= gpu.num_pages
            on_cpu = [
                m for m in engine._managed
                if m.fp16.device_kind == DeviceKind.CPU
            ]
            assert on_cpu

    def test_oom_when_single_module_exceeds_gpu(self):
        """A one-page GPU pool cannot pin a two-parameter module."""
        model = tiny_model()
        with pytest.raises(OutOfMemoryError):
            engine = make_engine(model=model, gpu_memory_bytes=32 * KiB)
            batch = next(lm_synthetic_batches(16, 8, 4, 1, seed=6))
            engine(batch)

    def test_lock_free_defers_updates(self):
        with make_engine(lock_free=True, update_interval=3) as engine:
            batches = list(lm_synthetic_batches(16, 8, 4, 3, seed=7))
            ran = []
            for batch in batches:
                loss = engine(batch)
                engine.backward(loss)
                ran.append(engine.step())
            assert ran == [False, False, True]

    def test_lock_free_still_learns(self):
        with make_engine(lock_free=True, update_interval=2) as engine:
            losses = []
            for batch in lm_synthetic_batches(16, 8, 8, 80, seed=8):
                loss = engine(batch)
                engine.backward(loss)
                engine.step()
                losses.append(loss.item())
            assert np.mean(losses[-8:]) < np.mean(losses[:8]) - 0.2


class TestIntrospection:
    def test_access_trace_orders_like_forward(self):
        with make_engine() as engine:
            batch = next(lm_synthetic_batches(16, 8, 4, 1, seed=9))
            engine(batch)
            trace = engine.access_trace()
            assert trace
            by_name = {name: (first, last) for name, first, last in trace}
            # The embedding is touched before the head.
            assert by_name["embed.weight"][0] < by_name["head.weight"][0]
            for name, first, last in trace:
                assert 0 < first <= last

    def test_memory_report_shape(self):
        with make_engine(ssd_bytes=8 * MiB) as engine:
            report = engine.memory_report()
            assert set(report) == {"gpu", "cpu", "ssd"}
            for tier in report.values():
                assert set(tier) == {
                    "pages_in_use", "used_bytes", "free_bytes", "peak_pages",
                }


class TestAngelConfigValidation:
    def test_update_interval_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            AngelConfig(update_interval=0)

    def test_sync_mode_allows_interval_one(self):
        config = AngelConfig(lock_free=False, update_interval=1)
        assert not config.lock_free

    def test_optimizer_parameter_mismatch_rejected(self):
        model = tiny_model()
        other = tiny_model(num_layers=4)
        opt = MixedPrecisionAdam(other.parameters())
        with pytest.raises(ConfigurationError):
            initialize(model, opt, AngelConfig(
                gpu_memory_bytes=2 * MiB, cpu_memory_bytes=16 * MiB,
                page_bytes=32 * KiB,
            ))


class TestTracerInformedPrefetch:
    def test_prefetch_hits_after_first_iteration(self):
        """Iteration 1 records the access pattern; from iteration 2 the
        engine stages the next module ahead of its use."""
        with make_engine(gpu_memory_bytes=4 * MiB) as engine:
            batches = list(lm_synthetic_batches(16, 8, 4, 4, seed=30))
            for batch in batches[:1]:
                loss = engine(batch)
                engine.backward(loss)
                engine.step()
            assert engine._order_recorded
            warm_hits = engine.prefetch_hits
            for batch in batches[1:]:
                loss = engine(batch)
                engine.backward(loss)
                engine.step()
            # Later iterations find parameters already resident.
            assert engine.prefetch_hits > warm_hits

    def test_prefetch_never_evicts(self):
        """Under a tiny pool, prefetch is best-effort and the demand path
        still works (training keeps learning)."""
        model = tiny_model(num_layers=4)
        with make_engine(model=model, gpu_memory_bytes=256 * KiB) as engine:
            losses = []
            for batch in lm_synthetic_batches(16, 8, 8, 40, seed=31):
                loss = engine(batch)
                engine.backward(loss)
                engine.step()
                losses.append(loss.item())
            assert engine.demand_fetches > 0
            assert np.mean(losses[-4:]) < np.mean(losses[:4])

    def test_roomy_pool_mostly_hits(self):
        """With everything resident, steady-state accesses are all hits."""
        with make_engine(gpu_memory_bytes=8 * MiB) as engine:
            batches = list(lm_synthetic_batches(16, 8, 4, 5, seed=32))
            for batch in batches:
                loss = engine(batch)
                engine.backward(loss)
                engine.step()
            # After warm-up every parameter stays on the GPU pool.
            assert engine.prefetch_hits > engine.demand_fetches
