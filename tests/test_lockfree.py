"""Lock-free updating mechanism: buffers, staleness loop, threaded trainer."""

import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError, GradientError
from repro.lockfree import GradientBuffers, LockFreeTrainer, StalenessLoop
from repro.nn import MixedPrecisionAdam, Tensor, TinyTransformerLM, lm_synthetic_batches


def tiny_model(seed=0, num_experts=0):
    return TinyTransformerLM(
        vocab_size=16, d_model=16, d_ffn=32, num_heads=2, num_layers=2,
        max_seq=8, num_experts=num_experts, seed=seed,
    )


class TestGradientBuffers:
    def _params(self):
        return [
            Tensor(np.zeros(4, dtype=np.float32), requires_grad=True),
            Tensor(np.zeros((2, 2), dtype=np.float32), requires_grad=True),
        ]

    def test_accumulate_and_drain(self):
        params = self._params()
        buffers = GradientBuffers(params)
        buffers.accumulate(0, np.ones(4, dtype=np.float32))
        buffers.accumulate(0, np.ones(4, dtype=np.float32))
        grad, count = buffers.drain(0)
        np.testing.assert_allclose(grad, 2.0)
        assert count == 2
        assert buffers.pending(0) == 0

    def test_drain_clears_buffer(self):
        params = self._params()
        buffers = GradientBuffers(params)
        buffers.accumulate(0, np.ones(4, dtype=np.float32))
        buffers.drain(0)
        grad, count = buffers.drain(0)
        assert count == 0
        np.testing.assert_allclose(grad, 0.0)

    def test_has_uncleared_tracks_pending(self):
        params = self._params()
        buffers = GradientBuffers(params)
        assert not buffers.has_uncleared
        buffers.accumulate(1, np.ones((2, 2), dtype=np.float32))
        assert buffers.has_uncleared
        buffers.drain(1)
        assert not buffers.has_uncleared

    def test_shape_mismatch_rejected(self):
        buffers = GradientBuffers(self._params())
        with pytest.raises(GradientError):
            buffers.accumulate(0, np.ones(5, dtype=np.float32))

    def test_accumulate_all_skips_missing_grads(self):
        params = self._params()
        params[0].grad = np.ones(4, dtype=np.float32)
        buffers = GradientBuffers(params)
        buffers.accumulate_all(params)
        assert buffers.pending(0) == 1
        assert buffers.pending(1) == 0

    def test_fp16_rounding_in_buffer(self):
        params = [Tensor(np.zeros(1, dtype=np.float32), requires_grad=True)]
        buffers = GradientBuffers(params)
        buffers.accumulate(0, np.array([1.0], dtype=np.float32))
        buffers.accumulate(0, np.array([2**-13], dtype=np.float32))
        grad, _ = buffers.drain(0)
        # 1 + 2^-13 rounds back to 1 in half precision.
        assert grad[0] == np.float32(1.0)


class TestStalenessLoop:
    def test_interval_one_equals_synchronous_reference(self):
        """k=1 must match a plain train loop step for step."""
        batches = list(lm_synthetic_batches(16, 8, 4, 10, seed=1))

        model_a = tiny_model(seed=3)
        opt_a = MixedPrecisionAdam(model_a.parameters(), lr=1e-3)
        log = StalenessLoop(model_a, opt_a, update_interval=1).train(iter(batches))

        model_b = tiny_model(seed=3)
        opt_b = MixedPrecisionAdam(model_b.parameters(), lr=1e-3)
        from repro.nn.functional import cross_entropy

        losses = []
        for batch in batches:
            loss = cross_entropy(model_b(batch.inputs, True), batch.targets)
            model_b.zero_grad()
            loss.backward()
            # Mirror the loop's reverse-order sweep semantics.
            opt_b.bump_step()
            params = model_b.parameters()
            for i in reversed(range(len(params))):
                if params[i].grad is None:
                    continue
                params[i].data[...] = opt_b.apply_gradient(i, params[i].grad)
            losses.append(loss.item())
        np.testing.assert_allclose(log.losses, losses, rtol=1e-5)

    def test_sweep_count(self):
        model = tiny_model()
        opt = MixedPrecisionAdam(model.parameters(), lr=1e-3)
        loop = StalenessLoop(model, opt, update_interval=3)
        log = loop.train(lm_synthetic_batches(16, 8, 4, 10, seed=1))
        # 10 iterations at interval 3: sweeps at 3, 6, 9 + final flush.
        assert log.sweeps == 4
        assert log.iterations == 10

    def test_both_modes_learn(self):
        for interval in (1, 4):
            model = tiny_model(seed=5)
            opt = MixedPrecisionAdam(model.parameters(), lr=2e-3)
            loop = StalenessLoop(model, opt, update_interval=interval)
            log = loop.train(lm_synthetic_batches(16, 8, 8, 120, seed=2))
            assert log.final_loss < log.first_loss - 0.2, f"interval={interval}"

    def test_invalid_interval_rejected(self):
        model = tiny_model()
        opt = MixedPrecisionAdam(model.parameters())
        with pytest.raises(ConfigurationError):
            StalenessLoop(model, opt, update_interval=0)


class TestThreadedTrainer:
    def test_threaded_trainer_learns(self):
        model = tiny_model(seed=9)
        opt = MixedPrecisionAdam(model.parameters(), lr=2e-3)
        trainer = LockFreeTrainer(model, opt)
        log = trainer.train(lm_synthetic_batches(16, 8, 8, 80, seed=4))
        assert log.iterations == 80
        assert log.sweeps >= 1
        assert log.final_loss < log.first_loss

    def test_buffers_drained_at_exit(self):
        model = tiny_model(seed=9)
        opt = MixedPrecisionAdam(model.parameters(), lr=1e-3)
        trainer = LockFreeTrainer(model, opt)
        trainer.train(lm_synthetic_batches(16, 8, 4, 10, seed=4))
        assert not trainer._buffers.has_uncleared

    def test_sweep_delay_increases_staleness(self):
        model = tiny_model(seed=9)
        opt = MixedPrecisionAdam(model.parameters(), lr=1e-3)
        slow = LockFreeTrainer(model, opt, sweep_delay=0.05)
        log = slow.train(lm_synthetic_batches(16, 8, 4, 20, seed=4))
        # A slow updater folds several iterations per sweep.
        assert log.sweeps < log.iterations

    def test_negative_delay_rejected(self):
        model = tiny_model()
        opt = MixedPrecisionAdam(model.parameters())
        with pytest.raises(ConfigurationError):
            LockFreeTrainer(model, opt, sweep_delay=-1.0)


class TestUpdaterFailure:
    """An updater-thread crash must surface on the main thread — never a
    silent death, a hung join, or dirty buffers (the threaded.py bugfix)."""

    def _crashing_optimizer(self, fail_after=1):
        """The crash only fires on the updater thread — the realistic
        failure mode where the main-thread sync path still works."""
        model = tiny_model(seed=3)
        opt = MixedPrecisionAdam(model.parameters(), lr=1e-3)
        real_apply = opt.apply_gradient
        calls = {"n": 0}
        main = threading.main_thread()

        def exploding_apply(index, grad):
            if threading.current_thread() is not main:
                calls["n"] += 1
                if calls["n"] > fail_after:
                    raise RuntimeError("injected updater crash")
            return real_apply(index, grad)

        opt.apply_gradient = exploding_apply
        return model, opt

    def test_crash_is_reraised_on_main_thread(self):
        model, opt = self._crashing_optimizer()
        trainer = LockFreeTrainer(model, opt)
        with pytest.raises(RuntimeError, match="injected updater crash"):
            trainer.train(lm_synthetic_batches(16, 8, 4, 20, seed=4))
        assert isinstance(trainer.update_error, RuntimeError)

    def test_fallback_to_sync_finishes_training(self):
        model, opt = self._crashing_optimizer()
        trainer = LockFreeTrainer(model, opt, fallback_to_sync=True)
        log = trainer.train(lm_synthetic_batches(16, 8, 4, 20, seed=4))
        assert log.iterations == 20
        assert len(log.losses) == 20
        assert trainer.fell_back
        assert isinstance(trainer.update_error, RuntimeError)
        # Degraded synchronous sweeps still drain every buffer.
        assert not trainer._buffers.has_uncleared
        assert log.sweeps >= 1

    def test_healthy_run_does_not_fall_back(self):
        model = tiny_model(seed=3)
        opt = MixedPrecisionAdam(model.parameters(), lr=1e-3)
        trainer = LockFreeTrainer(model, opt, fallback_to_sync=True)
        log = trainer.train(lm_synthetic_batches(16, 8, 4, 10, seed=4))
        assert not trainer.fell_back
        assert trainer.update_error is None
        assert log.iterations == 10
