"""ZeRO substrate: sharding arithmetic, collectives, expert parallelism."""

import pytest

from repro.errors import CommunicationError, ShardingError
from repro.hardware.cluster import a100_cluster
from repro.models import get_model
from repro.models.moe import MoEConfig
from repro.units import GB, MiB
from repro.zero import CollectiveModel, ExpertParallelPlan, ShardingPlan, shard_bytes


class TestShardBytes:
    def test_even_split(self):
        assert shard_bytes(800, 8) == 100

    def test_rounds_up(self):
        assert shard_bytes(801, 8) == 101

    def test_page_alignment(self):
        assert shard_bytes(100, 4, page_bytes=64) == 64
        assert shard_bytes(1000, 4, page_bytes=64) == 256

    def test_invalid_ranks_rejected(self):
        with pytest.raises(ShardingError):
            shard_bytes(100, 0)


class TestShardingPlan:
    def test_per_rank_totals(self):
        model = get_model("gpt3-1.7b").with_layers(4).build(1, 64)
        plan = ShardingPlan.from_model(model, num_ranks=8)
        params_fp16 = sum(
            p.bytes_single for layer in model.layers for p in layer.params
        )
        assert plan.param_shard_bytes == shard_bytes(params_fp16, 8)
        assert plan.grad_shard_bytes == plan.param_shard_bytes
        assert plan.optim_shard_bytes == shard_bytes(model.optims_bytes, 8)
        assert plan.model_state_shard_bytes == (
            2 * plan.param_shard_bytes + plan.optim_shard_bytes
        )

    def test_gathered_working_set_is_largest_layer(self):
        model = get_model("gpt3-1.7b").with_layers(4).build(1, 64)
        plan = ShardingPlan.from_model(model, num_ranks=8)
        assert plan.gathered_working_set_bytes == max(
            sum(p.bytes_single for p in layer.params) for layer in model.layers
        )

    def test_from_trace_matches_from_model(self):
        from repro.hardware.server import a100_server
        from repro.tracer import CostModel, Tracer

        server = a100_server()
        model = get_model("gpt3-1.7b").with_layers(3).build(1, 64)
        trace = Tracer(CostModel(gpu=server.gpus[0], cpu=server.cpu)).trace(model)
        a = ShardingPlan.from_model(model, 4)
        b = ShardingPlan.from_trace(trace, 4)
        assert a == b


class TestCollectives:
    @pytest.fixture
    def single(self):
        return CollectiveModel(a100_cluster(1))

    @pytest.fixture
    def multi(self):
        return CollectiveModel(a100_cluster(4))

    def test_single_rank_is_free(self, single):
        assert single.all_gather(MiB, 1) == 0.0
        assert single.all_reduce(MiB, 1) == 0.0

    def test_ring_volume_factor(self, single):
        gather = single.all_gather(8 * MiB, 8)
        reduce = single.reduce_scatter(8 * MiB, 8)
        allreduce = single.all_reduce(8 * MiB, 8)
        latency = 7 * single.cluster.server.nvlink.latency
        assert gather == pytest.approx(reduce)
        # All-reduce moves twice the ring traffic (one latency charge).
        assert allreduce - latency == pytest.approx(2 * (gather - latency), rel=1e-6)

    def test_cross_server_is_slower(self, multi):
        intra = multi.all_gather(64 * MiB, 8)
        inter = multi.all_gather(64 * MiB, 16)
        assert inter > intra

    def test_bus_bandwidth_nic_bound_across_servers(self, multi):
        server = multi.cluster.server
        assert multi.bus_bandwidth(8) == server.nvlink.bandwidth
        assert multi.bus_bandwidth(16) == pytest.approx(
            server.nic.bandwidth / server.num_gpus
        )

    def test_more_ranks_move_more_ring_traffic(self, multi):
        t16 = multi.all_to_all(64 * MiB, 16)
        t32 = multi.all_to_all(64 * MiB, 32)
        assert t32 > t16

    def test_too_many_ranks_rejected(self, single):
        with pytest.raises(CommunicationError):
            single.all_gather(MiB, 9)

    def test_negative_bytes_rejected(self, single):
        with pytest.raises(CommunicationError):
            single.all_gather(-1, 4)

    def test_all_gather_linear_in_bytes(self, single):
        small = single.all_gather(MiB, 8)
        large = single.all_gather(2 * MiB, 8)
        latency = 7 * single.cluster.server.nvlink.latency
        assert (large - latency) == pytest.approx(2 * (small - latency))


class TestExpertParallel:
    def test_plan_divides_experts(self):
        plan = ExpertParallelPlan(
            MoEConfig(d_model=64, d_ffn=128, num_experts=32), num_gpus=8,
            num_moe_layers=2,
        )
        assert plan.experts_per_gpu == 4
        assert plan.expert_params_per_gpu == 4 * 2 * 64 * 128 * 2

    def test_uneven_sharding_rejected(self):
        with pytest.raises(ShardingError):
            ExpertParallelPlan(
                MoEConfig(d_model=64, d_ffn=128, num_experts=30), num_gpus=8,
                num_moe_layers=2,
            )

    def test_dispatch_bytes(self):
        plan = ExpertParallelPlan(
            MoEConfig(d_model=64, d_ffn=128, num_experts=8), num_gpus=8,
            num_moe_layers=1,
        )
        assert plan.dispatch_bytes_per_rank(2, 16) == 2 * 16 * 64 * 2

    def test_alltoall_grows_with_cluster(self):
        moe_small = MoEConfig(d_model=64, d_ffn=128, num_experts=8)
        moe_large = MoEConfig(d_model=64, d_ffn=128, num_experts=128)
        plan8 = ExpertParallelPlan(moe_small, 8, 1)
        plan128 = ExpertParallelPlan(moe_large, 128, 1)
        c8 = CollectiveModel(a100_cluster(1))
        c128 = CollectiveModel(a100_cluster(16))
        assert plan128.alltoall_time_per_layer(c128, 4, 128) > (
            plan8.alltoall_time_per_layer(c8, 4, 128)
        )
