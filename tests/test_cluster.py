"""Elastic cluster: collectives, rendezvous protocol, kill-mid-step recovery."""

import json
import os
import tempfile
import threading

import numpy as np
import pytest

from repro.checkpoint.snapshot import (
    Snapshot,
    latest_good_snapshot,
    list_snapshots,
    save_snapshot,
    snapshot_path,
)
from repro.cluster import (
    ClusterConfig,
    Coordinator,
    CoordinatorClient,
    run_cluster,
    run_cluster_reference,
)
from repro.cluster.protocol import OP_RETIRE, OP_SHUTDOWN
from repro.errors import CommunicationError, GenerationFencedError
from repro.units import KiB
from repro.zero.collectives import InProcessGroup, copy_pages, shard_length


class TestShardMath:
    def test_shard_length_is_ceil_division(self):
        assert shard_length(10, 3) == 4
        assert shard_length(9, 3) == 3
        assert shard_length(1, 4) == 1

    def test_copy_pages_copies_and_counts(self):
        src = np.arange(1000, dtype=np.float32)
        dst = np.zeros_like(src)
        pages = copy_pages(dst, src, page_bytes=256)
        np.testing.assert_array_equal(dst, src)
        assert pages == -(-src.nbytes // 256)

    def test_copy_pages_rejects_shape_mismatch(self):
        with pytest.raises(CommunicationError):
            copy_pages(np.zeros(3), np.zeros(4), page_bytes=64)


class TestInProcessCollectives:
    def _run_ranks(self, group, fn):
        results = [None] * group.world
        errors = []

        def runner(rank):
            try:
                results[rank] = fn(group.transport(rank), rank)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=runner, args=(rank,))
            for rank in range(group.world)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors, errors
        return results

    def test_all_gather_returns_every_shard_everywhere(self):
        group = InProcessGroup(3, page_bytes=1 * KiB)
        shards = [np.full(5, rank, dtype=np.float32) for rank in range(3)]
        results = self._run_ranks(
            group, lambda t, rank: t.all_gather(shards[rank])
        )
        for gathered in results:
            assert len(gathered) == 3
            for rank, piece in enumerate(gathered):
                np.testing.assert_array_equal(piece, shards[rank])

    def test_reduce_scatter_matches_numpy_sum(self):
        world = 3
        group = InProcessGroup(world, page_bytes=1 * KiB)
        rng = np.random.default_rng(0)
        fulls = [rng.normal(size=10).astype(np.float32) for _ in range(world)]
        total = np.sum(fulls, axis=0)
        length = shard_length(10, world)
        padded = np.zeros(length * world, dtype=np.float32)
        padded[:10] = total
        results = self._run_ranks(
            group, lambda t, rank: t.reduce_scatter(fulls[rank])
        )
        for rank, shard in enumerate(results):
            np.testing.assert_allclose(
                shard, padded[rank * length:(rank + 1) * length],
                rtol=0, atol=1e-6,
            )


class TestSnapshotHelpers:
    def _write(self, directory, step, value):
        snapshot = Snapshot(
            arrays={"x": np.full(4, value, dtype=np.float32)},
            metadata={"step": step},
        )
        save_snapshot(snapshot, snapshot_path(directory, step))

    def test_list_snapshots_newest_first_and_ignores_junk(self, tmp_path):
        directory = str(tmp_path)
        for step in (3, 9, 6):
            self._write(directory, step, step)
        (tmp_path / "notes.txt").write_text("junk")
        listed = list_snapshots(directory)
        assert [step for step, _ in listed] == [9, 6, 3]
        assert list_snapshots(str(tmp_path / "missing")) == []

    def test_latest_good_skips_corrupt_newest(self, tmp_path):
        directory = str(tmp_path)
        self._write(directory, 3, 3.0)
        self._write(directory, 6, 6.0)
        with open(snapshot_path(directory, 6), "r+b") as handle:
            handle.seek(40)
            handle.write(b"\xff" * 64)
        loaded = latest_good_snapshot(directory)
        assert loaded is not None
        snapshot, step = loaded
        assert step == 3
        np.testing.assert_array_equal(
            snapshot.arrays["x"], np.full(4, 3.0, dtype=np.float32)
        )

    def test_latest_good_returns_none_when_empty(self, tmp_path):
        assert latest_good_snapshot(str(tmp_path)) is None


class _CoordinatorHarness:
    """An in-thread coordinator plus helper clients for protocol tests."""

    def __init__(self, tmp_path, **overrides):
        self.config = ClusterConfig(
            world_size=2, rendezvous_grace=0.2, run_timeout=20.0,
            **overrides,
        )
        self.coordinator = Coordinator(self.config, str(tmp_path))
        self.address = os.path.join(
            tempfile.gettempdir(), f"repro-test-{os.getpid()}-{id(self)}.sock"
        )
        self.authkey = b"test-cluster"
        self.thread = threading.Thread(
            target=self.coordinator.serve,
            args=(self.address, self.authkey),
            daemon=True,
        )
        self.thread.start()
        self._clients = []

    def client(self, worker):
        deadline = 50
        for attempt in range(deadline):
            try:
                client = CoordinatorClient(self.address, self.authkey, worker)
                self._clients.append(client)
                return client
            except (ConnectionError, FileNotFoundError, OSError):
                if attempt == deadline - 1:
                    raise
                threading.Event().wait(0.05)

    def join_all(self, slots):
        """Concurrent joins (join blocks until the generation forms)."""
        replies = {}

        def joiner(slot):
            client = self.client(f"w{slot}i0")
            replies[slot] = (client, client.join(slot, 0))

        threads = [
            threading.Thread(target=joiner, args=(slot,)) for slot in slots
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(replies) == len(slots)
        return replies

    def shutdown(self):
        try:
            control = CoordinatorClient(self.address, self.authkey, "test")
            control.call(OP_SHUTDOWN)
        except (ConnectionError, FileNotFoundError, EOFError, OSError):
            pass
        for client in self._clients:
            try:
                client.close()
            except (EOFError, OSError):
                pass
        self.thread.join(timeout=5)


class TestCoordinatorProtocol:
    def test_rendezvous_assigns_ranks_by_slot(self, tmp_path):
        harness = _CoordinatorHarness(tmp_path)
        try:
            replies = harness.join_all([1, 0])
            for slot, (_, reply) in replies.items():
                assert reply["ok"]
                assert reply["generation"] == 1
                assert reply["world"] == 2
                assert reply["rank"] == slot
        finally:
            harness.shutdown()

    def test_barrier_releases_all_members(self, tmp_path):
        harness = _CoordinatorHarness(tmp_path)
        try:
            replies = harness.join_all([0, 1])
            outcomes = {}

            def arrive(slot):
                client, _ = replies[slot]
                outcomes[slot] = client.barrier("sync", 1)

            threads = [
                threading.Thread(target=arrive, args=(slot,))
                for slot in replies
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            assert all(reply["ok"] for reply in outcomes.values())
        finally:
            harness.shutdown()

    def test_retire_fences_the_generation(self, tmp_path):
        harness = _CoordinatorHarness(tmp_path)
        try:
            replies = harness.join_all([0, 1])
            client0, _ = replies[0]
            client1, _ = replies[1]
            client0.call(OP_RETIRE, generation=1)
            with pytest.raises(GenerationFencedError):
                client1.barrier("after-fence", 1)
        finally:
            harness.shutdown()

    def test_stale_generation_barrier_is_fenced(self, tmp_path):
        harness = _CoordinatorHarness(tmp_path)
        try:
            replies = harness.join_all([0, 1])
            client0, _ = replies[0]
            with pytest.raises(GenerationFencedError):
                client0.barrier("old", 99)
        finally:
            harness.shutdown()

    def test_disconnect_evicts_and_next_generation_forms(self, tmp_path):
        harness = _CoordinatorHarness(tmp_path)
        try:
            replies = harness.join_all([0, 1])
            client0, _ = replies[0]
            client1, _ = replies[1]
            # SIGKILL equivalent: drop w0i0's control connection.
            client0._conn.close()
            with pytest.raises(GenerationFencedError):
                while True:
                    client1.barrier("poll", 1)
                    threading.Event().wait(0.02)
            # The survivor re-joins alone; after the grace window a
            # world-1 generation forms.
            reply = client1.join(1, 0)
            assert reply["ok"]
            assert reply["generation"] == 2
            assert reply["world"] == 1
            events = [e["type"] for e in harness.coordinator._events]
            assert "evicted" in events
            assert "fenced" in events
        finally:
            harness.shutdown()


def _max_delta(losses, reference):
    assert len(losses) == len(reference)
    return max(abs(a - b) for a, b in zip(losses, reference))


class TestClusterIntegration:
    def test_fault_free_run_matches_reference_exactly(self, tmp_path):
        config = ClusterConfig(world_size=3, steps=4, checkpoint_every=2,
                               run_timeout=90.0)
        report = run_cluster(config, str(tmp_path))
        assert report.complete
        assert report.steps_completed == config.steps
        assert report.generations == 1
        assert report.evictions == 0
        assert report.losses == run_cluster_reference(config)

    def test_sigkill_mid_step_recovers_and_converges(self, tmp_path):
        config = ClusterConfig(
            world_size=3, steps=8, checkpoint_every=3,
            kill_rank=1, kill_at_step=4, run_timeout=90.0,
        )
        report = run_cluster(config, str(tmp_path))
        assert report.complete
        assert report.steps_completed == config.steps
        assert report.evictions == 1
        assert report.respawns >= 1
        # Recovery within two generations of the original.
        assert 2 <= report.generations <= 3
        assert report.final_world >= 2
        reference = run_cluster_reference(config)
        assert _max_delta(report.losses, reference) <= 0.05

        events = report.events
        evicted = [e for e in events if e["type"] == "evicted"]
        assert evicted and evicted[0]["worker"] == "w1i0"
        assert any(e["type"] == "fenced" for e in events)
        formed = [e for e in events if e["type"] == "generation_formed"]
        assert len(formed) >= 2
        # The respawned incarnation made it into a later generation.
        assert any("w1i1" in e.get("members", {}) for e in formed)
        # The membership log is also persisted for CI artifacts.
        log = tmp_path / "membership_events.jsonl"
        assert log.exists()
        persisted = [
            json.loads(line)
            for line in log.read_text().splitlines() if line
        ]
        assert [e["type"] for e in persisted] == [e["type"] for e in events]

        # Distributed telemetry: every incarnation exported its own
        # stream, so the merged trace has a lane for the killed life
        # (w1i0) AND the respawned one (w1i1), plus the coordinator's
        # membership events — and the SIGKILL left a truncated tail the
        # collector skipped without losing the complete events.
        from repro.telemetry.collect import TraceCollector

        collected = TraceCollector(str(tmp_path)).collect()
        assert {"w0i0", "w1i0", "w1i1", "w2i0"} <= set(collected.rank_lanes)
        assert collected.skipped_lines >= 1
        lanes = {e["args"]["name"] for e in collected.trace["traceEvents"]
                 if e.get("ph") == "M"}
        assert "coordinator" in lanes
        membership = [e for e in collected.trace["traceEvents"]
                      if e.get("cat") == "membership"]
        assert any(e["name"] == "generation_formed" for e in membership)
        # Worker streams aligned via their generation anchors.
        rank_streams = [s for s in collected.streams if s.role == "rank"]
        assert any(s.alignment == "anchor" for s in rank_streams)
        # The cluster report carries the same rollup: fleet-wide step
        # counter sums every rank's completed steps.
        assert report.rollup["counters"]["worker.steps"] > 0
        assert set(report.rank_lanes) == set(collected.rank_lanes)

        # Post-hoc protocol replay: the persisted membership log and the
        # per-rank telemetry streams from a real SIGKILL run satisfy the
        # fencing discipline and collective-agreement invariants.
        from repro.analysis.protocol import verify_cluster_workdir

        verification = verify_cluster_workdir(str(tmp_path))
        assert verification.ok, [
            (v.invariant, v.message) for v in verification.violations
        ]
        assert verification.stats["membership_events"] == len(persisted)
        assert verification.stats["rank_streams"] >= 4
        assert verification.stats["collectives_observed"] > 0


class TestClusterCli:
    def test_cluster_command_writes_report(self, tmp_path, capsys):
        from repro.cli import main

        report_path = tmp_path / "report.json"
        code = main([
            "cluster", "--workers", "2", "--steps", "2",
            "--ckpt-every", "2", "--workdir", str(tmp_path / "run"),
            "--report", str(report_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "verdict" in out
        payload = json.loads(report_path.read_text())
        assert payload["complete"] is True
        assert payload["failures"] == []
        assert payload["max_delta"] == 0.0
        assert len(payload["reference"]) == 2

    def test_cluster_command_fails_on_divergence(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "cluster", "--workers", "2", "--steps", "2",
            "--ckpt-every", "2", "--tolerance", "-1",
            "--workdir", str(tmp_path / "run"),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL" in captured.err

    def test_chaos_gate_fails_on_unhealed_or_divergent_runs(self, capsys,
                                                            tmp_path):
        from repro.cli import main

        code = main([
            "chaos", "--steps", "3", "--ckpt-every", "2",
            "--workdir", str(tmp_path), "--tolerance", "-1",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "diverged from reference" in captured.err

    def test_chaos_kill_rank_validates_slot(self, capsys, tmp_path):
        from repro.cli import main

        code = main([
            "chaos", "--kill-rank", "7", "--workers", "3",
            "--workdir", str(tmp_path),
        ])
        assert code == 2
