"""Fleet control plane: traffic, quotas, scheduling, preemption, bench."""

import json

import pytest

from repro import api
from repro.engine.angel import AngelConfig
from repro.errors import ConfigurationError, QuotaExceededError
from repro.fleet import (
    FleetConfig,
    FleetGateway,
    JobFactory,
    JobSpec,
    JobState,
    JobWorkload,
    TrafficConfig,
    generate_jobs,
    run_fleet_bench,
)
from repro.hardware.device import DeviceKind
from repro.memory.allocator import PageAllocator, PageQuota
from repro.memory.pool import DevicePool
from repro.observe.report import compare, format_compare, render_markdown
from repro.telemetry import Telemetry
from repro.units import KiB, MiB


def _payload_sans_telemetry(payload):
    payload = dict(payload)
    # Wall-clock-contaminated keys: the registry dump and the merged
    # rollup carry real histogram samples, and the workdir is a temp
    # path. Everything else — including tenant_traffic, which is pure
    # counter sums — must be bit-stable for a fixed seed.
    payload.pop("telemetry", None)
    payload.pop("rollup", None)
    payload.pop("workdir", None)
    return payload


class TestTraffic:
    def test_same_seed_same_stream(self):
        a = generate_jobs(TrafficConfig(seed=7))
        b = generate_jobs(TrafficConfig(seed=7))
        assert a == b

    def test_different_seed_different_stream(self):
        a = generate_jobs(TrafficConfig(seed=7))
        b = generate_jobs(TrafficConfig(seed=8))
        assert a != b

    def test_stream_shape(self):
        config = TrafficConfig(seed=3, num_jobs=9)
        jobs = generate_jobs(config)
        assert len(jobs) == 9
        assert [j.job_id for j in jobs] == list(range(9))
        assert all(j.tenant in config.tenants for j in jobs)
        times = [j.submit_time for j in jobs]
        assert times == sorted(times)


class TestQuota:
    """Two tenants on one pool: the cap is per-tenant, not per-pool."""

    def _make(self, telemetry=None):
        pool = DevicePool(DeviceKind.CPU, 64 * KiB, page_bytes=1 * KiB)
        quota = PageQuota(
            quotas={"alpha": 4, "beta": 4}, capacity_pages=64,
            telemetry=telemetry,
        )
        alloc_a = PageAllocator(
            {DeviceKind.CPU: pool}, owner="alpha", quota=quota
        )
        alloc_b = PageAllocator(
            {DeviceKind.CPU: pool}, owner="beta", quota=quota
        )
        return pool, quota, alloc_a, alloc_b

    def test_typed_error_and_other_tenant_unaffected(self):
        telemetry = Telemetry()
        _, quota, alloc_a, alloc_b = self._make(telemetry)
        # alpha fills its 4-page quota exactly.
        held = alloc_a.allocate((4 * 256,), "float32")  # 4 KiB = 4 pages
        with pytest.raises(QuotaExceededError) as excinfo:
            alloc_a.allocate((256,), "float32")
        err = excinfo.value
        assert err.tenant == "alpha"
        assert err.scope == "tenant"
        assert err.quota_pages == 4
        assert err.used_pages == 4
        # The rejection left the ledger unchanged...
        assert quota.used("alpha") == 4
        # ...and beta still allocates freely from the same pool.
        other = alloc_b.allocate((2 * 256,), "float32")
        assert quota.used("beta") == 2
        # Owner-accounting gauges landed in telemetry.
        gauges = telemetry.dump()["metrics"]["gauges"]
        assert gauges["quota.pages_in_use{tenant=alpha}"] == 4
        assert gauges["quota.pages_in_use{tenant=beta}"] == 2
        counters = telemetry.dump()["metrics"]["counters"]
        assert counters["quota.rejections{tenant=alpha}"] == 1
        alloc_a.release(held)
        alloc_b.release(other)
        assert quota.used() == 0

    def test_pool_capacity_scope(self):
        pool = DevicePool(DeviceKind.CPU, 64 * KiB, page_bytes=1 * KiB)
        quota = PageQuota(capacity_pages=3, telemetry=None)
        quota.set_quota("alpha", 10)
        alloc = PageAllocator(
            {DeviceKind.CPU: pool}, owner="alpha", quota=quota
        )
        with pytest.raises(QuotaExceededError) as excinfo:
            alloc.allocate((4 * 256,), "float32")
        assert excinfo.value.scope == "pool"
        # The failed allocation rolled back every charge it made.
        assert quota.used() == 0

    def test_close_credits_full_footprint(self):
        _, quota, alloc_a, _ = self._make()
        alloc_a.allocate((3 * 256,), "float32")
        assert quota.used("alpha") == 3
        alloc_a.close()
        assert quota.used("alpha") == 0

    def test_engine_level_rejection_leaks_nothing(self):
        quota = PageQuota(quotas={"tiny": 1})
        config = AngelConfig(
            gpu_memory_bytes=2 * MiB, cpu_memory_bytes=24 * MiB,
            page_bytes=32 * KiB, owner="tiny", quota=quota,
        )
        with pytest.raises(QuotaExceededError):
            JobFactory().engine(config)
        assert quota.used() == 0

    def test_quota_requires_owner(self):
        pool = DevicePool(DeviceKind.CPU, 64 * KiB, page_bytes=1 * KiB)
        with pytest.raises(Exception):
            PageAllocator({DeviceKind.CPU: pool}, quota=PageQuota())


class TestPreemptResume:
    def test_preempted_job_resumes_bit_identical(self, tmp_path):
        """The satellite acceptance test: preempt -> snapshot -> resume
        must reproduce the uninterrupted loss curve bit for bit (the
        ``run_cluster_reference`` comparison pattern)."""
        workload_a = JobWorkload(seed=1)
        workload_b = JobWorkload(seed=2)
        # One node that fits exactly one 2-layer job: B (prio 2) arriving
        # mid-run must preempt A (prio 0).
        config = FleetConfig(
            num_nodes=1, node_pages=100, tenant_quota_pages=100,
            workdir=str(tmp_path),
        )
        jobs = [
            JobSpec(job_id=0, tenant="a", priority=0, submit_time=0.0,
                    steps=6, workload=workload_a),
            JobSpec(job_id=1, tenant="b", priority=2, submit_time=10.0,
                    steps=4, workload=workload_b),
        ]
        report = FleetGateway(config).run(jobs=jobs)
        by_id = {job.spec.job_id: job for job in report.jobs}
        victim = by_id[0]
        assert victim.state is JobState.COMPLETED
        assert victim.preemptions == 1
        assert victim.resumes == 1
        assert report.preemption_events[0]["victim"] == 0
        assert report.preemption_events[0]["by_job"] == 1
        assert by_id[1].state is JobState.COMPLETED

        # Uninterrupted reference: same factory recipe, same batches.
        factory = JobFactory(workload_a)
        engine = factory.engine(AngelConfig(
            gpu_memory_bytes=config.gpu_memory_bytes,
            cpu_memory_bytes=config.cpu_memory_bytes,
            page_bytes=config.page_bytes,
        ))
        reference = []
        try:
            for batch in factory.batches(6):
                loss = engine(batch)
                engine.backward(loss)
                engine.step()
                reference.append(loss.item())
        finally:
            engine.close()
        assert victim.losses == reference

    def test_unplaceable_job_fails_not_hangs(self, tmp_path):
        config = FleetConfig(
            num_nodes=1, node_pages=60, tenant_quota_pages=60,
            workdir=str(tmp_path),
        )
        jobs = [JobSpec(job_id=0, tenant="a", priority=0, submit_time=0.0,
                        steps=2, workload=JobWorkload(layers=2))]
        report = FleetGateway(config).run(jobs=jobs)
        assert report.jobs[0].state is JobState.FAILED

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            FleetConfig(quantum_steps=0)
        with pytest.raises(ConfigurationError):
            FleetConfig(node_pages=10, tenant_quota_pages=20)


class TestFleetBench:
    def test_seed7_deterministic_and_gated(self, tmp_path):
        payload_a, report_a = run_fleet_bench(FleetConfig(seed=7))
        payload_b, _ = run_fleet_bench(FleetConfig(seed=7))
        assert _payload_sans_telemetry(payload_a) == \
            _payload_sans_telemetry(payload_b)
        fleet = payload_a["fleet"]
        # The CI gates: everything completes, p99 reported, >= 1
        # preemption exercising the snapshot path.
        assert fleet["jobs_per_hour"] > 0
        assert fleet["jobs_completed"] == fleet["jobs_submitted"]
        assert fleet["p99_queue_latency_seconds"] >= 0
        assert fleet["preemptions"] >= 1
        started = {job["job_id"] for job in payload_a["jobs"]
                   if job["first_start"] is not None}
        assert set(payload_a["admission_order"]) == started
        # Watchdog rollup and fairness are present fleet-wide.
        assert "alerts" in payload_a
        assert set(fleet["fairness"]["per_tenant_service_seconds"]) <= \
            set(FleetConfig(seed=7).resolved_traffic().tenants)
        # Per-tenant page traffic comes from the merged per-job event
        # streams (deterministic: counters only) and agrees with the
        # full rollup's copy.
        traffic = fleet["tenant_traffic"]
        assert traffic == payload_b["fleet"]["tenant_traffic"]
        assert traffic == payload_a["rollup"]["tenant_traffic"]
        assert set(traffic) <= \
            set(FleetConfig(seed=7).resolved_traffic().tenants)
        assert any(t["pages_moved_bytes"] > 0 for t in traffic.values())
        assert sum(t["jobs"] for t in traffic.values()) == \
            fleet["jobs_submitted"]
        # Every job stream landed in the rollup with its tenant label.
        jobs = [s for s in payload_a["rollup"]["per_source"].values()
                if s["role"] == "job"]
        assert len(jobs) == fleet["jobs_submitted"]
        assert all(j["tenant"] in traffic for j in jobs)

    def test_fleet_report_renders(self):
        payload, _ = run_fleet_bench(FleetConfig(seed=7))
        markdown = render_markdown(payload, title="Fleet run")
        assert "## Fleet" in markdown
        assert "jobs/hour" in markdown
        assert "### Preemptions" in markdown
        # Engine placeholders don't leak into the fleet report.
        assert "_No residency timeline" not in markdown

    def test_cli_fleet_bench(self, tmp_path, capsys):
        from repro.cli import main

        rc = main([
            "fleet", "bench", "--seed", "7",
            "--outdir", str(tmp_path), "--min-preemptions", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "jobs/hour" in out
        payload = json.loads((tmp_path / "BENCH_fleet.json").read_text())
        assert payload["benchmark"] == "fleet_bench"
        assert payload["fleet"]["preemptions"] >= 1


class TestReportCompareAsymmetry:
    def test_shared_keys_only_and_asymmetry_noted(self):
        fleet_payload, _ = run_fleet_bench(
            FleetConfig(seed=7, traffic=TrafficConfig(seed=7, num_jobs=3))
        )
        telemetry_payload = {
            "train": {"steps_per_second": 10.0, "elapsed_seconds": 1.0},
        }
        # Neither direction raises; one-sided sections are noted.
        result = compare(telemetry_payload, fleet_payload)
        assert result["ok"]
        assert "train.steps_per_second" in result["only_in_baseline"]
        assert "fleet.jobs_per_hour" in result["only_in_current"]
        text = format_compare(result)
        assert "Not comparable" in text
        reverse = compare(fleet_payload, telemetry_payload)
        assert "fleet.jobs_per_hour" in reverse["only_in_baseline"]

    def test_symmetric_payloads_have_no_asymmetry_section(self):
        payload = {"train": {"steps_per_second": 10.0}}
        result = compare(payload, dict(payload))
        assert result["only_in_baseline"] == []
        assert result["only_in_current"] == []
        assert "Not comparable" not in format_compare(result)

    def test_fleet_metrics_compared_when_shared(self):
        base = {"fleet": {"jobs_per_hour": 100.0,
                          "p99_queue_latency_seconds": 1.0}}
        worse = {"fleet": {"jobs_per_hour": 50.0,
                           "p99_queue_latency_seconds": 3.0}}
        result = compare(base, worse)
        assert not result["ok"]
        regressed = {e["metric"] for e in result["regressions"]}
        assert "fleet.jobs_per_hour" in regressed
        assert "fleet.p99_queue_latency_seconds" in regressed


class TestApiThreading:
    """api.chaos/api.cluster honor config-carried workdir/telemetry."""

    def test_chaos_config_workdir_and_telemetry(self, tmp_path):
        from repro.resilience import ChaosConfig

        telemetry = Telemetry()
        config = ChaosConfig(
            steps=4, checkpoint_every=2,
            workdir=str(tmp_path), telemetry=telemetry,
        )
        report = api.chaos(config)
        assert len(report.losses) == 4
        # Checkpoints landed in the config's workdir, not a temp dir.
        assert any(p.name.startswith("ckpt-") for p in tmp_path.iterdir())
        # The config's telemetry saw the run.
        assert telemetry.dump()["metrics"]["counters"]

    def test_chaos_explicit_workdir_wins(self, tmp_path):
        from repro.resilience import ChaosConfig

        config_dir = tmp_path / "from-config"
        explicit_dir = tmp_path / "explicit"
        config_dir.mkdir()
        explicit_dir.mkdir()
        config = ChaosConfig(
            steps=2, checkpoint_every=1, workdir=str(config_dir)
        )
        api.chaos(config, workdir=str(explicit_dir))
        assert any(explicit_dir.iterdir())
        assert not any(config_dir.iterdir())

    def test_cluster_config_workdir_and_telemetry(self, tmp_path):
        from repro.cluster import ClusterConfig

        telemetry = Telemetry()
        config = ClusterConfig(
            world_size=1, steps=2, checkpoint_every=1,
            workdir=str(tmp_path), telemetry=telemetry,
        )
        report = api.cluster(config)
        assert report.complete
        assert report.workdir == str(tmp_path)
        assert (tmp_path / "membership_events.jsonl").exists()
        gauges = telemetry.dump()["metrics"]["gauges"]
        assert any(key.startswith("cluster.") for key in gauges)


class TestApiFleet:
    def test_api_fleet_and_bench(self, tmp_path):
        config = FleetConfig(
            seed=3, traffic=TrafficConfig(seed=3, num_jobs=3),
            workdir=str(tmp_path),
        )
        report = api.fleet(config)
        assert report.jobs
        payload, _ = api.fleet_bench(
            FleetConfig(seed=3, traffic=TrafficConfig(seed=3, num_jobs=3))
        )
        assert payload["benchmark"] == "fleet_bench"
