"""Fault injection, retry/backoff, tier degradation and availability math."""

import numpy as np
import pytest

from repro.engine.angel import AngelConfig, initialize
from repro.errors import (
    AllocationError,
    ConfigurationError,
    RetryExhaustedError,
    TierFailedError,
    TransientIOError,
)
from repro.hardware.device import DeviceKind
from repro.memory.allocator import PageAllocator
from repro.memory.pool import DevicePool
from repro.metrics import FaultCounters, MetricsRecorder
from repro.nn import MixedPrecisionAdam, TinyTransformerLM
from repro.resilience import (
    AvailabilityModel,
    FaultKind,
    FaultPlan,
    FaultyBackend,
    RetryPolicy,
    inject_faults,
    poisson_failure_steps,
    replay_with_failures,
)
from repro.units import KiB, MiB

PAGE = 4 * KiB


def no_sleep(_seconds):
    pass


class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        policy = RetryPolicy(max_attempts=5, sleep=no_sleep)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientIOError("flake")
            return "ok"

        assert policy.run(flaky) == "ok"
        assert calls["n"] == 3
        assert policy.retries == 2

    def test_exhaustion_raises_with_cause(self):
        policy = RetryPolicy(max_attempts=3, sleep=no_sleep)

        def always_fails():
            raise TransientIOError("persistent")

        with pytest.raises(RetryExhaustedError) as info:
            policy.run(always_fails)
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, TransientIOError)

    def test_permanent_errors_are_not_retried(self):
        policy = RetryPolicy(max_attempts=5, sleep=no_sleep)
        calls = {"n": 0}

        def dead():
            calls["n"] += 1
            raise TierFailedError("ssd")

        with pytest.raises(TierFailedError):
            policy.run(dead)
        assert calls["n"] == 1

    def test_backoff_grows_and_is_capped(self):
        policy = RetryPolicy(
            base_delay=0.001, multiplier=2.0, max_delay=0.004, jitter=0.0,
            sleep=no_sleep,
        )
        assert policy.backoff(1) == pytest.approx(0.001)
        assert policy.backoff(2) == pytest.approx(0.002)
        assert policy.backoff(5) == pytest.approx(0.004)  # capped

    def test_jitter_is_seed_deterministic(self):
        a = [RetryPolicy(seed=7, sleep=no_sleep).backoff(i) for i in range(1, 5)]
        b = [RetryPolicy(seed=7, sleep=no_sleep).backoff(i) for i in range(1, 5)]
        assert a == b

    def test_deadline_bounds_total_time(self):
        policy = RetryPolicy(
            max_attempts=100, base_delay=10.0, deadline=0.01, sleep=no_sleep
        )
        with pytest.raises(RetryExhaustedError):
            policy.run(lambda: (_ for _ in ()).throw(TransientIOError("x")))

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        def drive(plan):
            injected = []
            for _ in range(200):
                try:
                    plan.on_io("ssd", "write", 64)
                except TransientIOError:
                    injected.append(plan.ops_seen)
            return injected

        first = drive(FaultPlan(seed=3, transient_write_rate=0.05))
        second = drive(FaultPlan(seed=3, transient_write_rate=0.05))
        assert first and first == second

    def test_transient_budget_is_respected(self):
        plan = FaultPlan(seed=0, transient_read_rate=1.0, max_transients=3)
        hits = 0
        for _ in range(10):
            try:
                plan.on_io("ssd", "read", 8)
            except TransientIOError:
                hits += 1
        assert hits == 3
        assert plan.count(FaultKind.TRANSIENT_READ) == 3

    def test_tier_death_is_permanent(self):
        plan = FaultPlan(seed=0, die_after_ops=2)
        plan.on_io("ssd", "read", 8)
        plan.on_io("ssd", "read", 8)
        for _ in range(3):
            with pytest.raises(TierFailedError):
                plan.on_io("ssd", "read", 8)
        assert plan.tier_dead("ssd")
        assert plan.count(FaultKind.TIER_DEATH) == 1  # logged once

    def test_rank_failure_fires_exactly_once(self):
        plan = FaultPlan(seed=0, rank_failure_at_step=4)
        assert not plan.take_rank_failure(3)
        assert plan.take_rank_failure(4)
        assert not plan.take_rank_failure(4)

    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(transient_read_rate=1.5)


class TestFaultyBackend:
    def _file_pool(self, plan):
        pool = DevicePool(DeviceKind.SSD, 8 * PAGE, PAGE, backend="file")
        inject_faults(pool, plan)
        return pool

    def test_torn_write_heals_on_full_rewrite(self):
        plan = FaultPlan(seed=0, torn_write_rate=1.0, max_torn_writes=1)
        with self._file_pool(plan) as pool:
            storage = pool.acquire_storage(PAGE)
            payload = bytes(range(256)) * (PAGE // 256)
            with pytest.raises(TransientIOError):
                storage.write(0, payload)
            # The torn write landed a strict prefix of the bytes.
            assert storage.read(0, PAGE) != payload
            storage.write(0, payload)  # the retry
            assert storage.read(0, PAGE) == payload
        assert plan.count(FaultKind.TORN_WRITE) == 1

    def test_dead_tier_raises_on_every_access(self):
        plan = FaultPlan(seed=0)
        with self._file_pool(plan) as pool:
            storage = pool.acquire_storage(PAGE)
            storage.write(0, b"x" * PAGE)
            plan.kill_tier("ssd")
            with pytest.raises(TierFailedError):
                storage.read(0, 16)
            with pytest.raises(TierFailedError):
                storage.write(0, b"y")

    def test_wrap_backend_preserves_close(self):
        plan = FaultPlan(seed=0)
        pool = DevicePool(DeviceKind.SSD, 8 * PAGE, PAGE, backend="file")
        path = pool._backend.path
        inject_faults(pool, plan)
        assert isinstance(pool._backend, FaultyBackend)
        pool.close()
        import os

        assert not os.path.exists(path)


class TestAllocatorRetry:
    def _pools(self, plan):
        ram = DevicePool(DeviceKind.CPU, 8 * PAGE, PAGE, backend="ram")
        ssd = DevicePool(DeviceKind.SSD, 8 * PAGE, PAGE, backend="file")
        inject_faults(ssd, plan)
        return {DeviceKind.CPU: ram, DeviceKind.SSD: ssd}

    def test_move_retries_transient_faults(self):
        plan = FaultPlan(seed=0, transient_write_rate=1.0, max_transients=2)
        policy = RetryPolicy(max_attempts=5, sleep=no_sleep)
        with PageAllocator(self._pools(plan), retry_policy=policy) as allocator:
            tensor = allocator.allocate((PAGE // 4,), np.float32, DeviceKind.CPU)
            data = np.arange(PAGE // 4, dtype=np.float32)
            tensor.write_array(data)
            tensor.move(DeviceKind.SSD)
            np.testing.assert_array_equal(tensor.read_array(), data)
        assert policy.retries >= 1

    def test_move_without_policy_propagates(self):
        plan = FaultPlan(seed=0, transient_write_rate=1.0, max_transients=1)
        with PageAllocator(self._pools(plan)) as allocator:
            tensor = allocator.allocate((PAGE // 4,), np.float32, DeviceKind.CPU)
            with pytest.raises(TransientIOError):
                tensor.move(DeviceKind.SSD)

    def test_drop_pool_refuses_while_occupied(self):
        plan = FaultPlan(seed=0)
        with PageAllocator(self._pools(plan)) as allocator:
            tensor = allocator.allocate((PAGE // 4,), np.float32, DeviceKind.SSD)
            with pytest.raises(AllocationError):
                allocator.drop_pool(DeviceKind.SSD)
            tensor.release()
            allocator.drop_pool(DeviceKind.SSD)
            with pytest.raises(AllocationError):
                allocator.pool(DeviceKind.SSD)


class TestEngineDegradation:
    def _engine(self, plan=None, policy=None):
        model = TinyTransformerLM(
            vocab_size=16, d_model=16, d_ffn=32, num_heads=2, num_layers=2,
            max_seq=8, seed=0,
        )
        optimizer = MixedPrecisionAdam(model.parameters(), lr=1e-3)
        config = AngelConfig(
            gpu_memory_bytes=4 * MiB, cpu_memory_bytes=64 * MiB,
            ssd_bytes=16 * MiB, page_bytes=64 * KiB,
            fault_plan=plan, retry_policy=policy,
        )
        return initialize(model, optimizer, config)

    def test_degrade_rebuilds_states_on_cpu_exactly(self):
        engine = self._engine()
        try:
            masters = [m.master.read_array().copy() for m in engine._managed]
            assert engine.state_tier == DeviceKind.SSD
            rebuilt = engine.degrade_tier(DeviceKind.SSD, DeviceKind.CPU)
            assert rebuilt == 3 * len(engine._managed)
            assert engine.state_tier == DeviceKind.CPU
            for managed, expected in zip(engine._managed, masters):
                assert managed.master.device_kind == DeviceKind.CPU
                np.testing.assert_array_equal(managed.master.read_array(), expected)
            assert "ssd" not in engine.memory_report()
        finally:
            engine.close()

    def test_degrade_requires_states_on_dead_tier(self):
        model = TinyTransformerLM(
            vocab_size=16, d_model=16, d_ffn=32, num_heads=2, num_layers=2,
            max_seq=8, seed=0,
        )
        optimizer = MixedPrecisionAdam(model.parameters(), lr=1e-3)
        engine = initialize(model, optimizer, AngelConfig())
        try:
            with pytest.raises(ConfigurationError):
                engine.degrade_tier(DeviceKind.SSD, DeviceKind.CPU)
        finally:
            engine.close()

    def test_engine_retries_transient_state_io(self):
        plan = FaultPlan(seed=1, transient_write_rate=0.05, max_transients=5)
        policy = RetryPolicy(max_attempts=6, sleep=no_sleep)
        engine = self._engine(plan=plan, policy=policy)
        engine.close()
        # Registration alone does enough SSD writes to consume the budget.
        assert plan.count(FaultKind.TRANSIENT_WRITE) == 5
        assert policy.retries >= 5


class TestAvailabilityModel:
    def test_young_daly_formula(self):
        model = AvailabilityModel(
            iteration_time=60.0, checkpoint_time=120.0,
            restart_time=300.0, mtbf=12 * 3600.0,
        )
        expected = (2 * 12 * 3600.0 * 120.0) ** 0.5
        assert model.optimal_checkpoint_interval() == pytest.approx(expected)
        assert model.optimal_checkpoint_every() == round(expected / 60.0)

    def test_efficiency_peaks_near_optimum(self):
        model = AvailabilityModel(
            iteration_time=60.0, checkpoint_time=120.0,
            restart_time=300.0, mtbf=12 * 3600.0,
        )
        optimum = model.optimal_checkpoint_interval()
        at_opt = model.efficiency(optimum)
        assert at_opt > model.efficiency(optimum / 20)
        assert at_opt > model.efficiency(optimum * 20)
        assert 0.0 < at_opt < 1.0

    def test_replay_failure_free_has_unit_goodput_minus_checkpoints(self):
        replay = replay_with_failures(
            total_steps=10, iteration_time=1.0, checkpoint_every=5,
            checkpoint_time=0.5, restart_time=2.0, failure_steps=[],
        )
        assert replay.failures == 0
        assert replay.steps_replayed == 0
        assert replay.checkpoints == 2
        assert replay.wall_clock == pytest.approx(10 * 1.0 + 2 * 0.5)

    def test_replay_rolls_back_to_last_checkpoint(self):
        replay = replay_with_failures(
            total_steps=10, iteration_time=1.0, checkpoint_every=4,
            checkpoint_time=0.0, restart_time=3.0, failure_steps=[6],
        )
        # Failed at step 6: replays steps 4 and 5 after a restart.
        assert replay.failures == 1
        assert replay.steps_replayed == 2
        assert replay.wall_clock == pytest.approx(10 + 2 + 3)
        assert replay.goodput == pytest.approx(10 / 15)

    def test_poisson_failures_are_seeded(self):
        a = poisson_failure_steps(1000, 1.0, mtbf=100.0, seed=5)
        b = poisson_failure_steps(1000, 1.0, mtbf=100.0, seed=5)
        assert a == b
        assert all(0 <= s < 1000 for s in a)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigurationError):
            AvailabilityModel(iteration_time=0, checkpoint_time=1,
                              restart_time=1, mtbf=100)


class TestFaultCounters:
    def test_summary_includes_resilience_block(self):
        counters = FaultCounters(retries=3, recoveries=1)
        recorder = MetricsRecorder(resilience=counters)
        summary = recorder.summary()
        assert summary["resilience"]["retries"] == 3
        assert summary["resilience"]["recoveries"] == 1

    def test_absorb_plan_folds_injection_log(self):
        plan = FaultPlan(seed=0, transient_read_rate=1.0, max_transients=2)
        for _ in range(2):
            with pytest.raises(TransientIOError):
                plan.on_io("ssd", "read", 8)
        counters = FaultCounters()
        counters.absorb_plan(plan)
        assert counters.transient_faults == 2
