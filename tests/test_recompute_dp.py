"""Activation recomputation and functional ZeRO data parallelism."""

import numpy as np
import pytest

from repro import nn
from repro.dp import ZeroDataParallelTrainer
from repro.errors import GradientError, ShardingError
from repro.nn import (
    FFN,
    MixedPrecisionAdam,
    Tensor,
    TinyTransformerLM,
    cross_entropy,
    lm_synthetic_batches,
)
from repro.nn.recompute import checkpoint
from repro.nn import tensor as tensor_mod


def tiny(seed=0, recompute=False):
    return TinyTransformerLM(
        vocab_size=16, d_model=16, d_ffn=32, num_heads=2, num_layers=2,
        max_seq=8, seed=seed, recompute=recompute,
    )


class TestRecompute:
    def test_gradients_identical_with_and_without(self):
        batch = next(lm_synthetic_batches(16, 8, 4, 1, seed=1))
        plain = tiny(seed=3, recompute=False)
        ckpt = tiny(seed=3, recompute=True)

        loss_plain = cross_entropy(plain(batch.inputs), batch.targets)
        plain.zero_grad()
        loss_plain.backward()

        loss_ckpt = cross_entropy(ckpt(batch.inputs), batch.targets)
        ckpt.zero_grad()
        loss_ckpt.backward()

        assert loss_plain.item() == pytest.approx(loss_ckpt.item(), rel=1e-6)
        for (name, a), (_, b) in zip(
            plain.named_parameters(), ckpt.named_parameters()
        ):
            assert a.grad is not None and b.grad is not None, name
            np.testing.assert_allclose(a.grad, b.grad, rtol=1e-4, atol=1e-6,
                                       err_msg=name)

    def test_forward_builds_smaller_tape(self):
        """Recompute's whole point: fewer live tape nodes after forward."""
        batch = next(lm_synthetic_batches(16, 8, 4, 1, seed=1))

        def forward_nodes(model):
            start = tensor_mod.tape_nodes_created
            model(batch.inputs)
            return tensor_mod.tape_nodes_created - start

        plain_nodes = forward_nodes(tiny(seed=3, recompute=False))
        ckpt_nodes = forward_nodes(tiny(seed=3, recompute=True))
        assert ckpt_nodes < plain_nodes / 2

    def test_training_with_recompute_learns(self):
        model = tiny(seed=4, recompute=True)
        opt = MixedPrecisionAdam(model.parameters(), lr=2e-3)
        losses = []
        for batch in lm_synthetic_batches(16, 8, 8, 60, seed=5):
            loss = cross_entropy(model(batch.inputs, True), batch.targets)
            model.zero_grad()
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert np.mean(losses[-6:]) < np.mean(losses[:6]) - 0.2

    def test_checkpoint_standalone_function(self):
        rng = np.random.default_rng(0)
        ffn = FFN(8, 16, rng)
        x = Tensor(rng.standard_normal((2, 8)).astype(np.float32), requires_grad=True)

        direct = ffn(x)
        (direct ** 2).sum().backward()
        direct_xgrad = x.grad.copy()
        direct_wgrad = ffn.w1.weight.grad.copy()

        x.zero_grad()
        ffn.zero_grad()
        wrapped = checkpoint(ffn, x, params=tuple(ffn.parameters()))
        np.testing.assert_allclose(wrapped.data, direct.data, atol=1e-6)
        (wrapped ** 2).sum().backward()
        np.testing.assert_allclose(x.grad, direct_xgrad, rtol=1e-5)
        np.testing.assert_allclose(ffn.w1.weight.grad, direct_wgrad, rtol=1e-5)

    def test_nondeterministic_function_detected(self):
        rng = np.random.default_rng(1)
        state = {"called": 0}

        def flaky(t):
            state["called"] += 1
            return t * float(state["called"])

        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        out = checkpoint(flaky, x)
        with pytest.raises(GradientError):
            out.sum().backward()


class TestZeroDataParallel:
    def test_matches_single_rank_training(self):
        """K-rank DP == 1-rank training on the same global batches."""
        batches = list(lm_synthetic_batches(16, 8, 8, 6, seed=6))

        single = ZeroDataParallelTrainer(lambda: tiny(seed=7), num_ranks=1, lr=1e-3)
        for batch in batches:
            single.train_step(batch)

        multi = ZeroDataParallelTrainer(lambda: tiny(seed=7), num_ranks=4, lr=1e-3)
        for batch in batches:
            multi.train_step(batch)

        for a, b in zip(single._params[0], multi._params[0]):
            np.testing.assert_allclose(a.data, b.data, atol=1e-6)

    def test_replicas_stay_in_sync(self):
        trainer = ZeroDataParallelTrainer(lambda: tiny(seed=8), num_ranks=2, lr=1e-3)
        for batch in lm_synthetic_batches(16, 8, 4, 4, seed=9):
            trainer.train_step(batch)
        assert trainer.replicas_in_sync()

    def test_optimizer_states_partitioned(self):
        """ZeRO: each rank holds ~1/N of the FP32 states, none shared."""
        trainer = ZeroDataParallelTrainer(lambda: tiny(seed=8), num_ranks=4, lr=1e-3)
        owned = trainer._owned_indices
        all_indices = sorted(i for rank in owned for i in rank)
        assert all_indices == list(range(len(trainer._params[0])))
        total = sum(trainer.optimizer_state_bytes(r) for r in range(4))
        single = ZeroDataParallelTrainer(lambda: tiny(seed=8), num_ranks=1, lr=1e-3)
        assert total == single.optimizer_state_bytes(0)

    def test_communication_volume_accounting(self):
        trainer = ZeroDataParallelTrainer(lambda: tiny(seed=8), num_ranks=2, lr=1e-3)
        batch = next(lm_synthetic_batches(16, 8, 4, 1, seed=9))
        trainer.train_step(batch)
        param_bytes = sum(p.data.nbytes for p in trainer._params[0])
        # All-reduce touches every gradient once; the ZeRO gather streams
        # every refreshed parameter once.
        assert trainer.comm.allreduce_bytes == param_bytes
        assert trainer.comm.gather_bytes == param_bytes

    def test_uneven_batch_rejected(self):
        trainer = ZeroDataParallelTrainer(lambda: tiny(seed=8), num_ranks=3, lr=1e-3)
        batch = next(lm_synthetic_batches(16, 8, 4, 1, seed=9))
        with pytest.raises(ShardingError):
            trainer.train_step(batch)

    def test_dp_losses_decrease(self):
        trainer = ZeroDataParallelTrainer(lambda: tiny(seed=10), num_ranks=2, lr=2e-3)
        losses = [
            trainer.train_step(batch)
            for batch in lm_synthetic_batches(16, 8, 8, 60, seed=11)
        ]
        assert np.mean(losses[-6:]) < np.mean(losses[:6]) - 0.2
