"""Thin setup shim.

The execution environment has no network and no ``wheel`` package, so the
PEP 517 editable path (which builds a wheel) is unavailable; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` use the legacy
``setup.py develop`` route. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
