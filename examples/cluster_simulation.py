"""Cluster-scale what-if analysis with the discrete-event simulator.

Plans and replays one training iteration of GPT3-175B on clusters from 8
to 768 GPUs, showing where the time goes (compute, PCIe movement, NCCL
collectives, CPU updates) and how Algorithm 1's overlap keeps the GPU
stream busy — the machinery behind Figures 7 and 8.

Run::

    python examples/cluster_simulation.py
"""

from repro.engine.planner import CapacityPlanner
from repro.hardware.cluster import a100_cluster
from repro.models import get_model
from repro.scheduler.unified import UnifiedScheduler


def main() -> None:
    config = get_model("gpt3-175b")
    print(f"model: {config.name} "
          f"({config.build(1, 2048).param_count / 1e9:.0f}B computed params)\n")

    header = (f"{'GPUs':>5} {'batch':>6} {'iter (s)':>9} {'samples/s':>10} "
              f"{'GPU busy':>9} {'PCIe busy':>10} {'cached layers':>14}")
    print(header)
    print("-" * len(header))

    for num_servers in (32, 48, 64, 96):
        cluster = a100_cluster(num_servers)
        planner = CapacityPlanner(cluster)
        batch = planner.max_micro_batch(config, "angel-ptm")
        scheduler = UnifiedScheduler(cluster)
        result = scheduler.simulate(config, batch)
        plan = result.plan
        print(f"{cluster.num_gpus:>5} {batch:>6} {result.iteration_time:>9.2f} "
              f"{result.samples_per_second:>10.2f} "
              f"{result.gpu_busy_fraction:>8.0%} "
              f"{result.pcie_busy_fraction:>9.0%} "
              f"{plan.cache.num_cached:>7}/{plan.trace.num_layers}")

    print("\nwhere one iteration's time goes (256 GPUs):")
    cluster = a100_cluster(32)
    result = UnifiedScheduler(cluster).simulate(config, micro_batch=12)
    for kind in ("compute", "pcie", "nccl", "cpu"):
        busy = result.timeline.busy_time(kind=kind)
        print(f"  {kind:>8}: {busy:8.2f}s of stream time "
              f"({busy / result.iteration_time:5.1%} of the iteration)")
    print(f"  makespan: {result.iteration_time:8.2f}s")

    # Export the iteration timeline for chrome://tracing / Perfetto.
    from repro.sim import save_chrome_trace

    save_chrome_trace(result.timeline, "gpt175b_iteration_trace.json")
    print("\ntimeline written to gpt175b_iteration_trace.json "
          "(open in chrome://tracing)")


if __name__ == "__main__":
    main()
