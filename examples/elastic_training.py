"""Elastic training: checkpoint, crash, recover, rescale — Section 3.1.

The paper's production requirements in one script:

1. train under ZeRO data parallelism on 2 simulated ranks, with a warmup
   LR schedule, gradient-norm clipping and a metrics recorder;
2. checkpoint to disk, then "crash";
3. restore the snapshot and *rescale to 4 ranks* (exact ZeRO re-sharding —
   "no need to re-configure their parallel schemes");
4. continue training and show the loss curve never noticed.

Run::

    python examples/elastic_training.py
"""

import numpy as np

from repro.dp import ZeroDataParallelTrainer
from repro.metrics import MetricsRecorder
from repro.nn import TinyTransformerLM, lm_synthetic_batches
from repro.nn.schedule import WarmupCosineLR, clip_grad_norm

TOTAL_STEPS = 120
CRASH_AT = 60


def factory():
    return TinyTransformerLM(
        vocab_size=32, d_model=32, d_ffn=64, num_heads=4, num_layers=2,
        max_seq=16, seed=3,
    )


def run_steps(trainer, batches, schedule, recorder, start_step):
    for offset, batch in enumerate(batches):
        step = start_step + offset
        for optimizer in trainer.optimizers:
            schedule.apply(optimizer, step)
        recorder.start_step()
        loss = trainer.train_step(batch)
        norm = clip_grad_norm(trainer._params[0], max_norm=1.0)
        recorder.end_step(loss, samples=batch.inputs.shape[0],
                          lr=trainer.optimizers[0].lr, grad_norm=norm)
        if step % 20 == 0:
            print(f"step {step:4d}  ranks={trainer.num_ranks}  "
                  f"loss {loss:.4f}  lr {trainer.optimizers[0].lr:.2e}")


def main() -> None:
    batches = list(lm_synthetic_batches(32, 16, 8, TOTAL_STEPS, seed=4))
    schedule = WarmupCosineLR(2e-3, warmup_steps=10, total_steps=TOTAL_STEPS)
    recorder = MetricsRecorder()

    print("phase 1: 2-rank ZeRO data parallelism")
    trainer = ZeroDataParallelTrainer(factory, num_ranks=2, lr=2e-3)
    run_steps(trainer, batches[:CRASH_AT], schedule, recorder, start_step=0)

    print(f"\n-- checkpoint at step {CRASH_AT}, simulate a failure, "
          "and rescale 2 -> 4 ranks --\n")
    resumed = ZeroDataParallelTrainer.rescale(trainer, factory, new_num_ranks=4)
    del trainer  # the "failed" job

    print("phase 2: resumed on 4 ranks (exact ZeRO state re-shard)")
    run_steps(resumed, batches[CRASH_AT:], schedule, recorder,
              start_step=CRASH_AT)

    summary = recorder.summary()
    print(f"\n{summary['steps']} steps, final loss "
          f"{summary['final_loss']:.4f}, "
          f"{summary['throughput']:.1f} samples/s wall-clock")
    losses = [r.loss for r in recorder.records]
    around_crash = np.mean(losses[CRASH_AT - 5:CRASH_AT])
    after_crash = np.mean(losses[CRASH_AT:CRASH_AT + 5])
    print(f"loss around the rescale: {around_crash:.4f} -> {after_crash:.4f} "
          "(no discontinuity: optimizer state survived the re-shard)")

    recorder.to_csv("elastic_training_metrics.csv")
    print("per-step metrics written to elastic_training_metrics.csv")


if __name__ == "__main__":
    main()
