"""Fine-tuning under memory pressure: eviction across the hierarchy.

Section 3.1 of the paper motivates hierarchical memory with fine-tuning
workloads: many short jobs, small batches, and far more model than GPU.
This example fine-tunes a "pre-trained" model with a GPU pool too small to
hold all parameters at once, so the engine pages layers in and out (LRU)
as the forward pass walks the network — the Figure 1 workflow, observable
through the engine's memory report and access trace.

Run::

    python examples/finetune_hierarchical.py
"""

import numpy as np

from repro import AngelConfig, initialize
from repro.hardware.device import DeviceKind
from repro.nn import MixedPrecisionAdam, TinyTransformerLM, copy_task_batches
from repro.units import KiB, MiB


def pretrain(model, steps: int = 60) -> None:
    """A short 'pre-training' phase on the raw next-token task."""
    from repro.nn import cross_entropy, lm_synthetic_batches

    opt = MixedPrecisionAdam(model.parameters(), lr=2e-3)
    for batch in lm_synthetic_batches(32, 16, 8, steps, seed=3):
        loss = cross_entropy(model(batch.inputs, True), batch.targets)
        model.zero_grad()
        loss.backward()
        opt.step()


def main() -> None:
    model = TinyTransformerLM(
        vocab_size=32, d_model=32, d_ffn=64, num_heads=4, num_layers=4,
        max_seq=16, seed=2,
    )
    print("pre-training the base model ...")
    pretrain(model)

    # Fine-tune on the downstream copy task with a tiny GPU pool: only a
    # few layers fit at a time, so pages shuttle between tiers.
    optimizer = MixedPrecisionAdam(model.parameters(), lr=1e-3)
    config = AngelConfig(
        gpu_memory_bytes=512 * KiB,   # much smaller than the model
        cpu_memory_bytes=64 * MiB,
        page_bytes=32 * KiB,
    )
    engine = initialize(model, optimizer, config)

    gpu_pool = engine.allocator.pool(DeviceKind.GPU)
    print(f"GPU pool: {gpu_pool.num_pages} pages of 32KiB; "
          f"model needs ~{model.num_parameters * 2 // 1024}KiB of FP16 params")

    losses = []
    for step, batch in enumerate(copy_task_batches(32, 16, 8, 100, seed=4)):
        loss = engine(batch)
        engine.backward(loss)
        engine.step()
        losses.append(loss.item())
        if step % 20 == 0:
            resident = sum(
                1 for m in engine._managed
                if m.fp16.device_kind == DeviceKind.GPU
            )
            print(f"step {step:4d}  loss {np.mean(losses[-20:]):.4f}  "
                  f"params resident on GPU: {resident}/{len(engine._managed)}")

    print(f"\nfine-tune loss: {np.mean(losses[:10]):.3f} -> "
          f"{np.mean(losses[-10:]):.3f}")
    print(f"GPU pool peak usage: {gpu_pool.peak_in_use}/{gpu_pool.num_pages} pages "
          "(the engine never exceeded the budget)")

    print("\nparameter access pattern (what the Tracer records):")
    for name, first, last in engine.access_trace()[:6]:
        print(f"  {name:<24} first={first:<5} last={last}")
    engine.close()


if __name__ == "__main__":
    main()
