"""Quickstart: the paper's Figure 6 training interface.

Wrap any numpy model with ``angelptm.initialize(model, optimizer, config)``
and train with the three-call loop — forward, backward, step — while the
engine manages FP16 working parameters and FP32 optimizer states in paged
hierarchical memory (a capacity-limited "GPU" pool plus a CPU pool here).

Run::

    python examples/quickstart.py
"""

import numpy as np

from repro import AngelConfig, initialize
from repro.nn import MixedPrecisionAdam, TinyTransformerLM, lm_synthetic_batches
from repro.units import KiB, MiB


def main() -> None:
    vocab, seq = 32, 16
    model = TinyTransformerLM(
        vocab_size=vocab, d_model=32, d_ffn=64, num_heads=4, num_layers=2,
        max_seq=seq, seed=0,
    )
    optimizer = MixedPrecisionAdam(model.parameters(), lr=2e-3)
    config = AngelConfig(
        gpu_memory_bytes=4 * MiB,    # the "GPU" tier is deliberately small
        cpu_memory_bytes=64 * MiB,
        page_bytes=64 * KiB,
    )

    engine = initialize(model, optimizer, config)
    print(f"model: {model.num_parameters:,} parameters")

    losses = []
    for step, batch in enumerate(lm_synthetic_batches(vocab, seq, 8, 120, seed=1)):
        loss = engine(batch)          # forward
        engine.backward(loss)         # backward + gradient offload
        engine.step()                 # paged Adam update
        losses.append(loss.item())
        if step % 20 == 0:
            print(f"step {step:4d}  loss {np.mean(losses[-20:]):.4f}")

    print(f"\nfinal loss: {np.mean(losses[-10:]):.4f} "
          f"(started at {np.mean(losses[:10]):.4f})")
    print("\nmemory tiers after training:")
    for tier, stats in engine.memory_report().items():
        print(f"  {tier:>4}: {stats['pages_in_use']:3d} pages in use, "
              f"peak {stats['peak_pages']}")
    engine.close()


if __name__ == "__main__":
    main()
