"""Extreme scale: SSD-resident optimizer states + the lock-free mechanism.

Reproduces Section 4.3's story end to end on real hardware (this machine's
filesystem standing in for the NVMe tier):

1. FP32 master parameters, momenta and variances live in a *file-backed*
   SSD pool; every optimizer sweep does genuine disk I/O.
2. Synchronous training pays that I/O on the critical path each step.
3. The lock-free mechanism (Algorithm 2) decouples it: gradients
   accumulate in CPU buffers and an update sweep folds several iterations
   at once — same data, near-identical convergence (Table 6).

Run::

    python examples/extreme_scale_ssd_lockfree.py
"""

import time

import numpy as np

from repro import AngelConfig, initialize
from repro.lockfree import LockFreeTrainer
from repro.nn import MixedPrecisionAdam, TinyTransformerLM, lm_synthetic_batches
from repro.units import KiB, MiB

VOCAB, SEQ, BATCH, STEPS = 32, 16, 8, 400


def batches(seed=5):
    return lm_synthetic_batches(VOCAB, SEQ, BATCH, STEPS, seed=seed, chain_seed=5)


def make_model():
    return TinyTransformerLM(
        vocab_size=VOCAB, d_model=32, d_ffn=64, num_heads=4, num_layers=2,
        max_seq=SEQ, num_experts=4, seed=6,
    )


def train_paged(lock_free: bool) -> tuple[float, float]:
    """Train through the paged engine with a real SSD tier; return
    (final loss, wall seconds)."""
    model = make_model()
    optimizer = MixedPrecisionAdam(model.parameters(), lr=2e-3)
    config = AngelConfig(
        gpu_memory_bytes=4 * MiB,
        cpu_memory_bytes=32 * MiB,
        ssd_bytes=32 * MiB,          # file-backed pool: real disk I/O
        page_bytes=64 * KiB,
        lock_free=lock_free,
        update_interval=4 if lock_free else 1,
    )
    engine = initialize(model, optimizer, config)
    start = time.perf_counter()
    losses = []
    for batch in batches():
        loss = engine(batch)
        engine.backward(loss)
        engine.step()
        losses.append(loss.item())
    elapsed = time.perf_counter() - start
    engine.close()
    return float(np.mean(losses[-15:])), elapsed


def main() -> None:
    print("=== paged training with a file-backed SSD tier ===")
    sync_loss, sync_time = train_paged(lock_free=False)
    print(f"synchronous: loss {sync_loss:.4f}, {sync_time:.2f}s "
          "(every step round-trips FP32 states through the SSD file)")

    lf_loss, lf_time = train_paged(lock_free=True)
    print(f"lock-free  : loss {lf_loss:.4f}, {lf_time:.2f}s "
          "(one SSD sweep per 4 iterations folds accumulated gradients)")
    print(f"-> SSD-path work divided by 4, loss gap "
          f"{abs(lf_loss - sync_loss) / sync_loss * 100:.1f}%")

    print("\n=== genuinely threaded lock-free trainer (Algorithm 2) ===")
    model = make_model()
    optimizer = MixedPrecisionAdam(model.parameters(), lr=2e-3)
    trainer = LockFreeTrainer(model, optimizer, sweep_delay=0.01)
    log = trainer.train(batches())
    print(f"GPU-loop iterations: {log.iterations}, update sweeps: {log.sweeps} "
          f"(each sweep emulates ~10ms of SSD I/O)")
    print(f"loss {log.first_loss:.3f} -> {log.final_loss:.3f} with "
          f"~{log.iterations / max(1, log.sweeps):.1f} iterations of staleness")


if __name__ == "__main__":
    main()
