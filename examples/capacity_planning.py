"""Capacity planning: "what is the largest model my cluster can train?"

Uses the planner behind Table 5 to answer the operations question the
paper's Section 6.2 studies: given N servers, what model depth fits under
Angel-PTM's dynamic placement vs DeepSpeed-style static partitioning, what
micro-batch does each support, and what does the SSD tier buy you.

Run::

    python examples/capacity_planning.py [num_servers]
"""

import sys

from repro.engine.planner import CapacityPlanner
from repro.hardware.cluster import a100_cluster
from repro.models import get_model
from repro.units import GiB


def main(num_servers: int = 1) -> None:
    cluster = a100_cluster(num_servers)
    planner = CapacityPlanner(cluster)
    base = get_model("gpt3-28b")  # 8192/32768-wide GPT; depth is scanned

    print(f"cluster: {num_servers} server(s), {cluster.num_gpus} GPUs, "
          f"{cluster.gpu_memory_bytes / GiB:.0f} GiB HBM, "
          f"{cluster.cpu_memory_bytes / GiB:.0f} GiB DDR, "
          f"{cluster.ssd_bytes / 1e12:.0f} TB SSD")
    print(f"architecture: GPT, d_model={base.d_model}, d_ffn={base.d_ffn}\n")

    rows = []
    for system, use_ssd in (
        ("deepspeed", False),
        ("angel-ptm", False),
        ("angel-ptm", True),
    ):
        layers = planner.max_layers(base, system, use_ssd=use_ssd)
        config = base.with_layers(layers)
        params = config.build(1, 2048).param_count
        batch = planner.max_micro_batch(config, system, use_ssd=use_ssd)
        label = system + (" + SSD" if use_ssd else "")
        rows.append((label, layers, params / 1e9, batch))

    print(f"{'system':<18} {'max layers':>10} {'params':>9} {'max batch':>10}")
    print("-" * 52)
    for label, layers, params_b, batch in rows:
        print(f"{label:<18} {layers:>10} {params_b:>8.1f}B {batch:>10}")

    ds, angel, angel_ssd = rows
    print(f"\nAngel-PTM trains a {angel[2] / ds[2]:.2f}x larger model than "
          f"static partitioning on the same hardware (paper: ~2x),")
    print(f"and the SSD tier extends that to {angel_ssd[2] / ds[2]:.1f}x.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1)
