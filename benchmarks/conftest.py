"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper, prints the
same rows/series the paper reports, and asserts the qualitative shape
(who wins, by roughly what factor, where crossovers fall). Absolute
numbers are not expected to match the authors' A100 testbed — the
substrate here is a calibrated simulator (see EXPERIMENTS.md).

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic end-to-end computations, so repeated
    rounds only burn time; one round gives the wall-clock cost of
    regenerating the artifact.
    """

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
