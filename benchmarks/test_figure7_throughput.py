"""Bench: Figure 7 — throughput vs DeepSpeed and Megatron-LM."""

from repro.experiments import figure7


def test_figure7_throughput(run_once):
    result = run_once(figure7.run)
    print("\n" + figure7.format_report(result))

    # 1x8: Megatron (vanilla DP) wins on the 1.7B model; Angel trails it
    # slightly (the paper's 2.4% management overhead) but beats DeepSpeed.
    m17 = result.normalized("gpt3-1.7b", "megatron", 1)
    a17 = result.normalized("gpt3-1.7b", "angel-ptm", 1)
    assert m17 > 1.0
    assert a17 > 1.0
    assert m17 > a17 - 0.02

    # 1x8: Megatron OOMs at 30B while Angel still beats DeepSpeed.
    assert result.normalized("gpt3-30b", "megatron", 1) is None
    assert result.normalized("gpt3-30b", "angel-ptm", 1) > 1.05

    # 4x8: Megatron handles 30B but not 120B; Angel leads everywhere and
    # its margin over DeepSpeed grows with model size.
    assert result.normalized("gpt3-30b", "megatron", 4) is not None
    assert result.normalized("gpt3-120b", "megatron", 4) is None
    a30 = result.normalized("gpt3-30b", "angel-ptm", 4)
    a120 = result.normalized("gpt3-120b", "angel-ptm", 4)
    assert a30 > 1.0 and a120 > 1.0
    assert a120 >= a30
