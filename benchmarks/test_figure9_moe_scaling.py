"""Bench: Figure 9 — T5-MoE scalability (9 experts/GPU/layer)."""

from repro.experiments import figure8, figure9


def test_figure9_moe_scaling(run_once):
    result = run_once(figure9.run)
    print("\n" + figure9.format_report(result))

    # Near-linear scaling: exponent just under 1.
    assert 0.9 <= result.scaling_exponent <= 1.02

    # The model grows with the cluster: 2304 experts (the 1.2T point) at
    # 256 GPUs.
    last = result.points[-1]
    assert last.num_gpus == 256
    assert last.num_experts == 2304
    assert last.total_params_t > 1.0

    # Below GPT3-175B's super-linear exponent (paper: all-to-all drag).
    gpt = figure8.run(server_counts=(32, 96))
    assert result.scaling_exponent < gpt.scaling_exponent
