"""Bench: page vs chunk granularity (PatrickStar comparison, Section 4.1)."""

from repro.experiments import ablation_granularity


def test_ablation_granularity(run_once):
    result = run_once(ablation_granularity.run)
    print("\n" + ablation_granularity.format_report(result))

    page = result.points[0]
    chunk = result.points[1]
    assert page.label == "page-4MiB"
    assert chunk.unit_bytes > 16 * page.unit_bytes

    # Pages are never worse, and win under memory pressure.
    assert page.samples_per_second is not None
    if chunk.samples_per_second is not None:
        assert page.samples_per_second >= chunk.samples_per_second
    assert page.max_feasible_batch >= chunk.max_feasible_batch
