"""Bench: Table 5 — max supported model scale on a single server."""

from repro.experiments import table5


def test_table5_model_scale(run_once):
    result = run_once(table5.run)
    print("\n" + table5.format_report(result))

    for family, paper_improvement in (("gpt", 0.964), ("t5", 1.148)):
        improvement = result.scale_improvement(family)
        # Paper: +96.4% (GPT) and +114.8% (T5); accept the same ballpark.
        assert 0.6 <= improvement <= 1.6, (family, improvement)

        ds_max = result.max_params(family, "deepspeed")
        angel_at_ds = result.best_throughput(family, "angel-ptm", ds_max)
        ds_best = result.best_throughput(family, "deepspeed", ds_max)
        # Angel-PTM is faster at DeepSpeed's own max scale (paper: +44%
        # GPT, +96.7% T5).
        assert angel_at_ds > ds_best

    # Throughput collapses at the max scale (batch-1 regime), as in the
    # paper's 55B/58B rows.
    for family in ("gpt", "t5"):
        angel_max = result.max_params(family, "angel-ptm")
        at_max = result.best_throughput(family, "angel-ptm", angel_max)
        ds_max = result.max_params(family, "deepspeed")
        at_ds_scale = result.best_throughput(family, "angel-ptm", ds_max)
        assert at_max < at_ds_scale
