"""Bench: telemetry profile — the ``repro profile`` harness end to end.

Not a paper table: this benchmark exercises the observability stack the
way CI's smoke job does, and asserts the acceptance properties — a
Perfetto-openable trace with the four engine tracks, nonzero byte
counters on every exercised (src-tier, dst-tier) edge, and a JSON-clean
``BENCH_telemetry.json`` payload.
"""

import json

from repro.telemetry.bench import ProfileConfig, run_profile
from repro.telemetry.chrome import named_tracks


def test_telemetry_profile(run_once):
    config = ProfileConfig(steps=5)
    report, telemetry = run_once(run_profile, config)

    train = report["train"]
    assert train["steps_per_second"] > 0
    assert train["final_loss"] is not None

    # Page traffic crossed the GPU<->CPU edge in both directions (the
    # tight default GPU budget forces evictions).
    edges = report["per_tier_edge_bytes"]
    assert "pages.moved_bytes{dst=gpu,src=cpu}" in edges
    assert "pages.moved_bytes{dst=cpu,src=gpu}" in edges
    assert all(v > 0 for v in edges.values())

    counters = report["telemetry"]["metrics"]["counters"]
    assert counters["pages.evictions"] > 0
    assert counters["engine.steps"] == config.steps
    assert any(k.startswith("io.read_bytes") for k in counters)

    # The analytic simulator ran on the same telemetry, so its planning
    # spans share the trace with the functional engine's.
    trace = telemetry.tracer.to_chrome_trace(
        track_order=["train", "updater", "pcie", "scheduler"]
    )
    tracks = named_tracks(trace)
    assert {"train", "updater", "pcie", "scheduler"} <= set(tracks)
    assert len(tracks) >= 4

    # Overhead accounting is present (enabled vs disabled run).
    assert report["overhead"] is not None
    assert report["overhead"]["disabled_seconds"] > 0

    json.dumps(report)  # BENCH_telemetry.json must serialize as-is
    print(f"\nsteps/s: {train['steps_per_second']:.2f}  "
          f"tracks: {tracks}  "
          f"edge bytes: {sum(edges.values()) / 2**20:.2f} MiB")
