"""Bench: page-size ablation (Section 4.1's 'Optimal Page Size')."""

from repro.experiments import ablation_page_size
from repro.units import MiB


def test_ablation_page_size(run_once):
    result = run_once(ablation_page_size.run)
    print("\n" + ablation_page_size.format_report(result))

    # The cost curve is U-shaped: small pages waste PCIe on per-page
    # setup, large pages waste capacity on tail slack.
    four = result.of(4 * MiB)
    assert result.of(256 * 1024).bandwidth_efficiency < 0.6
    assert result.of(64 * MiB).capacity_overhead > 1.5

    # The paper's 4 MiB sits at (or next to) the sweep's optimum.
    ordered = sorted(result.points, key=lambda p: p.cost)
    assert four in ordered[:2]
    # ... and it is the *minimum* size achieving >90% PCIe efficiency,
    # which is the paper's exact selection criterion.
    efficient = [p for p in result.points if p.bandwidth_efficiency >= 0.9]
    assert min(p.page_bytes for p in efficient) == 4 * MiB
