"""Bench: Table 2 — tensor-size distribution within one GPT-3 layer."""

from repro.experiments import table2


def test_table2_distribution(run_once):
    dist = run_once(table2.run)
    print("\n" + table2.format_report(dist))
    large = table2.large_entries(dist)
    paper_large = {
        s: c for s, c in table2.PAPER_DISTRIBUTION.items() if s >= 1.0
    }
    assert large == paper_large
    # The distribution spans two orders of magnitude, the paper's premise
    # for why uniform chunks fragment.
    assert max(large) / min(large) > 10
