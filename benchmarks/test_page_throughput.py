"""Bench: page-move throughput and copy coalescing per tier edge.

Not a paper table: this is the arena data plane's acceptance gate. The
zero-copy redesign moves a MoveGroup with one gather/scatter slice copy
per contiguous run of arena slots — O(runs), not O(pages). This gate
moves one 32-page group along every edge of the GPU/CPU/SSD hierarchy
and fails if any edge degenerates back to per-page copies, or if the
pages-moved/sec gauge (the number `repro profile` publishes into
BENCH_telemetry.json) stops being recorded.
"""

from repro.telemetry.bench import ProfileConfig, _page_throughput


def test_page_move_throughput(run_once):
    config = ProfileConfig(steps=2)
    report = run_once(_page_throughput, config)

    edges = report["edges"]
    assert set(edges) == {"cpu->gpu", "gpu->cpu", "cpu->ssd", "ssd->cpu"}

    for edge, stats in edges.items():
        # Every edge moved the whole group...
        assert stats["pages_moved"] == report["group_pages"], edge
        assert stats["bytes_moved"] == (
            report["group_pages"] * report["page_bytes"]
        ), edge

        # ...in O(runs) copy calls. Fresh pools hand out consecutive
        # arena slots, so the whole 32-page group is a single contiguous
        # run: exactly one copy call, not one per page. Anything near
        # pages_moved means the coalescer regressed to the per-page path.
        assert stats["copy_calls"] == 1, (
            f"{edge}: {stats['copy_calls']} copy calls for "
            f"{stats['pages_moved']} pages — MoveGroup no longer coalesces"
        )
        assert stats["pages_per_copy_call"] == report["group_pages"], edge

        # The telemetry gauge behind BENCH_telemetry.json is live.
        assert stats["pages_moved_per_sec"] > 0, edge

    for edge, stats in sorted(edges.items()):
        print(
            f"\n{edge}: {stats['pages_moved']} pages in "
            f"{stats['copy_calls']} copy call(s), "
            f"{stats['pages_moved_per_sec']:.0f} pages/s"
        )
