"""Bench: Table 1 — per-layer memory footprints under mixed precision."""

import pytest

from repro.experiments import table1


def test_table1_footprints(run_once):
    result = run_once(table1.run)
    print("\n" + table1.format_report(result))
    # Inventory must agree with the paper's closed forms up to the small
    # terms the paper ignores (< 0.01% at this width).
    assert result.params_bytes == pytest.approx(result.closed_params, rel=1e-4)
    assert result.acts_bytes == pytest.approx(result.closed_acts, rel=1e-4)
    assert result.optims_bytes == pytest.approx(result.closed_optims, rel=1e-4)
    # Section 2.2 totals: 648 / 162 / 1944 GiB.
    assert result.model_params_gib == pytest.approx(648, rel=0.005)
    assert result.model_acts_gib == pytest.approx(162, rel=0.005)
    assert result.model_optims_gib == pytest.approx(1944, rel=0.005)
