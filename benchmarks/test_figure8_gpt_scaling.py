"""Bench: Figure 8 — GPT3-175B scalability on hundreds of GPUs."""

from repro.experiments import figure8


def test_figure8_gpt_scaling(run_once):
    result = run_once(figure8.run)
    print("\n" + figure8.format_report(result))

    # Paper: 11.68 samples/s at 256 GPUs -> 36.46 at 768 GPUs = 3.12x for
    # 3x the GPUs (super-linear).
    speedup = result.speedup(256, 768)
    assert speedup >= 3.0
    assert speedup <= 3.5
    assert result.scaling_exponent >= 1.0

    # Throughput grows monotonically with the cluster.
    series = [p.samples_per_second for p in result.points]
    assert series == sorted(series)
