"""Bench: Table 6 — extreme scale with SSD + the lock-free mechanism."""

from repro.experiments import table6


def test_table6_ssd_lockfree(run_once):
    result = run_once(table6.run)
    print("\n" + table6.format_report(result))

    # Lock-free removes the SSD path from the critical iteration: the
    # paper measures 2.96x on the 10T model; accept the same ballpark.
    speedup = result.lockfree_speedup("10T")
    assert 2.0 <= speedup <= 6.0

    # Near-linear sync scaling 1T/64 -> 10T/576 (9x GPUs, paper 8.5x).
    sync = {r.label: r for r in result.throughput if not r.lock_free}
    ratio = sync["10T"].samples_per_second / sync["1T"].samples_per_second
    assert 7.0 <= ratio <= 11.0

    # Convergence parity: the staleness penalty stays small (paper:
    # 0.853 vs 0.861 valid loss, ~0.9%).
    assert result.loss_gap() < 0.10
    for row in result.convergence:
        assert row.final_loss < row.first_loss  # both runs actually learn
