"""Bench: pipelined runtime vs synchronous engine on the SSD tier.

Not a paper table: this is the pipelined runtime's acceptance gate. The
same SSD-tier workload (emulated per-I/O latency on the state tier) runs
twice from the same seed — synchronous demand fetching vs the
schedule-driven pipeline (background prefetch, live GPU state cache,
async writeback) — and the gate fails if the pipeline ever regresses
below the sync baseline, if its numerics diverge, or if the runtime
stalls longer awaiting prefetch than the sync path spends fetching.
"""

from repro.telemetry.bench import ProfileConfig, _compare_pipeline


def test_pipeline_vs_sync(run_once):
    config = ProfileConfig(steps=8)
    compare = run_once(_compare_pipeline, config)

    # The hard floor: pipelined throughput must never regress below the
    # sync baseline. (Locally the speedup is ~2x; the margin here only
    # absorbs scheduler noise on loaded CI runners — the win itself is
    # sleep-backed latency, which does not compress under load. Raised
    # from 1.1 once the arena copies stopped serializing on the GIL.)
    assert compare["speedup"] >= 1.4, (
        f"pipelined runtime regressed: {compare['speedup']:.2f}x vs sync"
    )

    # Same seed, byte-preserving page movement: the loss curves must be
    # bit-identical, not merely close.
    assert compare["bit_identical_losses"]

    # Measurable overlap: time stalled awaiting prefetch is less than the
    # sync path's demand-fetch time for the same iterations.
    pipelined = compare["pipelined"]
    assert pipelined["stall_seconds"] < compare["sync"]["demand_fetch_seconds"]

    # Both pipeline mechanisms actually engaged on this workload: part of
    # the FP32 states live in the GPU cache, the rest flush async.
    assert pipelined["cached_layers_live"] > 0
    assert pipelined["writeback"]["flushed"] > 0
    assert pipelined["prefetch"]["prefetched_groups"] > 0

    sync_sps = compare["sync"]["steps_per_second"]
    pipe_sps = pipelined["steps_per_second"]
    print(f"\nsync {sync_sps:.2f} steps/s -> pipelined {pipe_sps:.2f} steps/s "
          f"({compare['speedup']:.2f}x), stall "
          f"{pipelined['stall_seconds'] * 1e3:.1f} ms, "
          f"{pipelined['cached_layers_live']} layers cached, "
          f"{pipelined['writeback']['flushed']} async flushes")
