"""Bench: staleness sweep (extension of Table 6's convergence claim)."""

from repro.experiments import staleness_sweep


def test_staleness_sweep(run_once):
    result = run_once(staleness_sweep.run)
    print("\n" + staleness_sweep.format_report(result))

    # The paper's operating regime (small staleness) is nearly free...
    assert result.of(2).relative_to_sync < 0.05
    assert result.of(4).relative_to_sync < 0.12
    # ...and pushing staleness far past it visibly degrades quality,
    # delimiting where the lock-free trade stops being free.
    assert result.of(16).relative_to_sync > result.of(4).relative_to_sync
    assert result.of(16).relative_to_sync > 0.15
