"""Bench: allocator ablation (Section 4.1's fragmentation claim)."""

from repro.experiments import ablation_allocators


def test_ablation_allocators(run_once):
    result = run_once(ablation_allocators.run)
    print("\n" + ablation_allocators.format_report(result))

    page = result.overhead("page-4MiB")
    # Page-based management: waste bounded by page-tail slack.
    assert page < 1.15
    # The coarse managers the paper criticizes carry more overhead.
    assert result.overhead("caching") >= page
    assert result.overhead("chunk") >= page
    # BFC (the strongest tensor-level baseline) still trails pages or ties.
    assert result.overhead("bfc") >= 1.0
