"""Bench: Section 4.3's idle-fraction observation (80% vs 10%)."""

from repro.experiments import idle_analysis


def test_idle_analysis(run_once):
    result = run_once(idle_analysis.run)
    print("\n" + idle_analysis.format_report(result))

    # Paper: ~10% GPU idle with CPU offload only, ~80% once SSD enters
    # synchronously; the lock-free mechanism removes the idle time.
    assert result.cpu_only_idle < 0.30
    assert result.ssd_idle > 0.50
    assert result.ssd_idle > result.cpu_only_idle + 0.30
    assert result.lockfree_idle < 0.15
