"""Bench: scheduler ablation — Algorithm 1 phase 2 and the GPU cache."""

from repro.experiments import ablation_scheduler


def test_ablation_scheduler(run_once):
    result = run_once(
        ablation_scheduler.run, model_name="gpt3-13b", micro_batch=2
    )
    print("\n" + ablation_scheduler.format_report(result))

    # The optimizations never hurt and phase-2 advancement pays.
    assert result.full >= result.no_phase2
    assert result.full >= result.no_cache
    assert result.full >= result.neither
    assert result.phase2_gain() > 0.0
