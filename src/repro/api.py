"""The unified ``repro.api`` surface.

One import gives a downstream user the whole toolkit — the Figure 6
training interface, the profiling harness, chaos testing, run reports and
static verification — without memorizing which subsystem owns what::

    from repro import api

    engine = api.initialize(model, optimizer, api.AngelConfig(pipeline=True))
    ...train...
    result = api.check(engine.executed_plan(),
                       gpu_budget_bytes=engine.config.gpu_memory_bytes)

Each function is a thin, documented entry point over the real subsystem
(:mod:`repro.engine`, :mod:`repro.telemetry.bench`,
:mod:`repro.resilience`, :mod:`repro.cluster`,
:mod:`repro.observe.report`, :mod:`repro.analysis.verifier`); the
subsystems remain importable
directly, and nothing here adds behavior — only a stable address.
Imports inside the functions keep ``import repro`` light.
"""

from __future__ import annotations

from repro.engine.angel import AngelConfig, AngelModel, initialize
from repro.protocols import FaultPlanLike, RetryPolicyLike, TelemetryLike


def profile(config=None, **overrides):
    """Profile the functional engine; returns ``(report, telemetry)``.

    ``config`` is a :class:`repro.telemetry.bench.ProfileConfig` (defaults
    to the CI smoke workload); keyword overrides replace individual
    fields, e.g. ``api.profile(steps=20, pipeline=True)``. The report
    dict is what ``repro profile`` writes to ``BENCH_telemetry.json``.
    """
    from dataclasses import replace

    from repro.telemetry.bench import ProfileConfig, run_profile

    if config is None:
        config = ProfileConfig()
    if overrides:
        config = replace(config, **overrides)
    return run_profile(config)


def chaos(config=None, workdir=None, telemetry=None):
    """Run the fault-injection harness; returns a ``ChaosReport``.

    ``config`` is a :class:`repro.resilience.ChaosConfig`; ``workdir``
    holds checkpoints. Explicit ``workdir``/``telemetry`` arguments win,
    then the config's own ``workdir``/``telemetry`` fields, then a fresh
    temp dir — so a fully-packed config object is honored as-is.
    """
    from repro.resilience import ChaosConfig, run_chaos

    if config is None:
        config = ChaosConfig()
    return run_chaos(config, workdir, telemetry=telemetry)


def cluster(config=None, workdir=None, telemetry=None):
    """Run an elastic multi-process cluster; returns a ``ClusterReport``.

    ``config`` is a :class:`repro.cluster.ClusterConfig` — real worker
    processes, rendezvous coordinator, heartbeat failure detection, and
    (when ``kill_rank``/``kill_at_step`` are set) a SIGKILL mid-step with
    checkpointed recovery. ``workdir`` holds checkpoints and the
    membership event log. Explicit ``workdir``/``telemetry`` arguments
    win, then the config's own fields, then a fresh temp dir.
    """
    from repro.cluster import ClusterConfig, run_cluster

    if config is None:
        config = ClusterConfig()
    return run_cluster(config, workdir, telemetry=telemetry)


def fleet(config=None, workdir=None, telemetry=None, jobs=None):
    """Run the multi-tenant fleet gateway; returns a ``FleetReport``.

    ``config`` is a :class:`repro.fleet.FleetConfig` — a deterministic
    traffic stream of training jobs admitted onto simulated nodes under
    fair-share scheduling, per-tenant page quotas and checkpoint-based
    preemption. ``workdir`` holds per-job preemption snapshots; ``jobs``
    (a list of :class:`repro.fleet.JobSpec`) replaces the generated
    traffic when given. Resolution order matches :func:`cluster`:
    explicit argument, then config field, then a fresh temp dir.
    """
    from dataclasses import replace

    from repro.fleet import FleetConfig, FleetGateway

    if config is None:
        config = FleetConfig()
    if telemetry is not None:
        config = replace(config, telemetry=telemetry)
    gateway = FleetGateway(config, workdir=workdir)
    return gateway.run(jobs=jobs)


def fleet_bench(config=None, telemetry=None):
    """Run the fleet benchmark; returns ``(payload, report)``.

    The payload dict is what ``repro fleet bench`` writes to
    ``BENCH_fleet.json``: jobs/hour, p99 queue latency, preemption
    events, per-tenant fairness, and the full per-job ledger.
    """
    from repro.fleet import run_fleet_bench

    return run_fleet_bench(config, telemetry=telemetry)


def trace_collect(workdir, out=None, rollup=None):
    """Merge a run's per-process event streams; returns a ``CollectedTrace``.

    ``workdir`` is any cluster or fleet run directory whose processes
    exported telemetry under ``workdir/telemetry/``. The result bundles
    the merged Chrome trace (one lane per rank incarnation / job, clock
    offsets solved from generation anchors), the fleet-wide metrics
    rollup and per-tenant traffic totals; ``out``/``rollup`` paths write
    the two artifacts, same as ``repro trace collect``.
    """
    from repro.telemetry.collect import TraceCollector

    collected = TraceCollector(workdir).collect()
    if out is not None:
        collected.save(out, rollup)
    return collected


def report(bench, out, trace=None, html=False):
    """Render a run report from a ``BENCH_telemetry.json`` payload.

    ``bench`` is the payload dict (or a path to one); returns the list of
    written paths, same as ``repro report build``.
    """
    from repro.observe.report import load_payload, write_report

    if not isinstance(bench, dict):
        bench = load_payload(bench)
    return write_report(bench, out, trace=trace, html=html)


def check(plan, gpu_budget_bytes, update_interval=1):
    """Statically verify an :class:`~repro.scheduler.unified.IterationPlan`.

    Works on any plan regardless of origin — simulated
    (``UnifiedScheduler.plan``), live (``engine.executed_plan()``) or
    hand-built — because all three are the same currency. Returns a
    :class:`repro.analysis.verifier.VerificationResult`.
    """
    from repro.analysis.verifier import verify_plan

    return verify_plan(
        plan, gpu_budget_bytes, update_interval=update_interval
    )


def check_protocol(depth=6, world_size=2):
    """Model-check the cluster coordinator's membership protocol.

    Exhaustively explores every interleaving of joins, crashes,
    barriers, evictions and re-formations up to ``depth`` actions,
    driving the *same* transition-rule table the real coordinator
    dispatches. Returns a
    :class:`repro.analysis.invariants.VerificationResult` whose
    violations (if any) carry minimal action-trace counterexamples.
    """
    from repro.analysis.protocol import ProtocolConfig, explore_protocol

    return explore_protocol(
        depth=depth, config=ProtocolConfig(world_size=world_size)
    )


def check_cluster(workdir):
    """Replay a finished cluster run against the protocol invariants.

    Reads ``membership_events.jsonl`` and the per-rank telemetry
    streams from ``workdir`` (a ``repro cluster`` output directory) and
    verifies the fencing discipline actually held, including
    byte-identical per-step collective sequences across ranks.
    """
    from repro.analysis.protocol import verify_cluster_workdir

    return verify_cluster_workdir(workdir)


__all__ = [
    "AngelConfig",
    "AngelModel",
    "FaultPlanLike",
    "RetryPolicyLike",
    "TelemetryLike",
    "chaos",
    "check",
    "check_cluster",
    "check_protocol",
    "cluster",
    "fleet",
    "fleet_bench",
    "initialize",
    "profile",
    "report",
    "trace_collect",
]
