"""Per-process telemetry export: append-only JSONL event streams.

Every process that wants cluster- or fleet-visible telemetry opens a
:class:`TelemetrySink` on its own file under ``workdir/telemetry/`` and
streams four event kinds into it: completed **spans** (drained from the
sink's :class:`~repro.telemetry.spans.SpanTracer`), **metrics** snapshots
of the whole registry at step boundaries, **anchor** markers that pin a
shared moment (a cluster generation forming) to the local monotonic
clock, and watchdog **alerts**. The first line of every file is a
``meta`` event naming the source, its role (rank / job / supervisor /
gateway), its tenant, and the local clock readings at open — everything
:mod:`repro.telemetry.collect` needs to align the stream into one
fleet-wide trace.

The format is deliberately crash-tolerant: each line is one complete
JSON object, writes happen at step boundaries followed by a flush, and a
process SIGKILLed mid-write leaves at most one truncated tail line,
which the collector skips while keeping every complete event. A live
object never crosses a process boundary — spawn configs carry a
picklable :class:`SinkSpec` (directory + flush interval) and each child
opens its own sink from it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.telemetry.clock import Clock
from repro.telemetry.core import Telemetry
from repro.telemetry.registry import Counter, Gauge, Histogram

#: Bumped when the event schema changes shape; the collector refuses
#: streams from the future rather than misreading them.
SCHEMA_VERSION = 1

#: Where sinks live relative to a run's workdir.
TELEMETRY_DIRNAME = "telemetry"

EVENT_META = "meta"
EVENT_SPAN = "span"
EVENT_ANCHOR = "anchor"
EVENT_METRICS = "metrics"
EVENT_ALERT = "alert"


def telemetry_dir(workdir: str) -> str:
    """The event-stream directory for one run's workdir."""
    return os.path.join(workdir, TELEMETRY_DIRNAME)


def _jsonable(value):
    """Fallback serializer: numpy scalars via item(), else str."""
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


@dataclass(frozen=True)
class SinkSpec:
    """A picklable recipe for opening a :class:`TelemetrySink`.

    This is what crosses process boundaries: ``cluster.supervisor`` puts
    one in the spawn config (instead of silently dropping the live
    telemetry object, which cannot be pickled), and each worker opens its
    own per-incarnation file from it.
    """

    directory: str
    #: Steps between forced flushes; 1 flushes at every step boundary.
    flush_interval: int = 1

    def __post_init__(self) -> None:
        if self.flush_interval < 1:
            raise ConfigurationError("flush_interval must be >= 1")

    def path_for(self, source: str) -> str:
        return os.path.join(self.directory, f"{source}.jsonl")

    def open(self, source: str, role: str = "rank", tenant: str | None = None,
             telemetry: Telemetry | None = None,
             clock: Clock | None = None) -> "TelemetrySink":
        return TelemetrySink(
            self.path_for(source), source, role=role, tenant=tenant,
            telemetry=telemetry, flush_interval=self.flush_interval,
            clock=clock,
        )


class TelemetrySink:
    """Streams one process's telemetry to an append-only JSONL file.

    The sink owns (or wraps) a :class:`Telemetry`; callers record spans
    and metrics through ``sink.telemetry`` exactly as before, and call
    :meth:`step` at step boundaries — the sink drains newly completed
    spans, snapshots the registry, and flushes every ``flush_interval``
    steps. Span and anchor timestamps are *local monotonic* seconds
    (``clock.perf()``); the collector aligns them across processes using
    anchor events, falling back to the wall-clock reading taken at open.
    """

    def __init__(self, path: str, source: str, role: str = "rank",
                 tenant: str | None = None,
                 telemetry: Telemetry | None = None,
                 flush_interval: int = 1, clock: Clock | None = None):
        if flush_interval < 1:
            raise ConfigurationError("flush_interval must be >= 1")
        self.path = path
        self.source = source
        self.role = role
        self.tenant = tenant
        self.telemetry = telemetry if telemetry is not None else Telemetry(
            clock=clock
        )
        self.flush_interval = flush_interval
        self._clock = self.telemetry.clock
        self._span_cursor = 0
        self._last_flush_step: int | None = None
        self._buffer: list[dict] = []
        self._closed = False
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        self._handle = open(path, "a", encoding="utf-8")
        # The meta line lands immediately: even a process that dies in
        # its first step leaves an identifiable, alignable stream.
        self._buffer.append({
            "kind": EVENT_META,
            "version": SCHEMA_VERSION,
            "source": source,
            "role": role,
            "tenant": tenant,
            "pid": os.getpid(),
            "perf": self._clock.perf(),
            "wall": self._clock.wall(),
            "flush_interval": flush_interval,
        })
        self.flush()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def event(self, kind: str, **fields) -> None:
        """Buffer one raw event line (written at the next flush)."""
        self._buffer.append({"kind": kind, **fields})

    def anchor(self, name: str, **args) -> None:
        """Pin a shared moment (e.g. ``generation:3``) to the local clock.

        Anchors are the collector's alignment currency, so they are rare
        and flushed immediately — a stream that later crashes still
        aligns.
        """
        self.event(EVENT_ANCHOR, name=name, t=self._clock.perf(),
                   args=dict(args))
        self.flush()

    def record_alert(self, alert) -> None:
        """Append one watchdog alert (anything with ``to_dict()``)."""
        payload = alert.to_dict() if hasattr(alert, "to_dict") else dict(alert)
        self.event(EVENT_ALERT, t=self._clock.perf(), alert=payload)

    def step(self, step: int) -> None:
        """Step boundary: snapshot the registry, flush on the interval."""
        self.event(EVENT_METRICS, step=int(step), t=self._clock.perf(),
                   **self._registry_snapshot())
        if (
            self._last_flush_step is None
            or step - self._last_flush_step >= self.flush_interval
        ):
            self.flush()
            self._last_flush_step = step

    def _registry_snapshot(self) -> dict:
        counters: dict = {}
        gauges: dict = {}
        histograms: dict = {}
        for key, instrument in sorted(
            self.telemetry.registry.instruments().items()
        ):
            if isinstance(instrument, Counter):
                counters[key] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[key] = instrument.value
            elif isinstance(instrument, Histogram):
                histograms[key] = instrument.samples
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    # ------------------------------------------------------------------
    # Flushing / teardown
    # ------------------------------------------------------------------
    def _drain_spans(self) -> None:
        records = self.telemetry.tracer.records
        epoch = self.telemetry.tracer.epoch
        for record in records[self._span_cursor:]:
            self._buffer.append({
                "kind": EVENT_SPAN,
                "name": record.name,
                "track": record.track,
                "start": record.start + epoch,
                "end": record.end + epoch,
                "depth": record.depth,
                "args": dict(record.args),
            })
        self._span_cursor = len(records)

    def flush(self) -> None:
        """Write every buffered event as complete lines, then flush."""
        if self._closed:
            return
        self._drain_spans()
        if self._buffer:
            lines = [
                json.dumps(event, default=_jsonable) for event in self._buffer
            ]
            self._buffer = []
            self._handle.write("\n".join(lines) + "\n")
        self._handle.flush()

    def tear(self) -> None:
        """Leave a deliberately truncated tail (crash-emulation hook).

        Writes the prefix of a metrics line with no terminating newline
        and flushes it — byte-for-byte what a SIGKILL mid-write leaves
        behind, which is exactly what the collector's tolerant reader
        must skip. Used by the cluster kill-rank scenario right before
        the SIGKILL so crash tolerance is exercised deterministically.
        """
        self.flush()
        self._handle.write('{"kind": "metrics", "step": 4, "counters": {"tru')
        self._handle.flush()

    def close(self, final_step: int | None = None) -> None:
        if self._closed:
            return
        if final_step is not None:
            self.event(EVENT_METRICS, step=int(final_step),
                       t=self._clock.perf(), **self._registry_snapshot())
        self.flush()
        self._closed = True
        self._handle.close()

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "EVENT_ALERT",
    "EVENT_ANCHOR",
    "EVENT_META",
    "EVENT_METRICS",
    "EVENT_SPAN",
    "SCHEMA_VERSION",
    "SinkSpec",
    "TELEMETRY_DIRNAME",
    "TelemetrySink",
    "telemetry_dir",
]
