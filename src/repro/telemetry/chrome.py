"""Chrome trace-event serialization shared by simulation and runtime.

Both the discrete-event simulator (``sim.trace_export``) and the runtime
span tracer (``telemetry.spans``) render to the same artifact: a Chrome
``traceEvents`` JSON openable in ``chrome://tracing`` / Perfetto. This
module owns the format — metadata rows naming each track, one ``X``
(complete) event per slice, stable tid assignment — so the two producers
cannot drift apart.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceSlice:
    """One renderable slice: a task occupancy on a named track."""

    name: str
    track: str
    start_us: float
    dur_us: float
    category: str = ""
    args: dict = field(default_factory=dict)


def assign_tids(tracks: list[str]) -> dict[str, int]:
    """Stable track -> tid map, in the order given (first seen wins)."""
    tids: dict[str, int] = {}
    for track in tracks:
        if track not in tids:
            tids[track] = len(tids)
    return tids


def build_chrome_trace(
    slices: list[TraceSlice],
    track_order: list[str] | None = None,
    other_data: dict | None = None,
) -> dict:
    """Assemble the Chrome trace-event JSON object.

    ``track_order`` pins the visual row ordering; tracks present only in
    ``slices`` are appended after it in first-appearance order.
    """
    tracks = list(track_order or [])
    tracks += [s.track for s in slices]
    tid_of = assign_tids(tracks)
    events: list[dict] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "cat": "__metadata",
            "args": {"name": track},
        }
        for track, tid in tid_of.items()
    ]
    for s in slices:
        event = {
            "name": s.name,
            "cat": s.category or s.track,
            "ph": "X",
            "pid": 0,
            "tid": tid_of[s.track],
            "ts": s.start_us,
            # Perfetto drops zero-width slices; keep them visible.
            "dur": max(s.dur_us, 0.001),
        }
        if s.args:
            event["args"] = dict(s.args)
        events.append(event)
    trace = {"traceEvents": events, "displayTimeUnit": "ms"}
    if other_data:
        trace["otherData"] = dict(other_data)
    return trace


def save_chrome_trace_json(trace: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle)


def named_tracks(trace: dict) -> list[str]:
    """The track names a viewer will display (from the metadata rows)."""
    return [
        event["args"]["name"]
        for event in trace.get("traceEvents", [])
        if event.get("ph") == "M"
    ]
