"""A labelled metrics registry: counters, gauges and histograms.

One registry per run absorbs every subsystem's accounting — page traffic
per (src-tier, dst-tier) edge, eviction counts, GPU-cache hit rate,
collective bytes, updater-sweep latencies, fault and retry counts — and
dumps them as one machine-readable dict. Instruments are get-or-create
and returned by identity, so hot paths fetch a counter once and call
``inc()`` thereafter.
"""

from __future__ import annotations

import threading

from repro.errors import ConfigurationError


def _key(name: str, labels: dict) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def nearest_rank(samples, q: float) -> float:
    """Nearest-rank percentile of ``samples``, ``q`` in [0, 100].

    The one shared definition of a percentile in this codebase —
    :class:`Histogram`, the trace collector's fleet rollup and
    ``fleet/bench.py`` all call this instead of hand-rolling index math,
    so their p99s agree by construction. Returns 0.0 on no samples.
    """
    if not 0 <= q <= 100:
        raise ConfigurationError("percentile must be in [0, 100]")
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


class Counter:
    """Monotonically increasing count (events, bytes)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self):
        return self._value

    def inc(self, amount=1):
        if amount < 0:
            raise ConfigurationError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount
            return self._value

    def _force(self, value) -> None:
        """Set the absolute value (compatibility shims only)."""
        with self._lock:
            self._value = value


class Gauge:
    """A value that goes up and down (pages in use, cache bytes)."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    @property
    def value(self):
        return self._value

    def set(self, value) -> None:
        with self._lock:
            self._value = value

    def add(self, amount) -> None:
        with self._lock:
            self._value += amount


class Histogram:
    """Distribution of observations (latencies, sizes).

    Observations are kept exactly — runs here are thousands of samples,
    not millions — so any percentile is available at dump time.
    """

    __slots__ = ("name", "labels", "_samples", "_lock")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self._samples: list[float] = []
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self._samples.append(float(value))

    @property
    def count(self) -> int:
        with self._lock:
            return len(self._samples)

    @property
    def sum(self) -> float:
        with self._lock:
            return sum(self._samples)

    @property
    def samples(self) -> list[float]:
        """A copy of the raw observations (export / merge input)."""
        with self._lock:
            return list(self._samples)

    def merge(self, samples) -> None:
        """Absorb raw observations from another histogram's ``samples``.

        The trace collector's fleet rollup folds every per-process
        histogram into one this way, so cross-rank percentiles are
        computed over the union of observations, not averaged summaries.
        """
        incoming = [float(s) for s in samples]
        with self._lock:
            self._samples.extend(incoming)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile of the observations, ``q`` in [0, 100]."""
        return nearest_rank(self.samples, q)

    def summary(self) -> dict:
        with self._lock:
            samples = list(self._samples)
        if not samples:
            return {"count": 0, "sum": 0.0, "mean": 0.0,
                    "min": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}
        return {
            "count": len(samples),
            "sum": sum(samples),
            "mean": sum(samples) / len(samples),
            "min": min(samples),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": max(samples),
        }


class _NullInstrument:
    """Absorbs every recording call; returned by a disabled telemetry."""

    __slots__ = ()
    name = "null"
    labels: dict = {}
    value = 0
    count = 0
    sum = 0.0
    samples: list = []

    def inc(self, amount=1):
        return 0

    def set(self, value) -> None:
        return None

    def add(self, amount) -> None:
        return None

    def observe(self, value) -> None:
        return None

    def merge(self, samples) -> None:
        return None

    def percentile(self, q):
        return 0.0

    def summary(self) -> dict:
        # Matches the empty-Histogram summary exactly, so report code
        # never branches on which keys exist.
        return {"count": 0, "sum": 0.0, "mean": 0.0,
                "min": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0}


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Get-or-create store of labelled instruments."""

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}
        self._lock = threading.Lock()

    def _get(self, cls, name: str, labels: dict):
        key = _key(name, labels)
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = self._instruments[key] = cls(name, labels)
        if not isinstance(instrument, cls):
            raise ConfigurationError(
                f"metric {key!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def instruments(self) -> dict[str, object]:
        with self._lock:
            return dict(self._instruments)

    def value(self, name: str, **labels):
        """Current value of a counter/gauge (0 if never recorded)."""
        instrument = self.instruments().get(_key(name, labels))
        if instrument is None:
            return 0
        return instrument.value

    def dump(self) -> dict:
        """One machine-readable snapshot of every instrument."""
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        for key, instrument in sorted(self.instruments().items()):
            if isinstance(instrument, Counter):
                out["counters"][key] = instrument.value
            elif isinstance(instrument, Gauge):
                out["gauges"][key] = instrument.value
            elif isinstance(instrument, Histogram):
                out["histograms"][key] = instrument.summary()
        return out
