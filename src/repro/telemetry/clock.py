"""Injectable time sources for telemetry, metrics and retry.

Production code wants wall time; tests want determinism. A :class:`Clock`
exposes the three time facets the codebase consumes — ``perf()`` for
durations, ``monotonic()`` for deadlines, ``wall()`` for timestamps — plus
``sleep()``, so a :class:`ManualClock` can stand in everywhere and make
backoff schedules, span durations and step timings exact, with zero
wall-clock cost.
"""

from __future__ import annotations

import time

from repro.errors import ConfigurationError


class Clock:
    """Real time: thin veneer over the stdlib clocks."""

    def perf(self) -> float:
        """High-resolution timestamp for measuring durations."""
        return time.perf_counter()

    def monotonic(self) -> float:
        """Monotonic timestamp for deadlines (never goes backwards)."""
        return time.monotonic()

    def wall(self) -> float:
        """Wall-clock epoch seconds (trace timestamps, filenames)."""
        return time.time()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class ManualClock(Clock):
    """A clock that only moves when told to.

    All three facets read the same counter; ``sleep`` advances it, so code
    that sleeps under a deadline can be tested without waiting. ``advance``
    models time passing between operations.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        #: Every sleep duration requested, in order (for assertions).
        self.sleeps: list[float] = []

    @property
    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ConfigurationError("a clock cannot run backwards")
        self._now += seconds

    def perf(self) -> float:
        return self._now

    def monotonic(self) -> float:
        return self._now

    def wall(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        if seconds > 0:
            self._now += seconds


#: Process-wide default; modules take ``clock=None`` and fall back to this.
WALL_CLOCK = Clock()
