"""The Telemetry facade: one object wiring clock, tracer and registry.

Subsystems accept ``telemetry=None`` and treat ``None`` as "off"; callers
that want observability build one :class:`Telemetry` and pass it down so
spans, per-tier traffic counters, fault counts and retry latencies all
land in a single export path. :data:`NULL_TELEMETRY` is a disabled
instance whose every operation is a no-op — safe to store and call
unconditionally on hot paths.
"""

from __future__ import annotations

from repro.telemetry.clock import WALL_CLOCK, Clock
from repro.telemetry.registry import NULL_INSTRUMENT, MetricsRegistry
from repro.telemetry.spans import NULL_SPAN, SpanTracer


class Telemetry:
    """Bundles a clock, a span tracer and a metrics registry."""

    def __init__(
        self,
        clock: Clock | None = None,
        enabled: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: SpanTracer | None = None,
    ):
        self.clock = clock or WALL_CLOCK
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else SpanTracer(
            clock=self.clock, enabled=enabled
        )

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str, track: str | None = None, **args):
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, track=track, **args)

    def instant(self, name: str, track: str | None = None, **args) -> None:
        if self.enabled:
            self.tracer.instant(name, track=track, **args)

    # ------------------------------------------------------------------
    # Instruments (get-or-create; cacheable by identity)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels):
        if not self.enabled:
            return NULL_INSTRUMENT
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels):
        if not self.enabled:
            return NULL_INSTRUMENT
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels):
        if not self.enabled:
            return NULL_INSTRUMENT
        return self.registry.histogram(name, **labels)

    # ------------------------------------------------------------------
    # Domain vocabulary (the metric-name catalog, docs/telemetry.md)
    # ------------------------------------------------------------------
    def record_page_move(self, src: str, dst: str, nbytes: int) -> None:
        """One page crossing a (src-tier, dst-tier) edge."""
        if not self.enabled:
            return
        self.registry.counter("pages.moved_bytes", src=src, dst=dst).inc(nbytes)
        self.registry.counter("pages.moves", src=src, dst=dst).inc()

    def record_copy_batch(
        self, src: str, dst: str, pages: int, nbytes: int,
        copy_calls: int, seconds: float,
    ) -> None:
        """One coalesced MoveGroup transfer along a (src, dst) edge.

        ``copy_calls`` is the number of gather/scatter slice copies the
        batch was issued as — O(runs), not O(pages), when the arena free
        lists keep pages contiguous. ``pages.moved_per_sec`` is the
        instantaneous rate of the most recent batch on the edge;
        ``pages.bytes_per_copy_call`` distributes how large each physical
        copy was (the PCIe-utilization proxy the paper sizes pages for).
        """
        if not self.enabled:
            return
        self.registry.counter("pages.copy_calls", src=src, dst=dst).inc(
            copy_calls
        )
        if copy_calls:
            per_call = nbytes / copy_calls
            self.registry.histogram(
                "pages.bytes_per_copy_call", src=src, dst=dst
            ).observe(per_call)
        if seconds > 0:
            self.registry.gauge("pages.moved_per_sec", src=src, dst=dst).set(
                pages / seconds
            )

    def record_io(self, tier: str, op: str, nbytes: int) -> None:
        """Physical backend I/O on one tier (``op`` is read/write)."""
        if not self.enabled:
            return
        self.registry.counter(f"io.{op}_bytes", tier=tier).inc(nbytes)

    def record_collective(self, kind: str, nbytes: int) -> None:
        """Bytes entering one collective (all_gather, all_reduce, ...)."""
        if not self.enabled:
            return
        self.registry.counter(f"collective.{kind}_bytes").inc(nbytes)

    def record_prefetch(self, outcome: str) -> None:
        """One prefetch group finishing: completed / abandoned / deferred."""
        if not self.enabled:
            return
        self.registry.counter("pipeline.prefetch", outcome=outcome).inc()

    def record_heartbeat(self, worker: str, age_seconds: float,
                         missed: int) -> None:
        """One worker's failure-detector view: heartbeat age and misses.

        Mirrored by the cluster supervisor from the coordinator's
        ``stats`` RPC; the ``worker_liveness`` watchdog rule reads the
        ``cluster.heartbeat.missed`` gauges.
        """
        if not self.enabled:
            return
        self.registry.gauge(
            "cluster.heartbeat.age_seconds", worker=worker
        ).set(age_seconds)
        self.registry.gauge(
            "cluster.heartbeat.missed", worker=worker
        ).set(missed)

    def record_membership(self, generation: int, size: int,
                          evictions: int) -> None:
        """The cluster's current generation, its size, and total evictions."""
        if not self.enabled:
            return
        self.registry.gauge("cluster.membership.generation").set(generation)
        self.registry.gauge("cluster.membership.size").set(size)
        self.registry.gauge("cluster.membership.evictions").set(evictions)

    def record_stall(self, edge: str, seconds: float) -> None:
        """Compute blocked waiting for the pipeline on one tier edge."""
        if not self.enabled or seconds <= 0:
            return
        self.registry.counter("pipeline.stalls", edge=edge).inc()
        self.registry.histogram("pipeline.stall_seconds", edge=edge).observe(
            seconds
        )

    def record_job(self, event: str, tenant: str) -> None:
        """Fleet job-lifecycle event (admitted/started/preempted/...)."""
        if not self.enabled:
            return
        self.registry.counter("fleet.jobs", event=event, tenant=tenant).inc()

    def record_queue_depth(self, depth: int) -> None:
        """Jobs waiting for a placement in the fleet gateway."""
        if not self.enabled:
            return
        self.registry.gauge("fleet.queue_depth").set(depth)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def dump(self) -> dict:
        """Unified snapshot: every metric plus the span breakdown."""
        return {
            "metrics": self.registry.dump(),
            "spans": self.tracer.breakdown(),
        }


#: Shared disabled instance; ``telemetry or NULL_TELEMETRY`` is the idiom.
NULL_TELEMETRY = Telemetry(enabled=False)
