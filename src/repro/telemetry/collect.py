"""Cluster/fleet trace collection: merge per-process event streams.

The dual of :mod:`repro.telemetry.export`: every process wrote its own
JSONL stream under ``workdir/telemetry/``; :class:`TraceCollector` reads
them all back (tolerantly — a SIGKILLed writer's truncated tail line is
skipped, complete events kept), aligns their local monotonic clocks onto
one global axis, and emits

- one Chrome trace with a lane per rank incarnation / fleet job, the
  coordinator's ``membership_events.jsonl`` entries rendered as instant
  events on their own lane;
- a fleet-wide :class:`~repro.telemetry.registry.MetricsRegistry`-style
  rollup — counters summed, gauges max-merged, histograms merged over
  raw samples — plus per-tenant page-traffic totals;
- a replay path that feeds per-step merged snapshots to an existing
  :class:`~repro.observe.watchdog.Watchdog`, so retry-storm and liveness
  rules fire over the *cluster's* counters, not one process's.

Clock alignment: each stream carries anchor events (``generation:<g>``)
stamped with the local ``perf()`` clock, and the coordinator's membership
log records the same moments in wall time. Matching the two gives each
stream an offset onto the global axis; streams with no matching anchor
fall back to the wall/perf readings taken at open — and the first such
stream publishes *its* anchors so purely-relative streams (two skewed
``ManualClock`` tests, single-process runs) still align to each other.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.telemetry.chrome import TraceSlice, build_chrome_trace, save_chrome_trace_json
from repro.telemetry.export import (
    EVENT_ALERT,
    EVENT_ANCHOR,
    EVENT_META,
    EVENT_METRICS,
    EVENT_SPAN,
    SCHEMA_VERSION,
    telemetry_dir,
)
from repro.telemetry.registry import Histogram, nearest_rank

#: Mirrors ``cluster.protocol.EVENTS_FILENAME`` (not imported: telemetry
#: sits below the cluster layer).
MEMBERSHIP_FILENAME = "membership_events.jsonl"

#: Tracks that render on the source's main lane rather than a sub-lane.
_MAIN_TRACKS = (None, "", "train", "MainThread")

#: The per-tenant traffic counters the fleet rollup totals.
_TRAFFIC_PREFIXES = (
    ("pages_moved_bytes", "pages.moved_bytes"),
    ("page_moves", "pages.moves"),
    ("io_read_bytes", "io.read_bytes"),
    ("io_write_bytes", "io.write_bytes"),
)


def read_jsonl(path: str) -> tuple[list[dict], int]:
    """Read one JSONL file tolerantly: (events, skipped-line count).

    A writer SIGKILLed mid-write leaves a truncated (or interleaved)
    tail; any line that is not one complete JSON object is counted and
    skipped, never fatal.
    """
    events: list[dict] = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(event, dict):
                events.append(event)
            else:
                skipped += 1
    return events, skipped


def parse_metric_key(key: str) -> tuple[str, dict]:
    """Invert ``registry._key``: ``"a{x=1,y=2}"`` -> ``("a", {...})``."""
    if "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels = dict(
        part.split("=", 1) for part in inner.rstrip("}").split(",") if part
    )
    return name, labels


@dataclass
class EventStream:
    """One process's parsed telemetry file, pre-alignment."""

    path: str
    meta: dict
    spans: list[dict] = field(default_factory=list)
    anchors: list[dict] = field(default_factory=list)
    metrics: list[dict] = field(default_factory=list)
    alerts: list[dict] = field(default_factory=list)
    skipped_lines: int = 0
    #: Seconds to add to local perf times to land on the global axis.
    offset: float = 0.0
    #: How the offset was derived: "anchor" or "wall".
    alignment: str = "wall"

    @property
    def source(self) -> str:
        return self.meta.get("source", os.path.basename(self.path))

    @property
    def role(self) -> str:
        return self.meta.get("role", "rank")

    @property
    def tenant(self) -> str | None:
        return self.meta.get("tenant")

    @property
    def last_metrics(self) -> dict | None:
        return self.metrics[-1] if self.metrics else None

    def lane_for(self, track) -> str:
        if track in _MAIN_TRACKS:
            return self.source
        return f"{self.source}/{track}"


def load_stream(path: str) -> EventStream | None:
    """Parse one event file; ``None`` if it never got a readable meta."""
    events, skipped = read_jsonl(path)
    meta = next((e for e in events if e.get("kind") == EVENT_META), None)
    if meta is None:
        return None
    if meta.get("version", 0) > SCHEMA_VERSION:
        raise ConfigurationError(
            f"{path} uses telemetry schema v{meta.get('version')}; "
            f"this reader understands <= v{SCHEMA_VERSION}"
        )
    stream = EventStream(path=path, meta=meta, skipped_lines=skipped)
    buckets = {
        EVENT_SPAN: stream.spans,
        EVENT_ANCHOR: stream.anchors,
        EVENT_METRICS: stream.metrics,
        EVENT_ALERT: stream.alerts,
    }
    for event in events:
        bucket = buckets.get(event.get("kind"))
        if bucket is not None:
            bucket.append(event)
    return stream


def load_streams(workdir: str) -> list[EventStream]:
    """Every readable stream under ``workdir/telemetry/``, sorted."""
    streams = []
    for path in sorted(glob.glob(os.path.join(telemetry_dir(workdir), "*.jsonl"))):
        stream = load_stream(path)
        if stream is not None:
            streams.append(stream)
    streams.sort(key=lambda s: s.source)
    return streams


def load_membership(workdir: str) -> list[dict]:
    path = os.path.join(workdir, MEMBERSHIP_FILENAME)
    if not os.path.exists(path):
        return []
    events, _ = read_jsonl(path)
    return events


def membership_anchors(membership: list[dict]) -> dict[str, float]:
    """Global anchor table from the coordinator's generation events.

    ``generation_formed`` is logged exactly once per generation and every
    member of that generation records a matching ``generation:<g>``
    anchor when it joins — the coordinator's wall time is the global
    truth the per-stream offsets are solved against.
    """
    anchors: dict[str, float] = {}
    for event in membership:
        if event.get("type") == "generation_formed":
            name = f"generation:{event.get('generation')}"
            anchors.setdefault(name, float(event.get("time", 0.0)))
    return anchors


def align_streams(streams: list[EventStream],
                  global_anchors: dict[str, float] | None = None) -> None:
    """Solve each stream's local->global clock offset, in place.

    Streams whose anchors match the global table align exactly; each
    newly aligned stream publishes its remaining anchors, so alignment
    propagates transitively. When no stream can make progress the first
    unaligned one (sorted by source — deterministic) falls back to its
    meta ``wall - perf`` offset and publishes its anchors, which is what
    lets anchor-sharing streams with no coordinator (unit tests,
    single-node runs) still coincide.
    """
    table = dict(global_anchors or {})
    pending = sorted(streams, key=lambda s: s.source)
    while pending:
        progressed = False
        for stream in list(pending):
            local = {a["name"]: float(a["t"]) for a in stream.anchors}
            match = next((n for n in sorted(local) if n in table), None)
            if match is None:
                continue
            stream.offset = table[match] - local[match]
            stream.alignment = "anchor"
            for name, t in local.items():
                table.setdefault(name, t + stream.offset)
            pending.remove(stream)
            progressed = True
        if progressed:
            continue
        stream = pending.pop(0)
        stream.offset = float(stream.meta.get("wall", 0.0)) - float(
            stream.meta.get("perf", 0.0)
        )
        stream.alignment = "wall"
        for anchor in stream.anchors:
            table.setdefault(
                anchor["name"], float(anchor["t"]) + stream.offset
            )


@dataclass
class CollectedTrace:
    """The merged artifact: one Chrome trace + one fleet-wide rollup."""

    trace: dict
    rollup: dict
    streams: list[EventStream]
    #: Lanes contributed by role="rank" streams (one per incarnation).
    rank_lanes: list[str]
    skipped_lines: int

    def save(self, trace_path: str, rollup_path: str | None = None) -> None:
        save_chrome_trace_json(self.trace, trace_path)
        if rollup_path:
            with open(rollup_path, "w", encoding="utf-8") as handle:
                json.dump(self.rollup, handle, indent=2, sort_keys=True)


class TraceCollector:
    """Merges a workdir's event streams into one :class:`CollectedTrace`."""

    def __init__(self, workdir: str):
        self.workdir = workdir

    def collect(self) -> CollectedTrace:
        streams = load_streams(self.workdir)
        membership = load_membership(self.workdir)
        align_streams(streams, membership_anchors(membership))

        slices: list[TraceSlice] = []
        rank_lanes: list[str] = []
        for stream in streams:
            if stream.role == "rank":
                rank_lanes.append(stream.source)
            for span in stream.spans:
                start = span["start"] + stream.offset
                slices.append(TraceSlice(
                    name=span["name"],
                    track=stream.lane_for(span.get("track")),
                    start_us=start * 1e6,
                    dur_us=(span["end"] - span["start"]) * 1e6,
                    args=span.get("args") or {},
                ))
            for anchor in stream.anchors:
                slices.append(TraceSlice(
                    name=anchor["name"],
                    track=stream.source,
                    start_us=(anchor["t"] + stream.offset) * 1e6,
                    dur_us=0.0,
                    category="anchor",
                    args=anchor.get("args") or {},
                ))
            for alert in stream.alerts:
                slices.append(TraceSlice(
                    name=f"alert/{alert['alert'].get('rule', '?')}",
                    track=stream.source,
                    start_us=(alert["t"] + stream.offset) * 1e6,
                    dur_us=0.0,
                    category="alert",
                    args=alert.get("alert") or {},
                ))
        for event in membership:
            slices.append(TraceSlice(
                name=event.get("type", "event"),
                track="coordinator",
                start_us=float(event.get("time", 0.0)) * 1e6,
                dur_us=0.0,
                category="membership",
                args={k: v for k, v in event.items()
                      if k not in ("type", "time")},
            ))

        # Rebase onto t=0 so wall-epoch timestamps don't push the viewer
        # out to 1.7 billion seconds.
        if slices:
            t0 = min(s.start_us for s in slices)
            slices = [
                TraceSlice(
                    name=s.name, track=s.track, start_us=s.start_us - t0,
                    dur_us=s.dur_us, category=s.category, args=s.args,
                )
                for s in slices
            ]
        slices.sort(key=lambda s: (s.start_us, s.track, s.name))

        track_order = []
        if membership:
            track_order.append("coordinator")
        track_order += sorted(
            {lane for s in streams for lane in
             [s.lane_for(None)] + [s.lane_for(sp.get("track"))
                                   for sp in s.spans]}
        )
        rollup = merge_rollup(streams)
        trace = build_chrome_trace(
            slices,
            track_order=track_order,
            other_data={
                "workdir": self.workdir,
                "streams": len(streams),
                "skipped_lines": sum(s.skipped_lines for s in streams),
                "alignment": {
                    s.source: {"offset": s.offset, "method": s.alignment}
                    for s in streams
                },
            },
        )
        return CollectedTrace(
            trace=trace,
            rollup=rollup,
            streams=streams,
            rank_lanes=sorted(rank_lanes),
            skipped_lines=sum(s.skipped_lines for s in streams),
        )


def merge_rollup(streams: list[EventStream]) -> dict:
    """Fleet-wide registry rollup from each stream's last snapshot.

    Counters are summed (they count disjoint per-process events), gauges
    max-merged (the interesting value of "missed heartbeats" or "pages
    in use" across ranks is the worst one), histograms merged over raw
    samples so percentiles come from the union of observations.
    """
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    merged_hists: dict[str, Histogram] = {}
    per_source: dict[str, dict] = {}
    for stream in streams:
        last = stream.last_metrics
        per_source[stream.source] = {
            "role": stream.role,
            "tenant": stream.tenant,
            "last_step": None if last is None else last.get("step"),
            "skipped_lines": stream.skipped_lines,
            "alignment": stream.alignment,
        }
        if last is None:
            continue
        for key, value in last.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        for key, value in last.get("gauges", {}).items():
            gauges[key] = max(gauges.get(key, value), value)
        for key, samples in last.get("histograms", {}).items():
            hist = merged_hists.get(key)
            if hist is None:
                hist = merged_hists[key] = Histogram(key, {})
            hist.merge(samples)
    histograms = {
        key: {**hist.summary(), "p99": hist.percentile(99)}
        for key, hist in sorted(merged_hists.items())
    }
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": histograms,
        "per_source": per_source,
        "tenant_traffic": tenant_traffic(streams),
    }


def tenant_traffic(streams: list[EventStream]) -> dict:
    """Per-tenant page/IO traffic totals (PatrickStar-style accounting).

    Sums the traffic counters of every stream labelled with a tenant —
    in the fleet these are the per-job sinks — keyed deterministically.
    """
    totals: dict[str, dict[str, float]] = {}
    for stream in streams:
        if stream.tenant is None or stream.last_metrics is None:
            continue
        bucket = totals.setdefault(stream.tenant, {
            name: 0 for name, _ in _TRAFFIC_PREFIXES
        })
        bucket.setdefault("jobs", 0)
        bucket["jobs"] += 1
        for key, value in stream.last_metrics.get("counters", {}).items():
            base, _ = parse_metric_key(key)
            for field_name, prefix in _TRAFFIC_PREFIXES:
                if base == prefix:
                    bucket[field_name] += value
    return dict(sorted(totals.items()))


def replay_watchdog(streams: list[EventStream], watchdog) -> list:
    """Feed merged per-step snapshots to a Watchdog; returns its alerts.

    For every step any stream reported, each stream contributes its
    latest snapshot *at or before* that step (a crashed rank keeps
    asserting its last known counters rather than vanishing, exactly how
    a scrape-based monitoring system would see it); counters are summed
    and gauges max-merged, so retry storms and missed heartbeats trip
    the rules on cluster-wide totals.
    """
    from repro.observe.watchdog import StepSnapshot

    reporting = [s for s in streams if s.metrics]
    steps = sorted({m["step"] for s in reporting for m in s.metrics})
    alerts = []
    for step in steps:
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        for stream in reporting:
            snap = None
            for event in stream.metrics:
                if event["step"] <= step:
                    snap = event
                else:
                    break
            if snap is None:
                continue
            for key, value in snap.get("counters", {}).items():
                counters[key] = counters.get(key, 0) + value
            for key, value in snap.get("gauges", {}).items():
                gauges[key] = max(gauges.get(key, value), value)
        alerts.extend(watchdog.observe_step(
            step,
            snapshot=StepSnapshot(step=step, counters=counters,
                                  gauges=gauges, memory={}),
        ))
    return alerts


# ----------------------------------------------------------------------
# `repro top`: the live tail view over the same files
# ----------------------------------------------------------------------
def tail_state(workdir: str) -> dict:
    """One refresh of the dashboard: latest state per rank/job/tenant."""
    streams = load_streams(workdir)
    ranks: dict[str, dict] = {}
    tenants: dict[str, dict] = {}
    alerts: list[dict] = []
    for stream in streams:
        last = stream.last_metrics or {}
        counters = last.get("counters", {})
        gauges = last.get("gauges", {})
        info = {
            "role": stream.role,
            "tenant": stream.tenant,
            "step": last.get("step"),
            "heartbeat_age": None,
            "missed": None,
            "moved_bytes": 0,
            "io_bytes": 0,
        }
        for key, value in counters.items():
            base, _ = parse_metric_key(key)
            if base in ("pages.moved_bytes",):
                info["moved_bytes"] += value
            elif base in ("io.read_bytes", "io.write_bytes"):
                info["io_bytes"] += value
        for key, value in gauges.items():
            base, labels = parse_metric_key(key)
            if base == "cluster.heartbeat.age_seconds":
                worker = labels.get("worker", stream.source)
                entry = ranks.setdefault(worker, {"role": "rank"})
                entry["heartbeat_age"] = value
            elif base == "cluster.heartbeat.missed":
                worker = labels.get("worker", stream.source)
                entry = ranks.setdefault(worker, {"role": "rank"})
                entry["missed"] = value
            elif base == "quota.pages_in_use":
                tenant = labels.get("tenant", "?")
                tenants.setdefault(tenant, {})["pages_in_use"] = value
        for key, value in counters.items():
            base, labels = parse_metric_key(key)
            if base == "quota.rejections":
                tenant = labels.get("tenant", "?")
                tenants.setdefault(tenant, {})["rejections"] = value
        if stream.role in ("rank", "job"):
            entry = ranks.setdefault(stream.source, {})
            entry.update({k: v for k, v in info.items() if v is not None})
        for alert in stream.alerts[-3:]:
            alerts.append({"source": stream.source, **alert.get("alert", {})})
    for tenant, bucket in tenant_traffic(streams).items():
        tenants.setdefault(tenant, {})["pages_moved_bytes"] = (
            bucket["pages_moved_bytes"]
        )
    return {
        "workdir": workdir,
        "streams": len(streams),
        "ranks": dict(sorted(ranks.items())),
        "tenants": dict(sorted(tenants.items())),
        "alerts": alerts[-8:],
    }


def _fmt_bytes(n) -> str:
    n = float(n or 0)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:,.0f}{unit}" if unit == "B" else f"{n:,.1f}{unit}"
        n /= 1024
    return f"{n:,.1f}GiB"


def render_top(state: dict) -> str:
    """Render one :func:`tail_state` snapshot as the text dashboard."""
    lines = [
        f"repro top — {state['workdir']}  "
        f"({state['streams']} stream(s))",
        "",
        f"{'SOURCE':<14} {'ROLE':<6} {'STEP':>5} {'HB AGE':>8} "
        f"{'MISSED':>6} {'PAGES MOVED':>12} {'IO':>10}",
    ]
    for source, info in state["ranks"].items():
        age = info.get("heartbeat_age")
        missed = info.get("missed")
        lines.append(
            f"{source:<14} {info.get('role', '?'):<6} "
            f"{info.get('step') if info.get('step') is not None else '-':>5} "
            f"{f'{age:.2f}s' if age is not None else '-':>8} "
            f"{f'{missed:.0f}' if missed is not None else '-':>6} "
            f"{_fmt_bytes(info.get('moved_bytes', 0)):>12} "
            f"{_fmt_bytes(info.get('io_bytes', 0)):>10}"
        )
    if not state["ranks"]:
        lines.append("  (no rank/job streams yet)")
    if state["tenants"]:
        lines += [
            "",
            f"{'TENANT':<10} {'PAGES IN USE':>12} {'REJECTIONS':>10} "
            f"{'PAGES MOVED':>12}",
        ]
        for tenant, info in state["tenants"].items():
            lines.append(
                f"{tenant:<10} {info.get('pages_in_use', 0):>12} "
                f"{info.get('rejections', 0):>10} "
                f"{_fmt_bytes(info.get('pages_moved_bytes', 0)):>12}"
            )
    if state["alerts"]:
        lines += ["", "ALERTS"]
        for alert in state["alerts"]:
            lines.append(
                f"  [{alert.get('severity', '?')}] {alert.get('rule', '?')} "
                f"@step {alert.get('step', '?')} ({alert.get('source', '?')}): "
                f"{alert.get('message', '')}"
            )
    return "\n".join(lines)


__all__ = [
    "CollectedTrace",
    "EventStream",
    "MEMBERSHIP_FILENAME",
    "TraceCollector",
    "align_streams",
    "load_stream",
    "load_streams",
    "membership_anchors",
    "merge_rollup",
    "nearest_rank",
    "parse_metric_key",
    "read_jsonl",
    "render_top",
    "replay_watchdog",
    "tail_state",
    "tenant_traffic",
]
