"""Runtime telemetry: span tracing, metrics, clocks and profiling.

The observability layer the functional engine was missing: hierarchical
:class:`SpanTracer` spans exported to the same Chrome trace-event format
as simulated timelines, a labelled :class:`MetricsRegistry` absorbing
per-tier page traffic and fault/retry accounting, injectable
:class:`Clock` time sources for deterministic tests, and the
``repro profile`` benchmark harness (:mod:`repro.telemetry.bench`).
"""

from repro.telemetry.clock import WALL_CLOCK, Clock, ManualClock
from repro.telemetry.collect import CollectedTrace, TraceCollector
from repro.telemetry.core import NULL_TELEMETRY, Telemetry
from repro.telemetry.export import SinkSpec, TelemetrySink
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
    nearest_rank,
)
from repro.telemetry.spans import NULL_SPAN, SpanRecord, SpanTracer

__all__ = [
    "Clock",
    "CollectedTrace",
    "Counter",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "SinkSpec",
    "SpanRecord",
    "SpanTracer",
    "Telemetry",
    "TelemetrySink",
    "TraceCollector",
    "WALL_CLOCK",
    "nearest_rank",
]
