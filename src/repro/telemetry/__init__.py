"""Runtime telemetry: span tracing, metrics, clocks and profiling.

The observability layer the functional engine was missing: hierarchical
:class:`SpanTracer` spans exported to the same Chrome trace-event format
as simulated timelines, a labelled :class:`MetricsRegistry` absorbing
per-tier page traffic and fault/retry accounting, injectable
:class:`Clock` time sources for deterministic tests, and the
``repro profile`` benchmark harness (:mod:`repro.telemetry.bench`).
"""

from repro.telemetry.clock import WALL_CLOCK, Clock, ManualClock
from repro.telemetry.core import NULL_TELEMETRY, Telemetry
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_INSTRUMENT,
)
from repro.telemetry.spans import NULL_SPAN, SpanRecord, SpanTracer

__all__ = [
    "Clock",
    "Counter",
    "Gauge",
    "Histogram",
    "ManualClock",
    "MetricsRegistry",
    "NULL_INSTRUMENT",
    "NULL_SPAN",
    "NULL_TELEMETRY",
    "SpanRecord",
    "SpanTracer",
    "Telemetry",
    "WALL_CLOCK",
]
