"""Benchmark harness: profile the functional engine under full telemetry.

``run_profile`` trains the tiny functional GPT for a few steps with a live
:class:`~repro.telemetry.core.Telemetry` attached (spans + per-tier byte
counters), plans and simulates one analytic iteration on the same clock so
the "scheduler" track lands in the same trace, and measures the overhead of
the instrumentation by repeating the training run with telemetry disabled.
The result feeds ``repro profile`` and ``benchmarks/``, and serializes to
``BENCH_telemetry.json`` next to a Perfetto-openable Chrome trace.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.telemetry.core import Telemetry
from repro.units import KiB, MiB


@dataclass(frozen=True)
class ProfileConfig:
    """Knobs for one profiling run (mirrors ``repro train``'s workload)."""

    steps: int = 10
    layers: int = 2
    lr: float = 2e-3
    seed: int = 0
    vocab_size: int = 32
    seq_len: int = 16
    batch_size: int = 8
    #: Deliberately tight: evictions force traffic on both directions of
    #: the GPU<->CPU edge, so the per-tier byte counters are all nonzero.
    gpu_memory_bytes: int = 1 * MiB
    cpu_memory_bytes: int = 64 * MiB
    ssd_bytes: int = 32 * MiB
    page_bytes: int = 64 * KiB
    lock_free: bool = False
    #: Drive the main profiled run through the pipelined runtime.
    pipeline: bool = False
    #: Analytic-simulator side: model-zoo name, servers and micro-batch.
    sim_model: str = "gpt3-13b"
    sim_servers: int = 1
    sim_batch: int = 4
    #: Also run telemetry-off to measure instrumentation overhead.
    measure_overhead: bool = True
    #: Also time the SSD-tier workload pipeline-off vs pipeline-on (same
    #: seed, emulated SSD latency on both) and record the speedup.
    compare_pipeline: bool = True
    #: Emulated per-I/O SSD latency for the comparison runs, injected
    #: through a FaultPlan so both runs pay identical tier costs.
    ssd_latency_seconds: float = 0.0005
    #: GPU pool for the comparison runs. Roomier than the main profile's
    #: deliberately-tight pool — the planned dynamic GPU cache needs
    #: headroom to install — but sized so the cache stays *partial* and
    #: the async writeback queue carries the uncached layers (both
    #: mechanisms contribute; both runs get the same budget).
    compare_gpu_memory_bytes: int = 5 * MiB
    #: Run the repro.observe watchdog at each step boundary; fired alerts
    #: and the residency timeline land in the BENCH payload.
    watch: bool = True


def _workload(config: ProfileConfig):
    from repro.fleet.factory import JobWorkload

    return JobWorkload(
        vocab_size=config.vocab_size, layers=config.layers,
        seq_len=config.seq_len, batch_size=config.batch_size,
        lr=config.lr, seed=config.seed,
    )


def _build_engine(config: ProfileConfig, telemetry, pipeline=None, fault_plan=None):
    from repro.engine.angel import AngelConfig
    from repro.fleet.factory import JobFactory

    angel = AngelConfig(
        gpu_memory_bytes=config.gpu_memory_bytes,
        cpu_memory_bytes=config.cpu_memory_bytes,
        ssd_bytes=config.ssd_bytes,
        page_bytes=config.page_bytes,
        lock_free=config.lock_free,
        update_interval=4 if config.lock_free else 1,
        pipeline=config.pipeline if pipeline is None else pipeline,
        fault_plan=fault_plan,
        telemetry=telemetry,
    )
    return JobFactory(_workload(config)).engine(angel)


def _train_once(
    config: ProfileConfig, telemetry, watchdog=None, pipeline=None, fault_plan=None
) -> tuple[float, list[float], list[dict], dict]:
    """One training run; returns (elapsed, losses, memory_timeline,
    pipeline_report)."""
    from repro.fleet.factory import JobFactory

    clock = telemetry.clock
    engine = _build_engine(config, telemetry, pipeline=pipeline, fault_plan=fault_plan)
    losses = []
    try:
        started = clock.perf()
        for step, batch in enumerate(
            JobFactory(_workload(config)).batches(config.steps)
        ):
            loss = engine(batch)
            engine.backward(loss)
            engine.step()
            losses.append(loss.item())
            if watchdog is not None:
                watchdog.observe_engine(engine, step=step + 1)
        elapsed = clock.perf() - started
        timeline = engine.forensics.timeline_payload()
        pipeline_report = engine.pipeline_report()
    finally:
        engine.close()
    return elapsed, losses, timeline, pipeline_report


def _compare_pipeline(config: ProfileConfig) -> dict:
    """SSD-tier workload, pipeline off vs on; same seed, same tier costs.

    Both runs pay an emulated per-I/O SSD latency (injected through a
    FaultPlan with ``latency_rate=1``), the realistic regime the async
    writeback targets; telemetry is disabled on both so the comparison
    times the runtime, not the instrumentation. Reports wall-clock
    throughputs, the speedup, overlap accounting from the pipelined run,
    and whether the two loss curves were bit-identical.
    """
    from dataclasses import replace

    from repro.resilience.faults import FaultPlan
    from repro.telemetry.core import Telemetry

    config = replace(config, gpu_memory_bytes=config.compare_gpu_memory_bytes)

    def plan():
        return FaultPlan(
            seed=config.seed,
            latency_rate=1.0,
            latency_seconds=config.ssd_latency_seconds,
        )

    sync_elapsed, sync_losses, _, sync_report = _train_once(
        config, Telemetry(enabled=False), pipeline=False, fault_plan=plan()
    )
    pipe_elapsed, pipe_losses, _, overlap = _train_once(
        config, Telemetry(enabled=False), pipeline=True, fault_plan=plan()
    )
    return {
        "workload": "ssd_tier",
        "steps": config.steps,
        "ssd_latency_seconds": config.ssd_latency_seconds,
        "sync": {
            "elapsed_seconds": sync_elapsed,
            "steps_per_second": (
                config.steps / sync_elapsed if sync_elapsed > 0 else float("inf")
            ),
            "demand_fetch_seconds": sync_report.get("demand_fetch_seconds", 0.0),
        },
        "pipelined": {
            "elapsed_seconds": pipe_elapsed,
            "steps_per_second": (
                config.steps / pipe_elapsed if pipe_elapsed > 0 else float("inf")
            ),
            "stall_seconds": overlap.get("stall_seconds", 0.0),
            "demand_fetch_seconds": overlap.get("demand_fetch_seconds", 0.0),
            "cached_layers_live": overlap.get("cached_layers_live", 0),
            "prefetch": overlap.get("prefetch"),
            "writeback": overlap.get("writeback"),
        },
        "speedup": sync_elapsed / pipe_elapsed if pipe_elapsed > 0 else float("inf"),
        "bit_identical_losses": sync_losses == pipe_losses,
    }


def _page_throughput(config: ProfileConfig) -> dict:
    """Raw ``move_pages`` throughput per (src, dst) tier edge.

    Builds a fresh three-tier allocator, moves one multi-tensor
    MoveGroup along each edge of the hierarchy, and reports
    pages-moved/sec plus how many physical copy calls the group
    coalesced into. Fresh pools hand out consecutive arena slots, so a
    well-coalesced group is O(runs) ≪ O(pages) copy calls — the number
    the new perf gate asserts on.
    """
    import numpy as np

    from repro.hardware.device import DeviceKind
    from repro.memory.allocator import PageAllocator
    from repro.memory.pool import DevicePool

    telemetry = Telemetry()
    page_bytes = config.page_bytes
    group_pages = 32
    capacity = 2 * group_pages * page_bytes
    pools = {
        DeviceKind.GPU: DevicePool(
            DeviceKind.GPU, capacity, page_bytes, backend="ram",
            telemetry=telemetry,
        ),
        DeviceKind.CPU: DevicePool(
            DeviceKind.CPU, capacity, page_bytes, backend="ram",
            telemetry=telemetry,
        ),
        DeviceKind.SSD: DevicePool(
            DeviceKind.SSD, capacity, page_bytes, backend="file",
            telemetry=telemetry,
        ),
    }
    edges = {}
    with PageAllocator(pools, telemetry=telemetry) as allocator:
        # Eight 4-page tensors: one MoveGroup of 32 pages per edge.
        tensors = [
            allocator.allocate(
                (4 * page_bytes // 4,), np.float32, DeviceKind.CPU
            )
            for _ in range(group_pages // 4)
        ]
        route = [DeviceKind.GPU, DeviceKind.CPU, DeviceKind.SSD,
                 DeviceKind.CPU]
        src = DeviceKind.CPU
        for dst in route:
            moved = allocator.move_pages(tensors, dst)
            edge = f"{src.name.lower()}->{dst.name.lower()}"
            edges[edge] = {
                "pages_moved": moved.pages_moved,
                "bytes_moved": moved.bytes_moved,
                "copy_calls": moved.copy_calls,
                "pages_per_copy_call": (
                    moved.pages_moved / moved.copy_calls
                    if moved.copy_calls else 0.0
                ),
                "pages_moved_per_sec": telemetry.registry.value(
                    "pages.moved_per_sec",
                    src=src.name.lower(), dst=dst.name.lower(),
                ),
            }
            src = dst
    return {
        "page_bytes": page_bytes,
        "group_pages": group_pages,
        "edges": edges,
    }


def _simulate_once(config: ProfileConfig, telemetry) -> tuple[dict, dict]:
    """Plan + simulate one analytic iteration on the shared telemetry.

    Returns ``(simulated metrics, verification payload)`` — the plan the
    simulator ran is also statically verified (see
    :mod:`repro.analysis.verifier`), so every profile proves its own
    schedule.
    """
    from repro.analysis.verifier import verify_plan
    from repro.hardware.cluster import a100_cluster
    from repro.models import get_model
    from repro.scheduler.unified import UnifiedScheduler

    scheduler = UnifiedScheduler(
        a100_cluster(config.sim_servers), telemetry=telemetry
    )
    result = scheduler.simulate(
        get_model(config.sim_model), config.sim_batch
    )
    verification = verify_plan(result.plan, scheduler.gpu_budget).to_dict()
    simulated = {
        "model": config.sim_model,
        "micro_batch": config.sim_batch,
        "iteration_time_seconds": result.iteration_time,
        "samples_per_second": result.samples_per_second,
        "gpu_busy_fraction": result.gpu_busy_fraction,
        "pcie_busy_fraction": result.pcie_busy_fraction,
    }
    return simulated, verification


def run_profile(
    config: ProfileConfig | None = None, telemetry: Telemetry | None = None
) -> tuple[dict, Telemetry]:
    """Profile the engine; returns (report, telemetry-with-spans).

    The report is the ``BENCH_telemetry.json`` payload; the returned
    telemetry still holds the span records, so callers can additionally
    ``telemetry.tracer.save_chrome_trace(path)``.
    """
    config = config or ProfileConfig()
    telemetry = telemetry or Telemetry()

    watchdog = None
    if config.watch:
        from repro.observe.watchdog import Watchdog, WatchdogConfig

        watchdog = Watchdog(
            telemetry=telemetry,
            config=WatchdogConfig(
                update_interval=4 if config.lock_free else 1
            ),
        )

    elapsed, losses, memory_timeline, pipeline_report = _train_once(
        config, telemetry, watchdog
    )
    simulated, verification = _simulate_once(config, telemetry)

    # The coordinator protocol is verified alongside the schedule: both
    # are static proofs the bench carries with its numbers (milliseconds
    # at the default 2-worker/depth-6 bound).
    from repro.analysis.protocol import explore_protocol

    protocol_verification = explore_protocol(depth=6).to_dict()

    pipeline_compare = None
    if config.compare_pipeline:
        pipeline_compare = _compare_pipeline(config)

    page_throughput = _page_throughput(config)

    overhead = None
    if config.measure_overhead:
        baseline_elapsed, _, _, _ = _train_once(config, Telemetry(enabled=False))
        overhead = {
            "instrumented_seconds": elapsed,
            "disabled_seconds": baseline_elapsed,
            "overhead_fraction": (
                (elapsed - baseline_elapsed) / baseline_elapsed
                if baseline_elapsed > 0 else 0.0
            ),
        }

    dump = telemetry.dump()
    counters = dump["metrics"]["counters"]
    page_edges = {
        key: value for key, value in counters.items()
        if key.startswith("pages.moved_bytes")
    }
    report = {
        "benchmark": "telemetry_profile",
        "config": asdict(config),
        "train": {
            "steps": config.steps,
            "elapsed_seconds": elapsed,
            "steps_per_second": (
                config.steps / elapsed if elapsed > 0 else float("inf")
            ),
            "final_loss": losses[-1] if losses else None,
        },
        "simulated": simulated,
        "verification": verification,
        "protocol_verification": protocol_verification,
        "per_tier_edge_bytes": page_edges,
        "page_throughput": page_throughput,
        "pipeline": pipeline_report,
        "pipeline_compare": pipeline_compare,
        "overhead": overhead,
        "memory_timeline": memory_timeline,
        "alerts": watchdog.payload() if watchdog is not None else [],
        "telemetry": dump,
    }
    return report, telemetry


def save_profile(report: dict, path) -> None:
    """Write the ``BENCH_telemetry.json`` payload."""
    import json
    from pathlib import Path

    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True))
