"""Benchmark harness: profile the functional engine under full telemetry.

``run_profile`` trains the tiny functional GPT for a few steps with a live
:class:`~repro.telemetry.core.Telemetry` attached (spans + per-tier byte
counters), plans and simulates one analytic iteration on the same clock so
the "scheduler" track lands in the same trace, and measures the overhead of
the instrumentation by repeating the training run with telemetry disabled.
The result feeds ``repro profile`` and ``benchmarks/``, and serializes to
``BENCH_telemetry.json`` next to a Perfetto-openable Chrome trace.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.telemetry.core import Telemetry
from repro.units import KiB, MiB


@dataclass(frozen=True)
class ProfileConfig:
    """Knobs for one profiling run (mirrors ``repro train``'s workload)."""

    steps: int = 10
    layers: int = 2
    lr: float = 2e-3
    seed: int = 0
    vocab_size: int = 32
    seq_len: int = 16
    batch_size: int = 8
    #: Deliberately tight: evictions force traffic on both directions of
    #: the GPU<->CPU edge, so the per-tier byte counters are all nonzero.
    gpu_memory_bytes: int = 1 * MiB
    cpu_memory_bytes: int = 64 * MiB
    ssd_bytes: int = 32 * MiB
    page_bytes: int = 64 * KiB
    lock_free: bool = False
    #: Analytic-simulator side: model-zoo name, servers and micro-batch.
    sim_model: str = "gpt3-13b"
    sim_servers: int = 1
    sim_batch: int = 4
    #: Also run telemetry-off to measure instrumentation overhead.
    measure_overhead: bool = True
    #: Run the repro.observe watchdog at each step boundary; fired alerts
    #: and the residency timeline land in the BENCH payload.
    watch: bool = True


def _build_engine(config: ProfileConfig, telemetry):
    from repro.engine.angel import AngelConfig, initialize
    from repro.nn import MixedPrecisionAdam, TinyTransformerLM

    model = TinyTransformerLM(
        vocab_size=config.vocab_size, d_model=32, d_ffn=64, num_heads=4,
        num_layers=config.layers, max_seq=config.seq_len, seed=config.seed,
    )
    optimizer = MixedPrecisionAdam(model.parameters(), lr=config.lr)
    angel = AngelConfig(
        gpu_memory_bytes=config.gpu_memory_bytes,
        cpu_memory_bytes=config.cpu_memory_bytes,
        ssd_bytes=config.ssd_bytes,
        page_bytes=config.page_bytes,
        lock_free=config.lock_free,
        update_interval=4 if config.lock_free else 1,
        telemetry=telemetry,
    )
    return initialize(model, optimizer, angel)


def _train_once(
    config: ProfileConfig, telemetry, watchdog=None
) -> tuple[float, list[float], list[dict]]:
    """One training run; returns (elapsed_seconds, losses, memory_timeline)."""
    from repro.nn import lm_synthetic_batches

    clock = telemetry.clock
    engine = _build_engine(config, telemetry)
    losses = []
    try:
        started = clock.perf()
        for step, batch in enumerate(lm_synthetic_batches(
            config.vocab_size, config.seq_len, config.batch_size,
            config.steps, seed=config.seed + 1,
        )):
            loss = engine(batch)
            engine.backward(loss)
            engine.step()
            losses.append(loss.item())
            if watchdog is not None:
                watchdog.observe_engine(engine, step=step + 1)
        elapsed = clock.perf() - started
        timeline = engine.forensics.timeline_payload()
    finally:
        engine.close()
    return elapsed, losses, timeline


def _simulate_once(config: ProfileConfig, telemetry) -> tuple[dict, dict]:
    """Plan + simulate one analytic iteration on the shared telemetry.

    Returns ``(simulated metrics, verification payload)`` — the plan the
    simulator ran is also statically verified (see
    :mod:`repro.analysis.verifier`), so every profile proves its own
    schedule.
    """
    from repro.analysis.verifier import verify_plan
    from repro.hardware.cluster import a100_cluster
    from repro.models import get_model
    from repro.scheduler.unified import UnifiedScheduler

    scheduler = UnifiedScheduler(
        a100_cluster(config.sim_servers), telemetry=telemetry
    )
    result = scheduler.simulate(
        get_model(config.sim_model), config.sim_batch
    )
    verification = verify_plan(result.plan, scheduler.gpu_budget).to_dict()
    simulated = {
        "model": config.sim_model,
        "micro_batch": config.sim_batch,
        "iteration_time_seconds": result.iteration_time,
        "samples_per_second": result.samples_per_second,
        "gpu_busy_fraction": result.gpu_busy_fraction,
        "pcie_busy_fraction": result.pcie_busy_fraction,
    }
    return simulated, verification


def run_profile(
    config: ProfileConfig | None = None, telemetry: Telemetry | None = None
) -> tuple[dict, Telemetry]:
    """Profile the engine; returns (report, telemetry-with-spans).

    The report is the ``BENCH_telemetry.json`` payload; the returned
    telemetry still holds the span records, so callers can additionally
    ``telemetry.tracer.save_chrome_trace(path)``.
    """
    config = config or ProfileConfig()
    telemetry = telemetry or Telemetry()

    watchdog = None
    if config.watch:
        from repro.observe.watchdog import Watchdog, WatchdogConfig

        watchdog = Watchdog(
            telemetry=telemetry,
            config=WatchdogConfig(
                update_interval=4 if config.lock_free else 1
            ),
        )

    elapsed, losses, memory_timeline = _train_once(config, telemetry, watchdog)
    simulated, verification = _simulate_once(config, telemetry)

    overhead = None
    if config.measure_overhead:
        baseline_elapsed, _, _ = _train_once(config, Telemetry(enabled=False))
        overhead = {
            "instrumented_seconds": elapsed,
            "disabled_seconds": baseline_elapsed,
            "overhead_fraction": (
                (elapsed - baseline_elapsed) / baseline_elapsed
                if baseline_elapsed > 0 else 0.0
            ),
        }

    dump = telemetry.dump()
    counters = dump["metrics"]["counters"]
    page_edges = {
        key: value for key, value in counters.items()
        if key.startswith("pages.moved_bytes")
    }
    report = {
        "benchmark": "telemetry_profile",
        "config": asdict(config),
        "train": {
            "steps": config.steps,
            "elapsed_seconds": elapsed,
            "steps_per_second": (
                config.steps / elapsed if elapsed > 0 else float("inf")
            ),
            "final_loss": losses[-1] if losses else None,
        },
        "simulated": simulated,
        "verification": verification,
        "per_tier_edge_bytes": page_edges,
        "overhead": overhead,
        "memory_timeline": memory_timeline,
        "alerts": watchdog.payload() if watchdog is not None else [],
        "telemetry": dump,
    }
    return report, telemetry


def save_profile(report: dict, path) -> None:
    """Write the ``BENCH_telemetry.json`` payload."""
    import json
    from pathlib import Path

    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True))
