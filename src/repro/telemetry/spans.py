"""Hierarchical runtime span tracing.

``tracer.span("fwd/layer3")`` brackets a region of real execution; nested
spans form a hierarchy per thread, and every thread (the GPU loop, the
lock-free updating thread) records into the same tracer. Finished spans
export to the Chrome trace-event format, so a *functional* engine run is
inspectable in Perfetto next to a simulated timeline.

Disabled tracing is near-free: ``span()`` returns one shared no-op context
manager — no object allocation, no clock read, no list append.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.telemetry.chrome import TraceSlice, build_chrome_trace, save_chrome_trace_json
from repro.telemetry.clock import WALL_CLOCK, Clock


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    name: str
    track: str
    start: float  # tracer-relative seconds
    end: float
    depth: int
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class _NullSpan:
    """Shared do-nothing context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


NULL_SPAN = _NullSpan()


class _Span:
    """A live span; records itself on exit."""

    __slots__ = ("tracer", "name", "track", "args", "start", "depth")

    def __init__(self, tracer: "SpanTracer", name: str, track: str | None, args: dict):
        self.tracer = tracer
        self.name = name
        self.track = track
        self.args = args
        self.start = 0.0
        self.depth = 0

    def __enter__(self) -> "_Span":
        stack = self.tracer._stack()
        if self.track is None:
            # Inherit the enclosing span's track, else the thread's name.
            self.track = stack[-1].track if stack else threading.current_thread().name
        self.depth = len(stack)
        stack.append(self)
        self.start = self.tracer.clock.perf()
        return self

    def __exit__(self, *exc_info) -> None:
        end = self.tracer.clock.perf()
        self.tracer._stack().pop()
        self.tracer._record(
            SpanRecord(
                name=self.name,
                track=self.track,
                start=self.start - self.tracer.epoch,
                end=end - self.tracer.epoch,
                depth=self.depth,
                args=self.args,
            )
        )


class SpanTracer:
    """Thread-aware hierarchical span recorder."""

    def __init__(self, clock: Clock | None = None, enabled: bool = True):
        self.clock = clock or WALL_CLOCK
        self.enabled = enabled
        self.epoch = self.clock.perf()
        self._records: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, track: str | None = None, **args):
        """Context manager bracketing a named region of execution."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, track, args)

    def instant(self, name: str, track: str | None = None, **args) -> None:
        """A zero-duration marker (retry fired, fault injected, ...)."""
        if not self.enabled:
            return
        now = self.clock.perf() - self.epoch
        if track is None:
            stack = self._stack()
            track = stack[-1].track if stack else threading.current_thread().name
        self._record(
            SpanRecord(name=name, track=track, start=now, end=now,
                       depth=len(self._stack()), args=args)
        )

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    @property
    def records(self) -> list[SpanRecord]:
        with self._lock:
            return list(self._records)

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
        self.epoch = self.clock.perf()

    def breakdown(self) -> dict[str, dict[str, float]]:
        """Aggregate span statistics keyed by span name."""
        out: dict[str, dict[str, float]] = {}
        for record in self.records:
            stats = out.setdefault(
                record.name, {"count": 0, "total_seconds": 0.0, "max_seconds": 0.0}
            )
            stats["count"] += 1
            stats["total_seconds"] += record.duration
            stats["max_seconds"] = max(stats["max_seconds"], record.duration)
        return out

    def to_chrome_trace(
        self,
        track_order: list[str] | None = None,
        other_data: dict | None = None,
    ) -> dict:
        """Render the recorded spans through the shared serialization."""
        slices = [
            TraceSlice(
                name=record.name,
                track=record.track,
                start_us=record.start * 1e6,
                dur_us=record.duration * 1e6,
                args=record.args,
            )
            for record in self.records
        ]
        return build_chrome_trace(
            slices, track_order=track_order, other_data=other_data
        )

    def save_chrome_trace(self, path: str, **kwargs) -> None:
        save_chrome_trace_json(self.to_chrome_trace(**kwargs), path)
