"""Training metrics: throughput, losses and memory high-water marks.

A production training system logs these continuously; the recorder here
collects per-step samples, computes summaries and exports CSV for offline
analysis — and can snapshot an AngelModel's per-tier page usage alongside.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.telemetry.clock import WALL_CLOCK, Clock
from repro.telemetry.registry import MetricsRegistry


@dataclass
class StepRecord:
    """One training step's measurements."""

    step: int
    loss: float
    samples: int
    elapsed: float
    lr: float = 0.0
    grad_norm: float = 0.0
    gpu_pages: int = 0
    cpu_pages: int = 0
    ssd_pages: int = 0


#: The fault/cure vocabulary, in export order.
_FAULT_FIELDS = (
    "retries", "transient_faults", "torn_writes",
    "latency_injections", "tier_deaths", "degradations",
    "rank_failures", "recoveries", "updater_fallbacks",
    "checkpoints_saved", "checkpoints_restored", "reshards",
)


class FaultCounters:
    """Resilience observability: every fault seen and every cure applied.

    Incremented by the retry/degradation/recovery machinery in
    ``repro.resilience`` so chaos tests (and operators) can assert exactly
    what happened during a run — Section 3.1's fault tolerance made
    countable.

    This is a thin compatibility view over ``faults.*`` counters in a
    :class:`~repro.telemetry.registry.MetricsRegistry`: attribute reads
    and writes go straight to the registry, so fault counts share one
    export path with page-traffic and retry-latency telemetry. Pass the
    run's registry (e.g. ``Telemetry().registry``) to join it; the
    default is a private registry, preserving the old standalone usage.
    """

    def __init__(self, registry: MetricsRegistry | None = None, **initial: int):
        object.__setattr__(
            self, "_registry",
            registry if registry is not None else MetricsRegistry(),
        )
        for name in _FAULT_FIELDS:
            self._registry.counter(f"faults.{name}")
        for name, value in initial.items():
            if name not in _FAULT_FIELDS:
                raise ConfigurationError(f"unknown fault counter {name!r}")
            setattr(self, name, value)

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    def __getattr__(self, name: str) -> int:
        if name in _FAULT_FIELDS:
            return self._registry.counter(f"faults.{name}").value
        raise AttributeError(name)

    def __setattr__(self, name: str, value) -> None:
        if name in _FAULT_FIELDS:
            self._registry.counter(f"faults.{name}")._force(int(value))
        else:
            object.__setattr__(self, name, value)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"FaultCounters({inner})"

    def as_dict(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in _FAULT_FIELDS}

    def absorb_plan(self, plan) -> None:
        """Fold a FaultPlan's injection log into these counters."""
        from repro.resilience.faults import FaultKind

        self.transient_faults += plan.count(FaultKind.TRANSIENT_READ)
        self.transient_faults += plan.count(FaultKind.TRANSIENT_WRITE)
        self.torn_writes += plan.count(FaultKind.TORN_WRITE)
        self.latency_injections += plan.count(FaultKind.LATENCY)


@dataclass
class MetricsRecorder:
    """Collects step records and summarizes them."""

    records: list[StepRecord] = field(default_factory=list)
    resilience: FaultCounters | None = None
    clock: Clock = field(default_factory=lambda: WALL_CLOCK)
    _step_started: float | None = field(default=None, repr=False)

    def start_step(self) -> None:
        self._step_started = self.clock.perf()

    def end_step(
        self,
        loss: float,
        samples: int,
        lr: float = 0.0,
        grad_norm: float = 0.0,
        engine=None,
    ) -> StepRecord:
        """Close the step opened by :meth:`start_step` and record it."""
        if self._step_started is None:
            raise ConfigurationError("end_step() called without start_step()")
        elapsed = self.clock.perf() - self._step_started
        self._step_started = None
        pages = {"gpu": 0, "cpu": 0, "ssd": 0}
        if engine is not None:
            for tier, stats in engine.memory_report().items():
                pages[tier] = stats["pages_in_use"]
        record = StepRecord(
            step=len(self.records),
            loss=loss,
            samples=samples,
            elapsed=elapsed,
            lr=lr,
            grad_norm=grad_norm,
            gpu_pages=pages["gpu"],
            cpu_pages=pages["cpu"],
            ssd_pages=pages["ssd"],
        )
        self.records.append(record)
        return record

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    @property
    def num_steps(self) -> int:
        return len(self.records)

    def throughput(self, tail: int | None = None) -> float:
        """Samples per second over the last ``tail`` steps (or all)."""
        window = self.records[-tail:] if tail else self.records
        if not window:
            return 0.0
        elapsed = sum(r.elapsed for r in window)
        if elapsed == 0:
            return 0.0
        return sum(r.samples for r in window) / elapsed

    def mean_loss(self, tail: int | None = None) -> float:
        window = self.records[-tail:] if tail else self.records
        if not window:
            raise ConfigurationError("no steps recorded")
        return sum(r.loss for r in window) / len(window)

    def peak_pages(self, tier: str) -> int:
        attr = f"{tier}_pages"
        return max((getattr(r, attr) for r in self.records), default=0)

    def summary(self) -> dict:
        summary = {
            "steps": self.num_steps,
            "final_loss": self.mean_loss(tail=max(1, self.num_steps // 10))
            if self.records else None,
            "throughput": self.throughput(),
            "peak_gpu_pages": self.peak_pages("gpu"),
            "peak_cpu_pages": self.peak_pages("cpu"),
            "peak_ssd_pages": self.peak_pages("ssd"),
        }
        if self.resilience is not None:
            summary["resilience"] = self.resilience.as_dict()
        return summary

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_csv(self, path: str) -> None:
        fields = [
            "step", "loss", "samples", "elapsed", "lr", "grad_norm",
            "gpu_pages", "cpu_pages", "ssd_pages",
        ]
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields)
            writer.writeheader()
            for record in self.records:
                writer.writerow({name: getattr(record, name) for name in fields})
