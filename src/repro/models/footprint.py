"""Memory-footprint analysis: Tables 1 and 2 and the Section 2.2 totals.

``layer_footprint`` evaluates the closed-form Table 1 totals; the tensor
inventory from :mod:`repro.models.transformer` must agree with them exactly
(a unit test enforces this). ``tensor_size_distribution`` reproduces
Table 2's histogram of tensor sizes inside one GPT-3 layer.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.models.transformer import LayerSpec, ModelSpec
from repro.units import GiB, MiB


@dataclass(frozen=True)
class FootprintReport:
    """Byte totals for a layer or a model, Table 1 column layout."""

    params_bytes: int
    acts_bytes: int
    optims_bytes: int

    @property
    def model_state_bytes(self) -> int:
        return self.params_bytes + self.optims_bytes

    @property
    def total_bytes(self) -> int:
        return self.params_bytes + self.acts_bytes + self.optims_bytes

    def as_gib(self) -> tuple[float, float, float]:
        return (
            self.params_bytes / GiB,
            self.acts_bytes / GiB,
            self.optims_bytes / GiB,
        )


def closed_form_layer_bytes(
    d_model: int, d_ffn: int, batch_size: int, seq_len: int
) -> FootprintReport:
    """Table 1 "Total" row, ignoring LayerNorm/score small terms as the
    paper does: Params = 16 d_m^2 + 8 d_m d_ffn, Acts = 40 b s d_m +
    8 b s d_ffn, Optims = 48 d_m^2 + 24 d_m d_ffn.
    """
    dm, dffn, b, s = d_model, d_ffn, batch_size, seq_len
    return FootprintReport(
        params_bytes=16 * dm * dm + 8 * dm * dffn,
        acts_bytes=40 * b * s * dm + 8 * b * s * dffn,
        optims_bytes=48 * dm * dm + 24 * dm * dffn,
    )


def layer_footprint(layer: LayerSpec) -> FootprintReport:
    """Exact byte totals summed over the layer's tensor inventory."""
    return FootprintReport(
        params_bytes=layer.params_bytes,
        acts_bytes=layer.acts_bytes,
        optims_bytes=layer.optims_bytes,
    )


def model_footprint(model: ModelSpec) -> FootprintReport:
    """Whole-model totals (embedding lookup and loss excluded, as in the
    paper's Memory Usage Analysis)."""
    return FootprintReport(
        params_bytes=model.params_bytes,
        acts_bytes=model.acts_bytes,
        optims_bytes=model.optims_bytes,
    )


def tensor_size_distribution(layer: LayerSpec) -> dict[float, int]:
    """Histogram of physical tensor sizes (MiB) within one layer.

    Reproduces Table 2: each FP16 parameter contributes itself and its
    gradient (two physical tensors), each FP32 optimizer entry contributes
    master/momentum/variance (three), and each activation contributes its
    value and gradient (two). Keys are MiB sizes, values are counts.
    """
    histogram: Counter[float] = Counter()
    for spec in (*layer.params, *layer.activations, *layer.optim_states):
        size_mib = spec.bytes_single / MiB
        histogram[size_mib] += spec.multiplicity
    return dict(sorted(histogram.items(), reverse=True))
