"""Mixture-of-Experts layers (T5-MoE / Switch-Transformer style).

The paper trains T5-MoE with expert parallelism (Section 6.4): "expert
parameters within an MoE layer are sharded among all GPUs while non-MoE
parameters are duplicated", fixing 9 experts per GPU per MoE layer when
scaling model size with the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.transformer import (
    LayerSpec,
    TensorKind,
    TensorSpec,
    transformer_layer,
)


@dataclass(frozen=True)
class MoEConfig:
    """Sizing of one MoE layer."""

    d_model: int
    d_ffn: int
    num_experts: int
    top_k: int = 1  # Switch-Transformer routes each token to one expert

    def __post_init__(self) -> None:
        if self.num_experts <= 0:
            raise ConfigurationError("num_experts must be positive")
        if not 1 <= self.top_k <= self.num_experts:
            raise ConfigurationError("top_k must be in [1, num_experts]")

    @property
    def expert_param_count(self) -> int:
        """Parameters of one expert FFN (two projection matrices)."""
        return 2 * self.d_model * self.d_ffn

    @property
    def total_expert_params(self) -> int:
        return self.expert_param_count * self.num_experts

    def experts_on_gpu(self, num_gpus: int) -> int:
        """Experts hosted per GPU under expert parallelism."""
        if num_gpus <= 0:
            raise ConfigurationError("num_gpus must be positive")
        if self.num_experts % num_gpus:
            raise ConfigurationError(
                f"{self.num_experts} experts do not shard evenly over {num_gpus} GPUs"
            )
        return self.num_experts // num_gpus


def moe_layer(
    d_model: int,
    d_ffn: int,
    num_experts: int,
    batch_size: int = 1,
    seq_len: int = 2048,
    name: str = "moe_layer",
) -> LayerSpec:
    """A Transformer layer whose FFN is replaced by ``num_experts`` experts.

    The dense attention block is reused from :func:`transformer_layer`; the
    FFN block becomes a router plus per-expert projection pairs. Activation
    accounting assumes capacity-factor-1 routing: each token visits
    ``top_k`` experts, so total routed activation volume matches the dense
    layer's (the all-to-all moves it between GPUs but does not inflate it).
    """
    config = MoEConfig(d_model=d_model, d_ffn=d_ffn, num_experts=num_experts)
    dense = transformer_layer(
        d_model, d_ffn, batch_size=batch_size, seq_len=seq_len, name=name
    )
    params = [p for p in dense.params if not p.name.startswith(f"{name}.ffn.w")]
    acts = list(dense.activations)
    params.append(
        TensorSpec(f"{name}.router", (d_model, num_experts), TensorKind.PARAM, "Router")
    )
    for e in range(num_experts):
        params.append(
            TensorSpec(f"{name}.expert{e}.w1", (d_model, d_ffn), TensorKind.PARAM, "Linear")
        )
        params.append(
            TensorSpec(f"{name}.expert{e}.w2", (d_ffn, d_model), TensorKind.PARAM, "Linear")
        )
    return LayerSpec(
        name=name,
        params=tuple(params),
        activations=tuple(acts),
        num_experts=config.num_experts,
    )
