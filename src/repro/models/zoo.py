"""The evaluation model zoo (Table 4 of the paper).

Each entry stores the configuration exactly as published (#Layer, #Head,
d_Model, d_FFN, #Expert) plus the paper's nominal size label. ``build``
instantiates the per-layer tensor inventory used by the tracer, scheduler
and cost models.

Architectural conventions (documented in EXPERIMENTS.md): GPT models are
decoder-only stacks of ``num_layers`` identical layers; T5 models are
encoder-decoder with ``num_layers`` encoder layers plus ``num_layers``
decoder layers (decoders carry cross-attention), which reproduces the
nominal sizes of the small T5 configs; T5-MoE stacks ``num_layers`` MoE
layers with the published expert count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.models.moe import moe_layer
from repro.models.transformer import LayerSpec, ModelSpec, transformer_layer


@dataclass(frozen=True)
class ModelConfig:
    """One row of Table 4."""

    name: str
    family: str  # "gpt" | "t5" | "t5-moe"
    num_layers: int
    num_heads: int
    d_model: int
    d_ffn: int
    num_experts: int = 0
    nominal_params: float = 0.0  # the paper's size label, in parameters

    def __post_init__(self) -> None:
        if self.family not in ("gpt", "t5", "t5-moe"):
            raise ConfigurationError(f"unknown model family {self.family!r}")
        if self.family == "t5-moe" and self.num_experts <= 0:
            raise ConfigurationError("t5-moe models need num_experts > 0")

    def with_layers(self, num_layers: int) -> "ModelConfig":
        """Same architecture scaled to a different depth (Table 5 sweeps)."""
        return replace(self, num_layers=num_layers, name=f"{self.name}@{num_layers}L")

    def with_experts(self, num_experts: int) -> "ModelConfig":
        """Same MoE architecture with a different expert count (Figure 9)."""
        return replace(self, num_experts=num_experts, name=f"{self.name}@{num_experts}E")

    def build(self, batch_size: int = 1, seq_len: int = 2048) -> ModelSpec:
        """Materialize the per-layer tensor inventory."""
        layers: list[LayerSpec] = []
        if self.family == "gpt":
            layers = [
                transformer_layer(
                    self.d_model, self.d_ffn, batch_size, seq_len, name=f"dec{i}"
                )
                for i in range(self.num_layers)
            ]
        elif self.family == "t5":
            layers = [
                transformer_layer(
                    self.d_model, self.d_ffn, batch_size, seq_len, name=f"enc{i}"
                )
                for i in range(self.num_layers)
            ] + [
                transformer_layer(
                    self.d_model,
                    self.d_ffn,
                    batch_size,
                    seq_len,
                    name=f"dec{i}",
                    cross_attention=True,
                )
                for i in range(self.num_layers)
            ]
        else:  # t5-moe
            layers = [
                moe_layer(
                    self.d_model,
                    self.d_ffn,
                    self.num_experts,
                    batch_size,
                    seq_len,
                    name=f"moe{i}",
                )
                for i in range(self.num_layers)
            ]
        return ModelSpec(
            name=self.name,
            layers=tuple(layers),
            batch_size=batch_size,
            seq_len=seq_len,
            d_model=self.d_model,
            d_ffn=self.d_ffn,
        )


def _b(billion: float) -> float:
    return billion * 1e9


#: Table 4, verbatim.
MODEL_ZOO: dict[str, ModelConfig] = {
    cfg.name: cfg
    for cfg in (
        ModelConfig("gpt3-1.7b", "gpt", 24, 24, 2304, 9216, nominal_params=_b(1.7)),
        ModelConfig("gpt3-13b", "gpt", 40, 40, 5140, 20506, nominal_params=_b(13)),
        ModelConfig("gpt3-28b", "gpt", 26, 128, 8192, 32768, nominal_params=_b(28)),
        ModelConfig("gpt3-30b", "gpt", 64, 36, 8192, 32768, nominal_params=_b(30)),
        ModelConfig("gpt3-55b", "gpt", 68, 128, 8192, 32768, nominal_params=_b(55)),
        ModelConfig("gpt3-120b", "gpt", 64, 96, 12288, 49152, nominal_params=_b(120)),
        ModelConfig("gpt3-175b", "gpt", 70, 112, 14336, 57344, nominal_params=_b(175)),
        ModelConfig("t5-1.4b", "t5", 16, 16, 1024, 16384, nominal_params=_b(1.4)),
        ModelConfig("t5-27b", "t5", 28, 64, 4096, 16384, nominal_params=_b(27)),
        ModelConfig("t5-58b", "t5", 60, 64, 4096, 16384, nominal_params=_b(58)),
        ModelConfig(
            "t5-moe-1.2t", "t5-moe", 16, 16, 1024, 16384,
            num_experts=2304, nominal_params=1.2e12,
        ),
    )
}


def get_model(name: str) -> ModelConfig:
    """Look up a Table 4 configuration by name (case-insensitive)."""
    key = name.lower()
    if key not in MODEL_ZOO:
        known = ", ".join(sorted(MODEL_ZOO))
        raise ConfigurationError(f"unknown model {name!r}; known: {known}")
    return MODEL_ZOO[key]
