"""Per-layer tensor inventory of a Transformer under mixed precision.

Follows Section 2.2 and Table 1 of the paper exactly, including the paper's
simplifications: attention scores are accounted as ``b x s`` ("shape: b x s"
in the text, a deliberate per-head simplification), layer-norm parameters
are tracked but ignored in block totals, and every byte count folds in the
forward+backward factor of 2 for FP16 tensors and the
master/momentum/variance factor of 3 for FP32 optimizer states.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError

FP16 = 2  # bytes per element
FP32 = 4


class TensorKind(enum.Enum):
    """Role of a tensor in the training memory budget (Section 2.1)."""

    PARAM = "param"          # FP16 parameter (plus its FP16 gradient)
    ACTIVATION = "activation"  # FP16 activation (plus its FP16 gradient)
    OPTIM = "optim"          # FP32 master param + momentum + variance


@dataclass(frozen=True)
class TensorSpec:
    """One named tensor of a layer with its full training footprint.

    ``bytes_total`` already includes the companion tensors the paper folds
    in: x2 for forward+backward on FP16 tensors, x3 for the Adam states on
    FP32 optimizer tensors.
    """

    name: str
    shape: tuple[int, ...]
    kind: TensorKind
    op: str

    @property
    def numel(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    @property
    def element_bytes(self) -> int:
        return FP32 if self.kind == TensorKind.OPTIM else FP16

    @property
    def multiplicity(self) -> int:
        """Companion-tensor factor used by Table 1's byte formulas."""
        if self.kind == TensorKind.OPTIM:
            return 3  # master parameter, momentum, variance
        return 2  # forward value + backward gradient

    @property
    def bytes_single(self) -> int:
        """Bytes of one physical tensor (e.g. just the FP16 parameter)."""
        return self.numel * self.element_bytes

    @property
    def bytes_total(self) -> int:
        """Bytes including companions, matching Table 1's columns."""
        return self.bytes_single * self.multiplicity


@dataclass(frozen=True)
class LayerSpec:
    """One Transformer layer: parameters, activations, optimizer states."""

    name: str
    params: tuple[TensorSpec, ...]
    activations: tuple[TensorSpec, ...]
    num_experts: int = 0

    def __post_init__(self) -> None:
        for spec in self.params:
            if spec.kind != TensorKind.PARAM:
                raise ConfigurationError(f"{spec.name} is not a parameter spec")
        for spec in self.activations:
            if spec.kind != TensorKind.ACTIVATION:
                raise ConfigurationError(f"{spec.name} is not an activation spec")

    @property
    def optim_states(self) -> tuple[TensorSpec, ...]:
        """FP32 optimizer-state specs mirroring each parameter."""
        return tuple(
            TensorSpec(name=f"{p.name}.optim", shape=p.shape, kind=TensorKind.OPTIM, op=p.op)
            for p in self.params
        )

    @property
    def param_count(self) -> int:
        return sum(p.numel for p in self.params)

    @property
    def params_bytes(self) -> int:
        """Table 1 "Params." column: FP16 params + grads."""
        return sum(p.bytes_total for p in self.params)

    @property
    def acts_bytes(self) -> int:
        """Table 1 "Acts." column: FP16 activations + their grads."""
        return sum(a.bytes_total for a in self.activations)

    @property
    def optims_bytes(self) -> int:
        """Table 1 "Optims." column: FP32 master/momentum/variance."""
        return sum(o.bytes_total for o in self.optim_states)

    @property
    def model_state_bytes(self) -> int:
        """Paper's "model states": parameters plus optimizer states."""
        return self.params_bytes + self.optims_bytes


def transformer_layer(
    d_model: int,
    d_ffn: int,
    batch_size: int = 1,
    seq_len: int = 2048,
    name: str = "layer",
    cross_attention: bool = False,
) -> LayerSpec:
    """Build the Table 1 layer: self-attention block then FFN block.

    ``cross_attention`` adds a second attention block (encoder-decoder
    models such as T5 decoders).
    """
    if min(d_model, d_ffn, batch_size, seq_len) <= 0:
        raise ConfigurationError("all layer dimensions must be positive")
    b, s, dm, dffn = batch_size, seq_len, d_model, d_ffn

    def attention_params(prefix: str) -> list[TensorSpec]:
        return [
            TensorSpec(f"{prefix}.wq", (dm, dm), TensorKind.PARAM, "Linear(Q,K,V)"),
            TensorSpec(f"{prefix}.wk", (dm, dm), TensorKind.PARAM, "Linear(Q,K,V)"),
            TensorSpec(f"{prefix}.wv", (dm, dm), TensorKind.PARAM, "Linear(Q,K,V)"),
            TensorSpec(f"{prefix}.wo", (dm, dm), TensorKind.PARAM, "Linear"),
            TensorSpec(f"{prefix}.ln.weight", (dm,), TensorKind.PARAM, "LayerNorm"),
            TensorSpec(f"{prefix}.ln.bias", (dm,), TensorKind.PARAM, "LayerNorm"),
        ]

    def attention_acts(prefix: str) -> list[TensorSpec]:
        return [
            TensorSpec(f"{prefix}.q", (b, s, dm), TensorKind.ACTIVATION, "Linear(Q,K,V)"),
            TensorSpec(f"{prefix}.k", (b, s, dm), TensorKind.ACTIVATION, "Linear(Q,K,V)"),
            TensorSpec(f"{prefix}.v", (b, s, dm), TensorKind.ACTIVATION, "Linear(Q,K,V)"),
            # Paper simplification: attention scores accounted as b x s.
            TensorSpec(f"{prefix}.scores", (b, s), TensorKind.ACTIVATION, "MatMul"),
            TensorSpec(f"{prefix}.softmax", (b, s), TensorKind.ACTIVATION, "ScaledMaskSoftmax"),
            TensorSpec(f"{prefix}.attn_vec", (b, s, dm), TensorKind.ACTIVATION, "MatMul"),
            TensorSpec(f"{prefix}.out", (b, s, dm), TensorKind.ACTIVATION, "Linear"),
            TensorSpec(f"{prefix}.residual", (b, s, dm), TensorKind.ACTIVATION, "Add"),
            TensorSpec(f"{prefix}.ln_out", (b, s, dm), TensorKind.ACTIVATION, "LayerNorm"),
        ]

    params = attention_params(f"{name}.attn")
    acts = attention_acts(f"{name}.attn")
    if cross_attention:
        params += attention_params(f"{name}.xattn")
        acts += attention_acts(f"{name}.xattn")
    params += [
        TensorSpec(f"{name}.ffn.w1", (dm, dffn), TensorKind.PARAM, "Linear"),
        TensorSpec(f"{name}.ffn.w2", (dffn, dm), TensorKind.PARAM, "Linear"),
        TensorSpec(f"{name}.ffn.ln.weight", (dm,), TensorKind.PARAM, "LayerNorm"),
        TensorSpec(f"{name}.ffn.ln.bias", (dm,), TensorKind.PARAM, "LayerNorm"),
    ]
    acts += [
        TensorSpec(f"{name}.ffn.h", (b, s, dffn), TensorKind.ACTIVATION, "Linear"),
        TensorSpec(f"{name}.ffn.gelu", (b, s, dffn), TensorKind.ACTIVATION, "GeLU"),
        TensorSpec(f"{name}.ffn.out", (b, s, dm), TensorKind.ACTIVATION, "Linear"),
        TensorSpec(f"{name}.ffn.residual", (b, s, dm), TensorKind.ACTIVATION, "Add"),
        TensorSpec(f"{name}.ffn.ln_out", (b, s, dm), TensorKind.ACTIVATION, "LayerNorm"),
    ]
    return LayerSpec(name=name, params=tuple(params), activations=tuple(acts))


@dataclass(frozen=True)
class ModelSpec:
    """A full model: a stack of layer specs plus context dimensions."""

    name: str
    layers: tuple[LayerSpec, ...]
    batch_size: int
    seq_len: int
    d_model: int
    d_ffn: int

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def param_count(self) -> int:
        return sum(layer.param_count for layer in self.layers)

    @property
    def params_bytes(self) -> int:
        return sum(layer.params_bytes for layer in self.layers)

    @property
    def acts_bytes(self) -> int:
        return sum(layer.acts_bytes for layer in self.layers)

    @property
    def optims_bytes(self) -> int:
        return sum(layer.optims_bytes for layer in self.layers)

    @property
    def model_state_bytes(self) -> int:
        return self.params_bytes + self.optims_bytes
