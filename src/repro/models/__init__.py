"""Transformer model specifications and memory-footprint analysis.

Implements Section 2.2 of the paper: per-layer tensor inventories under
mixed-precision training with Adam (Table 1), the tensor-size distribution
of a GPT-3 layer (Table 2), and the model zoo of the evaluation (Table 4).
"""

from repro.models.transformer import (
    FP16,
    FP32,
    LayerSpec,
    ModelSpec,
    TensorKind,
    TensorSpec,
    transformer_layer,
)
from repro.models.zoo import MODEL_ZOO, ModelConfig, get_model
from repro.models.footprint import (
    FootprintReport,
    closed_form_layer_bytes,
    layer_footprint,
    model_footprint,
    tensor_size_distribution,
)
from repro.models.moe import MoEConfig, moe_layer

__all__ = [
    "FP16",
    "FP32",
    "TensorKind",
    "TensorSpec",
    "LayerSpec",
    "ModelSpec",
    "transformer_layer",
    "ModelConfig",
    "MODEL_ZOO",
    "get_model",
    "FootprintReport",
    "layer_footprint",
    "model_footprint",
    "tensor_size_distribution",
    "closed_form_layer_bytes",
    "MoEConfig",
    "moe_layer",
]
