"""Synthetic datasets for the functional training experiments.

The paper pre-trains on an industrial text corpus we cannot ship; the
convergence claims it makes (Table 6's validation-loss column) are
*relative* — lock-free vs synchronous updates on the same data — so any
stationary, learnable task preserves them. Two generators are provided:

- ``lm_synthetic_batches``: next-token prediction over sequences drawn
  from a random fixed-order Markov chain, a standard stand-in for language
  modelling (the model must learn the transition table).
- ``copy_task_batches``: the classic delayed-copy task exercising
  attention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Batch:
    """One training batch of token ids and next-token targets."""

    inputs: np.ndarray   # (batch, seq) int64
    targets: np.ndarray  # (batch, seq) int64


def lm_synthetic_batches(
    vocab_size: int,
    seq_len: int,
    batch_size: int,
    num_batches: int,
    seed: int = 0,
    temperature: float = 0.3,
    chain_seed: int | None = None,
):
    """Yield batches from a fixed random Markov chain over the vocabulary.

    ``temperature`` controls how peaked the transition distribution is;
    lower values make the task more learnable (lower achievable loss).
    ``chain_seed`` fixes the transition matrix independently of the
    sampling ``seed``, so training and validation streams can share one
    chain while drawing disjoint sequences.
    """
    if vocab_size < 2 or seq_len < 2 or batch_size < 1:
        raise ConfigurationError("vocab >= 2, seq >= 2 and batch >= 1 required")
    chain_rng = np.random.default_rng(seed if chain_seed is None else chain_seed)
    rng = np.random.default_rng(seed)
    logits = chain_rng.normal(size=(vocab_size, vocab_size)) / temperature
    transition = np.exp(logits - logits.max(axis=1, keepdims=True))
    transition /= transition.sum(axis=1, keepdims=True)
    cumulative = transition.cumsum(axis=1)

    for _ in range(num_batches):
        seqs = np.empty((batch_size, seq_len + 1), dtype=np.int64)
        seqs[:, 0] = rng.integers(vocab_size, size=batch_size)
        for t in range(seq_len):
            u = rng.random(batch_size)
            seqs[:, t + 1] = (cumulative[seqs[:, t]] < u[:, None]).sum(axis=1)
        yield Batch(inputs=seqs[:, :-1], targets=seqs[:, 1:])


def copy_task_batches(
    vocab_size: int,
    seq_len: int,
    batch_size: int,
    num_batches: int,
    seed: int = 0,
):
    """Delayed copy: the second half of the sequence repeats the first.

    The target at position ``t`` is the input at position ``t`` shifted by
    half the sequence, so the model must attend across the gap.
    """
    if seq_len % 2:
        raise ConfigurationError("copy task needs an even sequence length")
    rng = np.random.default_rng(seed)
    half = seq_len // 2
    for _ in range(num_batches):
        payload = rng.integers(1, vocab_size, size=(batch_size, half), dtype=np.int64)
        inputs = np.concatenate(
            [payload, np.zeros((batch_size, half), dtype=np.int64)], axis=1
        )
        targets = np.concatenate(
            [np.zeros((batch_size, half), dtype=np.int64), payload], axis=1
        )
        yield Batch(inputs=inputs, targets=targets)
