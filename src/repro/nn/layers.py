"""Neural-network modules: the layers of Section 2.2, runnable on numpy.

The module tree mirrors the paper's layer anatomy — Linear(Q,K,V),
ScaledMaskSoftmax, residual Add + LayerNorm, the two-FC GELU FFN — plus a
top-1-routed MoE FFN (Switch-Transformer style) for the T5-MoE experiments.
Forward hooks let the functional Angel engine trace parameter accesses the
way the paper instruments PyTorch's Parameter class.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.functional import gelu, layer_norm, softmax
from repro.nn.tensor import Tensor


class Module:
    """Base class: parameter registration, traversal and hooks."""

    def __init__(self) -> None:
        self._parameters: dict[str, Tensor] = {}
        self._modules: dict[str, Module] = {}
        self._forward_hooks: list = []

    def register_parameter(self, name: str, tensor: Tensor) -> Tensor:
        tensor.requires_grad = True
        tensor.name = name
        self._parameters[name] = tensor
        return tensor

    def __setattr__(self, key, value):
        if isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[key] = value
        super().__setattr__(key, value)

    def named_parameters(self, prefix: str = ""):
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> list[Tensor]:
        return [p for _, p in self.named_parameters()]

    def modules(self):
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def add_forward_hook(self, hook) -> None:
        """``hook(module)`` fires before each forward of this module."""
        self._forward_hooks.append(hook)

    def __call__(self, *args, **kwargs):
        for hook in self._forward_hooks:
            hook(self)
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    @property
    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())


def _init(shape: tuple[int, ...], rng: np.random.Generator, fan_in: int) -> np.ndarray:
    scale = 1.0 / math.sqrt(fan_in)
    return rng.uniform(-scale, scale, size=shape).astype(np.float32)


class Linear(Module):
    """y = x W + b."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            "weight", Tensor(_init((in_features, out_features), rng, in_features))
        )
        self.bias = None
        if bias:
            self.bias = self.register_parameter(
                "bias", Tensor(np.zeros(out_features, dtype=np.float32))
            )

    def forward(self, x: Tensor, mixed_precision: bool = False) -> Tensor:
        weight = self.weight.cast_compute() if mixed_precision else self.weight
        out = x @ weight
        if self.bias is not None:
            out = out + self.bias
        return out


class LayerNorm(Module):
    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = self.register_parameter(
            "weight", Tensor(np.ones(dim, dtype=np.float32))
        )
        self.bias = self.register_parameter(
            "bias", Tensor(np.zeros(dim, dtype=np.float32))
        )

    def forward(self, x: Tensor) -> Tensor:
        return layer_norm(x, self.weight, self.bias, eps=self.eps)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return gelu(x)


class Sequential(Module):
    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for index, layer in enumerate(layers):
            self._modules[str(index)] = layer

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class Embedding(Module):
    def __init__(self, vocab_size: int, dim: int, rng: np.random.Generator):
        super().__init__()
        self.weight = self.register_parameter(
            "weight", Tensor(rng.normal(0, 0.02, size=(vocab_size, dim)).astype(np.float32))
        )

    def forward(self, token_ids: np.ndarray) -> Tensor:
        return self.weight[np.asarray(token_ids)]


class MultiHeadAttention(Module):
    """Causal multi-head self-attention (Equation 1 of the paper)."""

    def __init__(self, d_model: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        if d_model % num_heads:
            raise ConfigurationError("d_model must be divisible by num_heads")
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.wq = Linear(d_model, d_model, rng, bias=False)
        self.wk = Linear(d_model, d_model, rng, bias=False)
        self.wv = Linear(d_model, d_model, rng, bias=False)
        self.wo = Linear(d_model, d_model, rng, bias=False)

    def _split(self, x: Tensor, batch: int, seq: int) -> Tensor:
        return x.reshape(batch, seq, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, mixed_precision: bool = False) -> Tensor:
        batch, seq, _ = x.shape
        q = self._split(self.wq(x, mixed_precision), batch, seq)
        k = self._split(self.wk(x, mixed_precision), batch, seq)
        v = self._split(self.wv(x, mixed_precision), batch, seq)
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / math.sqrt(self.d_head))
        mask = np.triu(np.full((seq, seq), -1e9, dtype=np.float32), k=1)
        scores = scores + Tensor(mask)
        attn = softmax(scores, axis=-1)
        context = (attn @ v).transpose(0, 2, 1, 3).reshape(batch, seq, self.d_model)
        return self.wo(context, mixed_precision)


class FFN(Module):
    """Position-wise feed-forward network (Equation 3)."""

    def __init__(self, d_model: int, d_ffn: int, rng: np.random.Generator):
        super().__init__()
        self.w1 = Linear(d_model, d_ffn, rng, bias=False)
        self.w2 = Linear(d_ffn, d_model, rng, bias=False)

    def forward(self, x: Tensor, mixed_precision: bool = False) -> Tensor:
        return self.w2(gelu(self.w1(x, mixed_precision)), mixed_precision)


class MoEFFN(Module):
    """Top-1-routed mixture-of-experts FFN (Switch-Transformer style).

    The router picks one expert per token; tokens are dispatched to their
    experts, transformed, and combined back, scaled by the router
    probability so the router receives gradient.
    """

    def __init__(self, d_model: int, d_ffn: int, num_experts: int,
                 rng: np.random.Generator):
        super().__init__()
        if num_experts <= 0:
            raise ConfigurationError("num_experts must be positive")
        self.num_experts = num_experts
        self.router = Linear(d_model, num_experts, rng, bias=False)
        self.experts = [FFN(d_model, d_ffn, rng) for _ in range(num_experts)]
        for index, expert in enumerate(self.experts):
            self._modules[f"expert{index}"] = expert

    def forward(self, x: Tensor, mixed_precision: bool = False) -> Tensor:
        batch, seq, dim = x.shape
        flat = x.reshape(batch * seq, dim)
        gate = softmax(self.router(flat, mixed_precision), axis=-1)
        choice = gate.data.argmax(axis=-1)
        out = None
        for index, expert in enumerate(self.experts):
            token_ids = np.nonzero(choice == index)[0]
            if token_ids.size == 0:
                continue
            routed = expert(flat[token_ids], mixed_precision)
            scale = gate[token_ids][:, index].reshape(token_ids.size, 1)
            contribution = _scatter_rows(routed * scale, token_ids, batch * seq)
            out = contribution if out is None else out + contribution
        if out is None:  # degenerate: empty input
            out = flat * 0.0
        return out.reshape(batch, seq, dim)


def _scatter_rows(rows: Tensor, indices: np.ndarray, total: int) -> Tensor:
    """Place ``rows`` at ``indices`` of a zero (total, dim) tensor."""
    out_data = np.zeros((total, rows.shape[-1]), dtype=np.float32)
    out_data[indices] = rows.data

    def backward(grad, a=rows, idx=indices):
        if a.requires_grad:
            a._accumulate(np.asarray(grad)[idx])

    return Tensor._make(out_data, (rows,), backward)


class TransformerBlock(Module):
    """Pre-activation residual Transformer layer (Equation 2)."""

    def __init__(self, d_model: int, d_ffn: int, num_heads: int,
                 rng: np.random.Generator, num_experts: int = 0):
        super().__init__()
        self.ln1 = LayerNorm(d_model)
        self.attn = MultiHeadAttention(d_model, num_heads, rng)
        self.ln2 = LayerNorm(d_model)
        if num_experts:
            self.ffn: Module = MoEFFN(d_model, d_ffn, num_experts, rng)
        else:
            self.ffn = FFN(d_model, d_ffn, rng)

    def forward(self, x: Tensor, mixed_precision: bool = False) -> Tensor:
        x = x + self.attn(self.ln1(x), mixed_precision)
        x = x + self.ffn(self.ln2(x), mixed_precision)
        return x


class TinyTransformerLM(Module):
    """A small decoder-only language model for the functional experiments."""

    def __init__(
        self,
        vocab_size: int,
        d_model: int,
        d_ffn: int,
        num_heads: int,
        num_layers: int,
        max_seq: int = 128,
        num_experts: int = 0,
        seed: int = 0,
        recompute: bool = False,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.embed = Embedding(vocab_size, d_model, rng)
        self.pos_embed = Embedding(max_seq, d_model, rng)
        self.blocks = [
            TransformerBlock(d_model, d_ffn, num_heads, rng, num_experts=num_experts)
            for _ in range(num_layers)
        ]
        for index, block in enumerate(self.blocks):
            self._modules[f"block{index}"] = block
        self.ln_f = LayerNorm(d_model)
        self.head = Linear(d_model, vocab_size, rng, bias=False)
        # Section 4.2's recomputation: drop each block's activations in
        # the forward pass and regenerate them during backward.
        self.recompute = recompute

    def forward(self, token_ids: np.ndarray, mixed_precision: bool = False) -> Tensor:
        token_ids = np.asarray(token_ids)
        positions = np.arange(token_ids.shape[-1])
        x = self.embed(token_ids) + self.pos_embed(positions)
        for block in self.blocks:
            if self.recompute:
                from repro.nn.recompute import checkpoint

                x = checkpoint(
                    lambda t, blk=block: blk(t, mixed_precision),
                    x,
                    params=tuple(block.parameters()),
                )
            else:
                x = block(x, mixed_precision)
        return self.head(self.ln_f(x), mixed_precision)
