"""Reverse-mode autograd over numpy arrays.

A deliberately small, explicit implementation: every differentiable
operation records its parents and a backward closure; ``backward()`` walks
the tape in reverse topological order. Broadcasting follows numpy rules,
with gradients un-broadcast back to the operand shapes.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.errors import GradientError

_grad_enabled = True

#: Count of tape nodes created since process start — observability hook
#: used to verify that activation recomputation actually shrinks the
#: forward-pass graph (Section 4.2's recompute technique).
tape_nodes_created = 0

#: Low-precision compute format for mixed-precision layers. The paper
#: "stores the model states in FP32 while computes in BF16" (Section 6.1);
#: FP16 is the default here for its stronger (more visible) rounding.
_compute_dtype = "fp16"

_VALID_COMPUTE_DTYPES = ("fp16", "bf16", "fp32")


def set_compute_dtype(name: str) -> None:
    """Select the mixed-precision compute format: fp16, bf16 or fp32."""
    global _compute_dtype
    if name not in _VALID_COMPUTE_DTYPES:
        raise GradientError(
            f"unknown compute dtype {name!r}; choose from {_VALID_COMPUTE_DTYPES}"
        )
    _compute_dtype = name


def get_compute_dtype() -> str:
    return _compute_dtype


@contextlib.contextmanager
def no_grad():
    """Disable graph construction (evaluation / parameter updates)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def round_bf16(array: np.ndarray) -> np.ndarray:
    """Round a float32 array to bfloat16 precision (round-to-nearest-even).

    BF16 keeps float32's exponent and truncates the mantissa to 7 bits;
    the rounding adds half a ULP (biased by the LSB for ties-to-even)
    before truncation, matching hardware behaviour.
    """
    array = np.asarray(array, dtype=np.float32)
    bits = array.view(np.uint32)
    lsb = (bits >> 16) & 1
    rounded = bits + 0x7FFF + lsb
    return (rounded & np.uint32(0xFFFF0000)).view(np.float32).copy()


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array with an optional gradient tape entry."""

    __slots__ = ("data", "grad", "requires_grad", "name", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad and _grad_enabled
        self.name = name
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        requires = _grad_enabled and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            global tape_nodes_created
            tape_nodes_created += 1
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=np.float32), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    # ------------------------------------------------------------------
    # Shape and metadata
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def zero_grad(self) -> None:
        self.grad = None

    def detach(self) -> "Tensor":
        return Tensor(self.data.copy())

    def numpy(self) -> np.ndarray:
        return self.data

    def item(self) -> float:
        return float(self.data)

    def __repr__(self) -> str:
        flag = ", grad" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def _wrap(other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._wrap(other)

        def backward(grad, a=self, b=other):
            if a.requires_grad:
                a._accumulate(grad)
            if b.requires_grad:
                b._accumulate(grad)

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad, a=self):
            if a.requires_grad:
                a._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-self._wrap(other))

    def __rsub__(self, other) -> "Tensor":
        return self._wrap(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._wrap(other)

        def backward(grad, a=self, b=other):
            if a.requires_grad:
                a._accumulate(grad * b.data)
            if b.requires_grad:
                b._accumulate(grad * a.data)

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._wrap(other)

        def backward(grad, a=self, b=other):
            if a.requires_grad:
                a._accumulate(grad / b.data)
            if b.requires_grad:
                b._accumulate(-grad * a.data / (b.data * b.data))

        return self._make(self.data / other.data, (self, other), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._wrap(other)

        def backward(grad, a=self, b=other):
            if a.requires_grad:
                a._accumulate(grad @ np.swapaxes(b.data, -1, -2))
            if b.requires_grad:
                b._accumulate(np.swapaxes(a.data, -1, -2) @ grad)

        return self._make(self.data @ other.data, (self, other), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        def backward(grad, a=self, n=float(exponent)):
            if a.requires_grad:
                a._accumulate(grad * n * np.power(a.data, n - 1))

        return self._make(np.power(self.data, exponent), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions and shape ops
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        def backward(grad, a=self, ax=axis, kd=keepdims):
            if not a.requires_grad:
                return
            g = np.asarray(grad)
            if ax is not None and not kd:
                g = np.expand_dims(g, ax)
            a._accumulate(np.broadcast_to(g, a.data.shape))

        return self._make(self.data.sum(axis=axis, keepdims=keepdims), (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])

        def backward(grad, a=self):
            if a.requires_grad:
                a._accumulate(np.asarray(grad).reshape(a.data.shape))

        return self._make(self.data.reshape(shape), (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)

        def backward(grad, a=self, inv=tuple(inverse)):
            if a.requires_grad:
                a._accumulate(np.transpose(np.asarray(grad), inv))

        return self._make(np.transpose(self.data, axes), (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, key) -> "Tensor":
        def backward(grad, a=self, k=key):
            if a.requires_grad:
                full = np.zeros_like(a.data)
                np.add.at(full, k, np.asarray(grad))
                a._accumulate(full)

        return self._make(self.data[key], (self,), backward)

    # ------------------------------------------------------------------
    # Nonlinearities used by the layers
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad, a=self, o=out_data):
            if a.requires_grad:
                a._accumulate(grad * o)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad, a=self):
            if a.requires_grad:
                a._accumulate(grad / a.data)

        return self._make(np.log(self.data), (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad, a=self, o=out_data):
            if a.requires_grad:
                a._accumulate(grad * (1.0 - o * o))

        return self._make(out_data, (self,), backward)

    def cast_fp16(self) -> "Tensor":
        """Mixed-precision cast: round values through IEEE half precision.

        The rounding is real (data passes through float16), so half-
        precision quantization effects appear in training, while the graph
        stays float32 for numpy efficiency. The gradient is the straight-
        through identity, as in standard mixed-precision training.
        """
        out_data = self.data.astype(np.float16).astype(np.float32)

        def backward(grad, a=self):
            if a.requires_grad:
                a._accumulate(grad)

        return self._make(out_data, (self,), backward)

    def cast_bf16(self) -> "Tensor":
        """Round values through bfloat16 (the paper's compute format).

        numpy has no native bfloat16; BF16 is float32 with the low 16
        mantissa bits dropped, so the rounding is performed by
        round-to-nearest-even on the raw bit pattern. Gradient is the
        straight-through identity.
        """
        out_data = round_bf16(self.data)

        def backward(grad, a=self):
            if a.requires_grad:
                a._accumulate(grad)

        return self._make(out_data, (self,), backward)

    def cast_compute(self) -> "Tensor":
        """Cast through the configured mixed-precision compute format."""
        if _compute_dtype == "fp16":
            return self.cast_fp16()
        if _compute_dtype == "bf16":
            return self.cast_bf16()
        return self

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor through the recorded tape."""
        if not self.requires_grad:
            raise GradientError("called backward() on a non-differentiable tensor")
        if grad is None:
            if self.data.size != 1:
                raise GradientError("backward() without grad requires a scalar")
            grad = np.ones_like(self.data)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
