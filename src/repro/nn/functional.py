"""Composite differentiable functions: softmax, GELU, layernorm, losses.

Each function is implemented with a fused backward closure rather than
chains of primitive ops, keeping tapes short for the Transformer layers.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GradientError
from repro.nn.tensor import Tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward(grad, a=x, o=out_data, ax=axis):
        if a.requires_grad:
            inner = (grad * o).sum(axis=ax, keepdims=True)
            a._accumulate(o * (grad - inner))

    return Tensor._make(out_data, (x,), backward)


def gelu(x: Tensor) -> Tensor:
    """Tanh-approximation GELU (Hendrycks & Gimpel), as used in GPT."""
    c = np.sqrt(2.0 / np.pi).astype(np.float32)
    u = c * (x.data + 0.044715 * x.data**3)
    t = np.tanh(u)
    out_data = 0.5 * x.data * (1.0 + t)

    def backward(grad, a=x, t=t, c=c):
        if a.requires_grad:
            du = c * (1.0 + 3 * 0.044715 * a.data**2)
            local = 0.5 * (1.0 + t) + 0.5 * a.data * (1.0 - t * t) * du
            a._accumulate(grad * local)

    return Tensor._make(out_data, (x,), backward)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    mu = x.data.mean(axis=-1, keepdims=True)
    var = x.data.var(axis=-1, keepdims=True)
    inv = 1.0 / np.sqrt(var + eps)
    xhat = (x.data - mu) * inv
    out_data = xhat * weight.data + bias.data

    def backward(grad, a=x, w=weight, b=bias, xhat=xhat, inv=inv):
        if b.requires_grad:
            b._accumulate(grad.sum(axis=tuple(range(grad.ndim - 1))))
        if w.requires_grad:
            w._accumulate((grad * xhat).sum(axis=tuple(range(grad.ndim - 1))))
        if a.requires_grad:
            n = a.data.shape[-1]
            gxhat = grad * w.data
            term = (
                gxhat
                - gxhat.mean(axis=-1, keepdims=True)
                - xhat * (gxhat * xhat).mean(axis=-1, keepdims=True)
            )
            a._accumulate(term * inv)

    return Tensor._make(out_data, (x, weight, bias), backward)


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean token-level cross entropy.

    ``logits`` has shape (..., vocab); ``targets`` holds integer class ids
    of the leading shape.
    """
    targets = np.asarray(targets)
    if targets.shape != logits.shape[:-1]:
        raise GradientError(
            f"targets shape {targets.shape} does not match logits "
            f"{logits.shape[:-1]}"
        )
    shifted = logits.data - logits.data.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    logprobs = shifted - logsumexp
    flat = logprobs.reshape(-1, logprobs.shape[-1])
    picked = flat[np.arange(flat.shape[0]), targets.reshape(-1)]
    out_data = np.float32(-picked.mean())

    def backward(grad, a=logits, lp=logprobs, t=targets):
        if a.requires_grad:
            probs = np.exp(lp)
            flat_probs = probs.reshape(-1, probs.shape[-1])
            flat_probs[np.arange(flat_probs.shape[0]), t.reshape(-1)] -= 1.0
            a._accumulate(grad * flat_probs.reshape(a.data.shape) / t.size)

    return Tensor._make(np.asarray(out_data), (logits,), backward)


def mse_loss(pred: Tensor, target: np.ndarray) -> Tensor:
    target = np.asarray(target, dtype=np.float32)
    diff = pred.data - target
    out_data = np.asarray(np.float32((diff * diff).mean()))

    def backward(grad, a=pred, d=diff):
        if a.requires_grad:
            a._accumulate(grad * 2.0 * d / d.size)

    return Tensor._make(out_data, (pred,), backward)
