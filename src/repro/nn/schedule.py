"""Learning-rate schedules and gradient clipping.

Standard large-model training machinery (warmup + decay, global-norm
clipping) for the functional substrate; pre-training recipes like GPT-3's
use exactly these shapes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.tensor import Tensor


def clip_grad_norm(params: list[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (the quantity training logs monitor).
    """
    if max_norm <= 0:
        raise ConfigurationError("max_norm must be positive")
    total = 0.0
    for param in params:
        if param.grad is not None:
            total += float((param.grad.astype(np.float64) ** 2).sum())
    norm = math.sqrt(total)
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for param in params:
            if param.grad is not None:
                param.grad *= scale
    return norm


class LRSchedule:
    """Base class: maps a step index to a learning rate."""

    def __init__(self, base_lr: float):
        if base_lr <= 0:
            raise ConfigurationError("base_lr must be positive")
        self.base_lr = base_lr

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def apply(self, optimizer, step: int) -> float:
        """Set ``optimizer.lr`` for ``step``; returns the rate used."""
        rate = self.lr_at(step)
        optimizer.lr = rate
        return rate


class ConstantLR(LRSchedule):
    def lr_at(self, step: int) -> float:
        return self.base_lr


class WarmupCosineLR(LRSchedule):
    """Linear warmup then cosine decay to ``min_lr`` (the GPT-3 recipe)."""

    def __init__(self, base_lr: float, warmup_steps: int, total_steps: int,
                 min_lr: float = 0.0):
        super().__init__(base_lr)
        if warmup_steps < 0 or total_steps <= warmup_steps:
            raise ConfigurationError("need 0 <= warmup_steps < total_steps")
        if not 0 <= min_lr <= base_lr:
            raise ConfigurationError("need 0 <= min_lr <= base_lr")
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        progress = (step - self.warmup_steps) / (self.total_steps - self.warmup_steps)
        progress = min(1.0, progress)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine


class WarmupLinearLR(LRSchedule):
    """Linear warmup then linear decay to zero."""

    def __init__(self, base_lr: float, warmup_steps: int, total_steps: int):
        super().__init__(base_lr)
        if warmup_steps < 0 or total_steps <= warmup_steps:
            raise ConfigurationError("need 0 <= warmup_steps < total_steps")
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps

    def lr_at(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        remaining = (self.total_steps - step) / (self.total_steps - self.warmup_steps)
        return self.base_lr * max(0.0, remaining)
