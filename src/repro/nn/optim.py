"""Optimizers: SGD, Adam, and mixed-precision Adam with FP32 master states.

``MixedPrecisionAdam`` realizes the memory layout of Section 2.1: the model
computes with FP16-rounded parameters while the optimizer maintains FP32
master parameters plus first and second moments — exactly the "Optims"
column of Table 1 (three FP32 tensors per parameter).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GradientError
from repro.nn.tensor import Tensor


class SGD:
    """Plain stochastic gradient descent (optionally with momentum)."""

    def __init__(self, params: list[Tensor], lr: float = 0.01, momentum: float = 0.0):
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity += param.grad
                param.data -= self.lr * velocity
            else:
                param.data -= self.lr * param.grad

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()


class Adam:
    """Adam (Kingma & Ba 2015) over FP32 parameters."""

    def __init__(
        self,
        params: list[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.t = 0
        self.m = [np.zeros_like(p.data) for p in self.params]
        self.v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            self._apply(param.data, param.grad, self.m[i], self.v[i])

    def _apply(self, data: np.ndarray, grad: np.ndarray,
               m: np.ndarray, v: np.ndarray) -> None:
        m *= self.beta1
        m += (1 - self.beta1) * grad
        v *= self.beta2
        v += (1 - self.beta2) * grad * grad
        mhat = m / (1 - self.beta1**self.t)
        vhat = v / (1 - self.beta2**self.t)
        data -= self.lr * mhat / (np.sqrt(vhat) + self.eps)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()


class MixedPrecisionAdam(Adam):
    """Adam with FP32 master weights feeding FP16-rounded model weights.

    The optimizer owns the FP32 master copy; after each step the model's
    parameters are refreshed with the FP16-rounded master values,
    mirroring ``cast(p32, FP16)`` on line 13 of Algorithm 2.
    """

    def __init__(self, params: list[Tensor], lr: float = 1e-3, **kwargs):
        super().__init__(params, lr=lr, **kwargs)
        self.master = [p.data.astype(np.float32).copy() for p in self.params]

    def step(self) -> None:
        self.t += 1
        for i, param in enumerate(self.params):
            if param.grad is None:
                continue
            if param.grad.shape != self.master[i].shape:
                raise GradientError(
                    f"gradient shape {param.grad.shape} does not match "
                    f"master {self.master[i].shape}"
                )
            self._apply(self.master[i], param.grad, self.m[i], self.v[i])
            param.data[...] = self.master[i].astype(np.float16).astype(np.float32)

    def apply_gradient(self, index: int, grad: np.ndarray) -> np.ndarray:
        """Update one parameter from an externally supplied gradient.

        Used by the lock-free update thread (Algorithm 2), which consumes
        *buffered* gradients rather than the tensors' ``.grad`` fields.
        Returns the refreshed FP16-rounded parameter values.
        """
        if self.t < 1:
            raise GradientError("bump_step() must precede apply_gradient()")
        self._apply(self.master[index], grad, self.m[index], self.v[index])
        return self.master[index].astype(np.float16).astype(np.float32)

    def bump_step(self) -> None:
        """Advance the bias-correction step counter by one sweep."""
        self.t += 1
