"""Activation recomputation (gradient checkpointing).

Section 4.2: "we utilize the recomputation technique to further alleviate
the GPU memory pressure, where some activations are released in the
forward pass and then are regenerated in the backward pass by
re-executing their forward computation."

``checkpoint(fn, x, params)`` runs ``fn`` without building a tape (the
forward activations are never retained) and, during backward, re-executes
``fn`` with the tape enabled to obtain gradients for both ``x`` and the
parameter tensors ``fn`` closes over.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GradientError
from repro.nn.tensor import Tensor, no_grad


def checkpoint(fn, x: Tensor, params: tuple[Tensor, ...] = ()) -> Tensor:
    """Memory-saving forward of ``fn(x)`` with recompute-on-backward.

    ``fn`` must be deterministic (the recomputed forward has to produce
    the same values). Pass the parameter tensors ``fn`` closes over via
    ``params`` so gradient requirements propagate even when ``x`` itself
    is constant; their gradients accumulate during the replay exactly as
    in an un-checkpointed run.
    """
    with no_grad():
        out_data = np.array(fn(Tensor(x.data)).data, copy=True)

    def backward(grad, a=x, f=fn):
        replay_input = Tensor(a.data, requires_grad=True)
        replayed = f(replay_input)
        if not replayed.requires_grad:
            raise GradientError(
                "checkpointed function built no tape on replay; "
                "did grad get disabled?"
            )
        if not np.allclose(replayed.data, out_data, atol=1e-5):
            raise GradientError(
                "checkpointed function is not deterministic: the replayed "
                "forward diverged from the original"
            )
        replayed.backward(np.asarray(grad))
        if a.requires_grad and replay_input.grad is not None:
            a._accumulate(replay_input.grad)

    # Parents include the closed-over parameters so the output joins the
    # tape whenever anything upstream is trainable; only x receives its
    # gradient through this node (parameters get theirs in the replay).
    return Tensor._make(out_data, (x, *params), backward)
