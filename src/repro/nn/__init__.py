"""Minimal numpy autograd framework.

PyTorch is unavailable in this reproduction environment, so the functional
training path (the Figure 6 API, the examples and the Table 6 convergence
experiment) runs on this self-contained substrate: a reverse-mode autograd
tensor, Transformer layers with mixed-precision casting, an Adam optimizer
with FP32 master states, and synthetic datasets.
"""

from repro.nn.tensor import (
    Tensor,
    get_compute_dtype,
    no_grad,
    round_bf16,
    set_compute_dtype,
)
from repro.nn.layers import (
    FFN,
    Embedding,
    GELU,
    LayerNorm,
    Linear,
    MoEFFN,
    Module,
    MultiHeadAttention,
    Sequential,
    TinyTransformerLM,
    TransformerBlock,
)
from repro.nn.optim import SGD, Adam, MixedPrecisionAdam
from repro.nn.recompute import checkpoint
from repro.nn.schedule import (
    ConstantLR,
    WarmupCosineLR,
    WarmupLinearLR,
    clip_grad_norm,
)
from repro.nn.data import Batch, copy_task_batches, lm_synthetic_batches
from repro.nn.functional import cross_entropy, gelu, layer_norm, mse_loss, softmax

__all__ = [
    "Tensor",
    "no_grad",
    "set_compute_dtype",
    "get_compute_dtype",
    "round_bf16",
    "Module",
    "Linear",
    "LayerNorm",
    "GELU",
    "FFN",
    "MultiHeadAttention",
    "TransformerBlock",
    "MoEFFN",
    "Embedding",
    "Sequential",
    "TinyTransformerLM",
    "SGD",
    "Adam",
    "MixedPrecisionAdam",
    "checkpoint",
    "ConstantLR",
    "WarmupCosineLR",
    "WarmupLinearLR",
    "clip_grad_norm",
    "Batch",
    "copy_task_batches",
    "lm_synthetic_batches",
    "cross_entropy",
    "gelu",
    "layer_norm",
    "mse_loss",
    "softmax",
]
