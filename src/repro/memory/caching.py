"""Caching allocator modelling PyTorch's CUDA allocator (used by DeepSpeed).

The paper's critique (Section 4.1): "DeepSpeed uses the original memory
management of PyTorch for offloading and recomputing, which frequently
allocates and releases tensors, leading to space fragments because the
sizes of these tensors are not uniform."

The model: freed blocks are cached per rounded size class and reused only
for requests that fit in a cached block; cached blocks of different sizes
are never coalesced, so mixed tensor sizes steadily inflate the reserved
footprint — exactly the failure mode the Page design removes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError, OutOfMemoryError


@dataclass
class _CachedBlock:
    nbytes: int


class CachingAllocator:
    """Size-class caching without coalescing over a fixed capacity."""

    #: PyTorch rounds small allocations to 512B and splits large blocks.
    ROUNDING = 512
    #: Blocks above this size may be split when reused (PyTorch: 1 MiB).
    SPLIT_THRESHOLD = 1024 * 1024

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise AllocationError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._cached: list[_CachedBlock] = []
        self._live: dict[int, int] = {}  # req_id -> block nbytes
        self._reserved = 0

    @property
    def reserved_bytes(self) -> int:
        return self._reserved

    @property
    def cached_bytes(self) -> int:
        return sum(block.nbytes for block in self._cached)

    def _round(self, nbytes: int) -> int:
        return (nbytes + self.ROUNDING - 1) // self.ROUNDING * self.ROUNDING

    def alloc(self, req_id: int, nbytes: int) -> None:
        if req_id in self._live:
            raise AllocationError(f"request {req_id} already live")
        if nbytes <= 0:
            raise AllocationError("allocation size must be positive")
        need = self._round(nbytes)
        block = self._take_cached(need)
        if block is not None:
            self._live[req_id] = block
            return
        if self._reserved + need > self.capacity_bytes:
            # cudaMalloc failure path: release all cached blocks, retry once.
            self._reserved -= self.cached_bytes
            self._cached.clear()
            if self._reserved + need > self.capacity_bytes:
                raise OutOfMemoryError(
                    "caching-arena", need, self.capacity_bytes - self._reserved
                )
        self._reserved += need
        self._live[req_id] = need

    def _take_cached(self, need: int) -> int | None:
        """Best-fit over cached blocks; split only large blocks."""
        best = None
        for block in self._cached:
            if block.nbytes >= need and (best is None or block.nbytes < best.nbytes):
                best = block
        if best is None:
            return None
        self._cached.remove(best)
        remainder = best.nbytes - need
        if best.nbytes > self.SPLIT_THRESHOLD and remainder >= self.ROUNDING:
            self._cached.append(_CachedBlock(remainder))
            return need
        # Small blocks are handed out whole: internal fragmentation.
        return best.nbytes

    def free(self, req_id: int) -> None:
        nbytes = self._live.pop(req_id, None)
        if nbytes is None:
            raise AllocationError(f"request {req_id} is not live")
        self._cached.append(_CachedBlock(nbytes))

    def fragmentation(self) -> float:
        """Fraction of reserved bytes sitting idle in the block cache."""
        if self._reserved == 0:
            return 0.0
        return self.cached_bytes / self._reserved
