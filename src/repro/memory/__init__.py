"""Page-based hierarchical memory management (Section 4.1 of the paper).

The ``Page`` is the minimum unit of every memory operation — allocation,
release, movement and communication. Device pools pre-allocate their
capacity up front (as Angel-PTM's Allocator does, Section 5) as one
contiguous arena and hand out fixed-size pages; tensors are composed of
pages with at most two tensors sharing one page. Page moves go through
:meth:`PageAllocator.move_pages`, which coalesces contiguous arena runs
into single zero-copy slice copies.

Three baseline allocators used by the fragmentation ablation live here too:
TensorFlow-style best-fit-with-coalescing (BFC), PatrickStar-style chunks,
and a PyTorch-style caching allocator.
"""

from repro.memory.arena import ArenaPoolBackend, LegacyBackendAdapter
from repro.memory.page import DEFAULT_PAGE_BYTES, Page, PageState
from repro.memory.pool import DevicePool, FilePoolBackend, NullPoolBackend
from repro.memory.allocator import MovePlan, MoveReport, PageAllocator, PageQuota
from repro.memory.tensor import PagedTensor
from repro.memory.fragmentation import FragmentationStats

__all__ = [
    "ArenaPoolBackend",
    "PageQuota",
    "DEFAULT_PAGE_BYTES",
    "LegacyBackendAdapter",
    "MovePlan",
    "MoveReport",
    "Page",
    "PageState",
    "DevicePool",
    "RamPoolBackend",
    "FilePoolBackend",
    "NullPoolBackend",
    "PageAllocator",
    "PagedTensor",
    "FragmentationStats",
]

_DEPRECATED = {
    # PEP 562: imported lazily so the warning fires at first use, not at
    # package import (the pattern established in repro/__init__.py).
    "RamPoolBackend": "repro.memory.pool",
}


def __getattr__(name: str):
    if name in _DEPRECATED:
        import importlib
        import warnings

        warnings.warn(
            f"repro.memory.{name} is deprecated; pools allocate one "
            "contiguous arena via repro.memory.arena.ArenaPoolBackend",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(importlib.import_module(_DEPRECATED[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
