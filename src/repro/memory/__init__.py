"""Page-based hierarchical memory management (Section 4.1 of the paper).

The ``Page`` is the minimum unit of every memory operation — allocation,
release, movement and communication. Device pools pre-allocate their
capacity up front (as Angel-PTM's Allocator does, Section 5) and hand out
fixed-size pages; tensors are composed of pages with at most two tensors
sharing one page.

Three baseline allocators used by the fragmentation ablation live here too:
TensorFlow-style best-fit-with-coalescing (BFC), PatrickStar-style chunks,
and a PyTorch-style caching allocator.
"""

from repro.memory.page import DEFAULT_PAGE_BYTES, Page, PageState
from repro.memory.pool import DevicePool, FilePoolBackend, NullPoolBackend, RamPoolBackend
from repro.memory.allocator import PageAllocator, PageQuota
from repro.memory.tensor import PagedTensor
from repro.memory.fragmentation import FragmentationStats

__all__ = [
    "PageQuota",
    "DEFAULT_PAGE_BYTES",
    "Page",
    "PageState",
    "DevicePool",
    "RamPoolBackend",
    "FilePoolBackend",
    "NullPoolBackend",
    "PageAllocator",
    "PagedTensor",
    "FragmentationStats",
]
