"""The paged Tensor structure (Figure 4 of the paper).

A tensor is composed of at least one page; pages need not be contiguous, so
``merge`` can be used to re-pack the tensor into exclusively-owned pages.
``device_index`` follows the paper's convention, including the footnote
value ``-1`` when the tensor's pages are split across devices (not ready
for computation).
"""

from __future__ import annotations

import numpy as np

from repro.errors import TensorStateError
from repro.hardware.device import DeviceKind
from repro.memory.page import Page


class PagedTensor:
    """A multi-dimensional array whose bytes live in pages.

    Instances are created by :class:`~repro.memory.allocator.PageAllocator`;
    direct construction is for tests. Data access gathers/scatters through
    the page slots, which exercises the same byte paths a real hierarchical
    memory manager uses.
    """

    def __init__(self, tensor_id: int, shape: tuple[int, ...], dtype: np.dtype, allocator=None):
        self.tensor_id = tensor_id
        self.shape = tuple(int(dim) for dim in shape)
        self.dtype = np.dtype(dtype)
        self.page_list: list[Page] = []
        self._allocator = allocator
        self._released = False

    # ------------------------------------------------------------------
    # Shape / placement
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    @property
    def is_released(self) -> bool:
        return self._released

    @property
    def device_index(self) -> int:
        """0=GPU, 1=CPU, 2=SSD; -1 when unallocated or split across tiers."""
        if self._released or not self.page_list:
            return -1
        indices = {page.device_index for page in self.page_list}
        if len(indices) != 1:
            return -1
        return indices.pop()

    @property
    def device_kind(self) -> DeviceKind | None:
        index = self.device_index
        if index < 0:
            return None
        return DeviceKind(index)

    @property
    def is_contiguous(self) -> bool:
        """True when every page is exclusively owned by this tensor."""
        self._check_live()
        return all(page.tensor_ids == (self.tensor_id,) for page in self.page_list)

    def _check_live(self) -> None:
        if self._released:
            raise TensorStateError(f"tensor {self.tensor_id} has been released")
        if not self.page_list:
            raise TensorStateError(f"tensor {self.tensor_id} has no pages")

    def _segments(self):
        """Yield (page, page_offset, nbytes, tensor_offset) in byte order."""
        cursor = 0
        for page in self.page_list:
            offset, nbytes = page.slot_of(self.tensor_id)
            yield page, offset, nbytes, cursor
            cursor += nbytes
        if cursor != self.nbytes:
            raise TensorStateError(
                f"tensor {self.tensor_id}: pages cover {cursor} of {self.nbytes} bytes"
            )

    # ------------------------------------------------------------------
    # Paper interfaces (Figure 4)
    # ------------------------------------------------------------------
    def release(self) -> None:
        """Free this tensor's space in every page (via the allocator)."""
        self._require_allocator().release(self)

    def move(self, target: DeviceKind) -> None:
        """Deprecated: use ``allocator.move_pages([tensor], target)``."""
        import warnings

        warnings.warn(
            "PagedTensor.move is deprecated; use "
            "PageAllocator.move_pages([tensor], device)",
            DeprecationWarning,
            stacklevel=2,
        )
        self._require_allocator().move_pages([self], target)

    def merge(self) -> None:
        """Re-pack into exclusively-owned pages so the data is contiguous."""
        self._require_allocator().merge(self)

    def _require_allocator(self):
        if self._allocator is None:
            raise TensorStateError(
                f"tensor {self.tensor_id} is not managed by an allocator"
            )
        return self._allocator

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    def read_array(self) -> np.ndarray:
        """Gather the tensor's bytes from its pages into an ndarray.

        Each page segment is read directly into the result buffer
        (``readinto``); no intermediate ``bytes`` objects.
        """
        self._check_live()
        out = np.empty(self.size, dtype=self.dtype)
        raw = out.view(np.uint8).reshape(-1)
        for page, offset, nbytes, cursor in self._segments():
            page.readinto(offset, raw[cursor:cursor + nbytes])
        return out.reshape(self.shape)

    def write_array(self, array: np.ndarray) -> None:
        """Scatter ``array`` into the tensor's pages (zero-copy views)."""
        self._check_live()
        array = np.ascontiguousarray(array, dtype=self.dtype)
        if array.shape != self.shape:
            raise TensorStateError(
                f"shape mismatch: tensor {self.shape}, array {array.shape}"
            )
        raw = array.view(np.uint8).reshape(-1)
        for page, offset, nbytes, cursor in self._segments():
            page.write_from(offset, raw[cursor:cursor + nbytes])

    def fill(self, value: float) -> None:
        self.write_array(np.full(self.shape, value, dtype=self.dtype))

    def __repr__(self) -> str:
        status = "released" if self._released else f"dev={self.device_index}"
        return (
            f"PagedTensor(id={self.tensor_id}, shape={self.shape}, "
            f"dtype={self.dtype.name}, pages={len(self.page_list)}, {status})"
        )
