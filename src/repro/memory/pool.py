"""Per-device page pools with pluggable physical backends.

Angel-PTM's Allocator "pre-allocate[s] space from the hierarchical memory of
the system, including GPU memory, CPU pinned memory, and SSD memory" and
divides it into fixed-size pages (Section 5). A :class:`DevicePool` does the
same: capacity is reserved at construction as **one contiguous arena**,
pages are acquired from and returned to a free list, and the backend
decides where the bytes physically live:

- :class:`~repro.memory.arena.ArenaPoolBackend` — an anonymous ``mmap``
  arena (``backend="ram"``, the simulated "GPU" and the real CPU tier) or
  a named ``multiprocessing.shared_memory`` segment (``backend="shm"``)
  that worker processes can attach by name,
- :class:`~repro.memory.arena.FilePoolBackend` — one preallocated,
  memory-mapped arena file (the SSD tier, exercising genuine storage I/O),
- :class:`NullPoolBackend` — capacity accounting only, for pure
  discrete-event simulation at paper scale.

Backends speak the buffer-protocol storage API
(:class:`repro.protocols.PoolBackend`): ``readinto``/``write_from`` move
bytes through caller-supplied buffers, RAM-like arenas add zero-copy
``view`` windows, and legacy bytes-based backends are adapted through a
one-release :class:`~repro.memory.arena.LegacyBackendAdapter` shim.
"""

from __future__ import annotations

import heapq
import warnings

from repro.errors import AllocationError, OutOfMemoryError, PageStateError
from repro.hardware.device import DeviceKind
from repro.memory.arena import ArenaPoolBackend, FilePoolBackend, adapt_backend
from repro.memory.page import DEFAULT_PAGE_BYTES, Page, copy_storage

__all__ = [
    "DevicePool",
    "FilePoolBackend",
    "NullPoolBackend",
    "RamPoolBackend",
    "copy_storage",
]


class _Storage:
    """Handle to one page-sized region owned by a pool."""

    __slots__ = ("pool", "index", "nbytes")

    def __init__(self, pool: "DevicePool", index: int, nbytes: int):
        self.pool = pool
        self.index = index
        self.nbytes = nbytes

    # ------------------------------------------------------------------
    # Buffer-protocol access (the hot path)
    # ------------------------------------------------------------------
    def try_view(self, offset: int, nbytes: int) -> memoryview | None:
        """Zero-copy window into the page, or None on view-less tiers."""
        self._check_range(offset, nbytes)
        backend = self.pool._backend
        if not hasattr(backend, "view"):
            return None
        return backend.view(self.index, offset, nbytes)

    def readinto(self, offset: int, buf) -> int:
        nbytes = memoryview(buf).nbytes
        self._check_range(offset, nbytes)
        counter = self.pool._read_bytes
        if counter is not None:
            counter.inc(nbytes)
        return self.pool._backend.readinto(self.index, offset, buf)

    def write_from(self, offset: int, buf) -> int:
        nbytes = memoryview(buf).nbytes
        self._check_range(offset, nbytes)
        counter = self.pool._write_bytes
        if counter is not None:
            counter.inc(nbytes)
        return self.pool._backend.write_from(self.index, offset, buf)

    # ------------------------------------------------------------------
    # Bytes convenience (tests, small control-plane reads)
    # ------------------------------------------------------------------
    def read(self, offset: int, nbytes: int) -> bytes:
        buf = bytearray(nbytes)
        self.readinto(offset, buf)
        return bytes(buf)

    def write(self, offset: int, data: bytes) -> None:
        self.write_from(offset, data)

    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise AllocationError(
                f"access [{offset}, {offset + nbytes}) outside page of {self.nbytes} bytes"
            )


class NullPoolBackend:
    """Capacity accounting only; reads return zeros, writes are dropped.

    Lets the discrete-event experiments run the same allocator code at
    175B/10T-parameter scale without materializing terabytes.
    """

    def __init__(self, num_pages: int, page_bytes: int):
        self.num_pages = num_pages
        self.page_bytes = page_bytes

    def readinto(self, index: int, offset: int, buf) -> int:
        del index, offset
        target = memoryview(buf).cast("B")
        target[:] = bytes(len(target))
        return len(target)

    def write_from(self, index: int, offset: int, buf) -> int:
        del index, offset
        return memoryview(buf).nbytes

    def close(self) -> None:
        pass


class RamPoolBackend(ArenaPoolBackend):
    """Deprecated name for the private-RAM arena backend.

    Pages no longer live in a list of numpy buffers; construct
    :class:`~repro.memory.arena.ArenaPoolBackend` (or pass
    ``backend="ram"`` to :class:`DevicePool`) instead.
    """

    def __init__(self, num_pages: int, page_bytes: int):
        warnings.warn(
            "RamPoolBackend is deprecated; use repro.memory.arena."
            "ArenaPoolBackend (or DevicePool(backend='ram'))",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(num_pages, page_bytes, shared=False)


def _build_backend(backend, num_pages: int, page_bytes: int, file_path, name):
    if not isinstance(backend, str):
        return adapt_backend(backend)
    if backend == "ram":
        return ArenaPoolBackend(num_pages, page_bytes, shared=False)
    if backend == "shm":
        return ArenaPoolBackend(num_pages, page_bytes, shared=True)
    if backend == "file":
        return FilePoolBackend(num_pages, page_bytes, path=file_path)
    if backend == "null":
        return NullPoolBackend(num_pages, page_bytes)
    raise AllocationError(f"unknown pool backend {backend!r}")


class DevicePool:
    """Pre-allocated page pool for one memory tier."""

    def __init__(
        self,
        device_kind: DeviceKind,
        capacity_bytes: int,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        backend: str = "ram",
        file_path: str | None = None,
        name: str | None = None,
        telemetry=None,
        owner: str | None = None,
    ):
        if capacity_bytes < page_bytes:
            raise AllocationError("pool capacity smaller than one page")
        self.device_kind = device_kind
        #: Tenant this pool belongs to under multi-tenancy; threaded into
        #: the pool name so OOM errors attribute the starved tier.
        self.owner = owner
        # Physical-I/O accounting: one counter pair per tier, fetched once
        # so the per-access cost is a None check (repro.telemetry).
        tier = device_kind.name.lower()
        if telemetry is not None and getattr(telemetry, "enabled", False):
            self._read_bytes = telemetry.counter("io.read_bytes", tier=tier)
            self._write_bytes = telemetry.counter("io.write_bytes", tier=tier)
        else:
            self._read_bytes = None
            self._write_bytes = None
        self.page_bytes = page_bytes
        self.num_pages = capacity_bytes // page_bytes
        self.capacity_bytes = self.num_pages * page_bytes
        if name is None:
            name = f"{device_kind.name.lower()}-pool"
            if owner is not None:
                name = f"{owner}/{name}"
        self.name = name
        self._backend = _build_backend(
            backend, self.num_pages, page_bytes, file_path, name
        )
        # Min-heap of free page indices: sequential acquires hand out
        # ascending, physically-consecutive arena slots, so a tensor's
        # pages form contiguous runs that move_pages coalesces into
        # single slice copies.
        self._free_indices: list[int] = list(range(self.num_pages))
        self._in_use = 0
        self.peak_in_use = 0
        #: Called with the OutOfMemoryError about to be raised; the page
        #: allocator points this at its ForensicRecorder so every OOM —
        #: whichever path triggered it — carries a forensic dump.
        self.oom_observer = None

    def wrap_backend(self, wrapper) -> None:
        """Interpose on physical I/O: ``wrapper(inner) -> backend``.

        Used by ``repro.resilience`` to inject faults into a tier without
        the pool, pages or tensors knowing; the wrapper must expose the
        backend protocol (:class:`repro.protocols.PoolBackend`, or the
        legacy ``read``/``write``/``close`` surface, which is adapted
        with a :class:`DeprecationWarning`). A wrapper that does not
        re-export ``view``/``descriptor`` forces every copy through its
        ``readinto``/``write_from`` — exactly what fault injection wants.
        """
        self._backend = adapt_backend(wrapper(self._backend))

    def backend_descriptor(self) -> tuple[str, str] | None:
        """(kind, address) the page copy service can attach, or None."""
        descriptor = getattr(self._backend, "descriptor", None)
        if descriptor is None:
            return None
        return descriptor()

    # ------------------------------------------------------------------
    # Storage lifecycle (used by page moves and by acquire/release below)
    # ------------------------------------------------------------------
    def _oom(self, requested_bytes: int) -> OutOfMemoryError:
        exc = OutOfMemoryError(
            device=self.name,
            requested_bytes=requested_bytes,
            available_bytes=self.free_bytes,
        )
        if self.oom_observer is not None:
            self.oom_observer(exc)
        return exc

    def acquire_storage(self, nbytes: int) -> _Storage:
        if nbytes > self.page_bytes:
            raise AllocationError(
                f"{self.name}: page of {nbytes} bytes exceeds pool page size"
            )
        if not self._free_indices:
            raise self._oom(self.page_bytes)
        index = heapq.heappop(self._free_indices)
        self._in_use += 1
        self.peak_in_use = max(self.peak_in_use, self._in_use)
        return _Storage(self, index, self.page_bytes)

    def acquire_storage_run(self, count: int) -> list[_Storage]:
        """Acquire ``count`` pages at the lowest free arena slots.

        All-or-nothing: raises :class:`~repro.errors.OutOfMemoryError`
        without taking anything when fewer than ``count`` pages are free.
        Handing out the smallest indices keeps freed holes refilled
        first, so long-lived pools stay contiguous and a MoveGroup's
        destination slots coalesce into few runs.
        """
        if count <= 0:
            return []
        if len(self._free_indices) < count:
            raise self._oom(count * self.page_bytes)
        taken = sorted(self._free_indices)[:count]
        cut = set(taken)
        self._free_indices = [i for i in self._free_indices if i not in cut]
        heapq.heapify(self._free_indices)
        self._in_use += count
        self.peak_in_use = max(self.peak_in_use, self._in_use)
        return [_Storage(self, index, self.page_bytes) for index in taken]

    def release_storage(self, storage: _Storage) -> None:
        if storage.pool is not self:
            raise PageStateError("storage released to the wrong pool")
        if storage.index in self._free_indices:
            raise PageStateError(f"double free of page index {storage.index}")
        heapq.heappush(self._free_indices, storage.index)
        self._in_use -= 1

    # ------------------------------------------------------------------
    # Page lifecycle
    # ------------------------------------------------------------------
    def acquire(self) -> Page:
        """Take a fresh page resident in this pool."""
        page = Page(total_bytes=self.page_bytes)
        page._attach(self.acquire_storage(self.page_bytes))
        return page

    def release(self, page: Page) -> None:
        """Return an *empty* page's storage to the free list."""
        if not page.is_empty:
            raise PageStateError(
                f"page {page.page_id} still holds tensors {list(page.tensor_ids)}"
            )
        self.release_storage(page._detach())

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def pages_in_use(self) -> int:
        return self._in_use

    @property
    def used_bytes(self) -> int:
        return self._in_use * self.page_bytes

    @property
    def free_bytes(self) -> int:
        return len(self._free_indices) * self.page_bytes

    def close(self) -> None:
        self._backend.close()

    def __enter__(self) -> "DevicePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DevicePool({self.name}, {self._in_use}/{self.num_pages} pages, "
            f"page={self.page_bytes}B)"
        )
