"""Per-device page pools with pluggable physical backends.

Angel-PTM's Allocator "pre-allocate[s] space from the hierarchical memory of
the system, including GPU memory, CPU pinned memory, and SSD memory" and
divides it into fixed-size pages (Section 5). A :class:`DevicePool` does the
same: capacity is reserved at construction, pages are acquired from and
returned to a free list, and the backend decides where the bytes physically
live:

- :class:`RamPoolBackend` — numpy byte buffers (used for the simulated
  "GPU" and the real CPU tier),
- :class:`FilePoolBackend` — regions of a real file on disk (the SSD tier,
  exercising genuine storage I/O),
- :class:`NullPoolBackend` — capacity accounting only, for pure
  discrete-event simulation at paper scale.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.errors import AllocationError, OutOfMemoryError, PageStateError
from repro.hardware.device import DeviceKind
from repro.memory.page import DEFAULT_PAGE_BYTES, Page


class _Storage:
    """Handle to one page-sized region owned by a pool."""

    def __init__(self, pool: "DevicePool", index: int, nbytes: int):
        self.pool = pool
        self.index = index
        self.nbytes = nbytes

    def read(self, offset: int, nbytes: int) -> bytes:
        self._check_range(offset, nbytes)
        counter = self.pool._read_bytes
        if counter is not None:
            counter.inc(nbytes)
        return self.pool._backend.read(self.index, offset, nbytes)

    def write(self, offset: int, data: bytes) -> None:
        self._check_range(offset, len(data))
        counter = self.pool._write_bytes
        if counter is not None:
            counter.inc(len(data))
        self.pool._backend.write(self.index, offset, data)

    def _check_range(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise AllocationError(
                f"access [{offset}, {offset + nbytes}) outside page of {self.nbytes} bytes"
            )


class RamPoolBackend:
    """Physical pages held as numpy byte buffers in process memory."""

    def __init__(self, num_pages: int, page_bytes: int):
        self._buffers = [np.zeros(page_bytes, dtype=np.uint8) for _ in range(num_pages)]

    def read(self, index: int, offset: int, nbytes: int) -> bytes:
        return self._buffers[index][offset:offset + nbytes].tobytes()

    def write(self, index: int, offset: int, data: bytes) -> None:
        view = np.frombuffer(data, dtype=np.uint8)
        self._buffers[index][offset:offset + len(data)] = view

    def close(self) -> None:
        self._buffers.clear()


class FilePoolBackend:
    """Physical pages stored as regions of one file on disk.

    This is the reproduction's SSD tier: reads and writes hit the
    filesystem for real, so SSD-path code is exercised end to end.
    """

    def __init__(self, num_pages: int, page_bytes: int, path: str | None = None):
        self._page_bytes = page_bytes
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro-ssd-", suffix=".bin")
            os.close(fd)
            self._owns_file = True
        else:
            self._owns_file = False
        self._path = path
        with open(self._path, "wb") as f:
            f.truncate(num_pages * page_bytes)
        self._file = open(self._path, "r+b", buffering=0)

    @property
    def path(self) -> str:
        return self._path

    def read(self, index: int, offset: int, nbytes: int) -> bytes:
        self._file.seek(index * self._page_bytes + offset)
        return self._file.read(nbytes)

    def write(self, index: int, offset: int, data: bytes) -> None:
        self._file.seek(index * self._page_bytes + offset)
        self._file.write(data)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()
        if self._owns_file and os.path.exists(self._path):
            os.unlink(self._path)


class NullPoolBackend:
    """Capacity accounting only; reads return zeros, writes are dropped.

    Lets the discrete-event experiments run the same allocator code at
    175B/10T-parameter scale without materializing terabytes.
    """

    def __init__(self, num_pages: int, page_bytes: int):
        del num_pages
        self._page_bytes = page_bytes

    def read(self, index: int, offset: int, nbytes: int) -> bytes:
        del index, offset
        return bytes(nbytes)

    def write(self, index: int, offset: int, data: bytes) -> None:
        del index, offset, data

    def close(self) -> None:
        pass


class DevicePool:
    """Pre-allocated page pool for one memory tier."""

    def __init__(
        self,
        device_kind: DeviceKind,
        capacity_bytes: int,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        backend: str = "ram",
        file_path: str | None = None,
        name: str | None = None,
        telemetry=None,
        owner: str | None = None,
    ):
        if capacity_bytes < page_bytes:
            raise AllocationError("pool capacity smaller than one page")
        self.device_kind = device_kind
        #: Tenant this pool belongs to under multi-tenancy; threaded into
        #: the pool name so OOM errors attribute the starved tier.
        self.owner = owner
        # Physical-I/O accounting: one counter pair per tier, fetched once
        # so the per-access cost is a None check (repro.telemetry).
        tier = device_kind.name.lower()
        if telemetry is not None and getattr(telemetry, "enabled", False):
            self._read_bytes = telemetry.counter("io.read_bytes", tier=tier)
            self._write_bytes = telemetry.counter("io.write_bytes", tier=tier)
        else:
            self._read_bytes = None
            self._write_bytes = None
        self.page_bytes = page_bytes
        self.num_pages = capacity_bytes // page_bytes
        self.capacity_bytes = self.num_pages * page_bytes
        if name is None:
            name = f"{device_kind.name.lower()}-pool"
            if owner is not None:
                name = f"{owner}/{name}"
        self.name = name
        if backend == "ram":
            self._backend = RamPoolBackend(self.num_pages, page_bytes)
        elif backend == "file":
            self._backend = FilePoolBackend(self.num_pages, page_bytes, path=file_path)
        elif backend == "null":
            self._backend = NullPoolBackend(self.num_pages, page_bytes)
        else:
            raise AllocationError(f"unknown pool backend {backend!r}")
        self._free_indices: list[int] = list(range(self.num_pages))
        self._in_use = 0
        self.peak_in_use = 0
        #: Called with the OutOfMemoryError about to be raised; the page
        #: allocator points this at its ForensicRecorder so every OOM —
        #: whichever path triggered it — carries a forensic dump.
        self.oom_observer = None

    def wrap_backend(self, wrapper) -> None:
        """Interpose on physical I/O: ``wrapper(inner) -> backend``.

        Used by ``repro.resilience`` to inject faults into a tier without
        the pool, pages or tensors knowing; the wrapper must expose the
        backend protocol (``read``/``write``/``close``).
        """
        self._backend = wrapper(self._backend)

    # ------------------------------------------------------------------
    # Storage lifecycle (used by Page.move and by acquire/release below)
    # ------------------------------------------------------------------
    def acquire_storage(self, nbytes: int) -> _Storage:
        if nbytes > self.page_bytes:
            raise AllocationError(
                f"{self.name}: page of {nbytes} bytes exceeds pool page size"
            )
        if not self._free_indices:
            exc = OutOfMemoryError(
                device=self.name,
                requested_bytes=self.page_bytes,
                available_bytes=self.free_bytes,
            )
            if self.oom_observer is not None:
                self.oom_observer(exc)
            raise exc
        index = self._free_indices.pop()
        self._in_use += 1
        self.peak_in_use = max(self.peak_in_use, self._in_use)
        return _Storage(self, index, self.page_bytes)

    def release_storage(self, storage: _Storage) -> None:
        if storage.pool is not self:
            raise PageStateError("storage released to the wrong pool")
        if storage.index in self._free_indices:
            raise PageStateError(f"double free of page index {storage.index}")
        self._free_indices.append(storage.index)
        self._in_use -= 1

    # ------------------------------------------------------------------
    # Page lifecycle
    # ------------------------------------------------------------------
    def acquire(self) -> Page:
        """Take a fresh page resident in this pool."""
        page = Page(total_bytes=self.page_bytes)
        page._attach(self.acquire_storage(self.page_bytes))
        return page

    def release(self, page: Page) -> None:
        """Return an *empty* page's storage to the free list."""
        if not page.is_empty:
            raise PageStateError(
                f"page {page.page_id} still holds tensors {list(page.tensor_ids)}"
            )
        self.release_storage(page._detach())

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def pages_in_use(self) -> int:
        return self._in_use

    @property
    def used_bytes(self) -> int:
        return self._in_use * self.page_bytes

    @property
    def free_bytes(self) -> int:
        return len(self._free_indices) * self.page_bytes

    def close(self) -> None:
        self._backend.close()

    def __enter__(self) -> "DevicePool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"DevicePool({self.name}, {self._in_use}/{self.num_pages} pages, "
            f"page={self.page_bytes}B)"
        )
