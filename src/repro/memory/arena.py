"""Arena-backed physical page storage (the zero-copy hot path).

The paper sizes pages at 4 MiB precisely to "fully utilize the PCIe
bandwidth" (Section 5); squandering that on Python ``bytes`` round-trips
is the throughput bound once compute/IO overlap (ROADMAP item 2). Every
backend here therefore stores its pages in **one contiguous arena** —
an anonymous ``mmap``, a named ``multiprocessing.shared_memory`` segment,
or a preallocated arena file — and speaks the buffer-protocol storage API
(:class:`repro.protocols.PoolBackend`):

- ``readinto(index, offset, buf)`` / ``write_from(index, offset, buf)``
  move bytes directly between the arena and a caller-supplied buffer;
- RAM-like arenas additionally expose ``view(index, offset, nbytes)``, a
  writable ``memoryview`` window, so an arena→arena page move is a single
  slice copy — one C-level ``memcpy`` that releases the GIL;
- because pages are physically consecutive, a *run* of pages is one call:
  ``PageAllocator.move_pages`` coalesces a MoveGroup into O(runs) copies.

Named shared-memory arenas (``shared=True``) plus arena files are also
**process-shareable**: they export a :func:`descriptor` that the
:class:`~repro.runtime.ioproc.PageCopyService` worker process attaches by
name, so prefetch/writeback copies run outside this process's GIL
entirely.

:class:`LegacyBackendAdapter` keeps the pre-arena bytes-based backends
(``read``/``write``/``close``) working for one release behind a
``DeprecationWarning``.
"""

from __future__ import annotations

import mmap
import os
import secrets
import tempfile
import warnings

from repro.errors import AllocationError

#: Descriptor kinds understood by the page copy service.
SHM_DESCRIPTOR = "shm"
FILE_DESCRIPTOR = "file"


def arena_session_token() -> str:
    """A short per-arena scope token (the transport naming discipline)."""
    return secrets.token_hex(4)


class ArenaPoolBackend:
    """Pages stored consecutively in one RAM arena.

    ``shared=False`` (the default) backs the arena with an anonymous
    ``mmap`` — private to this process, reclaimed on close, lazily
    faulted so huge pools cost only virtual address space until written.
    ``shared=True`` backs it with a named
    ``multiprocessing.shared_memory`` segment so worker *processes* can
    attach the same bytes by name (:meth:`descriptor`); the creating
    process owns the segment and unlinks it on :meth:`close`.
    """

    def __init__(
        self,
        num_pages: int,
        page_bytes: int,
        shared: bool = False,
        name: str | None = None,
    ):
        if num_pages <= 0 or page_bytes <= 0:
            raise AllocationError("arena needs a positive page count and size")
        self.num_pages = num_pages
        self.page_bytes = page_bytes
        self._nbytes = num_pages * page_bytes
        self._segment = None
        self._mmap = None
        if shared:
            # Deferred import: multiprocessing pulls in a lot; plain RAM
            # pools never need it.
            from multiprocessing import shared_memory

            from repro.cluster.transport import scoped_segment_name

            if name is None:
                name = scoped_segment_name(arena_session_token(), "arena")
            self._segment = shared_memory.SharedMemory(
                create=True, size=self._nbytes, name=name
            )
            self.name = self._segment.name
            self._buf = memoryview(self._segment.buf)
        else:
            self._mmap = mmap.mmap(-1, self._nbytes)
            self.name = None
            self._buf = memoryview(self._mmap)
        self._closed = False

    # ------------------------------------------------------------------
    # Buffer-protocol storage API
    # ------------------------------------------------------------------
    def view(self, index: int, offset: int, nbytes: int) -> memoryview:
        start = index * self.page_bytes + offset
        if start < 0 or start + nbytes > self._nbytes:
            raise AllocationError(
                f"arena view [{start}, {start + nbytes}) outside "
                f"{self._nbytes}-byte arena"
            )
        return self._buf[start:start + nbytes]

    def readinto(self, index: int, offset: int, buf) -> int:
        target = memoryview(buf).cast("B")
        target[:] = self.view(index, offset, len(target))
        return len(target)

    def write_from(self, index: int, offset: int, buf) -> int:
        source = memoryview(buf).cast("B")
        self.view(index, offset, len(source))[:] = source
        return len(source)

    # ------------------------------------------------------------------
    # Process sharing
    # ------------------------------------------------------------------
    def descriptor(self) -> tuple[str, str] | None:
        """(kind, address) for cross-process attach; None when private."""
        if self.name is None:
            return None
        return (SHM_DESCRIPTOR, self.name)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._buf.release()
        if self._segment is not None:
            self._segment.close()
            try:
                self._segment.unlink()
            except FileNotFoundError:
                pass
        if self._mmap is not None:
            self._mmap.close()


class FilePoolBackend:
    """Pages stored consecutively in one preallocated arena file.

    This is the reproduction's SSD tier: bytes land in a real file, so
    SSD-path code is exercised end to end. The file is mapped once at
    construction and every ``readinto``/``write_from`` is a slice copy
    into the mapping — no per-call ``seek``+``read`` syscall pair, and a
    run of consecutive pages is one copy. Should the mapping fail (some
    filesystems refuse ``mmap``), the backend degrades to positioned
    ``os.pread``/``os.pwrite`` — looped, because a single ``pread`` may
    legally return fewer bytes than asked; the loop asserts the full
    page range is satisfied (short reads are an error, never silent
    truncation).

    Deliberately no ``view``: file tiers take the ``readinto``/
    ``write_from`` path so interposing wrappers (fault injection,
    accounting) observe every I/O.
    """

    def __init__(
        self,
        num_pages: int,
        page_bytes: int,
        path: str | None = None,
        use_mmap: bool = True,
    ):
        self.num_pages = num_pages
        self.page_bytes = page_bytes
        self._nbytes = num_pages * page_bytes
        if path is None:
            fd, path = tempfile.mkstemp(prefix="repro-ssd-", suffix=".bin")
            os.close(fd)
            self._owns_file = True
        else:
            self._owns_file = False
        self._path = path
        with open(self._path, "wb") as f:
            f.truncate(self._nbytes)
        self._fd = os.open(self._path, os.O_RDWR)
        self._mmap = None
        self._buf = None
        if use_mmap:
            try:
                self._mmap = mmap.mmap(self._fd, self._nbytes)
                self._buf = memoryview(self._mmap)
            except (OSError, ValueError):
                self._mmap = None
        self._closed = False

    @property
    def path(self) -> str:
        return self._path

    def _check_range(self, start: int, nbytes: int) -> None:
        if start < 0 or start + nbytes > self._nbytes:
            raise AllocationError(
                f"file-arena access [{start}, {start + nbytes}) outside "
                f"{self._nbytes}-byte arena"
            )

    # ------------------------------------------------------------------
    # Buffer-protocol storage API
    # ------------------------------------------------------------------
    def readinto(self, index: int, offset: int, buf) -> int:
        target = memoryview(buf).cast("B")
        start = index * self.page_bytes + offset
        self._check_range(start, len(target))
        if self._buf is not None:
            target[:] = self._buf[start:start + len(target)]
            return len(target)
        # pread fallback: loop until the range is satisfied — a single
        # read may return fewer bytes than asked even on a regular file.
        done = 0
        while done < len(target):
            chunk = os.pread(self._fd, len(target) - done, start + done)
            if not chunk:
                raise AllocationError(
                    f"short read: [{start}, {start + len(target)}) satisfied "
                    f"only {done} bytes"
                )
            target[done:done + len(chunk)] = chunk
            done += len(chunk)
        return done

    def write_from(self, index: int, offset: int, buf) -> int:
        source = memoryview(buf).cast("B")
        start = index * self.page_bytes + offset
        self._check_range(start, len(source))
        if self._buf is not None:
            self._buf[start:start + len(source)] = source
            return len(source)
        done = 0
        while done < len(source):
            done += os.pwrite(self._fd, source[done:], start + done)
        return done

    # ------------------------------------------------------------------
    # Process sharing
    # ------------------------------------------------------------------
    def descriptor(self) -> tuple[str, str]:
        """(kind, path): the copy service opens the arena file itself."""
        return (FILE_DESCRIPTOR, self._path)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._buf is not None:
            self._buf.release()
        if self._mmap is not None:
            self._mmap.close()
        os.close(self._fd)
        if self._owns_file and os.path.exists(self._path):
            os.unlink(self._path)


class LegacyBackendAdapter:
    """One-release shim: a bytes-based backend behind the new API.

    Third-party and test backends that predate the arena rework implement
    ``read(index, offset, nbytes) -> bytes`` / ``write(index, offset,
    data)``. The adapter funnels the buffer-protocol calls through those
    methods — paying the copy the new API exists to avoid, hence the
    :class:`DeprecationWarning` at wrap time — so they keep working while
    they migrate. ``read`` short-reads are checked here too: a backend
    returning fewer bytes than asked is an error.
    """

    def __init__(self, inner):
        warnings.warn(
            f"pool backend {type(inner).__name__} implements the deprecated "
            "bytes-based read/write API; implement readinto/write_from "
            "(repro.protocols.PoolBackend) for zero-copy moves",
            DeprecationWarning,
            stacklevel=3,
        )
        self._inner = inner

    def readinto(self, index: int, offset: int, buf) -> int:
        target = memoryview(buf).cast("B")
        data = self._inner.read(index, offset, len(target))
        if len(data) != len(target):
            raise AllocationError(
                f"legacy backend {type(self._inner).__name__} short read: "
                f"asked {len(target)} bytes, got {len(data)}"
            )
        target[:] = data
        return len(target)

    def write_from(self, index: int, offset: int, buf) -> int:
        source = memoryview(buf).cast("B")
        self._inner.write(index, offset, source.tobytes())
        return len(source)

    def close(self) -> None:
        self._inner.close()

    def __getattr__(self, name):
        # Pass through accounting surfaces (e.g. FilePoolBackend.path).
        return getattr(self._inner, name)


def adapt_backend(backend):
    """Return ``backend`` speaking the buffer-protocol API, adapting
    legacy bytes-based backends through :class:`LegacyBackendAdapter`."""
    if hasattr(backend, "readinto") and hasattr(backend, "write_from"):
        return backend
    if hasattr(backend, "read") and hasattr(backend, "write"):
        return LegacyBackendAdapter(backend)
    raise AllocationError(
        f"{type(backend).__name__} implements neither the PoolBackend "
        "protocol (readinto/write_from) nor the legacy read/write API"
    )
