"""Chunk-based allocator modelling PatrickStar (Section 4.1's critique).

PatrickStar "manages GPU memory in chunks rather than tensors, where the
chunk size must be larger than the largest tensor used in model training.
This would also result in memory fragments within each chunk". We model
that behaviour: tensors pack append-only into fixed chunks; freed space
inside a chunk is only reclaimed when the whole chunk empties.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError, OutOfMemoryError


@dataclass
class _Chunk:
    index: int
    nbytes: int
    cursor: int = 0
    live: dict[int, int] = field(default_factory=dict)  # req_id -> nbytes

    @property
    def tail_free(self) -> int:
        return self.nbytes - self.cursor

    @property
    def live_bytes(self) -> int:
        return sum(self.live.values())


class ChunkAllocator:
    """Append-only packing into fixed chunks, whole-chunk reclamation."""

    def __init__(self, capacity_bytes: int, chunk_bytes: int):
        if chunk_bytes <= 0:
            raise AllocationError("chunk size must be positive")
        if capacity_bytes < chunk_bytes:
            raise AllocationError("capacity smaller than one chunk")
        self.capacity_bytes = capacity_bytes
        self.chunk_bytes = chunk_bytes
        self.max_chunks = capacity_bytes // chunk_bytes
        self._chunks: list[_Chunk] = []
        self._free_chunks: list[_Chunk] = []
        self._location: dict[int, _Chunk] = {}

    @property
    def reserved_bytes(self) -> int:
        return (len(self._chunks) - len(self._free_chunks)) * self.chunk_bytes

    def alloc(self, req_id: int, nbytes: int) -> None:
        if req_id in self._location:
            raise AllocationError(f"request {req_id} already live")
        if nbytes <= 0:
            raise AllocationError("allocation size must be positive")
        if nbytes > self.chunk_bytes:
            raise AllocationError(
                f"tensor of {nbytes} bytes exceeds chunk size {self.chunk_bytes}; "
                "PatrickStar requires chunks larger than the largest tensor"
            )
        chunk = self._find_chunk(nbytes)
        chunk.live[req_id] = nbytes
        chunk.cursor += nbytes
        self._location[req_id] = chunk

    def _find_chunk(self, nbytes: int) -> _Chunk:
        for chunk in self._chunks:
            if chunk not in self._free_chunks and chunk.tail_free >= nbytes:
                return chunk
        if self._free_chunks:
            chunk = self._free_chunks.pop()
            chunk.cursor = 0
            chunk.live.clear()
            return chunk
        if len(self._chunks) >= self.max_chunks:
            raise OutOfMemoryError(
                "chunk-arena",
                nbytes,
                max((c.tail_free for c in self._chunks), default=0),
            )
        chunk = _Chunk(index=len(self._chunks), nbytes=self.chunk_bytes)
        self._chunks.append(chunk)
        return chunk

    def free(self, req_id: int) -> None:
        chunk = self._location.pop(req_id, None)
        if chunk is None:
            raise AllocationError(f"request {req_id} is not live")
        del chunk.live[req_id]
        # Space inside the chunk is NOT reusable until the chunk empties —
        # this is the intra-chunk fragmentation the paper criticizes.
        if not chunk.live:
            chunk.cursor = 0
            self._free_chunks.append(chunk)

    def intra_chunk_fragmentation(self) -> float:
        """Fraction of occupied-chunk bytes holding no live tensor."""
        occupied = [c for c in self._chunks if c not in self._free_chunks]
        total = len(occupied) * self.chunk_bytes
        if total == 0:
            return 0.0
        live = sum(c.live_bytes for c in occupied)
        return 1.0 - live / total
