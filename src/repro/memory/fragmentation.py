"""Fragmentation accounting shared by all allocator implementations.

Section 3.2 of the paper attributes DeepSpeed's and PatrickStar's capacity
losses to memory fragments created by coarse management. These metrics make
that claim measurable for any allocator that can replay an allocation
trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One step of an allocation trace: allocate or free a request id."""

    op: str  # "alloc" | "free"
    req_id: int
    nbytes: int = 0

    @staticmethod
    def alloc(req_id: int, nbytes: int) -> "TraceEvent":
        return TraceEvent("alloc", req_id, nbytes)

    @staticmethod
    def free(req_id: int) -> "TraceEvent":
        return TraceEvent("free", req_id)


@dataclass
class FragmentationStats:
    """Outcome of replaying a trace through an allocator.

    Attributes:
        peak_reserved_bytes: most arena bytes ever claimed from the device.
        peak_live_bytes: most bytes simultaneously requested by the trace
            (the allocator-independent lower bound).
        failed_at: index of the trace event where allocation first failed,
            or None if the whole trace succeeded.
    """

    capacity_bytes: int
    peak_reserved_bytes: int = 0
    peak_live_bytes: int = 0
    failed_at: int | None = None
    events_replayed: int = 0
    _live_bytes: int = field(default=0, repr=False)

    def on_alloc(self, nbytes: int, reserved_bytes: int) -> None:
        self._live_bytes += nbytes
        self.peak_live_bytes = max(self.peak_live_bytes, self._live_bytes)
        self.peak_reserved_bytes = max(self.peak_reserved_bytes, reserved_bytes)
        self.events_replayed += 1

    def on_free(self, nbytes: int) -> None:
        self._live_bytes -= nbytes
        self.events_replayed += 1

    @property
    def overhead_ratio(self) -> float:
        """peak reserved / peak live — 1.0 is a perfect allocator."""
        if self.peak_live_bytes == 0:
            return 1.0
        return self.peak_reserved_bytes / self.peak_live_bytes

    @property
    def wasted_fraction(self) -> float:
        """Fraction of reserved bytes that never held live data at peak."""
        if self.peak_reserved_bytes == 0:
            return 0.0
        return 1.0 - self.peak_live_bytes / self.peak_reserved_bytes


def replay(allocator, trace: list[TraceEvent]) -> FragmentationStats:
    """Run ``trace`` through ``allocator`` and collect fragmentation stats.

    ``allocator`` must expose ``alloc(req_id, nbytes)``, ``free(req_id)``
    and a ``reserved_bytes`` property. The replay stops at the first failed
    allocation and records its index — the max-model-scale experiments use
    exactly this "first failure" semantics.
    """
    from repro.errors import OutOfMemoryError

    stats = FragmentationStats(capacity_bytes=allocator.capacity_bytes)
    sizes: dict[int, int] = {}
    for index, event in enumerate(trace):
        if event.op == "alloc":
            try:
                allocator.alloc(event.req_id, event.nbytes)
            except OutOfMemoryError:
                stats.failed_at = index
                return stats
            sizes[event.req_id] = event.nbytes
            stats.on_alloc(event.nbytes, allocator.reserved_bytes)
        elif event.op == "free":
            allocator.free(event.req_id)
            stats.on_free(sizes.pop(event.req_id))
        else:
            raise ValueError(f"unknown trace op {event.op!r}")
    return stats
