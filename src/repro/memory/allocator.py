"""Page-level allocator spanning the hierarchical memory tiers.

Implements the placement policy of Section 4.1:

- tensors smaller than one page occupy an individual page ("for
  simplicity, considering that they only account for a very small fraction
  of the overall memory usage");
- larger tensors fill whole pages exclusively, and their sub-page *tail*
  may share a page with exactly one other tensor's tail, preserving the
  at-most-two-tensors-per-page invariant.

Multi-tenancy (``repro.fleet``) adds owner accounting on top: an allocator
constructed with ``owner=``/``quota=`` labels every page it acquires and
charges it against a shared :class:`PageQuota` ledger, so co-located jobs
see a typed :class:`~repro.errors.QuotaExceededError` at their own quota
boundary instead of silently draining a shared pool.
"""

from __future__ import annotations

import itertools
import threading
import time
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.errors import AllocationError, QuotaExceededError, TensorStateError
from repro.hardware.device import DeviceKind
from repro.memory.page import Page, PageState
from repro.memory.pool import DevicePool
from repro.memory.tensor import PagedTensor


@dataclass
class MovePlan:
    """The pages a move will actually transfer, deduplicated.

    Built by :meth:`PageAllocator.plan_move`: pages already resident on
    ``device`` are skipped and a page shared by two tensors (tail
    sharing, §4.1) appears exactly once. A plan is immediate — execute it
    with :meth:`PageAllocator.move_pages` before releasing or moving the
    tensors it covers.
    """

    device: DeviceKind
    pages: list[Page] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return sum(page.total_bytes for page in self.pages)


@dataclass
class MoveReport:
    """What one :meth:`PageAllocator.move_pages` call physically did."""

    pages_moved: int = 0
    bytes_moved: int = 0
    #: Physical gather/scatter copies issued — O(contiguous runs), not
    #: O(pages), when arena slots line up.
    copy_calls: int = 0

    def merge(self, other: "MoveReport") -> None:
        self.pages_moved += other.pages_moved
        self.bytes_moved += other.bytes_moved
        self.copy_calls += other.copy_calls


def _coalesce_runs(pairs):
    """Group (page, src_index, dst_storage) triples into contiguous runs.

    ``pairs`` is sorted by source arena index; a run extends while BOTH
    the source and destination indices advance by exactly one page, so
    each run is a single gather/scatter slice copy on both arenas.
    """
    runs = []
    current = [pairs[0]]
    for prev, item in zip(pairs, pairs[1:]):
        if (
            item[1] == prev[1] + 1
            and item[2].index == prev[2].index + 1
        ):
            current.append(item)
        else:
            runs.append(current)
            current = [item]
    runs.append(current)
    return runs


def _copy_page_run(src_pool, dst_pool, src_start, dst_start, npages,
                   io_service=None):
    """Copy ``npages`` physically-consecutive pages between two arenas.

    One slice copy when both ends expose arena views; a single
    ``readinto``/``write_from`` when one end is view-less (file tiers,
    fault-injection wrappers); a staging buffer only when both are. When
    an ``io_service`` (the out-of-process page copy worker) is provided
    and both backends export attachable descriptors, the copy happens in
    the worker process — outside this interpreter's GIL.
    """
    page_bytes = src_pool.page_bytes
    nbytes = npages * page_bytes
    read_counter = src_pool._read_bytes
    if read_counter is not None:
        read_counter.inc(nbytes)
    write_counter = dst_pool._write_bytes
    if write_counter is not None:
        write_counter.inc(nbytes)
    if io_service is not None:
        src_desc = src_pool.backend_descriptor()
        dst_desc = dst_pool.backend_descriptor()
        if src_desc is not None and dst_desc is not None:
            io_service.copy(
                src_desc, dst_desc,
                [(src_start * page_bytes, dst_start * page_bytes, nbytes)],
            )
            return
    src_backend = src_pool._backend
    dst_backend = dst_pool._backend
    src_view = (
        src_backend.view(src_start, 0, nbytes)
        if hasattr(src_backend, "view") else None
    )
    dst_view = (
        dst_backend.view(dst_start, 0, nbytes)
        if hasattr(dst_backend, "view") else None
    )
    if src_view is not None and dst_view is not None:
        dst_view[:] = src_view
    elif dst_view is not None:
        src_backend.readinto(src_start, 0, dst_view)
    elif src_view is not None:
        dst_backend.write_from(dst_start, 0, src_view)
    else:
        staging = bytearray(nbytes)
        src_backend.readinto(src_start, 0, staging)
        dst_backend.write_from(dst_start, 0, staging)


class PageQuota:
    """Shared per-tenant page ledger for one physical pool (a fleet node).

    Every :class:`PageAllocator` created with ``(owner=, quota=)`` charges
    its page acquisitions here and credits releases, so co-located jobs
    account against one capacity even though each engine keeps private
    :class:`~repro.memory.pool.DevicePool` objects (the PatrickStar-style
    chunk accounting that makes per-tenant quotas enforceable at the
    allocator). ``quotas`` maps tenant name to a per-tenant page cap;
    ``capacity_pages`` optionally caps the sum across tenants. A charge
    that would break either cap raises
    :class:`~repro.errors.QuotaExceededError` before any pool is touched.
    """

    def __init__(
        self,
        quotas: dict[str, int] | None = None,
        capacity_pages: int | None = None,
        telemetry=None,
    ):
        self._quotas: dict[str, int] = dict(quotas or {})
        self.capacity_pages = capacity_pages
        self._used: dict[str, int] = {}
        self._lock = threading.Lock()
        if telemetry is None:
            from repro.telemetry.core import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self.telemetry = telemetry

    def set_quota(self, owner: str, pages: int) -> None:
        with self._lock:
            self._quotas[owner] = pages

    def quota_of(self, owner: str) -> int | None:
        return self._quotas.get(owner)

    def used(self, owner: str | None = None) -> int:
        with self._lock:
            if owner is None:
                return sum(self._used.values())
            return self._used.get(owner, 0)

    def usage(self) -> dict[str, int]:
        """Per-tenant pages currently charged (a copy)."""
        with self._lock:
            return dict(self._used)

    def headroom(self, owner: str) -> int:
        """Pages ``owner`` may still charge before a quota error."""
        with self._lock:
            room = []
            limit = self._quotas.get(owner)
            if limit is not None:
                room.append(limit - self._used.get(owner, 0))
            if self.capacity_pages is not None:
                room.append(self.capacity_pages - sum(self._used.values()))
            return max(0, min(room)) if room else 2**62

    def charge(self, owner: str, pages: int = 1) -> None:
        with self._lock:
            used = self._used.get(owner, 0)
            limit = self._quotas.get(owner)
            if limit is not None and used + pages > limit:
                self._reject(owner)
                raise QuotaExceededError(owner, pages, limit, used)
            total = sum(self._used.values())
            if (
                self.capacity_pages is not None
                and total + pages > self.capacity_pages
            ):
                self._reject(owner)
                raise QuotaExceededError(
                    owner, pages, self.capacity_pages, total, scope="pool"
                )
            self._used[owner] = used + pages
            self._observe(owner)

    def credit(self, owner: str, pages: int = 1) -> None:
        with self._lock:
            used = self._used.get(owner, 0)
            if pages > used:
                raise AllocationError(
                    f"tenant {owner!r} credited {pages} page(s) "
                    f"but only {used} charged"
                )
            self._used[owner] = used - pages
            self._observe(owner)

    def _observe(self, owner: str) -> None:
        # Called under _lock; the owner-accounting gauge fleet tests read.
        if self.telemetry.enabled:
            self.telemetry.gauge("quota.pages_in_use", tenant=owner).set(
                self._used.get(owner, 0)
            )

    def _reject(self, owner: str) -> None:
        if self.telemetry.enabled:
            self.telemetry.counter("quota.rejections", tenant=owner).inc()


class PageAllocator:
    """Allocates, releases, moves and merges paged tensors across tiers."""

    def __init__(
        self,
        pools: dict[DeviceKind, DevicePool],
        retry_policy=None,
        telemetry=None,
        forensics=None,
        owner: str | None = None,
        quota: PageQuota | None = None,
    ):
        if not pools:
            raise AllocationError("at least one device pool is required")
        page_sizes = {pool.page_bytes for pool in pools.values()}
        if len(page_sizes) != 1:
            raise AllocationError("all pools must share one page size")
        self._pools = dict(pools)
        #: Optional repro.resilience RetryPolicy applied to page moves, the
        #: cross-tier I/O most exposed to transient SSD/file faults.
        self.retry_policy = retry_policy
        if telemetry is None:
            from repro.telemetry.core import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        #: repro.telemetry.Telemetry recording per-(src, dst) page traffic
        #: and bracketing tensor moves with spans (disabled by default).
        self.telemetry = telemetry
        #: Optional repro.observe.forensics.ForensicRecorder: every
        #: OutOfMemoryError raised by any of this allocator's pools gets a
        #: forensic dump (resident pages/tensors per tier, pinned set,
        #: planned tasks, waterline history) attached as ``exc.forensics``.
        self.forensics = forensics
        if forensics is not None:
            for pool in self._pools.values():
                pool.oom_observer = self._on_oom
        #: Tenant every acquired page is labelled with and charged to.
        self.owner = owner
        #: Shared PageQuota ledger (one per fleet node); ``None`` keeps the
        #: single-tenant fast path — no charge/credit on page turnover.
        self.quota = quota
        if quota is not None and owner is None:
            raise AllocationError("a quota ledger requires an owner label")
        # Pages currently charged to the ledger by *this* allocator, so
        # close() can return the whole footprint in one credit.
        self._pages_charged = 0
        #: Optional repro.runtime.ioproc.PageCopyService: when set, page
        #: run copies between descriptor-exporting arenas execute in the
        #: copy worker process instead of under this interpreter's GIL.
        self.io_service = None
        self.page_bytes = page_sizes.pop()
        self._tensor_ids = itertools.count()
        self._tensors: dict[int, PagedTensor] = {}
        # Per-tier page with exactly one tail in it, available for sharing.
        self._open_shared: dict[DeviceKind, Page | None] = {k: None for k in pools}
        self.bytes_requested = 0

    def pool(self, device: DeviceKind) -> DevicePool:
        try:
            return self._pools[device]
        except KeyError:
            raise AllocationError(f"no pool configured for {device.name}") from None

    @property
    def pools(self) -> dict[DeviceKind, DevicePool]:
        return dict(self._pools)

    @property
    def tensors(self) -> list[PagedTensor]:
        return list(self._tensors.values())

    def _on_oom(self, exc) -> None:
        if self.forensics is not None:
            self.forensics.attach(exc, self)

    def residency_report(self) -> dict[str, dict[str, int]]:
        """Per-tier page residency (the waterline the forensics sample)."""
        return {
            device.name.lower(): {
                "pages_in_use": pool.pages_in_use,
                "used_bytes": pool.used_bytes,
                "free_bytes": pool.free_bytes,
                "peak_pages": pool.peak_in_use,
            }
            for device, pool in self._pools.items()
        }

    # ------------------------------------------------------------------
    # Page turnover (the single choke point for quota charge/credit)
    # ------------------------------------------------------------------
    @property
    def pages_charged(self) -> int:
        """Pages this allocator currently has charged to its quota ledger."""
        return self._pages_charged

    def _acquire_page(self, pool: DevicePool) -> Page:
        if self.quota is not None:
            self.quota.charge(self.owner)
            try:
                page = pool.acquire()
            except Exception:
                self.quota.credit(self.owner)
                raise
            self._pages_charged += 1
        else:
            page = pool.acquire()
        page.owner = self.owner
        return page

    def _retire_page(self, page: Page) -> None:
        """Return an empty page to its pool and credit the quota ledger."""
        self._forget_shared(page)
        page.pool.release(page)
        page.owner = None
        if self.quota is not None:
            self.quota.credit(self.owner)
            self._pages_charged -= 1

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(
        self,
        shape: tuple[int, ...],
        dtype,
        device: DeviceKind = DeviceKind.CPU,
        share_tail: bool = True,
    ) -> PagedTensor:
        """Create a tensor of ``shape``/``dtype`` resident on ``device``."""
        tensor = PagedTensor(next(self._tensor_ids), shape, np.dtype(dtype), allocator=self)
        if tensor.nbytes == 0:
            raise AllocationError("cannot allocate a zero-sized tensor")
        pool = self.pool(device)
        full_pages, tail_bytes = divmod(tensor.nbytes, self.page_bytes)
        if tensor.nbytes < self.page_bytes:
            # Small tensors occupy an individual page (paper policy).
            full_pages, tail_bytes = 0, tensor.nbytes
            share_tail = False
        try:
            for _ in range(full_pages):
                page = self._acquire_page(pool)
                page.allocate(self.page_bytes, tensor.tensor_id)
                tensor.page_list.append(page)
            if tail_bytes:
                tensor.page_list.append(
                    self._place_tail(pool, device, tensor.tensor_id, tail_bytes, share_tail)
                )
        except Exception:
            self._rollback(tensor)
            raise
        self._tensors[tensor.tensor_id] = tensor
        self.bytes_requested += tensor.nbytes
        return tensor

    def _place_tail(
        self,
        pool: DevicePool,
        device: DeviceKind,
        tensor_id: int,
        tail_bytes: int,
        share_tail: bool,
    ) -> Page:
        if share_tail:
            candidate = self._open_shared.get(device)
            if (
                candidate is not None
                and candidate.has_storage
                and candidate.pool is pool
                and len(candidate.tensor_ids) == 1
                and candidate.available_bytes >= tail_bytes
            ):
                candidate.allocate(tail_bytes, tensor_id)
                self._open_shared[device] = None  # now holds two tensors
                return candidate
        page = self._acquire_page(pool)
        page.allocate(tail_bytes, tensor_id)
        if share_tail and page.available_bytes > 0:
            self._open_shared[device] = page
        return page

    def _rollback(self, tensor: PagedTensor) -> None:
        for page in tensor.page_list:
            page.release(tensor.tensor_id)
            if page.is_empty and page.has_storage:
                self._retire_page(page)
        tensor.page_list.clear()

    # ------------------------------------------------------------------
    # Release / move / merge
    # ------------------------------------------------------------------
    def release(self, tensor: PagedTensor) -> None:
        """Free the tensor's slots; empty pages return to their pools."""
        if tensor.is_released:
            raise TensorStateError(f"tensor {tensor.tensor_id} already released")
        if tensor.tensor_id not in self._tensors:
            raise TensorStateError(f"tensor {tensor.tensor_id} is not managed here")
        for page in tensor.page_list:
            page.release(tensor.tensor_id)
            if page.is_empty and page.has_storage:
                self._retire_page(page)
        tensor.page_list.clear()
        tensor._released = True
        del self._tensors[tensor.tensor_id]

    def move(self, tensor: PagedTensor, device: DeviceKind) -> None:
        """Deprecated: use :meth:`move_pages` (``move_pages([tensor], device)``)."""
        warnings.warn(
            "PageAllocator.move is deprecated; use move_pages([tensor], device)",
            DeprecationWarning,
            stacklevel=2,
        )
        self.move_pages([tensor], device)

    def move_many(self, tensors, device: DeviceKind) -> int:
        """Deprecated: use :meth:`move_pages`; returns bytes moved."""
        warnings.warn(
            "PageAllocator.move_many is deprecated; use move_pages(tensors, "
            "device) and read .bytes_moved off the returned MoveReport",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.move_pages(tensors, device).bytes_moved

    def plan_move(self, tensors, device: DeviceKind) -> MovePlan:
        """Deduplicate ``tensors``' pages into the set ``device`` lacks.

        Pages already resident on ``device`` are skipped and a page
        shared by two tensors' tails appears exactly once, so executing
        the plan moves each physical page at most once.
        """
        target = self.pool(device)
        plan = MovePlan(device=device)
        seen: set[int] = set()
        for tensor in tensors:
            tensor._check_live()
            for page in tensor.page_list:
                if page.pool is target or id(page) in seen:
                    continue
                seen.add(id(page))
                plan.pages.append(page)
        return plan

    def move_pages(self, tensors, device: DeviceKind | None = None) -> MoveReport:
        """The one move entry point: transfer a batch of pages to a tier.

        ``tensors`` is either an iterable of :class:`PagedTensor` (with
        ``device``) or a prebuilt :class:`MovePlan`. Pages are grouped by
        source pool, sorted by arena slot, paired with the lowest free
        destination slots and coalesced into contiguous runs — each run
        is ONE gather/scatter slice copy between arenas (O(runs) copy
        calls for an N-page MoveGroup, the §5 PCIe-burst behaviour),
        executed under the retry policy and recorded per (src, dst) edge
        as ``pages.copy_calls`` / ``pages.bytes_per_copy_call`` /
        ``pages.moved_per_sec``.

        Failure semantics match the old per-page path: pages of
        already-completed runs stay moved; the failing run and everything
        after it roll back to RESIDENT on the source tier before the
        error propagates.
        """
        if isinstance(tensors, MovePlan):
            plan = tensors
            if device is not None and device is not plan.device:
                raise AllocationError(
                    f"plan targets {plan.device.name}, call asked {device.name}"
                )
        else:
            if device is None:
                raise AllocationError("move_pages needs a target device")
            plan = self.plan_move(tensors, device)
        device = plan.device
        target = self.pool(device)
        report = MoveReport()
        if not plan.pages:
            return report
        telemetry = self.telemetry
        # Group by source pool: each (src, dst) edge coalesces separately.
        by_pool: dict[int, list[Page]] = {}
        pools: dict[int, DevicePool] = {}
        for page in plan.pages:
            key = id(page.pool)
            pools[key] = page.pool
            by_pool.setdefault(key, []).append(page)
        dst_name = device.name.lower()
        with telemetry.span(
            f"movebatch.to_{dst_name}", track="pcie", pages=len(plan.pages)
        ):
            for key, pages in by_pool.items():
                src_pool = pools[key]
                edge = self._move_group(src_pool, target, pages)
                report.merge(edge)
        if telemetry.enabled:
            telemetry.counter("pipeline.move_batches").inc()
            telemetry.counter("pipeline.coalesced_pages").inc(len(plan.pages))
        return report

    def _move_group(self, src_pool: DevicePool, target: DevicePool,
                    pages: list[Page]) -> MoveReport:
        """Move one source pool's pages to ``target`` in coalesced runs."""
        src_name = src_pool.device_kind.name.lower()
        dst_name = target.device_kind.name.lower()
        telemetry = self.telemetry
        for page in pages:
            self._forget_shared(page)
            page.state = PageState.MOVING
        # Ascending source slots paired with the lowest free destination
        # slots (both sorted) maximizes run length on both arenas.
        pairs = sorted(
            ((page, page.storage.index) for page in pages),
            key=lambda item: item[1],
        )
        try:
            dst_storages = target.acquire_storage_run(len(pages))
        except Exception:
            for page in pages:
                page.state = PageState.RESIDENT
            raise
        triples = [
            (page, src_index, dst)
            for (page, src_index), dst in zip(pairs, dst_storages)
        ]
        runs = _coalesce_runs(triples)
        report = MoveReport()
        started = time.perf_counter()
        for run_index, run in enumerate(runs):
            src_start = run[0][1]
            dst_start = run[0][2].index
            try:
                if self.retry_policy is not None:
                    self.retry_policy.run(
                        lambda s=src_start, d=dst_start, n=len(run):
                        _copy_page_run(src_pool, target, s, d, n,
                                       io_service=self.io_service)
                    )
                else:
                    _copy_page_run(src_pool, target, src_start, dst_start,
                                   len(run), io_service=self.io_service)
            except Exception:
                # This run and every later one roll back; earlier runs
                # were already re-homed and stay moved.
                for pending in runs[run_index:]:
                    for page, _, dst in pending:
                        target.release_storage(dst)
                        page.state = PageState.RESIDENT
                raise
            # Re-home the run's pages: release the source slots, attach
            # the destination storages.
            for page, _, dst in run:
                src_pool.release_storage(page._storage)
                page._storage = dst
                page.state = PageState.RESIDENT
                telemetry.record_page_move(src_name, dst_name,
                                           page.total_bytes)
                report.pages_moved += 1
                report.bytes_moved += page.total_bytes
            report.copy_calls += 1
        elapsed = time.perf_counter() - started
        telemetry.record_copy_batch(
            src_name, dst_name, report.pages_moved, report.bytes_moved,
            report.copy_calls, elapsed,
        )
        return report

    def drop_pool(self, device: DeviceKind) -> None:
        """Remove a (dead) tier's pool; no live tensor may still use it.

        The degradation path: after a permanent tier failure, callers
        evacuate or rebuild the tier's tensors on a survivor and then drop
        the pool so no future allocation or move targets it.
        """
        pool = self.pool(device)
        for tensor in self._tensors.values():
            if any(page.has_storage and page.pool is pool for page in tensor.page_list):
                raise AllocationError(
                    f"cannot drop {device.name}: tensor {tensor.tensor_id} "
                    "still has pages there"
                )
        self._open_shared.pop(device, None)
        del self._pools[device]
        pool.close()

    def merge(self, tensor: PagedTensor) -> None:
        """Re-pack into exclusive pages on the tensor's current device.

        Implements Figure 4's ``merge``: after merging, the tensor's bytes
        occupy pages it owns alone, in order, starting at offset zero.
        """
        tensor._check_live()
        if tensor.is_contiguous:
            return
        device = tensor.device_kind
        if device is None:
            raise TensorStateError(
                f"tensor {tensor.tensor_id} spans devices; move it first"
            )
        data = tensor.read_array()
        old_pages = list(tensor.page_list)
        tensor.page_list = []
        pool = self.pool(device)
        remaining = tensor.nbytes
        try:
            while remaining > 0:
                chunk = min(remaining, self.page_bytes)
                page = self._acquire_page(pool)
                page.allocate(chunk, tensor.tensor_id)
                tensor.page_list.append(page)
                remaining -= chunk
        except Exception:
            self._rollback(tensor)
            tensor.page_list = old_pages
            raise
        for page in old_pages:
            page.release(tensor.tensor_id)
            if page.is_empty and page.has_storage:
                self._retire_page(page)
        tensor.write_array(data)

    def _forget_shared(self, page: Page) -> None:
        for device, candidate in self._open_shared.items():
            if candidate is page:
                self._open_shared[device] = None

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def used_bytes(self, device: DeviceKind) -> int:
        return self.pool(device).used_bytes

    def free_bytes(self, device: DeviceKind) -> int:
        return self.pool(device).free_bytes

    def internal_fragmentation(self, device: DeviceKind) -> float:
        """Fraction of reserved page bytes not holding live tensor data."""
        pool = self.pool(device)
        if pool.used_bytes == 0:
            return 0.0
        live = sum(
            nbytes
            for tensor in self._tensors.values()
            for page in tensor.page_list
            if page.has_storage and page.pool is pool
            for _, nbytes in [page.slot_of(tensor.tensor_id)]
        )
        return 1.0 - live / pool.used_bytes

    def close(self) -> None:
        for pool in self._pools.values():
            pool.close()
        # A torn-down engine returns its whole footprint to the ledger even
        # when individual tensors were never released (preemption path).
        if self.quota is not None and self._pages_charged:
            self.quota.credit(self.owner, self._pages_charged)
            self._pages_charged = 0

    def __enter__(self) -> "PageAllocator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
