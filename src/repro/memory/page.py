"""The Page abstraction (Figure 3 of the paper).

A page is the minimum unit of memory operations for heterogeneous storage.
It records where it currently lives (``device_index`` following the paper's
``{0: GPU, 1: CPU, 2: SSD}`` map), how many of its bytes are free, and which
tensors occupy it. As in the paper, a page holds *at most two tensors* at a
time — the property that keeps management simple while still letting a
large tensor's tail share a page with its neighbour.

The page size defaults to 4 MiB, the paper's "minimum Page size that can
fully utilize the PCIe bandwidth".
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.errors import AllocationError, PageStateError
from repro.hardware.device import DeviceKind
from repro.units import MiB

DEFAULT_PAGE_BYTES = 4 * MiB

MAX_TENSORS_PER_PAGE = 2

_page_ids = itertools.count()


def copy_storage(src, dst, nbytes: int) -> None:
    """Copy ``nbytes`` between two page storages, copy-minimally.

    Arena→arena is a single slice copy between ``memoryview`` windows —
    one C-level ``memcpy`` that releases the GIL, no intermediate
    object. One view-less endpoint degrades to a single ``readinto``/
    ``write_from`` against the other's view; only two view-less
    endpoints stage through a scratch buffer. Telemetry accounting
    matches the legacy read+write pair: the source tier records a read,
    the destination a write.
    """
    src_view = src.try_view(0, nbytes)
    dst_view = dst.try_view(0, nbytes)
    if src_view is not None and dst_view is not None:
        read_counter = src.pool._read_bytes
        if read_counter is not None:
            read_counter.inc(nbytes)
        write_counter = dst.pool._write_bytes
        if write_counter is not None:
            write_counter.inc(nbytes)
        dst_view[:] = src_view
    elif dst_view is not None:
        src.readinto(0, dst_view)
        write_counter = dst.pool._write_bytes
        if write_counter is not None:
            write_counter.inc(nbytes)
    elif src_view is not None:
        read_counter = src.pool._read_bytes
        if read_counter is not None:
            read_counter.inc(nbytes)
        dst.write_from(0, src_view)
    else:
        staging = bytearray(nbytes)
        src.readinto(0, staging)
        dst.write_from(0, staging)


class PageState(enum.Enum):
    """Lifecycle of a page within a device pool."""

    FREE = "free"          # in a pool's free list, no tensor data
    RESIDENT = "resident"  # holds live tensor bytes on some device
    MOVING = "moving"      # asynchronous move in flight


@dataclass
class _Slot:
    """One tensor's occupancy within a page."""

    tensor_id: int
    offset: int
    nbytes: int

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


class Page:
    """One fixed-size unit of hierarchical memory.

    The physical bytes live in a storage handle owned by a
    :class:`~repro.memory.pool.DevicePool`; moving a page swaps its storage
    while the page object (and therefore every tensor referencing it) stays
    stable, exactly like the paper's ``move(target_device_index)``.
    """

    def __init__(self, total_bytes: int = DEFAULT_PAGE_BYTES):
        if total_bytes <= 0:
            raise AllocationError("page size must be positive")
        self.page_id: int = next(_page_ids)
        self.total_bytes: int = total_bytes
        self.state: PageState = PageState.FREE
        #: Tenant the page is charged to under a fleet quota (set by the
        #: PageAllocator that acquired it; ``None`` outside multi-tenancy).
        self.owner: str | None = None
        self._slots: list[_Slot] = []
        self._storage = None  # set by DevicePool.acquire()

    # ------------------------------------------------------------------
    # Occupancy bookkeeping
    # ------------------------------------------------------------------
    @property
    def tensor_ids(self) -> tuple[int, ...]:
        return tuple(slot.tensor_id for slot in self._slots)

    @property
    def used_bytes(self) -> int:
        return sum(slot.nbytes for slot in self._slots)

    @property
    def available_bytes(self) -> int:
        """Bytes allocatable at the tail of the page.

        Freed space before a live slot is not reused (pages never compact
        in place); it returns when the page empties.
        """
        if not self._slots:
            return self.total_bytes
        return self.total_bytes - self._slots[-1].end

    def allocate(self, required_bytes: int, tensor_id: int) -> int:
        """Reserve ``required_bytes`` at the page tail for ``tensor_id``.

        Returns the byte offset of the reservation within the page.
        """
        if required_bytes <= 0:
            raise AllocationError("allocation size must be positive")
        if len(self._slots) >= MAX_TENSORS_PER_PAGE:
            raise AllocationError(
                f"page {self.page_id} already holds {MAX_TENSORS_PER_PAGE} tensors"
            )
        if any(slot.tensor_id == tensor_id for slot in self._slots):
            raise AllocationError(
                f"tensor {tensor_id} already occupies page {self.page_id}"
            )
        if required_bytes > self.available_bytes:
            raise AllocationError(
                f"page {self.page_id} has {self.available_bytes} free bytes; "
                f"cannot allocate {required_bytes}"
            )
        offset = self._slots[-1].end if self._slots else 0
        self._slots.append(_Slot(tensor_id=tensor_id, offset=offset, nbytes=required_bytes))
        return offset

    def release(self, tensor_id: int) -> None:
        """Free the space occupied by ``tensor_id`` in this page."""
        for i, slot in enumerate(self._slots):
            if slot.tensor_id == tensor_id:
                del self._slots[i]
                return
        raise AllocationError(
            f"tensor {tensor_id} does not occupy page {self.page_id}"
        )

    def slot_of(self, tensor_id: int) -> tuple[int, int]:
        """(offset, nbytes) of ``tensor_id`` within this page."""
        for slot in self._slots:
            if slot.tensor_id == tensor_id:
                return slot.offset, slot.nbytes
        raise AllocationError(
            f"tensor {tensor_id} does not occupy page {self.page_id}"
        )

    @property
    def is_empty(self) -> bool:
        return not self._slots

    # ------------------------------------------------------------------
    # Storage / placement
    # ------------------------------------------------------------------
    @property
    def storage(self):
        if self._storage is None:
            raise PageStateError(f"page {self.page_id} has no storage attached")
        return self._storage

    @property
    def has_storage(self) -> bool:
        return self._storage is not None

    @property
    def device_index(self) -> int:
        """Paper convention: 0=GPU, 1=CPU, 2=SSD; -1 when unattached."""
        if self._storage is None:
            return -1
        return int(self._storage.pool.device_kind)

    @property
    def device_kind(self) -> DeviceKind:
        return self.storage.pool.device_kind

    @property
    def pool(self):
        return self.storage.pool

    def _attach(self, storage) -> None:
        if self._storage is not None:
            raise PageStateError(f"page {self.page_id} already has storage")
        self._storage = storage
        self.state = PageState.RESIDENT

    def _detach(self):
        if self._storage is None:
            raise PageStateError(f"page {self.page_id} has no storage to detach")
        storage, self._storage = self._storage, None
        self.state = PageState.FREE
        return storage

    def move(self, target_pool) -> None:
        """Move this page's bytes into ``target_pool``.

        Implements the paper's ``move(target_device_index)`` interface: the
        page object survives, its storage is re-homed and the bytes are
        copied across the tiers.
        """
        source = self.storage
        if target_pool is source.pool:
            return
        self.state = PageState.MOVING
        try:
            destination = target_pool.acquire_storage(self.total_bytes)
        except Exception:
            self.state = PageState.RESIDENT
            raise
        try:
            copy_storage(source, destination, self.total_bytes)
        except Exception:
            target_pool.release_storage(destination)
            self.state = PageState.RESIDENT
            raise
        source.pool.release_storage(source)
        self._storage = destination
        self.state = PageState.RESIDENT

    # ------------------------------------------------------------------
    # Data access (delegates to storage)
    # ------------------------------------------------------------------
    def read(self, offset: int, nbytes: int) -> bytes:
        return self.storage.read(offset, nbytes)

    def write(self, offset: int, data: bytes) -> None:
        self.storage.write(offset, data)

    def readinto(self, offset: int, buf) -> int:
        """Fill ``buf`` from the page without an intermediate ``bytes``."""
        return self.storage.readinto(offset, buf)

    def write_from(self, offset: int, buf) -> int:
        """Write ``buf`` into the page without an intermediate ``bytes``."""
        return self.storage.write_from(offset, buf)

    def __repr__(self) -> str:
        where = self.device_kind.name if self.has_storage else "detached"
        return (
            f"Page(id={self.page_id}, {where}, used={self.used_bytes}/"
            f"{self.total_bytes}, tensors={list(self.tensor_ids)})"
        )
