"""Best-fit-with-coalescing allocator (TensorFlow's BFC, Section 2.1).

A byte arena managed with a sorted free list: allocation picks the smallest
free block that fits (best fit), splitting the remainder; freeing coalesces
with adjacent free blocks. This is the strongest tensor-level baseline —
it still fragments under the mixed tensor sizes of Table 2 because blocks
pinned by long-lived tensors break the arena into unusable gaps.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import AllocationError, OutOfMemoryError


@dataclass
class _Block:
    offset: int
    nbytes: int

    @property
    def end(self) -> int:
        return self.offset + self.nbytes


class BfcAllocator:
    """Best-fit allocator over a fixed arena of ``capacity_bytes``."""

    def __init__(self, capacity_bytes: int, alignment: int = 256):
        if capacity_bytes <= 0:
            raise AllocationError("capacity must be positive")
        if alignment <= 0 or alignment & (alignment - 1):
            raise AllocationError("alignment must be a positive power of two")
        self.capacity_bytes = capacity_bytes
        self.alignment = alignment
        self._free: list[_Block] = [_Block(0, capacity_bytes)]  # sorted by offset
        self._live: dict[int, _Block] = {}

    @property
    def reserved_bytes(self) -> int:
        """BFC owns the whole arena up to the high-water mark of use."""
        if not self._live:
            return 0
        return max(block.end for block in self._live.values())

    @property
    def free_bytes(self) -> int:
        return sum(block.nbytes for block in self._free)

    @property
    def largest_free_block(self) -> int:
        return max((block.nbytes for block in self._free), default=0)

    def external_fragmentation(self) -> float:
        """1 - largest free block / total free bytes (0 when unfragmented)."""
        free = self.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - self.largest_free_block / free

    def _round(self, nbytes: int) -> int:
        return (nbytes + self.alignment - 1) // self.alignment * self.alignment

    def alloc(self, req_id: int, nbytes: int) -> int:
        """Allocate ``nbytes`` for ``req_id``; returns the arena offset."""
        if req_id in self._live:
            raise AllocationError(f"request {req_id} already live")
        if nbytes <= 0:
            raise AllocationError("allocation size must be positive")
        need = self._round(nbytes)
        best_index = -1
        for i, block in enumerate(self._free):
            if block.nbytes >= need and (
                best_index < 0 or block.nbytes < self._free[best_index].nbytes
            ):
                best_index = i
        if best_index < 0:
            raise OutOfMemoryError("bfc-arena", need, self.largest_free_block)
        block = self._free[best_index]
        taken = _Block(block.offset, need)
        if block.nbytes == need:
            del self._free[best_index]
        else:
            block.offset += need
            block.nbytes -= need
        self._live[req_id] = taken
        return taken.offset

    def free(self, req_id: int) -> None:
        """Release ``req_id`` and coalesce with free neighbours."""
        block = self._live.pop(req_id, None)
        if block is None:
            raise AllocationError(f"request {req_id} is not live")
        offsets = [b.offset for b in self._free]
        index = bisect.bisect_left(offsets, block.offset)
        # Coalesce with the following block.
        if index < len(self._free) and self._free[index].offset == block.end:
            block.nbytes += self._free[index].nbytes
            del self._free[index]
        # Coalesce with the preceding block.
        if index > 0 and self._free[index - 1].end == block.offset:
            self._free[index - 1].nbytes += block.nbytes
        else:
            self._free.insert(index, block)
