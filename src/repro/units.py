"""Byte and time units used throughout the library.

Bandwidths in the paper (Table 3 and Section 4.3) are quoted in GB/s with
decimal prefixes; memory capacities are binary. We keep both conventions
explicit to avoid silent unit mistakes.
"""

from __future__ import annotations

KB = 1000
MB = 1000**2
GB = 1000**3
TB = 1000**4

KiB = 1024
MiB = 1024**2
GiB = 1024**3
TiB = 1024**4

US = 1e-6
MS = 1e-3


def fmt_bytes(num_bytes: float) -> str:
    """Render a byte count with a human-friendly binary suffix."""
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or suffix == "TiB":
            return f"{value:.2f}{suffix}" if suffix != "B" else f"{int(value)}B"
        value /= 1024
    raise AssertionError("unreachable")


def fmt_seconds(seconds: float) -> str:
    """Render a duration, switching units for readability."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"
