"""Serialization of hardware specs to/from JSON.

A downstream operator describes their cluster once — GPU count and memory,
DDR capacity, link bandwidths, SSD size — and every planner, simulator and
CLI command consumes the same file. The schema mirrors
:func:`~repro.hardware.server.a100_server`'s parameters, so Table 3 is the
default when a field is omitted.
"""

from __future__ import annotations

import json

from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec
from repro.hardware.server import a100_server
from repro.units import GB, GiB, TB

#: JSON fields accepted under "server", mapped to a100_server kwargs and
#: the unit each human-friendly field uses.
_SERVER_FIELDS = {
    "name": ("name", None),
    "num_gpus": ("num_gpus", None),
    "gpu_memory_gib": ("gpu_memory_bytes", GiB),
    "cpu_memory_gib": ("cpu_memory_bytes", GiB),
    "ssd_tb": ("ssd_bytes", TB),
    "pcie_gbps": ("pcie_bandwidth", GB),
    "nvlink_gbps": ("nvlink_bandwidth", GB),
    "ssd_gbps": ("ssd_bandwidth", GB),
    "nic_gbps": ("nic_bandwidth", GB),
    "gpu_tflops": ("gpu_flops", 1e12),
}


def reject_unknown_fields(mapping: dict, known, what: str) -> None:
    """Shared schema guard: fail loudly on fields no consumer reads.

    Used by every from-dict construction path (cluster specs here,
    ``AngelConfig.from_dict`` in the engine) so a typoed field is an
    error everywhere instead of a silently ignored knob.
    """
    if not isinstance(mapping, dict):
        raise ConfigurationError(f"{what} config must be a JSON object")
    unknown = set(mapping) - set(known)
    if unknown:
        raise ConfigurationError(
            f"unknown {what} fields: {sorted(unknown)}; "
            f"known: {sorted(known)}"
        )


def cluster_from_dict(config: dict) -> ClusterSpec:
    """Build a cluster from a parsed JSON object."""
    if not isinstance(config, dict):
        raise ConfigurationError("cluster config must be a JSON object")
    num_servers = config.get("num_servers", 1)
    server_config = config.get("server", {})
    reject_unknown_fields(server_config, _SERVER_FIELDS, "server")
    kwargs = {}
    for field, value in server_config.items():
        name, unit = _SERVER_FIELDS[field]
        if unit is None or value is None:
            kwargs[name] = value
        else:
            kwargs[name] = value * unit
    if isinstance(kwargs.get("gpu_memory_bytes"), float):
        kwargs["gpu_memory_bytes"] = int(kwargs["gpu_memory_bytes"])
    if isinstance(kwargs.get("cpu_memory_bytes"), float):
        kwargs["cpu_memory_bytes"] = int(kwargs["cpu_memory_bytes"])
    if isinstance(kwargs.get("ssd_bytes"), float):
        kwargs["ssd_bytes"] = int(kwargs["ssd_bytes"])
    return ClusterSpec(server=a100_server(**kwargs), num_servers=num_servers)


def cluster_to_dict(cluster: ClusterSpec) -> dict:
    """Serialize a cluster back to the JSON schema."""
    server = cluster.server
    config = {
        "num_servers": cluster.num_servers,
        "server": {
            "name": server.name,
            "num_gpus": server.num_gpus,
            "gpu_memory_gib": server.gpus[0].memory_bytes / GiB,
            "cpu_memory_gib": server.cpu.memory_bytes / GiB,
            "pcie_gbps": server.pcie.bandwidth / GB,
            "nvlink_gbps": server.nvlink.bandwidth / GB,
            "nic_gbps": server.nic.bandwidth / GB,
            "gpu_tflops": server.gpus[0].compute_flops / 1e12,
        },
    }
    if server.ssd is not None:
        config["server"]["ssd_tb"] = server.ssd.memory_bytes / TB
        config["server"]["ssd_gbps"] = server.ssd_io.bandwidth / GB
    else:
        config["server"]["ssd_tb"] = None
    return config


def load_cluster(path: str) -> ClusterSpec:
    """Read a cluster description from a JSON file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            config = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read cluster config {path!r}: {exc}") from exc
    return cluster_from_dict(config)


def save_cluster(cluster: ClusterSpec, path: str) -> None:
    """Write a cluster description to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(cluster_to_dict(cluster), handle, indent=2)
