"""Interconnect link specifications.

Section 4.3 of the paper quotes the I/O speeds of a Tencent A100 server:
GPU memory access 600 GB/s, CPU-GPU transfer over PCIe 32 GB/s, SSD-CPU
transfer 3.5 GB/s. Section 4.2 additionally uses GPU-GPU NVLink bandwidth
of 200 GB/s, and Section 6.1 gives 16 x 12.5 GB/s RoCE NICs between servers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class LinkKind(enum.Enum):
    """Physical transport between two devices."""

    HBM = "hbm"          # on-device GPU memory access
    PCIE = "pcie"        # CPU <-> GPU
    NVLINK = "nvlink"    # GPU <-> GPU within a server
    SSD_IO = "ssd_io"    # CPU <-> SSD
    NIC = "nic"          # server <-> server (RoCE)


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point (or shared) transfer channel.

    Attributes:
        kind: transport type.
        name: unique name within a topology.
        bandwidth: sustained bytes/s in one direction.
        latency: fixed per-transfer setup cost in seconds.
        duplex: whether simultaneous transfers in both directions each get
            full bandwidth (PCIe and NVLink are full-duplex; SSD I/O is not).
    """

    kind: LinkKind
    name: str
    bandwidth: float
    latency: float = 0.0
    duplex: bool = True

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: bandwidth must be positive")
        if self.latency < 0:
            raise ConfigurationError(f"{self.name}: latency must be >= 0")

    def transfer_time(self, num_bytes: int) -> float:
        """Time to move ``num_bytes`` across this link, including latency."""
        if num_bytes < 0:
            raise ConfigurationError("cannot transfer a negative byte count")
        if num_bytes == 0:
            return 0.0
        return self.latency + num_bytes / self.bandwidth
