"""Cluster specification: homogeneous servers joined by RoCE NICs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.server import ServerSpec, a100_server


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of :class:`ServerSpec` nodes.

    The evaluation scales from 1 server (Table 5) to 96 servers / 768 GPUs
    (Figure 8); this class captures everything the cost models need about
    that scaling: GPU count, aggregate CPU update capacity, aggregate PCIe
    lanes, and the inter-server NIC bandwidth.
    """

    server: ServerSpec
    num_servers: int

    def __post_init__(self) -> None:
        if self.num_servers <= 0:
            raise ConfigurationError("num_servers must be positive")

    @property
    def num_gpus(self) -> int:
        return self.server.num_gpus * self.num_servers

    @property
    def gpu_memory_bytes(self) -> int:
        return self.server.gpu_memory_bytes * self.num_servers

    @property
    def cpu_memory_bytes(self) -> int:
        return self.server.cpu.memory_bytes * self.num_servers

    @property
    def ssd_bytes(self) -> int:
        if self.server.ssd is None:
            return 0
        return self.server.ssd.memory_bytes * self.num_servers

    @property
    def aggregate_pcie_bandwidth(self) -> float:
        """All GPUs can move data over their own PCIe path in parallel."""
        return self.server.pcie.bandwidth * self.num_gpus

    @property
    def aggregate_ssd_bandwidth(self) -> float:
        if self.server.ssd_io is None:
            return 0.0
        return self.server.ssd_io.bandwidth * self.num_servers

    @property
    def cross_server(self) -> bool:
        return self.num_servers > 1


def a100_cluster(num_servers: int, **server_kwargs) -> ClusterSpec:
    """Convenience constructor for a cluster of Table 3 servers."""
    return ClusterSpec(server=a100_server(**server_kwargs), num_servers=num_servers)
