"""Server specifications, defaulting to the Table 3 Tencent A100 server."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.device import DeviceKind, DeviceSpec
from repro.hardware.link import LinkKind, LinkSpec
from repro.units import GB, GiB, TB, US


@dataclass(frozen=True)
class ServerSpec:
    """One multi-GPU server with hierarchical memory.

    The per-GPU PCIe links model the paper's "Efficient Movement on
    Distributed Servers" observation (Section 5): every GPU can move data
    to/from CPU memory in parallel over its own PCIe path, which is what
    makes parameter-movement parallelization scale.
    """

    name: str
    gpus: tuple[DeviceSpec, ...]
    cpu: DeviceSpec
    ssd: DeviceSpec | None
    pcie: LinkSpec
    nvlink: LinkSpec
    ssd_io: LinkSpec | None
    nic: LinkSpec

    def __post_init__(self) -> None:
        if not self.gpus:
            raise ConfigurationError("a server needs at least one GPU")
        if self.cpu.kind != DeviceKind.CPU:
            raise ConfigurationError("cpu device must have kind CPU")
        if any(gpu.kind != DeviceKind.GPU for gpu in self.gpus):
            raise ConfigurationError("gpus must all have kind GPU")
        if (self.ssd is None) != (self.ssd_io is None):
            raise ConfigurationError("ssd and ssd_io must be supplied together")
        if self.ssd is not None and self.ssd.kind != DeviceKind.SSD:
            raise ConfigurationError("ssd device must have kind SSD")

    @property
    def num_gpus(self) -> int:
        return len(self.gpus)

    @property
    def gpu_memory_bytes(self) -> int:
        """Total GPU memory across the server."""
        return sum(gpu.memory_bytes for gpu in self.gpus)

    @property
    def total_memory_bytes(self) -> int:
        """GPU + CPU (+ SSD) capacity available to model states."""
        total = self.gpu_memory_bytes + self.cpu.memory_bytes
        if self.ssd is not None:
            total += self.ssd.memory_bytes
        return total

    def link_between(self, src: DeviceKind, dst: DeviceKind) -> LinkSpec:
        """Resolve the intra-server link connecting two device tiers."""
        pair = frozenset((src, dst))
        if pair == frozenset((DeviceKind.CPU, DeviceKind.GPU)):
            return self.pcie
        if pair == frozenset((DeviceKind.GPU,)):
            return self.nvlink
        if pair == frozenset((DeviceKind.CPU, DeviceKind.SSD)):
            if self.ssd_io is None:
                raise ConfigurationError(f"{self.name} has no SSD tier")
            return self.ssd_io
        if pair == frozenset((DeviceKind.GPU, DeviceKind.SSD)):
            raise ConfigurationError("GPU<->SSD transfers must stage through CPU")
        raise ConfigurationError(f"no link between {src.name} and {dst.name}")


def a100_server(
    name: str = "a100",
    num_gpus: int = 8,
    gpu_memory_bytes: int = 40 * GiB,
    cpu_memory_bytes: int = 32 * 32 * GiB,
    ssd_bytes: int | None = 11 * TB,
    pcie_bandwidth: float = 32 * GB,
    nvlink_bandwidth: float = 200 * GB,
    ssd_bandwidth: float = 3.5 * GB,
    nic_bandwidth: float = 16 * 12.5 * GB,
    gpu_flops: float = 312e12,
    cpu_flops: float = 3e12,
) -> ServerSpec:
    """Build the Table 3 server: 8xA100 40GB, 1TiB DDR4, 11TB SSD.

    Bandwidth defaults follow Section 4.3 / Section 6.1: PCIe 32 GB/s,
    NVLink 200 GB/s, SSD 3.5 GB/s, 16x12.5 GB/s RoCE NICs. ``gpu_flops``
    is the A100 dense BF16 peak (312 TFLOP/s).
    """
    gpus = tuple(
        DeviceSpec(
            kind=DeviceKind.GPU,
            name=f"{name}.gpu{i}",
            memory_bytes=gpu_memory_bytes,
            mem_bandwidth=600 * GB,
            compute_flops=gpu_flops,
        )
        for i in range(num_gpus)
    )
    cpu = DeviceSpec(
        kind=DeviceKind.CPU,
        name=f"{name}.cpu",
        memory_bytes=cpu_memory_bytes,
        mem_bandwidth=100 * GB,
        compute_flops=cpu_flops,
    )
    ssd = None
    ssd_io = None
    if ssd_bytes is not None:
        ssd = DeviceSpec(
            kind=DeviceKind.SSD,
            name=f"{name}.ssd",
            memory_bytes=ssd_bytes,
            mem_bandwidth=ssd_bandwidth,
        )
        ssd_io = LinkSpec(
            kind=LinkKind.SSD_IO,
            name=f"{name}.ssd_io",
            bandwidth=ssd_bandwidth,
            latency=100 * US,
            duplex=False,
        )
    return ServerSpec(
        name=name,
        gpus=gpus,
        cpu=cpu,
        ssd=ssd,
        pcie=LinkSpec(LinkKind.PCIE, f"{name}.pcie", pcie_bandwidth, latency=10 * US),
        nvlink=LinkSpec(LinkKind.NVLINK, f"{name}.nvlink", nvlink_bandwidth, latency=5 * US),
        ssd_io=ssd_io,
        nic=LinkSpec(LinkKind.NIC, f"{name}.nic", nic_bandwidth, latency=20 * US),
    )
