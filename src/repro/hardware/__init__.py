"""Hardware substrate: device, link, server and cluster specifications.

The paper evaluates on Tencent production A100 servers (Table 3). This
package describes that hardware declaratively so both the functional memory
tiers and the discrete-event simulator consume one source of truth.
"""

from repro.hardware.device import DeviceKind, DeviceSpec
from repro.hardware.link import LinkKind, LinkSpec
from repro.hardware.server import ServerSpec, a100_server
from repro.hardware.cluster import ClusterSpec
from repro.hardware.topology import ClusterTopology, Topology

__all__ = [
    "DeviceKind",
    "DeviceSpec",
    "LinkKind",
    "LinkSpec",
    "ServerSpec",
    "ClusterSpec",
    "Topology",
    "ClusterTopology",
    "a100_server",
]
