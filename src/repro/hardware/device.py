"""Device specifications for the hierarchical memory (Figure 1 of the paper).

The paper's device indexing convention (Figure 3) is ``{0: GPU, 1: CPU,
2: SSD}``; :class:`DeviceKind` preserves those integer values so page and
tensor structures can round-trip them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError


class DeviceKind(enum.IntEnum):
    """Memory tier, with integer values matching the paper's device_map."""

    GPU = 0
    CPU = 1
    SSD = 2

    @property
    def is_compute(self) -> bool:
        """SSD stores bytes but never executes kernels."""
        return self in (DeviceKind.GPU, DeviceKind.CPU)


@dataclass(frozen=True)
class DeviceSpec:
    """A single memory/compute device.

    Attributes:
        kind: which tier this device belongs to.
        name: unique name within a server, e.g. ``gpu0``.
        memory_bytes: usable capacity of this tier.
        mem_bandwidth: local memory bandwidth in bytes/s (HBM for GPUs,
            DDR for CPUs, raw flash bandwidth for SSDs).
        compute_flops: peak dense FP16/BF16 throughput in FLOP/s for compute
            devices; 0 for storage-only devices.
    """

    kind: DeviceKind
    name: str
    memory_bytes: int
    mem_bandwidth: float
    compute_flops: float = 0.0

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ConfigurationError(f"{self.name}: memory_bytes must be positive")
        if self.mem_bandwidth <= 0:
            raise ConfigurationError(f"{self.name}: mem_bandwidth must be positive")
        if self.compute_flops < 0:
            raise ConfigurationError(f"{self.name}: compute_flops must be >= 0")
        if self.kind == DeviceKind.SSD and self.compute_flops:
            raise ConfigurationError(f"{self.name}: SSD devices cannot compute")
