"""Interconnect topology graph.

GPU servers have a complex interconnect topology (Section 5 of the paper:
two CPUs, four PCIe switches, eight GPUs on an A100 server). We model the
topology as a graph whose nodes are devices and whose edges are links, so
that multi-hop routes (e.g. GPU -> CPU -> SSD) are derived rather than
hard-coded.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import ConfigurationError
from repro.hardware.device import DeviceKind, DeviceSpec
from repro.hardware.link import LinkSpec
from repro.hardware.server import ServerSpec


class Topology:
    """Device/link graph for one server.

    Edges carry the :class:`LinkSpec` used between the endpoints. Routing
    picks the minimum-transfer-time path for a nominal page-sized payload,
    which naturally stages GPU<->SSD traffic through the CPU.
    """

    def __init__(self, server: ServerSpec):
        self._server = server
        self._graph = nx.Graph()
        self._devices: dict[str, DeviceSpec] = {}
        self._build()

    def _add_device(self, device: DeviceSpec) -> None:
        self._devices[device.name] = device
        self._graph.add_node(device.name, device=device)

    def _add_link(self, a: DeviceSpec, b: DeviceSpec, link: LinkSpec) -> None:
        nominal_page = 4 * 1024 * 1024
        self._graph.add_edge(
            a.name, b.name, link=link, cost=link.transfer_time(nominal_page)
        )

    def _build(self) -> None:
        server = self._server
        self._add_device(server.cpu)
        for gpu in server.gpus:
            self._add_device(gpu)
            self._add_link(gpu, server.cpu, server.pcie)
        for i, gpu_a in enumerate(server.gpus):
            for gpu_b in server.gpus[i + 1:]:
                self._add_link(gpu_a, gpu_b, server.nvlink)
        if server.ssd is not None and server.ssd_io is not None:
            self._add_device(server.ssd)
            self._add_link(server.cpu, server.ssd, server.ssd_io)

    @property
    def device_names(self) -> list[str]:
        return sorted(self._devices)

    def device(self, name: str) -> DeviceSpec:
        try:
            return self._devices[name]
        except KeyError:
            raise ConfigurationError(f"unknown device {name!r}") from None

    def devices_of_kind(self, kind: DeviceKind) -> list[DeviceSpec]:
        return [d for d in self._devices.values() if d.kind == kind]

    def route(self, src: str, dst: str) -> list[LinkSpec]:
        """Links along the cheapest path from ``src`` to ``dst``."""
        if src not in self._devices or dst not in self._devices:
            raise ConfigurationError(f"unknown endpoint in route {src} -> {dst}")
        if src == dst:
            return []
        try:
            path = nx.shortest_path(self._graph, src, dst, weight="cost")
        except nx.NetworkXNoPath:
            raise ConfigurationError(f"no route between {src} and {dst}") from None
        return [
            self._graph.edges[a, b]["link"] for a, b in zip(path, path[1:])
        ]

    def transfer_time(self, src: str, dst: str, num_bytes: int) -> float:
        """Serialized multi-hop transfer time for ``num_bytes``."""
        return sum(link.transfer_time(num_bytes) for link in self.route(src, dst))


class ClusterTopology(Topology):
    """Multi-server topology: per-server device graphs joined by NICs.

    Cross-server routes go GPU -> (NVLink/PCIe local) -> NIC -> remote
    server, reflecting that RoCE traffic leaves through the host NICs
    (Section 6.1's 16-NIC servers are modelled as one aggregate link).
    """

    def __init__(self, cluster):
        from repro.hardware.cluster import ClusterSpec

        if not isinstance(cluster, ClusterSpec):
            raise ConfigurationError("ClusterTopology takes a ClusterSpec")
        self._cluster = cluster
        self._graph = nx.Graph()
        self._devices = {}
        template = cluster.server
        cpu_names = []
        for index in range(cluster.num_servers):
            from repro.hardware.server import a100_server

            server = a100_server(
                name=f"{template.name}{index}",
                num_gpus=template.num_gpus,
                gpu_memory_bytes=template.gpus[0].memory_bytes,
                cpu_memory_bytes=template.cpu.memory_bytes,
                ssd_bytes=(
                    template.ssd.memory_bytes if template.ssd is not None else None
                ),
                pcie_bandwidth=template.pcie.bandwidth,
                nvlink_bandwidth=template.nvlink.bandwidth,
                nic_bandwidth=template.nic.bandwidth,
            )
            self._server = server
            self._build()
            cpu_names.append(server.cpu.name)
        # The RoCE fabric is switched: any server pair is one NIC
        # traversal apart, so CPUs form a complete graph over the NIC.
        nic = template.nic
        for i, cpu_a in enumerate(cpu_names):
            for cpu_b in cpu_names[i + 1:]:
                self._graph.add_edge(
                    cpu_a, cpu_b, link=nic,
                    cost=nic.transfer_time(4 * 1024 * 1024),
                )

    @property
    def num_servers(self) -> int:
        return self._cluster.num_servers
