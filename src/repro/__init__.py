"""Reproduction of Angel-PTM (VLDB 2023).

A page-based hierarchical-memory training system: fine-grained Page memory
management, a unified life-time-based scheduler (Algorithm 1), a lock-free
SSD update mechanism (Algorithm 2), ZeRO-style data parallelism, and the
discrete-event and functional substrates needed to reproduce the paper's
evaluation without GPU hardware.

Quickstart (the paper's Figure 6 interface)::

    from repro import nn
    from repro.engine import initialize, AngelConfig

    model = nn.TinyTransformerLM(vocab_size=64, d_model=32, d_ffn=64,
                                 num_heads=4, num_layers=2)
    optimizer = nn.MixedPrecisionAdam(model.parameters(), lr=3e-3)
    engine = initialize(model, optimizer, AngelConfig())
    for batch in nn.lm_synthetic_batches(64, 16, 8, 100):
        loss = engine(batch)
        engine.backward(loss)
        engine.step()
"""

from repro import errors, units
from repro.engine.angel import AngelConfig, AngelModel, initialize

__version__ = "1.0.0"

__all__ = ["AngelConfig", "AngelModel", "initialize", "errors", "units", "__version__"]
