"""Reproduction of Angel-PTM (VLDB 2023).

A page-based hierarchical-memory training system: fine-grained Page memory
management, a unified life-time-based scheduler (Algorithm 1), a lock-free
SSD update mechanism (Algorithm 2), ZeRO-style data parallelism, and the
discrete-event and functional substrates needed to reproduce the paper's
evaluation without GPU hardware.

Quickstart (the paper's Figure 6 interface, via the unified facade)::

    from repro import api, nn

    model = nn.TinyTransformerLM(vocab_size=64, d_model=32, d_ffn=64,
                                 num_heads=4, num_layers=2)
    optimizer = nn.MixedPrecisionAdam(model.parameters(), lr=3e-3)
    engine = api.initialize(model, optimizer, api.AngelConfig(pipeline=True))
    for batch in nn.lm_synthetic_batches(64, 16, 8, 100):
        loss = engine(batch)
        engine.backward(loss)
        engine.step()

``repro.api`` also fronts profiling (``api.profile``), chaos testing
(``api.chaos``), run reports (``api.report``) and static verification
(``api.check``).
"""

from repro import api, errors, units

__version__ = "1.0.0"

#: Legacy top-level names, kept working behind a deprecation shim;
#: ``repro.api`` (or ``repro.engine``) is the supported address.
_DEPRECATED_EXPORTS = ("AngelConfig", "AngelModel", "initialize")


def __getattr__(name: str):
    if name in _DEPRECATED_EXPORTS:
        import warnings

        warnings.warn(
            f"'repro.{name}' is deprecated; import it from 'repro.api' "
            "(or 'repro.engine') instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(list(globals()) + list(_DEPRECATED_EXPORTS))


__all__ = ["api", "errors", "units", "__version__", *_DEPRECATED_EXPORTS]
