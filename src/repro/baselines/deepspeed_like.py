"""DeepSpeed-like engine: ZeRO-3 with static CPU offload.

Models the behaviours the paper attributes to DeepSpeed:

- *Static partitioning* (Section 4.2): "even when the GPU has sufficient
  memory, these systems still transfer the entire optimizer states and the
  update operations to the CPU, causing unnecessary data movements." All
  FP32 optimizer states and the FP16 master copies live in CPU memory;
  every layer's parameters cross PCIe every iteration.
- *Limited prefetch*: parameters for layer ``i`` start moving only when
  layer ``i - 1`` begins computing (a one-layer lookahead), rather than
  Angel-PTM's Algorithm-1 global schedule.
- *End-of-step optimizer*: the CPU Adam pass runs after the whole backward
  finishes, unoverlapped with compute.
- *Coarse memory management* (Section 4.1): tensor-level caching
  allocation fragments CPU memory, modelled as a usable-capacity fraction
  calibrated against Table 5 (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OutOfMemoryError
from repro.hardware.cluster import ClusterSpec
from repro.models.zoo import ModelConfig
from repro.scheduler.unified import IterationResult
from repro.sim.engine import Simulator
from repro.tracer.costmodel import CostModel
from repro.tracer.tracer import IterationTrace, Tracer
from repro.zero.collectives import CollectiveModel
from repro.zero.sharding import shard_bytes


#: Fraction of CPU memory DeepSpeed's tensor-level management can actually
#: use for model states before fragmentation-induced allocation failures.
#: Calibrated against Table 5 (28B max GPT scale on a 1 TiB server); the
#: allocator ablation bench independently measures caching-allocator waste
#: in this regime.
DEFAULT_CPU_USABLE_FRACTION = 0.45

#: GPU reserve for CUDA context, NCCL buffers and allocator slack.
DEFAULT_GPU_RESERVE_FRACTION = 0.15

#: Effective per-rank CPU Adam bandwidth. DeepSpeed's CPU optimizer path
#: pays pinned-memory staging copies and per-bucket synchronization on top
#: of the arithmetic — the "unnecessary data movements" of Section 4.2 —
#: so it sustains well below the raw DDR share Angel-PTM's page-level
#: update achieves.
DEEPSPEED_ADAM_BANDWIDTH = 3e9


@dataclass(frozen=True)
class _CapacityCheck:
    fits: bool
    reason: str
    cpu_needed: int
    cpu_usable: int
    gpu_needed: int
    gpu_usable: int


class DeepSpeedEngine:
    """Throughput and capacity model of ZeRO-3 + static CPU offload."""

    def __init__(
        self,
        cluster: ClusterSpec,
        cpu_usable_fraction: float = DEFAULT_CPU_USABLE_FRACTION,
        gpu_reserve_fraction: float = DEFAULT_GPU_RESERVE_FRACTION,
        use_recompute: bool = True,
        cost_model: CostModel | None = None,
    ):
        self.cluster = cluster
        self.cpu_usable_fraction = cpu_usable_fraction
        self.gpu_reserve_fraction = gpu_reserve_fraction
        self.use_recompute = use_recompute
        server = cluster.server
        self.cost = cost_model or CostModel(
            gpu=server.gpus[0], cpu=server.cpu,
            adam_bandwidth=DEEPSPEED_ADAM_BANDWIDTH,
        )
        self.collectives = CollectiveModel(cluster)

    @property
    def gpu_budget(self) -> int:
        per_gpu = self.cluster.server.gpus[0].memory_bytes
        return int(per_gpu * (1 - self.gpu_reserve_fraction))

    # ------------------------------------------------------------------
    # Capacity
    # ------------------------------------------------------------------
    def check_capacity(self, trace: IterationTrace) -> _CapacityCheck:
        """Static partitioning: all model states live in (fragmented) CPU
        memory; the GPU holds only the transient working set."""
        num_ranks = self.cluster.num_gpus
        params_fp16 = trace.total_fp16_param_bytes
        # CPU per server: FP32 states + FP16 params + FP16 grads of the
        # ranks it hosts.
        ranks_per_server = self.cluster.server.num_gpus
        per_rank_states = (
            shard_bytes(trace.total_optim_bytes, num_ranks)
            + 2 * shard_bytes(params_fp16, num_ranks)
        )
        cpu_needed = per_rank_states * ranks_per_server
        cpu_usable = int(
            self.cluster.server.cpu.memory_bytes * self.cpu_usable_fraction
        )
        from repro.engine.planner import ACT_WORKING_SET_OVERHEAD

        largest_gathered = max(l.param_bytes_fp16 for l in trace.layers)
        act_peak = max(
            l.act_bytes_fp16 * ACT_WORKING_SET_OVERHEAD + l.grad_bytes_fp16
            for l in trace.layers
        )
        gpu_needed = int(2 * largest_gathered + act_peak)
        gpu_usable = self.gpu_budget
        if cpu_needed > cpu_usable:
            return _CapacityCheck(
                False, "model states exceed usable CPU memory",
                cpu_needed, cpu_usable, gpu_needed, gpu_usable,
            )
        if gpu_needed > gpu_usable:
            return _CapacityCheck(
                False, "working set exceeds GPU memory",
                cpu_needed, cpu_usable, gpu_needed, gpu_usable,
            )
        return _CapacityCheck(True, "ok", cpu_needed, cpu_usable, gpu_needed, gpu_usable)

    # ------------------------------------------------------------------
    # Throughput
    # ------------------------------------------------------------------
    def simulate(
        self,
        config: ModelConfig,
        micro_batch: int,
        seq_len: int = 2048,
        use_ssd: bool = False,
    ) -> IterationResult:
        """One iteration with static offload and one-layer prefetch."""
        num_ranks = self.cluster.num_gpus
        server = self.cluster.server
        model = config.build(batch_size=micro_batch, seq_len=seq_len)
        trace = Tracer(self.cost, use_recompute=self.use_recompute).trace(model)
        capacity = self.check_capacity(trace)
        if not capacity.fits:
            raise OutOfMemoryError(
                device="deepspeed",
                requested_bytes=max(capacity.cpu_needed, capacity.gpu_needed),
                available_bytes=min(capacity.cpu_usable, capacity.gpu_usable),
            )

        sim = Simulator()
        gpu = sim.stream("gpu", "compute")
        h2d = sim.stream("h2d", "pcie")
        d2h = sim.stream("d2h", "pcie")
        nccl = sim.stream("nccl", "nccl")
        cpu = sim.stream("cpu", "cpu")
        ssd = sim.stream("ssd", "ssd")

        layers = trace.layers
        compute = {}
        offload_end = []
        ops = [(l.fwd_id, l, False) for l in layers]
        ops += [(l.bwd_id, l, True) for l in reversed(layers)]
        prev = None
        for op_id, layer, is_bwd in ops:
            # One-layer lookahead: the move is released by the *previous*
            # compute, not by a global schedule.
            trigger = [prev] if prev is not None else []
            move = sim.add_task(
                f"move.op{op_id}", h2d,
                server.pcie.transfer_time(
                    shard_bytes(layer.param_bytes_fp16, num_ranks)
                ),
                deps=trigger,
            )
            gather = sim.add_task(
                f"gather.op{op_id}", nccl,
                self.collectives.all_gather(layer.param_bytes_fp16, num_ranks),
                deps=[move],
            )
            duration = layer.fwd_time
            if is_bwd:
                duration = layer.bwd_time + layer.recompute_time
            task = sim.add_task(
                f"{'bwd' if is_bwd else 'fwd'}.op{op_id}", gpu, duration,
                deps=[gather],
            )
            compute[op_id] = task
            prev = task
            if is_bwd:
                reduce = sim.add_task(
                    f"rs.l{layer.layer_index}", nccl,
                    self.collectives.reduce_scatter(layer.grad_bytes_fp16, num_ranks),
                    deps=[task],
                )
                offload_end.append(
                    sim.add_task(
                        f"offload.l{layer.layer_index}", d2h,
                        server.pcie.transfer_time(
                            shard_bytes(layer.grad_bytes_fp16, num_ranks)
                        ),
                        deps=[reduce],
                    )
                )

        # End-of-step CPU optimizer pass: starts when backward finishes,
        # runs over every layer, unoverlapped with compute.
        barrier = [prev] + offload_end
        ssd_link = server.ssd_io
        last_update = None
        for layer in reversed(layers):
            params_shard = layer.param_count // num_ranks
            optim_shard = shard_bytes(layer.optim_bytes_fp32, num_ranks)
            deps = list(barrier)
            if last_update is not None:
                deps.append(last_update)
            if use_ssd:
                read = sim.add_task(
                    f"ssd.read.l{layer.layer_index}", ssd,
                    ssd_link.transfer_time(optim_shard), deps=deps,
                )
                deps = [read]
            update = sim.add_task(
                f"upd.l{layer.layer_index}", cpu,
                self.cost.cpu_update_time(params_shard), deps=deps,
            )
            last_update = update
            if use_ssd:
                last_update = sim.add_task(
                    f"ssd.write.l{layer.layer_index}", ssd,
                    ssd_link.transfer_time(optim_shard), deps=[update],
                )

        timeline = sim.run()
        iteration_time = timeline.makespan
        global_batch = micro_batch * num_ranks
        return IterationResult(
            iteration_time=iteration_time,
            samples_per_second=global_batch / iteration_time,
            timeline=timeline,
            gpu_busy_fraction=timeline.utilization(stream="gpu"),
            pcie_busy_fraction=timeline.utilization(kind="pcie"),
            update_sweep_time=0.0,
            staleness=0.0,
            plan=None,
        )
