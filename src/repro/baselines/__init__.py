"""Baseline system models: DeepSpeed-like and Megatron-LM-like engines.

The paper's evaluation compares Angel-PTM against DeepSpeed (ZeRO-3 with
static CPU offload) and Megatron-LM (hand-tuned hybrid tensor/pipeline/data
parallelism). These engines implement those systems' *behaviours* — static
partitioning, end-of-step CPU optimizer, limited prefetch for DeepSpeed;
pure-GPU hybrid parallelism with pipeline bubbles for Megatron — on the
same simulator and cost model as Angel-PTM, so comparisons isolate the
scheduling and memory-management differences the paper claims.
"""

from repro.baselines.deepspeed_like import DeepSpeedEngine
from repro.baselines.megatron_like import MegatronEngine, ParallelismChoice
from repro.baselines.patrickstar_like import PatrickStarEngine

__all__ = [
    "DeepSpeedEngine",
    "MegatronEngine",
    "ParallelismChoice",
    "PatrickStarEngine",
]
