"""PatrickStar-like engine: chunk-granularity hierarchical training.

Section 4.1's second critique target: "PatrickStar manages GPU memory in
chunks rather than tensors, where the chunk size must be larger than the
largest tensor used in model training. This would also result in memory
fragments within each chunk as well as the in-efficiency of the
overlapping between communication and computation."

We model it as Angel-PTM's own scheduler forced to chunk granularity:
movement units as large as the largest tensor (so staging cannot be
finely interleaved with compute) and a CPU capacity discounted by the
intra-chunk fragmentation the chunk allocator measures.
"""

from __future__ import annotations

import math

from repro.hardware.cluster import ClusterSpec
from repro.models.zoo import ModelConfig
from repro.scheduler.unified import IterationResult, UnifiedScheduler
from repro.tracer.costmodel import CostModel
from repro.units import MiB

#: Fraction of CPU memory usable under chunk management (intra-chunk
#: fragmentation strands freed bytes until a whole chunk empties; the
#: allocator ablation measures ~20-30% waste under training churn).
PATRICKSTAR_CPU_USABLE_FRACTION = 0.75


class PatrickStarEngine:
    """Chunk-granularity variant of the unified scheduler."""

    def __init__(
        self,
        cluster: ClusterSpec,
        cost_model: CostModel | None = None,
        min_chunk_bytes: int = 64 * MiB,
    ):
        self.cluster = cluster
        self.cost_model = cost_model
        self.min_chunk_bytes = min_chunk_bytes

    def chunk_bytes(self, config: ModelConfig, seq_len: int = 2048) -> int:
        """Chunks must exceed the largest tensor (PatrickStar's rule)."""
        model = config.build(1, seq_len)
        largest = max(
            p.bytes_single for layer in model.layers for p in layer.params
        )
        chunk = max(self.min_chunk_bytes, largest)
        # Round up to a power-of-two MiB multiple, as PatrickStar does.
        return 2 ** math.ceil(math.log2(chunk))

    def scheduler(self, config: ModelConfig, seq_len: int = 2048) -> UnifiedScheduler:
        return UnifiedScheduler(
            self.cluster,
            page_bytes=self.chunk_bytes(config, seq_len),
            cost_model=self.cost_model,
        )

    def simulate(
        self, config: ModelConfig, micro_batch: int, seq_len: int = 2048
    ) -> IterationResult:
        return self.scheduler(config, seq_len).simulate(
            config, micro_batch, seq_len=seq_len
        )
