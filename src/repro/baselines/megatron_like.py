"""Megatron-LM-like engine: hand-tuned hybrid TP/PP/DP, GPU-only memory.

Models the behaviours the paper attributes to Megatron-LM:

- Hybrid parallelism searched per model ("we manually search the best
  parallelism strategy for each experimented model", Section 6.1); the
  engine enumerates every (tp, pp, dp) factorization and keeps the fastest
  feasible one.
- No offloading: all model states and activations live in GPU memory, so
  large models OOM (Figure 7's missing bars).
- Tensor parallelism adds two all-reduces of the activation tensor per
  layer per pass; pipeline parallelism adds the GPipe bubble factor
  ``(p - 1) / m`` for ``m`` micro-batches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import OutOfMemoryError
from repro.hardware.cluster import ClusterSpec
from repro.models.transformer import FP16
from repro.models.zoo import ModelConfig
from repro.tracer.costmodel import CostModel
from repro.tracer.tracer import Tracer
from repro.zero.collectives import CollectiveModel


@dataclass(frozen=True)
class ParallelismChoice:
    """One hybrid-parallelism configuration and its predicted speed."""

    tensor_parallel: int
    pipeline_parallel: int
    data_parallel: int
    micro_batch: int
    num_micro_batches: int
    iteration_time: float
    samples_per_second: float
    gpu_bytes_needed: int

    @property
    def degree(self) -> int:
        return self.tensor_parallel * self.pipeline_parallel * self.data_parallel


class MegatronEngine:
    """Analytic hybrid-parallelism model on the shared cost model."""

    def __init__(
        self,
        cluster: ClusterSpec,
        gpu_reserve_fraction: float = 0.10,
        use_recompute: bool = True,
        cost_model: CostModel | None = None,
    ):
        self.cluster = cluster
        self.gpu_reserve_fraction = gpu_reserve_fraction
        self.use_recompute = use_recompute
        server = cluster.server
        self.cost = cost_model or CostModel(gpu=server.gpus[0], cpu=server.cpu)
        self.collectives = CollectiveModel(cluster)

    @property
    def gpu_budget(self) -> int:
        per_gpu = self.cluster.server.gpus[0].memory_bytes
        return int(per_gpu * (1 - self.gpu_reserve_fraction))

    def _factorizations(self):
        """All (tp, pp, dp) with tp within one server and tp*pp*dp = GPUs."""
        total = self.cluster.num_gpus
        max_tp = self.cluster.server.num_gpus
        for tp in (1, 2, 4, 8):
            if tp > max_tp or total % tp:
                continue
            rest = total // tp
            for pp in range(1, rest + 1):
                if rest % pp:
                    continue
                yield tp, pp, rest // pp

    def _evaluate(
        self,
        config: ModelConfig,
        tp: int,
        pp: int,
        dp: int,
        micro_batch: int,
        num_micro_batches: int,
        seq_len: int,
    ) -> ParallelismChoice | None:
        model = config.build(batch_size=micro_batch, seq_len=seq_len)
        trace = Tracer(self.cost, use_recompute=self.use_recompute).trace(model)
        num_layers = trace.num_layers
        if pp > num_layers:
            return None
        layers_per_stage = math.ceil(num_layers / pp)
        stage_layers = trace.layers[:layers_per_stage]

        # Memory per GPU: this stage's model states / tp, plus activations
        # of the in-flight micro-batches (pp stages keep up to pp of them).
        state_bytes = sum(
            2 * l.param_bytes_fp16 + l.optim_bytes_fp32 for l in stage_layers
        ) // tp
        act_per_micro = sum(l.act_bytes_fp16 for l in stage_layers) // tp
        if self.use_recompute:
            # Only boundary activations persist per in-flight micro-batch.
            act_per_micro = (
                layers_per_stage * model.batch_size * seq_len * model.d_model * FP16
            ) // tp
        gpu_needed = state_bytes + act_per_micro * min(pp, num_micro_batches)
        if gpu_needed > self.gpu_budget:
            return None

        # Per-micro-batch stage time: compute / tp + TP collectives.
        stage_compute = sum(
            l.fwd_time + l.bwd_time + l.recompute_time for l in stage_layers
        ) / tp
        act_tensor = model.batch_size * seq_len * model.d_model * FP16
        tp_comm = 0.0
        if tp > 1:
            # Two all-reduces forward + two backward per layer.
            per_layer = 4 * self.collectives.all_reduce(act_tensor, tp)
            tp_comm = per_layer * layers_per_stage
        stage_time = stage_compute + tp_comm

        # GPipe schedule: (m + p - 1) stage slots per iteration.
        pipeline_time = (num_micro_batches + pp - 1) * stage_time

        # Data-parallel gradient all-reduce at the end of the step.
        grad_bytes = sum(l.param_bytes_fp16 for l in stage_layers) // tp // 2
        dp_comm = self.collectives.all_reduce(grad_bytes, dp) if dp > 1 else 0.0

        # GPU optimizer step over this rank's parameters.
        update = self.cost.update_time(
            sum(l.param_count for l in stage_layers) // tp,
            self.cluster.server.gpus[0],
        )

        iteration_time = pipeline_time + dp_comm + update
        global_batch = micro_batch * num_micro_batches * dp
        return ParallelismChoice(
            tensor_parallel=tp,
            pipeline_parallel=pp,
            data_parallel=dp,
            micro_batch=micro_batch,
            num_micro_batches=num_micro_batches,
            iteration_time=iteration_time,
            samples_per_second=global_batch / iteration_time,
            gpu_bytes_needed=gpu_needed,
        )

    def best_strategy(
        self,
        config: ModelConfig,
        micro_batch: int | None = None,
        num_micro_batches: int = 8,
        seq_len: int = 2048,
    ) -> ParallelismChoice:
        """Search all factorizations and micro-batch sizes; raise OOM if
        nothing fits (the missing bars of Figure 7).

        When ``micro_batch`` is None the search sweeps powers of two — the
        "manually search the best parallelism strategy" of Section 6.1.
        """
        micro_batches = (
            (micro_batch,) if micro_batch is not None
            else (1, 2, 4, 8, 16, 32, 64, 128)
        )
        best: ParallelismChoice | None = None
        for tp, pp, dp in self._factorizations():
            for micro in micro_batches:
                choice = self._evaluate(
                    config, tp, pp, dp, micro, num_micro_batches, seq_len
                )
                if choice is None:
                    continue
                if best is None or choice.samples_per_second > best.samples_per_second:
                    best = choice
        if best is None:
            raise OutOfMemoryError(
                device="megatron",
                requested_bytes=config.build(1, seq_len).model_state_bytes,
                available_bytes=self.gpu_budget * self.cluster.num_gpus,
            )
        return best
