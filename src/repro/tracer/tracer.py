"""The Tracer: builds per-iteration access patterns from a model spec.

Training is iterative, so one traced iteration fixes the schedule for all
iterations (Section 4.2: "the key characteristic of deep learning training
is the iterative nature"). The logical-ID convention used here:

- forward of layer ``i``   -> operation ``i``
- backward of layer ``i``  -> operation ``2L - 1 - i``
- update of layer ``i``    -> operation ``2L + (L - 1 - i)``
  (updates run in reverse layer order, matching Algorithm 2's
  ``for l_i in reverse(model)`` — gradients of the last layer arrive first)

so an iteration spans ``3L`` logical operations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.transformer import ModelSpec, TensorKind
from repro.tracer.access import AccessPattern, TensorAccess
from repro.tracer.costmodel import CostModel


@dataclass(frozen=True)
class LayerTrace:
    """Per-layer operation IDs and durations for one iteration."""

    layer_index: int
    name: str
    fwd_id: int
    bwd_id: int
    update_id: int
    fwd_time: float
    bwd_time: float
    recompute_time: float
    cpu_update_time: float
    gpu_update_time: float
    param_bytes_fp16: int
    grad_bytes_fp16: int
    optim_bytes_fp32: int
    act_bytes_fp16: int
    param_count: int


@dataclass(frozen=True)
class IterationTrace:
    """Everything the Unified Scheduler needs about one iteration."""

    model_name: str
    pattern: AccessPattern
    layers: tuple[LayerTrace, ...]
    batch_size: int
    seq_len: int

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    @property
    def num_ops(self) -> int:
        return self.pattern.num_ops

    @property
    def total_param_count(self) -> int:
        return sum(layer.param_count for layer in self.layers)

    @property
    def total_fp16_param_bytes(self) -> int:
        return sum(layer.param_bytes_fp16 for layer in self.layers)

    @property
    def total_optim_bytes(self) -> int:
        return sum(layer.optim_bytes_fp32 for layer in self.layers)

    @property
    def total_compute_time(self) -> float:
        return sum(layer.fwd_time + layer.bwd_time for layer in self.layers)


class Tracer:
    """Derives the access pattern of one training iteration.

    ``use_recompute`` mirrors Angel-PTM's default of releasing activations
    in the forward pass and regenerating them during backward (Section 4.2),
    which shrinks each activation's life-time to its producing op.
    """

    def __init__(self, cost_model: CostModel, use_recompute: bool = True):
        self._cost = cost_model
        self.use_recompute = use_recompute

    def trace(self, model: ModelSpec) -> IterationTrace:
        """Run the symbolic iteration and collect access records."""
        num_layers = model.num_layers
        if num_layers == 0:
            raise ConfigurationError("model has no layers")
        num_ops = 3 * num_layers
        accesses: list[TensorAccess] = []
        layer_traces: list[LayerTrace] = []
        next_tensor_id = 0

        for i, layer in enumerate(model.layers):
            fwd_id = i
            bwd_id = 2 * num_layers - 1 - i
            update_id = 2 * num_layers + (num_layers - 1 - i)

            for spec in layer.params:
                cpu_t, gpu_t = self._cost.production_times(spec.bytes_single)
                # FP16 parameter: needed from forward until its update.
                accesses.append(
                    TensorAccess(
                        tensor_id=next_tensor_id,
                        name=spec.name,
                        first_id=fwd_id,
                        end_id=update_id,
                        cpu_time=cpu_t,
                        gpu_time=gpu_t,
                        nbytes=spec.bytes_single,
                        kind=TensorKind.PARAM,
                        layer_index=i,
                    )
                )
                next_tensor_id += 1
                # FP16 gradient: produced at backward, consumed by update.
                accesses.append(
                    TensorAccess(
                        tensor_id=next_tensor_id,
                        name=f"{spec.name}.grad",
                        first_id=bwd_id,
                        end_id=update_id,
                        cpu_time=cpu_t,
                        gpu_time=gpu_t,
                        nbytes=spec.bytes_single,
                        kind=TensorKind.PARAM,
                        layer_index=i,
                    )
                )
                next_tensor_id += 1

            for spec in layer.optim_states:
                cpu_t, gpu_t = self._cost.production_times(spec.bytes_single)
                accesses.append(
                    TensorAccess(
                        tensor_id=next_tensor_id,
                        name=spec.name,
                        first_id=update_id,
                        end_id=update_id,
                        cpu_time=cpu_t,
                        gpu_time=gpu_t,
                        nbytes=spec.bytes_single * spec.multiplicity,
                        kind=TensorKind.OPTIM,
                        layer_index=i,
                    )
                )
                next_tensor_id += 1

            for spec in layer.activations:
                cpu_t, gpu_t = self._cost.production_times(spec.bytes_single)
                end_id = fwd_id if self.use_recompute else bwd_id
                accesses.append(
                    TensorAccess(
                        tensor_id=next_tensor_id,
                        name=spec.name,
                        first_id=fwd_id,
                        end_id=end_id,
                        cpu_time=cpu_t,
                        gpu_time=gpu_t,
                        nbytes=spec.bytes_single,
                        kind=TensorKind.ACTIVATION,
                        layer_index=i,
                    )
                )
                next_tensor_id += 1

            layer_traces.append(
                LayerTrace(
                    layer_index=i,
                    name=layer.name,
                    fwd_id=fwd_id,
                    bwd_id=bwd_id,
                    update_id=update_id,
                    fwd_time=self._cost.forward_time(layer, model.batch_size, model.seq_len),
                    bwd_time=self._cost.backward_time(layer, model.batch_size, model.seq_len),
                    recompute_time=(
                        self._cost.recompute_time(layer, model.batch_size, model.seq_len)
                        if self.use_recompute
                        else 0.0
                    ),
                    cpu_update_time=self._cost.cpu_update_time(layer.param_count),
                    gpu_update_time=self._cost.gpu_update_time(layer.param_count),
                    param_bytes_fp16=sum(p.bytes_single for p in layer.params),
                    grad_bytes_fp16=sum(p.bytes_single for p in layer.params),
                    optim_bytes_fp32=layer.optims_bytes,
                    act_bytes_fp16=sum(a.bytes_single for a in layer.activations),
                    param_count=layer.param_count,
                )
            )

        pattern = AccessPattern(accesses=tuple(accesses), num_ops=num_ops)
        return IterationTrace(
            model_name=model.name,
            pattern=pattern,
            layers=tuple(layer_traces),
            batch_size=model.batch_size,
            seq_len=model.seq_len,
        )
