"""Tensor access records, exactly the fields the paper's Tracer collects.

Section 5: "The Tracer in Angel-PTM is responsible for tracking the usage
of each tensor and summarizing a tensor access pattern for the given model
as a list of following elements: tensor_id, first_id, end_id, cpu_time,
gpu_time." Logical IDs (not wall-clock times) index the iteration's
operation sequence, which "simplifies the scheduling process" (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.transformer import TensorKind


@dataclass(frozen=True)
class TensorAccess:
    """Life-time record of one tensor over a training iteration.

    Attributes:
        tensor_id: logical ID of this tensor.
        name: human-readable tensor name (layer-qualified).
        first_id: logical operation ID of the first access.
        end_id: logical operation ID of the last access.
        cpu_time: time to produce this tensor on CPU, seconds.
        gpu_time: time to produce this tensor on GPU, seconds.
        nbytes: physical size of the tensor.
        kind: parameter / activation / optimizer-state.
        layer_index: index of the owning layer in the model.
    """

    tensor_id: int
    name: str
    first_id: int
    end_id: int
    cpu_time: float
    gpu_time: float
    nbytes: int
    kind: TensorKind
    layer_index: int

    def __post_init__(self) -> None:
        if self.first_id > self.end_id:
            raise ConfigurationError(
                f"{self.name}: first access {self.first_id} after last {self.end_id}"
            )
        if self.nbytes <= 0:
            raise ConfigurationError(f"{self.name}: nbytes must be positive")

    @property
    def lifetime(self) -> int:
        """Number of logical operations this tensor stays live across."""
        return self.end_id - self.first_id + 1

    def live_at(self, op_id: int) -> bool:
        return self.first_id <= op_id <= self.end_id


@dataclass(frozen=True)
class AccessPattern:
    """The full per-iteration pattern: all tensors plus the op count."""

    accesses: tuple[TensorAccess, ...]
    num_ops: int

    def __post_init__(self) -> None:
        for access in self.accesses:
            if access.end_id >= self.num_ops:
                raise ConfigurationError(
                    f"{access.name}: end_id {access.end_id} outside "
                    f"{self.num_ops} operations"
                )

    def by_kind(self, kind: TensorKind) -> tuple[TensorAccess, ...]:
        return tuple(a for a in self.accesses if a.kind == kind)

    def live_bytes_at(self, op_id: int, kind: TensorKind | None = None) -> int:
        """Bytes of tensors live at ``op_id`` (optionally one kind only)."""
        return sum(
            a.nbytes
            for a in self.accesses
            if a.live_at(op_id) and (kind is None or a.kind == kind)
        )

    def peak_live_bytes(self, kind: TensorKind | None = None) -> int:
        """Maximum simultaneous live bytes over the iteration."""
        return max(
            (self.live_bytes_at(op, kind) for op in range(self.num_ops)),
            default=0,
        )
