"""Tracer: tensor access patterns and life-times (Section 5 of the paper).

The Tracer records, for every tensor, the logical ID of its first and last
access within one training iteration plus its production time on CPU and
GPU. These statistics are the sole input of the Unified Scheduler's
fine-grained life-time based scheduling (Algorithm 1).
"""

from repro.tracer.access import AccessPattern, TensorAccess
from repro.tracer.costmodel import CostModel
from repro.tracer.tracer import IterationTrace, LayerTrace, Tracer

__all__ = [
    "TensorAccess",
    "AccessPattern",
    "CostModel",
    "Tracer",
    "LayerTrace",
    "IterationTrace",
]
