"""Analytical cost model for compute, update and transfer times.

The throughput experiments need per-operation durations. We use the
standard dense-Transformer arithmetic: a layer's forward pass performs
roughly ``2 * params * tokens`` FLOPs and the backward pass twice that.
The paper's heuristic placement (Section 4.2) rests on exactly this
asymmetry: "forward and backward computations ... are rather
compute-intensive", while "optimizer update computations ... are composed
of FP32 matrix addition, which is memory-intensive and takes less time".
We therefore model forward/backward as compute-bound on the device's FLOPs
and the Adam update as memory-bandwidth-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.device import DeviceSpec
from repro.models.transformer import LayerSpec


#: Bytes the Adam update touches per parameter: read+write FP32 master,
#: momentum and variance (3 * 4 * 2), read the FP16 gradient and write the
#: FP16 parameter copy.
ADAM_BYTES_PER_PARAM = 3 * 4 * 2 + 2 + 2


@dataclass(frozen=True)
class CostModel:
    """Durations for layer computation, optimizer updates and moves.

    Attributes:
        gpu: the GPU device spec (FLOPs + HBM bandwidth).
        cpu: the CPU device spec (FLOPs + DDR bandwidth).
        base_efficiency: fraction of peak FLOPs a fully-loaded kernel
            achieves (A100 transformer kernels sustain roughly half peak).
        batch_half_point: micro-batch size at which kernels reach half of
            ``base_efficiency``; small batches under-utilize the GPU,
            which is the paper's fine-tuning inefficiency observation
            (Section 3.1).
        adam_bandwidth: effective per-rank bytes/s the CPU Adam pass
            sustains. The default is the host's DDR bandwidth shared by
            the server's eight ranks; baseline engines pass lower values
            to model their extra staging copies (see deepspeed_like).
    """

    gpu: DeviceSpec
    cpu: DeviceSpec
    base_efficiency: float = 0.5
    batch_half_point: float = 0.75
    adam_bandwidth: float = 12.5e9

    def __post_init__(self) -> None:
        if not 0 < self.base_efficiency <= 1:
            raise ConfigurationError("base_efficiency must be in (0, 1]")
        if self.batch_half_point <= 0:
            raise ConfigurationError("batch_half_point must be positive")
        if self.adam_bandwidth <= 0:
            raise ConfigurationError("adam_bandwidth must be positive")

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def efficiency(self, batch_size: int) -> float:
        """Saturating kernel efficiency as micro-batch grows."""
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        return self.base_efficiency * batch_size / (batch_size + self.batch_half_point)

    def layer_flops(self, layer: LayerSpec, batch_size: int, seq_len: int) -> float:
        """Forward FLOPs of one layer for a (batch, seq) input.

        For MoE layers only the routed experts do work, so we count the
        dense-equivalent parameters actually touched per token: attention
        weights plus ``top_k`` (=1) expert FFNs, not all experts.
        """
        params = layer.param_count
        if layer.num_experts > 1:
            expert_params = sum(
                p.numel for p in layer.params if ".expert0." in p.name
            )
            params = params - layer.num_experts * expert_params + expert_params
        return 2.0 * params * batch_size * seq_len

    def forward_time(self, layer: LayerSpec, batch_size: int, seq_len: int) -> float:
        flops = self.layer_flops(layer, batch_size, seq_len)
        return flops / (self.gpu.compute_flops * self.efficiency(batch_size))

    def backward_time(self, layer: LayerSpec, batch_size: int, seq_len: int) -> float:
        """Backward is ~2x forward (grad w.r.t. inputs and weights)."""
        return 2.0 * self.forward_time(layer, batch_size, seq_len)

    def recompute_time(self, layer: LayerSpec, batch_size: int, seq_len: int) -> float:
        """Re-running the forward during backward (activation recompute)."""
        return self.forward_time(layer, batch_size, seq_len)

    # ------------------------------------------------------------------
    # Optimizer update (memory-bound)
    # ------------------------------------------------------------------
    def update_time(self, param_count: int, device: DeviceSpec) -> float:
        """Adam step over ``param_count`` parameters on ``device``."""
        if param_count < 0:
            raise ConfigurationError("param_count must be >= 0")
        return param_count * ADAM_BYTES_PER_PARAM / device.mem_bandwidth

    def cpu_update_time(self, param_count: int) -> float:
        """CPU Adam at the model's effective per-rank update bandwidth."""
        if param_count < 0:
            raise ConfigurationError("param_count must be >= 0")
        return param_count * ADAM_BYTES_PER_PARAM / self.adam_bandwidth

    def gpu_update_time(self, param_count: int) -> float:
        return self.update_time(param_count, self.gpu)

    # ------------------------------------------------------------------
    # Tensor production times for the Tracer
    # ------------------------------------------------------------------
    def production_times(self, nbytes: int) -> tuple[float, float]:
        """(cpu_time, gpu_time) to materialize a tensor of ``nbytes``.

        Production is a bandwidth-bound write on either device; these feed
        the ``cpu_time`` / ``gpu_time`` fields of the Tracer records.
        """
        return nbytes / self.cpu.mem_bandwidth, nbytes / self.gpu.mem_bandwidth
