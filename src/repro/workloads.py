"""Workload generators: allocation traces of training memory churn.

The allocator ablations replay the allocate/release sequences real
training produces. This module derives those traces from model specs
under different execution regimes — with/without activation
recomputation, with/without ZeRO sharding — so fragmentation behaviour
can be studied for exactly the workload a configuration implies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.memory.fragmentation import TraceEvent
from repro.models.transformer import ModelSpec
from repro.zero.sharding import shard_bytes


@dataclass(frozen=True)
class WorkloadOptions:
    """Execution regime shaping the allocation pattern.

    Attributes:
        num_iterations: training iterations to replay.
        use_recompute: release each layer's activations at the end of its
            forward (and re-allocate transiently during backward) instead
            of holding them until backward.
        num_ranks: ZeRO degree; parameter/optimizer traffic is the
            per-rank shard when > 1.
        offload_staging: allocate/release a staging buffer for each
            layer's FP32 optimizer states during the update phase (the
            hierarchical-memory offload churn).
    """

    num_iterations: int = 4
    use_recompute: bool = True
    num_ranks: int = 1
    offload_staging: bool = True

    def __post_init__(self) -> None:
        if self.num_iterations <= 0:
            raise ConfigurationError("num_iterations must be positive")
        if self.num_ranks <= 0:
            raise ConfigurationError("num_ranks must be positive")


def training_trace(model: ModelSpec, options: WorkloadOptions | None = None) -> list[TraceEvent]:
    """Allocation trace of training ``model`` under ``options``.

    Per iteration: forward allocates each layer's gathered parameters and
    activations in order; backward (reverse order) allocates gradients,
    releases activations and parameters, optionally stages optimizer
    state, and releases gradients — the lifetimes the Tracer derives,
    expressed as allocator traffic.
    """
    options = options or WorkloadOptions()
    ids = itertools.count()
    events: list[TraceEvent] = []

    def param_sizes(layer):
        if options.num_ranks > 1:
            # Gathered params are full-size; their backing traffic is the
            # shard. The gathered buffer dominates allocator churn.
            return [p.bytes_single for p in layer.params]
        return [p.bytes_single for p in layer.params]

    for _ in range(options.num_iterations):
        live_params: list[list[int]] = []
        live_acts: list[list[int]] = []
        for layer in model.layers:
            p_ids = [next(ids) for _ in layer.params]
            events += [
                TraceEvent.alloc(i, s)
                for i, s in zip(p_ids, param_sizes(layer))
            ]
            a_ids = [next(ids) for _ in layer.activations]
            events += [
                TraceEvent.alloc(i, a.bytes_single)
                for i, a in zip(a_ids, layer.activations)
            ]
            if options.use_recompute:
                events += [TraceEvent.free(i) for i in a_ids]
                live_acts.append([])
            else:
                live_acts.append(a_ids)
            live_params.append(p_ids)

        for index in reversed(range(len(model.layers))):
            layer = model.layers[index]
            if options.use_recompute:
                # Recomputed activations exist transiently in backward.
                r_ids = [next(ids) for _ in layer.activations]
                events += [
                    TraceEvent.alloc(i, a.bytes_single)
                    for i, a in zip(r_ids, layer.activations)
                ]
            g_ids = [next(ids) for _ in layer.params]
            events += [
                TraceEvent.alloc(i, s)
                for i, s in zip(g_ids, param_sizes(layer))
            ]
            if options.use_recompute:
                events += [TraceEvent.free(i) for i in r_ids]
            else:
                events += [TraceEvent.free(i) for i in live_acts[index]]
            events += [TraceEvent.free(i) for i in live_params[index]]
            if options.offload_staging:
                stage_ids = [next(ids) for _ in layer.optim_states]
                events += [
                    TraceEvent.alloc(
                        i,
                        shard_bytes(
                            o.bytes_single * o.multiplicity, options.num_ranks
                        ),
                    )
                    for i, o in zip(stage_ids, layer.optim_states)
                ]
                events += [TraceEvent.free(i) for i in stage_ids]
            events += [TraceEvent.free(i) for i in g_ids]
    return events


def peak_live_bytes(trace: list[TraceEvent]) -> int:
    """Allocator-independent lower bound on memory for ``trace``."""
    live = 0
    peak = 0
    sizes: dict[int, int] = {}
    for event in trace:
        if event.op == "alloc":
            sizes[event.req_id] = event.nbytes
            live += event.nbytes
            peak = max(peak, live)
        else:
            live -= sizes.pop(event.req_id)
    return peak
