"""Exception hierarchy for the Angel-PTM reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries while tests assert on precise subtypes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class OutOfMemoryError(ReproError):
    """A device pool could not satisfy an allocation request.

    Mirrors the OOM condition Algorithm 1 of the paper schedules around.
    """

    def __init__(self, device: str, requested_bytes: int, available_bytes: int):
        self.device = device
        self.requested_bytes = requested_bytes
        self.available_bytes = available_bytes
        super().__init__(
            f"out of memory on {device}: requested {requested_bytes} bytes, "
            f"only {available_bytes} available"
        )


class AllocationError(ReproError):
    """A page- or tensor-level allocation violated an invariant."""


class QuotaExceededError(AllocationError):
    """A tenant asked for pages beyond its fleet quota.

    Raised by the shared :class:`repro.memory.allocator.PageQuota` ledger
    *before* the pool is touched, so one tenant exhausting its share
    surfaces as a typed, attributable error instead of an
    :class:`OutOfMemoryError` that silently starves its co-tenants.
    ``scope`` is ``"tenant"`` when the per-owner quota was hit and
    ``"pool"`` when the ledger's total capacity was.
    """

    def __init__(
        self,
        tenant: str,
        requested_pages: int,
        quota_pages: int,
        used_pages: int,
        scope: str = "tenant",
    ):
        self.tenant = tenant
        self.requested_pages = requested_pages
        self.quota_pages = quota_pages
        self.used_pages = used_pages
        self.scope = scope
        limit = "page quota" if scope == "tenant" else "shared pool capacity"
        super().__init__(
            f"tenant {tenant!r} exceeded {limit}: requested "
            f"{requested_pages} page(s) with {used_pages}/{quota_pages} in use"
        )


class PageStateError(ReproError):
    """A page was used in a way its current state does not permit."""


class TensorStateError(ReproError):
    """A managed tensor was used while not resident / not materialized."""


class SchedulingError(ReproError):
    """The unified scheduler could not produce or execute a valid schedule."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class CommunicationError(ReproError):
    """A collective operation was invoked with mismatched participants."""


class ShardingError(ReproError):
    """Parameter sharding (ZeRO-3 style) was configured inconsistently."""


class GradientError(ReproError):
    """Backward pass produced or consumed an invalid gradient."""


class CheckpointError(ReproError):
    """Saving or restoring training state failed."""


class TransientIOError(ReproError):
    """A tier I/O operation failed in a retryable way.

    Models the transient SSD/file-system hiccups of Section 3.1's failure
    model; a bounded retry with backoff is expected to succeed.
    """


class TierFailedError(ReproError):
    """A memory tier died permanently; no retry will succeed.

    Carries the tier name so callers can degrade onto the survivors.
    """

    def __init__(self, tier: str, message: str | None = None):
        self.tier = tier
        super().__init__(message or f"memory tier {tier!r} failed permanently")


class RankFailedError(ReproError):
    """A training rank crashed (simulated GPU/node failure, Section 3.1)."""

    def __init__(self, rank: int = 0, step: int | None = None):
        self.rank = rank
        self.step = step
        at = f" at step {step}" if step is not None else ""
        super().__init__(f"rank {rank} failed{at}")


class QueueClosedError(ConfigurationError):
    """Work was submitted to (or awaited on) a queue that is closed.

    Subclasses :class:`ConfigurationError` so pre-existing call sites that
    caught the broad class keep working; new code can assert precisely.
    """


class ClusterError(ReproError):
    """Base class for multi-process cluster membership failures."""


class GenerationFencedError(ClusterError):
    """The coordinator fenced this membership generation.

    Raised on a worker when a barrier or collective observes that its
    generation died (a peer was evicted, or a newer generation formed).
    The only valid reaction is to abandon the in-flight step and
    re-rendezvous for the next generation.
    """

    def __init__(self, generation: int, reason: str | None = None):
        self.generation = generation
        self.reason = reason
        detail = f": {reason}" if reason else ""
        super().__init__(f"generation {generation} is fenced{detail}")


class RendezvousError(ClusterError):
    """Joining or forming a membership generation failed."""


class RetryExhaustedError(ReproError):
    """A retried operation kept failing past its attempt/deadline budget.

    ``last_error`` holds the final underlying failure (also chained as
    ``__cause__``).
    """

    def __init__(self, attempts: int, last_error: BaseException):
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"operation failed after {attempts} attempt(s): {last_error}"
        )
