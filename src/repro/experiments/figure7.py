"""Figure 7: normalized throughput of Angel-PTM vs DeepSpeed vs Megatron.

GPT models from 1.7B to 120B on one server (1x8 GPUs) and four servers
(4x8 GPUs), each system at its own maximum batch size, throughput
normalized to DeepSpeed's. Paper shapes to reproduce:

- 1.7B on 1x8: Megatron (vanilla DP) is fastest; Angel-PTM trails it by a
  few percent (management overhead) and both beat DeepSpeed.
- 30B on 1x8: Megatron OOMs; Angel-PTM beats DeepSpeed via life-time
  scheduling.
- 4x8: Megatron supports 30B, DeepSpeed and Angel-PTM support 120B, and
  Angel-PTM stays fastest (averages ~35% over DeepSpeed, ~39% over
  Megatron in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.deepspeed_like import DeepSpeedEngine
from repro.baselines.megatron_like import MegatronEngine
from repro.engine.planner import CapacityPlanner
from repro.errors import OutOfMemoryError
from repro.experiments.common import Report
from repro.hardware.cluster import a100_cluster
from repro.models.zoo import get_model
from repro.scheduler.unified import UnifiedScheduler

MODELS = ("gpt3-1.7b", "gpt3-13b", "gpt3-30b", "gpt3-120b")
SYSTEMS = ("megatron", "deepspeed", "angel-ptm")

#: Models per setting: one server cannot hold 120B under any system
#: (Angel's single-server max is ~57B, Table 5), so the 1x8 panel covers
#: 1.7B-30B as in the paper's narrative.
MODELS_BY_SERVERS = {1: MODELS[:3], 4: MODELS}

#: Table 4's 30B row lists 64 layers at d_m=8192/d_ffn=32768, which
#: computes to ~51B transformer parameters; we calibrate the depth so the
#: computed size matches the 30B label the throughput plot uses.
LAYER_OVERRIDES = {"gpt3-30b": 37}


@dataclass(frozen=True)
class ThroughputCell:
    model: str
    system: str
    num_servers: int
    samples_per_second: float | None  # None = OOM
    micro_batch: int


@dataclass(frozen=True)
class Figure7Result:
    cells: list[ThroughputCell]

    def get(self, model: str, system: str, num_servers: int) -> ThroughputCell:
        for cell in self.cells:
            if (cell.model, cell.system, cell.num_servers) == (model, system, num_servers):
                return cell
        raise KeyError((model, system, num_servers))

    def normalized(self, model: str, system: str, num_servers: int) -> float | None:
        """Throughput normalized to DeepSpeed's (the paper's y-axis)."""
        baseline = self.get(model, "deepspeed", num_servers).samples_per_second
        value = self.get(model, system, num_servers).samples_per_second
        if value is None or baseline is None:
            return None
        return value / baseline


def _measure(system: str, cluster, planner: CapacityPlanner, config) -> ThroughputCell:
    try:
        if system == "megatron":
            best = MegatronEngine(cluster).best_strategy(config)
            return ThroughputCell(
                config.name, system, cluster.num_servers,
                best.samples_per_second, best.micro_batch,
            )
        if system == "deepspeed":
            batch = planner.max_micro_batch(config, "deepspeed")
            result = DeepSpeedEngine(cluster).simulate(config, batch)
            return ThroughputCell(
                config.name, system, cluster.num_servers,
                result.samples_per_second, batch,
            )
        batch = planner.max_micro_batch(config, "angel-ptm")
        result = UnifiedScheduler(cluster).simulate(config, batch)
        return ThroughputCell(
            config.name, system, cluster.num_servers,
            result.samples_per_second, batch,
        )
    except OutOfMemoryError:
        return ThroughputCell(config.name, system, cluster.num_servers, None, 0)


def run(
    models: tuple[str, ...] | None = None,
    server_counts: tuple[int, ...] = (1, 4),
) -> Figure7Result:
    cells: list[ThroughputCell] = []
    for num_servers in server_counts:
        cluster = a100_cluster(num_servers)
        planner = CapacityPlanner(cluster)
        selected = models or MODELS_BY_SERVERS.get(num_servers, MODELS)
        for model_name in selected:
            config = get_model(model_name)
            if model_name in LAYER_OVERRIDES:
                config = config.with_layers(LAYER_OVERRIDES[model_name])
            for system in SYSTEMS:
                cell = _measure(system, cluster, planner, config)
                # Report under the zoo name so panels line up.
                cells.append(
                    ThroughputCell(
                        model_name, cell.system, cell.num_servers,
                        cell.samples_per_second, cell.micro_batch,
                    )
                )
    return Figure7Result(cells=cells)


def format_report(result: Figure7Result) -> str:
    report = Report(
        title="Figure 7 — throughput normalized to DeepSpeed",
        columns=["setting", "model", "megatron", "deepspeed", "angel-ptm",
                 "batches (mt/ds/ag)"],
    )
    for num_servers in sorted({c.num_servers for c in result.cells}):
        for model in MODELS:
            if not any(c.model == model and c.num_servers == num_servers
                       for c in result.cells):
                continue
            row = [f"{num_servers}x8", model]
            batches = []
            for system in SYSTEMS:
                cell = result.get(model, system, num_servers)
                norm = result.normalized(model, system, num_servers)
                row.append("OOM" if norm is None else f"{norm:.2f}")
                batches.append(str(cell.micro_batch) if cell.samples_per_second else "-")
            row.append("/".join(batches))
            report.add_row(*row)
    report.add_note("paper: Angel-PTM averages +35.4% over DeepSpeed and "
                    "+38.9% over Megatron; Megatron wins only on 1.7B/1x8")
    return report.render()


if __name__ == "__main__":
    print(format_report(run()))
