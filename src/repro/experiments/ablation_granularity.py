"""Granularity ablation: 4 MiB pages vs PatrickStar-style chunks.

Quantifies Section 4.1's overlap argument: with chunk-sized movement
units (>= the largest tensor), staging cannot interleave finely with
computation and the working set inflates to chunk multiples, so either
throughput or feasible batch size suffers relative to page granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.patrickstar_like import PatrickStarEngine
from repro.errors import OutOfMemoryError
from repro.experiments.common import Report
from repro.hardware.cluster import a100_cluster
from repro.models.zoo import get_model
from repro.scheduler.unified import UnifiedScheduler
from repro.units import MiB


@dataclass(frozen=True)
class GranularityPoint:
    label: str
    unit_bytes: int
    samples_per_second: float | None  # None = OOM at this batch
    max_feasible_batch: int


@dataclass(frozen=True)
class GranularityResult:
    points: list[GranularityPoint]

    def of(self, label: str) -> GranularityPoint:
        for point in self.points:
            if point.label == label:
                return point
        raise KeyError(label)


def _max_batch(simulate, upper: int = 32) -> int:
    best = 0
    batch = 1
    while batch <= upper:
        try:
            simulate(batch)
        except OutOfMemoryError:
            break
        best = batch
        batch *= 2
    return best


def run(model_name: str = "gpt3-55b", micro_batch: int = 1) -> GranularityResult:
    cluster = a100_cluster(1)
    config = get_model(model_name)
    points: list[GranularityPoint] = []

    page_scheduler = UnifiedScheduler(cluster)  # 4 MiB pages
    chunk_engine = PatrickStarEngine(cluster)
    chunk_bytes = chunk_engine.chunk_bytes(config)
    chunk_scheduler = chunk_engine.scheduler(config)

    for label, scheduler, unit in (
        ("page-4MiB", page_scheduler, page_scheduler.page_bytes),
        (f"chunk-{chunk_bytes // MiB}MiB", chunk_scheduler, chunk_bytes),
    ):
        try:
            throughput = scheduler.simulate(config, micro_batch).samples_per_second
        except OutOfMemoryError:
            throughput = None
        points.append(
            GranularityPoint(
                label=label,
                unit_bytes=unit,
                samples_per_second=throughput,
                max_feasible_batch=_max_batch(
                    lambda b, s=scheduler: s.simulate(config, b)
                ),
            )
        )
    return GranularityResult(points=points)


def format_report(result: GranularityResult) -> str:
    report = Report(
        title="Ablation — page vs chunk movement granularity (Section 4.1)",
        columns=["granularity", "unit", "samples/s @ batch", "max batch"],
    )
    for point in result.points:
        report.add_row(
            point.label,
            f"{point.unit_bytes // MiB}MiB",
            "OOM" if point.samples_per_second is None
            else f"{point.samples_per_second:.3f}",
            point.max_feasible_batch,
        )
    report.add_note("pages keep staging fine-grained; chunk-sized units "
                    "inflate the working set and coarsen overlap")
    return report.render()


if __name__ == "__main__":
    print(format_report(run()))
