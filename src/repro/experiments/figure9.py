"""Figure 9: scalability of Angel-PTM on T5-MoE models (to 1.2T params).

The number of experts per GPU per MoE layer is fixed at 9, so the model
grows with the cluster: 128 GPUs host 1152 experts per layer, 256 GPUs the
full 2304 (the 1.2T configuration). The paper observes *near-linear*
scaling that sits below GPT3-175B's because every MoE layer feeds more
data into cross-server all-to-all as the cluster grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.moe import MoESimEngine
from repro.experiments.common import Report
from repro.hardware.cluster import a100_cluster
from repro.models.moe import MoEConfig
from repro.models.zoo import get_model

EXPERTS_PER_GPU_PER_LAYER = 9

SERVER_COUNTS = (4, 8, 16, 32)


@dataclass(frozen=True)
class MoEScalePoint:
    num_gpus: int
    num_experts: int
    total_params_t: float
    micro_batch: int
    samples_per_second: float
    per_gpu: float
    alltoall_fraction: float


@dataclass(frozen=True)
class Figure9Result:
    points: list[MoEScalePoint]

    @property
    def scaling_exponent(self) -> float:
        import math

        first, last = self.points[0], self.points[-1]
        return math.log(last.samples_per_second / first.samples_per_second) / math.log(
            last.num_gpus / first.num_gpus
        )


def run(
    server_counts: tuple[int, ...] = SERVER_COUNTS,
    micro_batch: int = 8,
    seq_len: int = 2048,
) -> Figure9Result:
    base = get_model("t5-moe-1.2t")
    points: list[MoEScalePoint] = []
    for num_servers in server_counts:
        cluster = a100_cluster(num_servers)
        num_gpus = cluster.num_gpus
        num_experts = EXPERTS_PER_GPU_PER_LAYER * num_gpus
        moe = MoEConfig(
            d_model=base.d_model, d_ffn=base.d_ffn, num_experts=num_experts
        )
        engine = MoESimEngine(cluster)
        result = engine.simulate(
            moe, num_moe_layers=base.num_layers, micro_batch=micro_batch,
            seq_len=seq_len, num_heads=base.num_heads,
        )
        points.append(
            MoEScalePoint(
                num_gpus=num_gpus,
                num_experts=num_experts,
                total_params_t=result.total_params / 1e12,
                micro_batch=micro_batch,
                samples_per_second=result.samples_per_second,
                per_gpu=result.samples_per_second / num_gpus,
                alltoall_fraction=result.alltoall_fraction,
            )
        )
    return Figure9Result(points=points)


def format_report(result: Figure9Result) -> str:
    report = Report(
        title="Figure 9 — T5-MoE scalability (9 experts/GPU/layer)",
        columns=["#GPUs", "#experts", "params", "samples/s", "per-GPU",
                 "all-to-all frac", "speedup"],
    )
    base = result.points[0]
    for point in result.points:
        report.add_row(
            point.num_gpus, point.num_experts, f"{point.total_params_t:.2f}T",
            f"{point.samples_per_second:.1f}", f"{point.per_gpu:.3f}",
            f"{point.alltoall_fraction:.2f}",
            f"{point.samples_per_second / base.samples_per_second:.2f}x",
        )
    report.add_note(
        f"scaling exponent {result.scaling_exponent:.3f} — near-linear but "
        "below GPT3-175B's (paper: all-to-all drag grows with cluster size)"
    )
    return report.render()


if __name__ == "__main__":
    print(format_report(run()))
