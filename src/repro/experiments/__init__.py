"""Experiment harnesses: one module per table and figure of the paper.

Each module exposes ``run(...)`` returning structured results and a
``format_report(results)`` producing the same rows/series the paper
reports. The ``benchmarks/`` suite drives these under pytest-benchmark;
EXPERIMENTS.md records paper-vs-measured for every entry.
"""

from repro.experiments import (
    table1,
    table2,
    table5,
    table6,
    figure7,
    figure8,
    figure9,
    idle_analysis,
    staleness_sweep,
    ablation_allocators,
    ablation_granularity,
    ablation_page_size,
    ablation_scheduler,
)

__all__ = [
    "table1",
    "table2",
    "table5",
    "table6",
    "figure7",
    "figure8",
    "figure9",
    "idle_analysis",
    "staleness_sweep",
    "ablation_allocators",
    "ablation_granularity",
    "ablation_page_size",
    "ablation_scheduler",
]
