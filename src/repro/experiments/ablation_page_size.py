"""Page-size ablation: Section 4.1's "Optimal Page Size" argument.

"If the Page size is too large, there will be a large number of tensors
coexisting in the page ... resulting in wasted space. If the Page size is
too small, there will be increased overhead associated with data movement
because of the under-utilized bandwidth. Therefore ... the minimum Page
size that can fully utilize the PCIe bandwidth is optimal, i.e., 4MB."

The sweep measures, per candidate page size:

- **bandwidth efficiency**: fraction of raw PCIe bandwidth achieved when
  a model layer's states move page by page (per-page setup latency eats
  small pages);
- **capacity overhead**: peak-reserved / peak-live of the paged allocator
  replaying a training-churn trace (page-tail slack eats large pages);
- a combined **cost** (movement slowdown x capacity overhead) whose
  minimum should sit at, or next to, the paper's 4 MiB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.ablation_allocators import PagedTraceAllocator, training_churn_trace
from repro.experiments.common import Report
from repro.hardware.server import a100_server
from repro.memory.fragmentation import replay
from repro.units import GiB, KiB, MiB

PAGE_SIZES = (
    256 * KiB, 512 * KiB, 1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB, 64 * MiB,
)


@dataclass(frozen=True)
class PageSizePoint:
    page_bytes: int
    bandwidth_efficiency: float
    capacity_overhead: float

    @property
    def cost(self) -> float:
        """Movement slowdown x capacity overhead (1.0 is ideal)."""
        return self.capacity_overhead / self.bandwidth_efficiency


@dataclass(frozen=True)
class PageSizeResult:
    points: list[PageSizePoint]

    def best(self) -> PageSizePoint:
        return min(self.points, key=lambda p: p.cost)

    def of(self, page_bytes: int) -> PageSizePoint:
        for point in self.points:
            if point.page_bytes == page_bytes:
                return point
        raise KeyError(page_bytes)


def _bandwidth_efficiency(page_bytes: int, payload_bytes: int) -> float:
    """Raw-PCIe fraction achieved moving ``payload_bytes`` in pages."""
    pcie = a100_server().pcie
    num_pages = -(-payload_bytes // page_bytes)
    actual = sum(
        pcie.transfer_time(min(page_bytes, payload_bytes - i * page_bytes))
        for i in range(num_pages)
    )
    ideal = payload_bytes / pcie.bandwidth
    return ideal / actual


def run(
    page_sizes: tuple[int, ...] = PAGE_SIZES,
    payload_bytes: int = 1 * GiB,
) -> PageSizeResult:
    trace = training_churn_trace()
    points = []
    for page_bytes in page_sizes:
        stats = replay(
            PagedTraceAllocator(16 * 1024 * MiB, page_bytes=page_bytes), trace
        )
        points.append(
            PageSizePoint(
                page_bytes=page_bytes,
                bandwidth_efficiency=_bandwidth_efficiency(page_bytes, payload_bytes),
                capacity_overhead=stats.overhead_ratio,
            )
        )
    return PageSizeResult(points=points)


def format_report(result: PageSizeResult) -> str:
    report = Report(
        title="Ablation — optimal page size (Section 4.1)",
        columns=["page size", "PCIe efficiency", "capacity overhead", "cost"],
    )
    best = result.best()
    for point in result.points:
        marker = "  <- best" if point is best else ""
        report.add_row(
            f"{point.page_bytes // KiB}KiB"
            if point.page_bytes < MiB
            else f"{point.page_bytes // MiB}MiB",
            f"{point.bandwidth_efficiency:.3f}",
            f"{point.capacity_overhead:.3f}x",
            f"{point.cost:.3f}{marker}",
        )
    report.add_note("paper: 4MB is 'the minimum Page size that can fully "
                    "utilize the PCIe bandwidth'")
    return report.render()


if __name__ == "__main__":
    print(format_report(run()))
