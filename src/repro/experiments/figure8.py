"""Figure 8: scalability of Angel-PTM on GPT3-175B (hundreds of GPUs).

The paper trains GPT3-175B on 32 to 96 servers (256 to 768 GPUs) and
observes *super-linear* scaling: 11.68 samples/s at 256 GPUs growing to
36.46 samples/s at 768 GPUs — a 3.12x speed-up for 3x the GPUs. The
super-linearity comes from per-rank fixed work shrinking with the cluster:
each rank's parameter shard, its PCIe movement volume and its share of the
CPU optimizer pass all scale as 1/N while its compute stays constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.planner import CapacityPlanner
from repro.experiments.common import Report
from repro.hardware.cluster import a100_cluster
from repro.models.zoo import get_model
from repro.scheduler.unified import UnifiedScheduler

#: Paper-reported series: GPUs -> samples/s.
PAPER_SERIES = {256: 11.68, 768: 36.46}

SERVER_COUNTS = (32, 48, 64, 96)


@dataclass(frozen=True)
class ScalePoint:
    num_gpus: int
    micro_batch: int
    samples_per_second: float
    per_gpu: float


@dataclass(frozen=True)
class Figure8Result:
    points: list[ScalePoint]

    def speedup(self, gpus_a: int, gpus_b: int) -> float:
        """Throughput ratio between two cluster sizes."""
        by_gpus = {p.num_gpus: p.samples_per_second for p in self.points}
        return by_gpus[gpus_b] / by_gpus[gpus_a]

    @property
    def scaling_exponent(self) -> float:
        """Slope of log(throughput) vs log(GPUs); > 1 means super-linear."""
        import math

        first, last = self.points[0], self.points[-1]
        return math.log(last.samples_per_second / first.samples_per_second) / math.log(
            last.num_gpus / first.num_gpus
        )


def run(
    model_name: str = "gpt3-175b",
    server_counts: tuple[int, ...] = SERVER_COUNTS,
    seq_len: int = 2048,
) -> Figure8Result:
    config = get_model(model_name)
    points: list[ScalePoint] = []
    for num_servers in server_counts:
        cluster = a100_cluster(num_servers)
        planner = CapacityPlanner(cluster)
        batch = planner.max_micro_batch(config, "angel-ptm", seq_len=seq_len)
        result = UnifiedScheduler(cluster).simulate(config, batch, seq_len=seq_len)
        points.append(
            ScalePoint(
                num_gpus=cluster.num_gpus,
                micro_batch=batch,
                samples_per_second=result.samples_per_second,
                per_gpu=result.samples_per_second / cluster.num_gpus,
            )
        )
    return Figure8Result(points=points)


def format_report(result: Figure8Result) -> str:
    report = Report(
        title="Figure 8 — GPT3-175B scalability",
        columns=["#GPUs", "micro-batch", "samples/s", "per-GPU", "speedup vs first"],
    )
    base = result.points[0]
    for point in result.points:
        report.add_row(
            point.num_gpus, point.micro_batch,
            f"{point.samples_per_second:.2f}", f"{point.per_gpu:.4f}",
            f"{point.samples_per_second / base.samples_per_second:.2f}x",
        )
    report.add_note(
        f"scaling exponent {result.scaling_exponent:.3f} "
        "(paper: 3.12x speedup at 3x GPUs => super-linear, exponent ~1.04)"
    )
    return report.render()


if __name__ == "__main__":
    print(format_report(run()))
