"""Scheduler ablation: the value of Algorithm 1's design choices.

Quantifies two knobs DESIGN.md calls out:

- **Phase 2 (all-gather advancement)**: without it every all-gather is
  released at its own compute trigger and serializes with computation;
  with it gathers overlap preceding layers' compute.
- **Dynamic GPU cache**: without it every optimizer update runs on the
  CPU behind a PCIe round-trip; with it spare GPU memory absorbs
  optimizer shards and their updates.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace

from repro.experiments.common import Report
from repro.hardware.cluster import a100_cluster
from repro.models.zoo import get_model
from repro.scheduler.cache import CachePlan
from repro.scheduler.tasks import Operation
from repro.scheduler.unified import UnifiedScheduler


@dataclass(frozen=True)
class SchedulerAblationResult:
    full: float             # samples/s with both optimizations
    no_phase2: float        # gathers pinned at their compute trigger
    no_cache: float         # no optimizer states cached on GPU
    neither: float

    def phase2_gain(self) -> float:
        return self.full / self.no_phase2 - 1.0

    def cache_gain(self) -> float:
        return self.full / self.no_cache - 1.0


def _strip_phase2(plan):
    """Re-pin every all-gather at its compute op (undo Phase 2)."""
    tasks = [
        dc_replace(t, trigger_id=t.op_id)
        if t.operation == Operation.ALL_GATHER else t
        for t in plan.schedule.tasks
    ]
    plan.schedule.tasks[:] = tasks
    return plan


def _strip_cache(plan):
    """Empty the GPU cache plan so every update takes the CPU path."""
    return dc_replace(
        plan, cache=CachePlan(cached_layers=frozenset(), cache_bytes=0, layer_bytes={})
    )


def run(
    model_name: str = "gpt3-13b",
    micro_batch: int = 4,
    num_servers: int = 1,
) -> SchedulerAblationResult:
    cluster = a100_cluster(num_servers)
    scheduler = UnifiedScheduler(cluster)
    config = get_model(model_name)

    def throughput(strip_phase2: bool, strip_cache: bool) -> float:
        plan = scheduler.plan(config, micro_batch)
        if strip_cache:
            plan = _strip_cache(plan)
        if strip_phase2:
            plan = _strip_phase2(plan)
        return scheduler.simulate_plan(plan).samples_per_second

    return SchedulerAblationResult(
        full=throughput(False, False),
        no_phase2=throughput(True, False),
        no_cache=throughput(False, True),
        neither=throughput(True, True),
    )


def format_report(result: SchedulerAblationResult) -> str:
    report = Report(
        title="Ablation — Algorithm 1 phase 2 and the dynamic GPU cache",
        columns=["variant", "samples/s", "vs full"],
    )
    for name, value in (
        ("full scheduler", result.full),
        ("no phase-2 advancement", result.no_phase2),
        ("no GPU cache", result.no_cache),
        ("neither", result.neither),
    ):
        report.add_row(name, f"{value:.3f}", f"{value / result.full:.3f}x")
    report.add_note(
        f"phase-2 gain {100 * result.phase2_gain():.1f}%, "
        f"cache gain {100 * result.cache_gain():.1f}%"
    )
    return report.render()


if __name__ == "__main__":
    print(format_report(run()))
