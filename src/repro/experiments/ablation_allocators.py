"""Allocator ablation: page-based vs BFC vs caching vs chunk management.

Section 4.1 claims coarse memory management (PyTorch's caching allocator
as used by DeepSpeed, PatrickStar's chunks) fragments under the mixed
tensor sizes of Transformer training, while the 4 MiB Page keeps waste to
page-tail slack. This harness replays a training-churn allocation trace —
repeated iterations of parameter/gradient/activation allocate-release with
the non-uniform sizes of Table 2 — through all four managers and reports
``peak reserved / peak live`` (1.0 is a perfect allocator).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.experiments.common import Report
from repro.hardware.device import DeviceKind
from repro.memory.bfc import BfcAllocator
from repro.memory.caching import CachingAllocator
from repro.memory.chunk import ChunkAllocator
from repro.memory.fragmentation import FragmentationStats, TraceEvent, replay
from repro.memory.allocator import PageAllocator
from repro.memory.pool import DevicePool
from repro.models.transformer import transformer_layer
from repro.units import MiB


class PagedTraceAllocator:
    """Adapter exposing the page allocator under the trace interface."""

    def __init__(self, capacity_bytes: int, page_bytes: int = 4 * MiB):
        self._pool = DevicePool(
            DeviceKind.CPU, capacity_bytes, page_bytes, backend="null"
        )
        self._alloc = PageAllocator({DeviceKind.CPU: self._pool})
        self._live: dict[int, object] = {}
        self.capacity_bytes = self._pool.capacity_bytes

    @property
    def reserved_bytes(self) -> int:
        return self._pool.used_bytes

    def alloc(self, req_id: int, nbytes: int) -> None:
        tensor = self._alloc.allocate((nbytes,), np.uint8, DeviceKind.CPU)
        self._live[req_id] = tensor

    def free(self, req_id: int) -> None:
        self._alloc.release(self._live.pop(req_id))


def training_churn_trace(
    num_iterations: int = 6,
    d_model: int = 2048,
    d_ffn: int = 8192,
    batch_size: int = 4,
    seq_len: int = 1024,
    num_layers: int = 4,
) -> list[TraceEvent]:
    """Allocation churn of hierarchical-memory training.

    Each iteration: per layer, allocate the gathered FP16 parameters and
    the activations during forward; during backward allocate gradients,
    release activations and gathered parameters layer by layer; then
    allocate/release per-layer FP32 state staging buffers (the offload
    churn that fragments coarse allocators).
    """
    layer = transformer_layer(d_model, d_ffn, batch_size, seq_len)
    param_sizes = [p.bytes_single for p in layer.params]
    act_sizes = [a.bytes_single for a in layer.activations]
    optim_sizes = [o.bytes_single * o.multiplicity for o in layer.optim_states]
    ids = itertools.count()
    events: list[TraceEvent] = []
    for _ in range(num_iterations):
        live_params: list[list[int]] = []
        live_acts: list[list[int]] = []
        for _layer in range(num_layers):
            param_ids = [next(ids) for _ in param_sizes]
            act_ids = [next(ids) for _ in act_sizes]
            events += [TraceEvent.alloc(i, s) for i, s in zip(param_ids, param_sizes)]
            events += [TraceEvent.alloc(i, s) for i, s in zip(act_ids, act_sizes)]
            live_params.append(param_ids)
            live_acts.append(act_ids)
        for _layer in reversed(range(num_layers)):
            grad_ids = [next(ids) for _ in param_sizes]
            events += [TraceEvent.alloc(i, s) for i, s in zip(grad_ids, param_sizes)]
            events += [TraceEvent.free(i) for i in live_acts[_layer]]
            events += [TraceEvent.free(i) for i in live_params[_layer]]
            # Staging buffer for the FP32 state of this layer, then the
            # gradients leave with it.
            stage_ids = [next(ids) for _ in optim_sizes]
            events += [TraceEvent.alloc(i, s) for i, s in zip(stage_ids, optim_sizes)]
            events += [TraceEvent.free(i) for i in grad_ids]
            events += [TraceEvent.free(i) for i in stage_ids]
    return events


@dataclass(frozen=True)
class AllocatorAblationResult:
    stats: dict[str, FragmentationStats]

    def overhead(self, name: str) -> float:
        return self.stats[name].overhead_ratio


def run(capacity_bytes: int = 8 * 1024 * MiB, **trace_kwargs) -> AllocatorAblationResult:
    trace = training_churn_trace(**trace_kwargs)
    largest = max(e.nbytes for e in trace if e.op == "alloc")
    allocators = {
        "page-4MiB": PagedTraceAllocator(capacity_bytes),
        "bfc": BfcAllocator(capacity_bytes),
        "caching": CachingAllocator(capacity_bytes),
        "chunk": ChunkAllocator(capacity_bytes, chunk_bytes=2 * largest),
    }
    stats = {name: replay(alloc, trace) for name, alloc in allocators.items()}
    return AllocatorAblationResult(stats=stats)


def format_report(result: AllocatorAblationResult) -> str:
    report = Report(
        title="Ablation — allocator overhead under training churn (Section 4.1)",
        columns=["allocator", "peak reserved", "peak live", "overhead",
                 "failed"],
    )
    for name, stats in sorted(result.stats.items()):
        report.add_row(
            name,
            f"{stats.peak_reserved_bytes / MiB:.0f}MiB",
            f"{stats.peak_live_bytes / MiB:.0f}MiB",
            f"{stats.overhead_ratio:.3f}x",
            "-" if stats.failed_at is None else f"event {stats.failed_at}",
        )
    report.add_note("page-based management should sit closest to 1.0x; "
                    "chunk and caching allocators carry the fragmentation "
                    "the paper attributes to PatrickStar and DeepSpeed")
    return report.render()


if __name__ == "__main__":
    print(format_report(run()))
