"""Table 1: per-layer memory footprints under mixed precision + Adam.

Evaluates the tensor inventory of one Transformer layer and checks it
against the paper's closed-form totals (Params = 16 d_m^2 + 8 d_m d_ffn,
Acts = 40 b s d_m + 8 b s d_ffn, Optims = 48 d_m^2 + 24 d_m d_ffn), plus
the Section 2.2 GPT3-175B totals (648 / 162 / 1944 GiB over 96 layers with
b=1, s=2048, d_m=12288, d_ffn=49152).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Report
from repro.models.footprint import closed_form_layer_bytes, layer_footprint
from repro.models.transformer import transformer_layer
from repro.units import GiB


#: The Section 2.2 GPT3-175B accounting configuration.
GPT3_175B_SECTION22 = {"d_model": 12288, "d_ffn": 49152, "batch_size": 1,
                       "seq_len": 2048, "num_layers": 96}

#: Paper-reported totals in GiB.
PAPER_TOTALS_GIB = {"params": 648.0, "acts": 162.0, "optims": 1944.0}


@dataclass(frozen=True)
class Table1Result:
    params_bytes: int
    acts_bytes: int
    optims_bytes: int
    closed_params: int
    closed_acts: int
    closed_optims: int
    model_params_gib: float
    model_acts_gib: float
    model_optims_gib: float


def run(
    d_model: int = GPT3_175B_SECTION22["d_model"],
    d_ffn: int = GPT3_175B_SECTION22["d_ffn"],
    batch_size: int = GPT3_175B_SECTION22["batch_size"],
    seq_len: int = GPT3_175B_SECTION22["seq_len"],
    num_layers: int = GPT3_175B_SECTION22["num_layers"],
) -> Table1Result:
    layer = transformer_layer(d_model, d_ffn, batch_size, seq_len)
    exact = layer_footprint(layer)
    closed = closed_form_layer_bytes(d_model, d_ffn, batch_size, seq_len)
    return Table1Result(
        params_bytes=exact.params_bytes,
        acts_bytes=exact.acts_bytes,
        optims_bytes=exact.optims_bytes,
        closed_params=closed.params_bytes,
        closed_acts=closed.acts_bytes,
        closed_optims=closed.optims_bytes,
        model_params_gib=num_layers * exact.params_bytes / GiB,
        model_acts_gib=num_layers * exact.acts_bytes / GiB,
        model_optims_gib=num_layers * exact.optims_bytes / GiB,
    )


def format_report(result: Table1Result) -> str:
    report = Report(
        title="Table 1 — per-layer footprints (GPT3-175B accounting config)",
        columns=["quantity", "inventory (bytes)", "closed form (bytes)",
                 "model total (GiB)", "paper (GiB)"],
    )
    report.add_row("Params", result.params_bytes, result.closed_params,
                   f"{result.model_params_gib:.1f}", PAPER_TOTALS_GIB["params"])
    report.add_row("Acts", result.acts_bytes, result.closed_acts,
                   f"{result.model_acts_gib:.1f}", PAPER_TOTALS_GIB["acts"])
    report.add_row("Optims", result.optims_bytes, result.closed_optims,
                   f"{result.model_optims_gib:.1f}", PAPER_TOTALS_GIB["optims"])
    report.add_note(
        "closed form ignores LayerNorm and score tensors, as the paper does"
    )
    return report.render()


if __name__ == "__main__":
    print(format_report(run()))
