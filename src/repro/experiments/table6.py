"""Table 6: extreme-scale T5-MoE training with SSD and the lock-free
updating mechanism.

Two halves:

1. **Throughput** (simulated at paper scale): T5-MoE-1T on 64 GPUs and
   T5-MoE-10T on 576 GPUs with the SSD tier, synchronous vs lock-free.
   Paper: 37.26 samples/s (1T/64), 317.82 (10T/576 sync), 942.31
   (10T/576 lock-free) — a 2.96x speed-up with the SSD I/O removed from
   the critical path.
2. **Convergence** (real numpy training): the same model and data trained
   synchronously and with the lock-free staleness semantics; validation
   losses should be nearly identical (paper: 0.853 vs 0.861).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.moe import MoESimEngine
from repro.experiments.common import Report
from repro.hardware.cluster import a100_cluster
from repro.lockfree.staleness import StalenessLoop
from repro.models.moe import MoEConfig
from repro.nn.data import lm_synthetic_batches
from repro.nn.functional import cross_entropy
from repro.nn.layers import TinyTransformerLM
from repro.nn.optim import MixedPrecisionAdam

#: Paper rows: (label, #GPUs, lock_free) -> samples/s, valid loss.
PAPER_ROWS = {
    ("1T", 64, False): (37.26, 1.124),
    ("10T", 576, False): (317.82, 0.853),
    ("10T", 576, True): (942.31, 0.861),
}

#: Operating points: SSD-resident optimizer states force experts/GPU far
#: above the CPU/GPU-memory regime of Figure 9.
CONFIGS = {
    "1T": {"num_servers": 8, "num_experts": 2304, "micro_batch": 32},
    "10T": {"num_servers": 72, "num_experts": 18432, "micro_batch": 32},
}

D_MODEL, D_FFN, NUM_LAYERS = 1024, 16384, 16


@dataclass(frozen=True)
class ThroughputRow:
    label: str
    num_gpus: int
    lock_free: bool
    total_params_t: float
    samples_per_second: float
    staleness: float


@dataclass(frozen=True)
class ConvergenceRow:
    mode: str
    update_interval: int
    final_loss: float
    first_loss: float


@dataclass(frozen=True)
class Table6Result:
    throughput: list[ThroughputRow]
    convergence: list[ConvergenceRow]

    def lockfree_speedup(self, label: str = "10T") -> float:
        sync = next(r for r in self.throughput if r.label == label and not r.lock_free)
        lockfree = next(r for r in self.throughput if r.label == label and r.lock_free)
        return lockfree.samples_per_second / sync.samples_per_second

    def loss_gap(self) -> float:
        """Relative final-loss difference, lock-free vs synchronous."""
        sync = next(r for r in self.convergence if r.mode == "synchronous")
        lockfree = next(r for r in self.convergence if r.mode == "lock-free")
        return abs(lockfree.final_loss - sync.final_loss) / sync.final_loss


def run_throughput(seq_len: int = 2048) -> list[ThroughputRow]:
    rows: list[ThroughputRow] = []
    for label, spec in CONFIGS.items():
        cluster = a100_cluster(spec["num_servers"])
        moe = MoEConfig(d_model=D_MODEL, d_ffn=D_FFN, num_experts=spec["num_experts"])
        engine = MoESimEngine(cluster)
        modes = (False,) if label == "1T" else (False, True)
        for lock_free in modes:
            result = engine.simulate(
                moe, num_moe_layers=NUM_LAYERS, micro_batch=spec["micro_batch"],
                seq_len=seq_len, use_ssd=True, lock_free=lock_free,
            )
            rows.append(
                ThroughputRow(
                    label=label,
                    num_gpus=cluster.num_gpus,
                    lock_free=lock_free,
                    total_params_t=result.total_params / 1e12,
                    samples_per_second=result.samples_per_second,
                    staleness=result.staleness,
                )
            )
    return rows


def run_convergence(
    update_interval: int = 4,
    num_batches: int = 400,
    vocab_size: int = 32,
    seq_len: int = 16,
    batch_size: int = 8,
    seed: int = 7,
    lr: float = 2e-3,
) -> list[ConvergenceRow]:
    """Train the same tiny MoE LM synchronously and lock-free."""
    rows: list[ConvergenceRow] = []
    for mode, interval in (("synchronous", 1), ("lock-free", update_interval)):
        model = TinyTransformerLM(
            vocab_size=vocab_size, d_model=32, d_ffn=64, num_heads=4,
            num_layers=2, max_seq=seq_len, num_experts=4, seed=seed,
        )
        optimizer = MixedPrecisionAdam(model.parameters(), lr=lr)
        loop = StalenessLoop(model, optimizer, update_interval=interval)
        batches = lm_synthetic_batches(
            vocab_size, seq_len, batch_size, num_batches,
            seed=seed + 1, chain_seed=seed,
        )
        log = loop.train(batches)
        # Validation: held-out sequences drawn from the *same* chain.
        val_losses = []
        for batch in lm_synthetic_batches(
            vocab_size, seq_len, batch_size, 10, seed=seed + 2, chain_seed=seed
        ):
            logits = model(batch.inputs, mixed_precision=True)
            val_losses.append(cross_entropy(logits, batch.targets).item())
        rows.append(
            ConvergenceRow(
                mode=mode,
                update_interval=interval,
                final_loss=float(np.mean(val_losses)),
                first_loss=log.first_loss,
            )
        )
    return rows


def run(**kwargs) -> Table6Result:
    return Table6Result(throughput=run_throughput(), convergence=run_convergence(**kwargs))


def format_report(result: Table6Result) -> str:
    report = Report(
        title="Table 6 — SSD training with the Lock-Free Updating Mechanism",
        columns=["model", "#GPUs", "mode", "params", "samples/s", "staleness",
                 "paper samples/s"],
    )
    for row in result.throughput:
        mode = "lock-free" if row.lock_free else "sync"
        paper = PAPER_ROWS.get((row.label, row.num_gpus, row.lock_free), ("-",))[0]
        report.add_row(
            row.label, row.num_gpus, mode, f"{row.total_params_t:.1f}T",
            f"{row.samples_per_second:.1f}", f"{row.staleness:.1f}", paper,
        )
    report.add_note(
        f"lock-free speedup {result.lockfree_speedup():.2f}x (paper: 2.96x)"
    )
    conv = Report(
        title="Table 6 (convergence) — validation loss, real numpy training",
        columns=["mode", "update interval", "valid loss"],
    )
    for row in result.convergence:
        conv.add_row(row.mode, row.update_interval, f"{row.final_loss:.4f}")
    conv.add_note(
        f"relative loss gap {100 * result.loss_gap():.2f}% "
        "(paper: 0.853 vs 0.861, ~0.9%)"
    )
    return report.render() + "\n\n" + conv.render()


if __name__ == "__main__":
    print(format_report(run()))
