"""Table 2: distribution of tensor sizes within one layer of GPT-3.

The paper's histogram (large entries 3072/2304/1152/768/576/288 MiB) is
produced by the 175B layer (d_m=12288, d_ffn=49152) at batch 16, sequence
2048: FP32 optimizer tensors of the FFN weights are 2304 MiB, FP16 copies
1152 MiB, attention weight optimizer tensors 576 MiB, FP16 copies 288 MiB,
``b x s x d_ffn`` activations 3072 MiB and ``b x s x d_m`` activations
768 MiB. The sub-MiB entries are LayerNorm parameters and score tensors,
whose exact accounting the paper does not specify; we report our inventory
alongside.
"""

from __future__ import annotations

from repro.experiments.common import Report
from repro.models.footprint import tensor_size_distribution
from repro.models.transformer import transformer_layer

#: Paper-reported histogram: MiB size -> count.
PAPER_DISTRIBUTION = {
    3072.0: 4,
    2304.0: 6,
    1152.0: 4,
    768.0: 20,
    576.0: 12,
    288.0: 8,
    0.375: 4,
    0.046875: 6,
    0.0234375: 4,
}

#: Entries >= 1 MiB dominate memory and match our inventory exactly.
LARGE_ENTRY_MIB = 1.0


def run(
    d_model: int = 12288,
    d_ffn: int = 49152,
    batch_size: int = 16,
    seq_len: int = 2048,
) -> dict[float, int]:
    layer = transformer_layer(d_model, d_ffn, batch_size, seq_len)
    return tensor_size_distribution(layer)


def large_entries(distribution: dict[float, int]) -> dict[float, int]:
    return {s: c for s, c in distribution.items() if s >= LARGE_ENTRY_MIB}


def format_report(distribution: dict[float, int]) -> str:
    report = Report(
        title="Table 2 — tensor sizes within one GPT3-175B layer (b=16, s=2048)",
        columns=["size (MiB)", "count (ours)", "count (paper)"],
    )
    sizes = sorted(set(distribution) | set(PAPER_DISTRIBUTION), reverse=True)
    for size in sizes:
        report.add_row(
            f"{size:.7g}",
            distribution.get(size, "-"),
            PAPER_DISTRIBUTION.get(size, "-"),
        )
    report.add_note("entries >= 1 MiB match the paper exactly; sub-MiB rows "
                    "differ only in the paper's unspecified small-tensor grouping")
    return report.render()


if __name__ == "__main__":
    print(format_report(run()))
