"""Table 5: max supported model scale on a single 8xA100 server.

For each family (GPT at d_m=8192/d_ffn=32768, T5 at d_m=4096/d_ffn=16384)
the harness finds, per system, the deepest model that fits, the largest
micro-batch at each scale, and the simulated training throughput. The
paper's observations to reproduce: DeepSpeed caps at ~28B (CPU-memory
bound with ~22 GB of GPU memory still free) while Angel-PTM roughly
doubles the max scale by spilling states into free GPU memory, and
Angel-PTM outruns DeepSpeed at the same scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.deepspeed_like import DeepSpeedEngine
from repro.engine.planner import CapacityPlanner
from repro.experiments.common import Report
from repro.hardware.cluster import ClusterSpec, a100_cluster
from repro.models.zoo import get_model
from repro.scheduler.unified import UnifiedScheduler

#: Paper-reported rows (system, params label, batch, samples/s).
PAPER_ROWS = {
    "gpt": [
        ("deepspeed", "28B", 1, 0.404),
        ("deepspeed", "28B", 36, 7.61),
        ("angel-ptm", "28B", 38, 10.99),
        ("angel-ptm", "55B", 1, 0.464),
        ("angel-ptm", "55B", 10, 3.34),
    ],
    "t5": [
        ("deepspeed", "27B", 1, 0.317),
        ("deepspeed", "27B", 32, 7.31),
        ("angel-ptm", "27B", 50, 14.38),
        ("angel-ptm", "58B", 1, 0.432),
        ("angel-ptm", "58B", 4, 3.37),
    ],
}


@dataclass(frozen=True)
class ScaleRow:
    family: str
    system: str
    num_layers: int
    params_b: float
    micro_batch: int
    samples_per_second: float


@dataclass(frozen=True)
class Table5Result:
    rows: list[ScaleRow]

    def max_params(self, family: str, system: str) -> float:
        return max(r.params_b for r in self.rows
                   if r.family == family and r.system == system)

    def scale_improvement(self, family: str) -> float:
        """Angel-PTM max scale relative to DeepSpeed's."""
        return (
            self.max_params(family, "angel-ptm")
            / self.max_params(family, "deepspeed")
            - 1.0
        )

    def best_throughput(self, family: str, system: str, params_b: float) -> float:
        return max(
            (r.samples_per_second for r in self.rows
             if r.family == family and r.system == system
             and abs(r.params_b - params_b) < 1e-6),
            default=0.0,
        )


def _simulate(system: str, cluster: ClusterSpec, config, micro_batch: int) -> float:
    if system == "deepspeed":
        engine = DeepSpeedEngine(cluster)
        return engine.simulate(config, micro_batch).samples_per_second
    scheduler = UnifiedScheduler(cluster)
    return scheduler.simulate(config, micro_batch).samples_per_second


def run(families: tuple[str, ...] = ("gpt", "t5"), num_servers: int = 1) -> Table5Result:
    cluster = a100_cluster(num_servers)
    planner = CapacityPlanner(cluster)
    bases = {"gpt": get_model("gpt3-28b"), "t5": get_model("t5-27b")}
    rows: list[ScaleRow] = []
    for family in families:
        base = bases[family]
        ds_layers = planner.max_layers(base, "deepspeed")
        angel_layers = planner.max_layers(base, "angel-ptm")
        for system, num_layers in (("deepspeed", ds_layers), ("angel-ptm", angel_layers)):
            config = base.with_layers(num_layers)
            params_b = config.build(1, 2048).param_count / 1e9
            max_batch = planner.max_micro_batch(config, system)
            for micro_batch in sorted({1, max_batch}):
                rows.append(
                    ScaleRow(
                        family=family,
                        system=system,
                        num_layers=num_layers,
                        params_b=params_b,
                        micro_batch=micro_batch,
                        samples_per_second=_simulate(system, cluster, config, micro_batch),
                    )
                )
        # Angel at DeepSpeed's scale, for the same-model comparison rows.
        ds_config = base.with_layers(ds_layers)
        ds_params_b = ds_config.build(1, 2048).param_count / 1e9
        angel_batch = planner.max_micro_batch(ds_config, "angel-ptm")
        rows.append(
            ScaleRow(
                family=family,
                system="angel-ptm",
                num_layers=ds_layers,
                params_b=ds_params_b,
                micro_batch=angel_batch,
                samples_per_second=_simulate("angel-ptm", cluster, ds_config, angel_batch),
            )
        )
    return Table5Result(rows=rows)


def format_report(result: Table5Result) -> str:
    report = Report(
        title="Table 5 — max supported model scale on a single server",
        columns=["family", "system", "#layers", "#params", "#batch", "samples/s"],
    )
    for row in sorted(result.rows, key=lambda r: (r.family, r.system, r.params_b, r.micro_batch)):
        report.add_row(
            row.family.upper(), row.system, row.num_layers,
            f"{row.params_b:.1f}B", row.micro_batch,
            f"{row.samples_per_second:.3f}",
        )
    for family in sorted({r.family for r in result.rows}):
        report.add_note(
            f"{family.upper()} max-scale improvement: "
            f"{100 * result.scale_improvement(family):.1f}% "
            f"(paper: GPT 96.4%, T5 114.8%)"
        )
    return report.render()


if __name__ == "__main__":
    print(format_report(run()))
