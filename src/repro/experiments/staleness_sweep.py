"""Staleness sweep: how far can the lock-free mechanism be pushed?

Table 6 shows one staleness point (the SSD-bound operating regime). The
paper's justification — "existing studies have verified that deep
learning model training can well tolerate such staleness" — invites the
obvious ablation: train the same model on the same data at staleness
1, 2, 4, 8, 16 and chart the validation-loss degradation. The expected
shape: flat-ish through small staleness, growing beyond.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import Report
from repro.lockfree.staleness import StalenessLoop
from repro.nn.data import lm_synthetic_batches
from repro.nn.functional import cross_entropy
from repro.nn.layers import TinyTransformerLM
from repro.nn.optim import MixedPrecisionAdam

STALENESS_LEVELS = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class StalenessPoint:
    update_interval: int
    valid_loss: float
    relative_to_sync: float


@dataclass(frozen=True)
class StalenessSweepResult:
    points: list[StalenessPoint]

    def of(self, interval: int) -> StalenessPoint:
        for point in self.points:
            if point.update_interval == interval:
                return point
        raise KeyError(interval)


def run(
    staleness_levels: tuple[int, ...] = STALENESS_LEVELS,
    num_batches: int = 400,
    vocab_size: int = 32,
    seq_len: int = 16,
    batch_size: int = 8,
    lr: float = 2e-3,
    seed: int = 17,
) -> StalenessSweepResult:
    losses: dict[int, float] = {}
    for interval in staleness_levels:
        model = TinyTransformerLM(
            vocab_size=vocab_size, d_model=32, d_ffn=64, num_heads=4,
            num_layers=2, max_seq=seq_len, seed=seed,
        )
        optimizer = MixedPrecisionAdam(model.parameters(), lr=lr)
        loop = StalenessLoop(model, optimizer, update_interval=interval)
        loop.train(lm_synthetic_batches(
            vocab_size, seq_len, batch_size, num_batches,
            seed=seed + 1, chain_seed=seed,
        ))
        val = []
        for batch in lm_synthetic_batches(
            vocab_size, seq_len, batch_size, 10, seed=seed + 2, chain_seed=seed
        ):
            logits = model(batch.inputs, mixed_precision=True)
            val.append(cross_entropy(logits, batch.targets).item())
        losses[interval] = float(np.mean(val))
    sync = losses[min(staleness_levels)]
    points = [
        StalenessPoint(
            update_interval=interval,
            valid_loss=losses[interval],
            relative_to_sync=losses[interval] / sync - 1.0,
        )
        for interval in staleness_levels
    ]
    return StalenessSweepResult(points=points)


def format_report(result: StalenessSweepResult) -> str:
    report = Report(
        title="Extension — validation loss vs lock-free staleness",
        columns=["update interval", "valid loss", "vs synchronous"],
    )
    for point in result.points:
        report.add_row(
            point.update_interval,
            f"{point.valid_loss:.4f}",
            f"{100 * point.relative_to_sync:+.1f}%",
        )
    report.add_note("the paper's operating point (SSD-bound, staleness ~3) "
                    "sits in the flat region; degradation grows past it")
    return report.render()


if __name__ == "__main__":
    print(format_report(run()))
