"""Section 4.3's idle-time observation.

"Our observations reveal that after introducing CPU memory and SSD
storage, nearly 80% of the iteration time is idle, whereas the number is
merely 10% when introducing only CPU memory." — measured on the GPU
compute stream, *without* the lock-free mechanism. This harness reproduces
both numbers with the synchronous scheduler on a memory-heavy, compute-
light configuration (small batch fine-tuning style), which is exactly the
regime the observation describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import Report
from repro.hardware.cluster import a100_cluster
from repro.models.zoo import get_model
from repro.scheduler.unified import UnifiedScheduler


@dataclass(frozen=True)
class IdleResult:
    cpu_only_idle: float
    ssd_idle: float
    lockfree_idle: float


def run(model_name: str = "gpt3-55b", micro_batch: int = 2) -> IdleResult:
    """The observation is about the SSD-bound synchronous regime: the
    model must be large enough that its optimizer states overflow both the
    GPU cache and easy CPU capacity (the paper's context is extreme-scale
    models, Section 4.3)."""
    cluster = a100_cluster(1)
    scheduler = UnifiedScheduler(cluster)
    config = get_model(model_name)

    def gpu_idle(use_ssd: bool, lock_free: bool) -> float:
        result = scheduler.simulate(
            config, micro_batch, use_ssd=use_ssd, lock_free=lock_free
        )
        # Idle fraction of the GPU compute stream within the iteration.
        busy = sum(
            iv.duration
            for iv in result.timeline.intervals
            if iv.stream == "gpu" and iv.end <= result.iteration_time + 1e-9
        )
        return 1.0 - busy / result.iteration_time

    return IdleResult(
        cpu_only_idle=gpu_idle(use_ssd=False, lock_free=False),
        ssd_idle=gpu_idle(use_ssd=True, lock_free=False),
        lockfree_idle=gpu_idle(use_ssd=True, lock_free=True),
    )


def format_report(result: IdleResult) -> str:
    report = Report(
        title="Section 4.3 — GPU idle fraction by memory configuration",
        columns=["configuration", "GPU idle fraction", "paper"],
    )
    report.add_row("CPU memory only", f"{100 * result.cpu_only_idle:.1f}%", "~10%")
    report.add_row("CPU + SSD (sync)", f"{100 * result.ssd_idle:.1f}%", "~80%")
    report.add_row("CPU + SSD (lock-free)", f"{100 * result.lockfree_idle:.1f}%", "-")
    return report.render()


if __name__ == "__main__":
    print(format_report(run()))
