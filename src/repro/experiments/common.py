"""Shared helpers for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Report:
    """A printable table: title, column headers, rows of cells."""

    title: str
    columns: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        self.rows.append([str(c) for c in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def fmt(cells):
            return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

        lines = [self.title, "=" * len(self.title), fmt(self.columns)]
        lines.append("-" * len(lines[-1]))
        lines += [fmt(row) for row in self.rows]
        lines += [f"  note: {n}" for n in self.notes]
        return "\n".join(lines)


def ratio_str(value: float) -> str:
    return f"{value:.2f}x"


def pct_str(value: float) -> str:
    return f"{100 * value:.1f}%"
