"""Functional ZeRO-3: parameters themselves sharded, gathered per layer.

Section 3.2: "we adopt the parameter sharding approach proposed by ZeRO,
which evenly splits each parameter among multiple GPUs. When a parameter
needs to be calculated, the complete parameter is obtained through an
all-gather operation."

Unlike :class:`~repro.dp.trainer.ZeroDataParallelTrainer` (which keeps a
full replica per rank and shards only optimizer state — ZeRO-1), this
engine keeps exactly one flat shard of every parameter per rank. A single
shared module executes the math; before each module's forward its
parameters are assembled from the shards (the all-gather) and afterwards
the gathered copies are dropped, so full parameters exist only around
their computation — ZeRO-3's memory invariant, which the tests assert.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShardingError
from repro.nn.data import Batch
from repro.nn.functional import cross_entropy
from repro.nn.layers import Module
from repro.nn.optim import MixedPrecisionAdam
from repro.checkpoint.reshard import merge_shards, split_even


class Zero3Engine:
    """ZeRO-3 sharded training over a shared compute module.

    The module's parameter arrays act as the transient "gathered" buffers:
    outside of a forward/backward pass they are zeroed out, and the
    authoritative values live only in per-rank shards.
    """

    def __init__(
        self,
        model: Module,
        num_ranks: int,
        lr: float = 1e-3,
        mixed_precision: bool = True,
    ):
        if num_ranks <= 0:
            raise ConfigurationError("num_ranks must be positive")
        self.model = model
        self.num_ranks = num_ranks
        self.mixed_precision = mixed_precision
        self._params = model.parameters()

        # Authoritative state: per-rank FP32 master/moment shards and
        # FP16-rounded parameter shards, all flat.
        self.master_shards: list[list[np.ndarray]] = []
        self.m_shards: list[list[np.ndarray]] = []
        self.v_shards: list[list[np.ndarray]] = []
        self.param_shards: list[list[np.ndarray]] = []
        for param in self._params:
            flat = param.data.reshape(-1).astype(np.float32)
            self.master_shards.append(split_even(flat.copy(), num_ranks))
            self.m_shards.append(split_even(np.zeros_like(flat), num_ranks))
            self.v_shards.append(split_even(np.zeros_like(flat), num_ranks))
            # Initial shards carry the raw values (mixed-precision casting
            # happens at compute time); every update refreshes them with
            # FP16-rounded masters, matching MixedPrecisionAdam.
            self.param_shards.append(split_even(flat.copy(), num_ranks))
        self.lr = lr
        self._adam = MixedPrecisionAdam([], lr=lr)  # reuse its _apply math
        self._adam_t = 0
        self._gathered = False
        self.gather_bytes = 0
        self.reduce_bytes = 0
        self._drop_parameters()

    # ------------------------------------------------------------------
    # Gather / drop (the ZeRO-3 parameter life cycle)
    # ------------------------------------------------------------------
    def _gather_parameters(self) -> None:
        """All-gather: assemble full FP16 parameters from the shards."""
        for index, param in enumerate(self._params):
            full = merge_shards(self.param_shards[index], param.data.size)
            param.data[...] = full.reshape(param.data.shape)
            self.gather_bytes += full.nbytes
        self._gathered = True

    def _drop_parameters(self) -> None:
        """Release the gathered copies (only shards persist)."""
        for param in self._params:
            param.data[...] = 0.0
        self._gathered = False

    @property
    def parameters_materialized(self) -> bool:
        return self._gathered

    def full_parameter(self, index: int) -> np.ndarray:
        """Reassemble one parameter from its shards (for tests/eval)."""
        param = self._params[index]
        return merge_shards(self.param_shards[index], param.data.size).reshape(
            param.data.shape
        )

    # ------------------------------------------------------------------
    # Training step
    # ------------------------------------------------------------------
    def train_step(self, batch: Batch) -> float:
        """One data-parallel iteration over the global ``batch``.

        Each rank computes on its micro-batch against the gathered
        parameters; gradients reduce-scatter into per-rank shards; each
        rank updates its own FP32 shard and refreshes its FP16 shard.
        """
        micro_batches = self._split(batch)
        grad_accum = [np.zeros(p.data.size, dtype=np.float32) for p in self._params]
        losses = []
        for micro in micro_batches:
            self._gather_parameters()
            logits = self.model(micro.inputs, self.mixed_precision)
            loss = cross_entropy(logits, micro.targets)
            self.model.zero_grad()
            loss.backward()
            for index, param in enumerate(self._params):
                if param.grad is not None:
                    grad_accum[index] += param.grad.reshape(-1)
            self._drop_parameters()
            losses.append(loss.item())

        # Reduce-scatter: each rank keeps the mean-gradient slice it owns.
        self._adam_t += 1
        for index in range(len(self._params)):
            mean_grad = grad_accum[index] / self.num_ranks
            grad_shards = split_even(mean_grad, self.num_ranks)
            self.reduce_bytes += mean_grad.nbytes
            for rank in range(self.num_ranks):
                self._apply_shard(index, rank, grad_shards[rank])
        return float(np.mean(losses))

    def _apply_shard(self, index: int, rank: int, grad: np.ndarray) -> None:
        self._adam.t = self._adam_t
        self._adam._apply(
            self.master_shards[index][rank],
            grad,
            self.m_shards[index][rank],
            self.v_shards[index][rank],
        )
        self.param_shards[index][rank][...] = (
            self.master_shards[index][rank].astype(np.float16).astype(np.float32)
        )

    def _split(self, batch: Batch) -> list[Batch]:
        if batch.inputs.shape[0] % self.num_ranks:
            raise ShardingError(
                f"global batch {batch.inputs.shape[0]} does not split over "
                f"{self.num_ranks} ranks"
            )
        micro = batch.inputs.shape[0] // self.num_ranks
        return [
            Batch(
                inputs=batch.inputs[rank * micro:(rank + 1) * micro],
                targets=batch.targets[rank * micro:(rank + 1) * micro],
            )
            for rank in range(self.num_ranks)
        ]

    # ------------------------------------------------------------------
    # Memory accounting (the ZeRO memory claim)
    # ------------------------------------------------------------------
    def resident_state_bytes(self, rank: int) -> int:
        """Persistent per-rank bytes: FP16 param shard + FP32 states."""
        if not 0 <= rank < self.num_ranks:
            raise ShardingError(f"rank {rank} outside [0, {self.num_ranks})")
        total = 0
        for index in range(len(self._params)):
            total += self.param_shards[index][rank].size * 2  # stored as FP16
            total += self.master_shards[index][rank].nbytes
            total += self.m_shards[index][rank].nbytes
            total += self.v_shards[index][rank].nbytes
        return total

    def evaluate(self, batch: Batch) -> float:
        """Loss on ``batch`` with gathered parameters (then dropped)."""
        from repro.nn.tensor import no_grad

        self._gather_parameters()
        try:
            with no_grad():
                logits = self.model(batch.inputs, self.mixed_precision)
                return cross_entropy(logits, batch.targets).item()
        finally:
            self._drop_parameters()
