"""In-process ZeRO data-parallel training.

One iteration (mirroring Section 2.3's description):

1. the global batch splits evenly across ranks;
2. every rank runs forward/backward on its replica (its own micro-batch);
3. gradients average across ranks — the all-reduce;
4. each parameter's *owner* rank applies the Adam update using its local
   optimizer-state shard (ZeRO: "each device only stores and updates 1/N
   of the model states");
5. the refreshed FP16 parameters broadcast to every replica — the extra
   all-gather ZeRO pays for its memory savings.

Communication volumes are tracked so tests can assert the ZeRO accounting
(all-reduce volume = parameter bytes, gather volume = parameter bytes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, ShardingError
from repro.nn.functional import cross_entropy
from repro.nn.data import Batch
from repro.nn.optim import MixedPrecisionAdam


@dataclass
class CommStats:
    """Bytes exchanged by the collective phases."""

    allreduce_bytes: int = 0
    gather_bytes: int = 0
    iterations: int = 0


class ZeroDataParallelTrainer:
    """K-rank ZeRO data parallelism over model replicas."""

    def __init__(
        self,
        model_factory,
        num_ranks: int,
        lr: float = 1e-3,
        mixed_precision: bool = True,
        telemetry=None,
    ):
        if num_ranks <= 0:
            raise ConfigurationError("num_ranks must be positive")
        if telemetry is None:
            from repro.telemetry.core import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        #: repro.telemetry.Telemetry: collective byte counters mirror
        #: CommStats so the unified registry sees ZeRO traffic too.
        self.telemetry = telemetry
        self.num_ranks = num_ranks
        self.mixed_precision = mixed_precision
        self.replicas = [model_factory() for _ in range(num_ranks)]
        self._params = [replica.parameters() for replica in self.replicas]
        num_params = len(self._params[0])
        if any(len(params) != num_params for params in self._params):
            raise ShardingError("replicas disagree on parameter count")
        for params in self._params[1:]:
            for a, b in zip(self._params[0], params):
                if a.data.shape != b.data.shape:
                    raise ShardingError("replicas disagree on parameter shapes")
                b.data[...] = a.data  # identical start regardless of factory seed
        # ZeRO partition: parameter i is owned by rank i % K.
        self.owner = [i % num_ranks for i in range(num_params)]
        self.optimizers = [
            MixedPrecisionAdam(
                [self._params[rank][i] for i in range(num_params)
                 if self.owner[i] == rank],
                lr=lr,
            )
            for rank in range(num_ranks)
        ]
        self._owned_indices = [
            [i for i in range(num_params) if self.owner[i] == rank]
            for rank in range(num_ranks)
        ]
        self.comm = CommStats()

    # ------------------------------------------------------------------
    # One synchronous iteration
    # ------------------------------------------------------------------
    def train_step(self, batch: Batch) -> float:
        """Run one data-parallel iteration; returns the mean loss."""
        with self.telemetry.span(
            f"dp_step/{self.comm.iterations}", track="train"
        ):
            micro_batches = self._split(batch)
            losses = []
            for rank, micro in enumerate(micro_batches):
                model = self.replicas[rank]
                logits = model(micro.inputs, self.mixed_precision)
                loss = cross_entropy(logits, micro.targets)
                model.zero_grad()
                loss.backward()
                losses.append(loss.item())

            before_reduce = self.comm.allreduce_bytes
            before_gather = self.comm.gather_bytes
            self._all_reduce_gradients()
            self._owner_updates()
            self._gather_parameters()
            self.comm.iterations += 1
            self.telemetry.record_collective(
                "all_reduce", self.comm.allreduce_bytes - before_reduce
            )
            self.telemetry.record_collective(
                "all_gather", self.comm.gather_bytes - before_gather
            )
        return float(np.mean(losses))

    def _split(self, batch: Batch) -> list[Batch]:
        if batch.inputs.shape[0] % self.num_ranks:
            raise ShardingError(
                f"global batch {batch.inputs.shape[0]} does not split over "
                f"{self.num_ranks} ranks"
            )
        micro = batch.inputs.shape[0] // self.num_ranks
        return [
            Batch(
                inputs=batch.inputs[rank * micro:(rank + 1) * micro],
                targets=batch.targets[rank * micro:(rank + 1) * micro],
            )
            for rank in range(self.num_ranks)
        ]

    def _all_reduce_gradients(self) -> None:
        """Average gradients across replicas (in place on every replica)."""
        num_params = len(self._params[0])
        for i in range(num_params):
            grads = [
                params[i].grad for params in self._params
                if params[i].grad is not None
            ]
            if not grads:
                continue
            mean = np.mean(grads, axis=0)
            for params in self._params:
                params[i].grad = mean.copy()
            self.comm.allreduce_bytes += mean.nbytes

    def _owner_updates(self) -> None:
        """Each rank steps the parameters whose states it owns."""
        for rank, optimizer in enumerate(self.optimizers):
            optimizer.step()

    def _gather_parameters(self) -> None:
        """Broadcast each owner's refreshed parameter to all replicas."""
        for i, owner in enumerate(self.owner):
            fresh = self._params[owner][i].data
            for rank, params in enumerate(self._params):
                if rank != owner:
                    params[i].data[...] = fresh
            self.comm.gather_bytes += fresh.nbytes

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def model(self):
        """Rank 0's replica (all replicas are identical between steps)."""
        return self.replicas[0]

    def optimizer_state_bytes(self, rank: int) -> int:
        """FP32 state bytes held by ``rank`` — the 1/N ZeRO share."""
        optimizer = self.optimizers[rank]
        return sum(
            master.nbytes + m.nbytes + v.nbytes
            for master, m, v in zip(optimizer.master, optimizer.m, optimizer.v)
        )

    def replicas_in_sync(self, atol: float = 0.0) -> bool:
        for params in self._params[1:]:
            for a, b in zip(self._params[0], params):
                if not np.allclose(a.data, b.data, atol=atol):
                    return False
        return True

    # ------------------------------------------------------------------
    # Elastic rescaling (Section 3.1's pause-and-rescale workflow)
    # ------------------------------------------------------------------
    def capture_sharded_state(self):
        """Export the ZeRO-partitioned optimizer state plus parameters."""
        from repro.checkpoint.reshard import ShardedCheckpoint

        state: dict[str, np.ndarray] = {}
        for rank, optimizer in enumerate(self.optimizers):
            for slot, param_index in enumerate(self._owned_indices[rank]):
                state[f"master/{param_index}"] = optimizer.master[slot].reshape(-1)
                state[f"m/{param_index}"] = optimizer.m[slot].reshape(-1)
                state[f"v/{param_index}"] = optimizer.v[slot].reshape(-1)
        checkpoint = ShardedCheckpoint.from_full_state(
            state, self.num_ranks,
            metadata={"adam_t": self.optimizers[0].t},
        )
        checkpoint.metadata["params"] = [
            p.data.copy() for p in self._params[0]
        ]
        return checkpoint

    @staticmethod
    def rescale(trainer: "ZeroDataParallelTrainer", model_factory,
                new_num_ranks: int, lr: float | None = None) -> "ZeroDataParallelTrainer":
        """Resume a paused trainer on a different rank count.

        Re-shards the ZeRO optimizer state exactly (Adam is elementwise),
        so training continues as if the cluster size never changed — the
        paper's seamless-scalability requirement.
        """
        from repro.checkpoint.reshard import reshard

        checkpoint = reshard(trainer.capture_sharded_state(), new_num_ranks)
        full = checkpoint.to_full_state()
        resumed = ZeroDataParallelTrainer(
            model_factory, num_ranks=new_num_ranks,
            lr=lr if lr is not None else trainer.optimizers[0].lr,
            mixed_precision=trainer.mixed_precision,
        )
        params = checkpoint.metadata["params"]
        for replica_params in resumed._params:
            for i, param in enumerate(replica_params):
                param.data[...] = params[i]
        for rank, optimizer in enumerate(resumed.optimizers):
            for slot, param_index in enumerate(resumed._owned_indices[rank]):
                shape = resumed._params[rank][param_index].data.shape
                optimizer.master[slot][...] = full[f"master/{param_index}"].reshape(shape)
                optimizer.m[slot][...] = full[f"m/{param_index}"].reshape(shape)
                optimizer.v[slot][...] = full[f"v/{param_index}"].reshape(shape)
            optimizer.t = int(checkpoint.metadata["adam_t"])
        return resumed
