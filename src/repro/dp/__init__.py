"""Functional ZeRO data parallelism (in-process, numerically real).

Section 3.2's underlying design — data parallelism with parameter
sharding — executed for real: K simulated ranks each hold a model
replica, gradients synchronize by averaging (the all-reduce), each
parameter's optimizer state lives on exactly one owner rank (the ZeRO
partition), and updated parameters broadcast back (the all-gather). The
result is numerically identical to single-process training on the global
batch, which the test suite asserts.
"""

from repro.dp.trainer import ZeroDataParallelTrainer
from repro.dp.zero3 import Zero3Engine
from repro.dp.expert import ExpertParallelTrainer

__all__ = ["ZeroDataParallelTrainer", "Zero3Engine", "ExpertParallelTrainer"]
