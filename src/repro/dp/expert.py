"""Functional expert parallelism (Section 6.4, numerically real).

"Expert parameters within an MoE layer are sharded among all GPUs while
non-MoE parameters are duplicated." Each simulated rank owns a contiguous
block of every MoE layer's experts and a full replica of the dense
parameters. One training step:

1. every rank computes on its micro-batch; token routing inside each
   MoE layer is *global* — tokens travel (logically) to the rank owning
   their expert, and the dispatch/combine byte volumes are accounted as
   the two all-to-alls of the paper;
2. dense (attention, router, embedding, norm) gradients all-reduce;
3. expert gradients update locally on their owner — no synchronization,
   the whole point of expert parallelism.

Because the experts physically live in one process, correctness is
checkable: expert-parallel training must match plain single-process MoE
training exactly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, ShardingError
from repro.nn.data import Batch
from repro.nn.functional import cross_entropy
from repro.nn.layers import MoEFFN, Module
from repro.nn.optim import MixedPrecisionAdam


class ExpertParallelTrainer:
    """Expert-parallel training of a model containing MoEFFN layers."""

    def __init__(
        self,
        model: Module,
        num_ranks: int,
        lr: float = 1e-3,
        mixed_precision: bool = True,
    ):
        if num_ranks <= 0:
            raise ConfigurationError("num_ranks must be positive")
        self.model = model
        self.num_ranks = num_ranks
        self.mixed_precision = mixed_precision

        self.moe_layers = [m for m in model.modules() if isinstance(m, MoEFFN)]
        if not self.moe_layers:
            raise ConfigurationError("model has no MoEFFN layers")
        for moe in self.moe_layers:
            if moe.num_experts % num_ranks:
                raise ShardingError(
                    f"{moe.num_experts} experts do not shard over "
                    f"{num_ranks} ranks"
                )

        # Partition parameters: expert params by owner rank, dense shared.
        expert_param_ids: dict[int, int] = {}
        for moe in self.moe_layers:
            per_rank = moe.num_experts // num_ranks
            for index, expert in enumerate(moe.experts):
                owner = index // per_rank
                for param in expert.parameters():
                    expert_param_ids[id(param)] = owner
        self.dense_params = [
            p for p in model.parameters() if id(p) not in expert_param_ids
        ]
        self.expert_params_by_rank = [
            [p for p in model.parameters() if expert_param_ids.get(id(p)) == rank]
            for rank in range(num_ranks)
        ]
        # One optimizer per rank over its local states (dense states are
        # replicated: every rank updates the same dense values from the
        # same reduced gradients, so one shared dense optimizer is exact).
        self.dense_optimizer = MixedPrecisionAdam(self.dense_params, lr=lr)
        self.expert_optimizers = [
            MixedPrecisionAdam(params, lr=lr)
            for params in self.expert_params_by_rank
        ]
        self.dispatch_bytes = 0
        self.allreduce_bytes = 0

    # ------------------------------------------------------------------
    def expert_owner(self, moe: MoEFFN, expert_index: int) -> int:
        return expert_index // (moe.num_experts // self.num_ranks)

    def _account_alltoall(self, batch: Batch) -> None:
        """Measure the dispatch/combine traffic of this batch's routing."""
        from repro.nn.tensor import Tensor, no_grad
        from repro.nn.functional import softmax

        tokens = batch.inputs.size
        for moe in self.moe_layers:
            # Routing decisions determine which tokens cross ranks. We
            # re-run only the router (cheap) to count them; the model's
            # hidden size fixes the per-token payload.
            d_model = moe.router.in_features
            per_rank_tokens = tokens // self.num_ranks
            # Uniform-routing expectation: a token stays local with
            # probability 1/num_ranks.
            remote_fraction = 1.0 - 1.0 / self.num_ranks
            payload = per_rank_tokens * d_model * 2  # FP16 hidden states
            # dispatch + combine, forward + backward.
            self.dispatch_bytes += int(4 * self.num_ranks * payload * remote_fraction)

    def train_step(self, batch: Batch) -> float:
        """One expert-parallel iteration over the global batch."""
        if batch.inputs.shape[0] % self.num_ranks:
            raise ShardingError(
                f"global batch {batch.inputs.shape[0]} does not split over "
                f"{self.num_ranks} ranks"
            )
        # The shared module computes the global forward exactly as the
        # distributed system would (token routing is data-dependent and
        # global); rank boundaries matter only for where states live.
        logits = self.model(batch.inputs, self.mixed_precision)
        loss = cross_entropy(logits, batch.targets)
        self.model.zero_grad()
        loss.backward()
        self._account_alltoall(batch)

        # Dense gradients all-reduce (replicated parameters).
        for param in self.dense_params:
            if param.grad is not None:
                self.allreduce_bytes += param.grad.nbytes
        self.dense_optimizer.step()
        # Expert updates are local to their owner rank: no communication.
        for optimizer in self.expert_optimizers:
            optimizer.step()
        return loss.item()

    # ------------------------------------------------------------------
    def expert_state_bytes(self, rank: int) -> int:
        """FP32 optimizer state resident on ``rank`` for its experts."""
        optimizer = self.expert_optimizers[rank]
        return sum(
            master.nbytes + m.nbytes + v.nbytes
            for master, m, v in zip(optimizer.master, optimizer.m, optimizer.v)
        )

    def tokens_routed_to(self, batch: Batch) -> list[int]:
        """Tokens each rank's experts would process for ``batch``."""
        from repro.nn.tensor import Tensor, no_grad
        from repro.nn.functional import softmax

        counts = [0] * self.num_ranks
        with no_grad():
            # Probe the first MoE layer's router on the embedded input.
            moe = self.moe_layers[0]
            d_model = moe.router.in_features
            # Use the model's embedding path up to the router's input
            # dimensionality: a uniform probe suffices for load counting.
            rng = np.random.default_rng(0)
            flat = Tensor(
                rng.standard_normal((batch.inputs.size, d_model)).astype(np.float32)
            )
            gate = softmax(moe.router(flat), axis=-1)
            choice = gate.data.argmax(axis=-1)
            per_rank = moe.num_experts // self.num_ranks
            for expert_index in choice:
                counts[expert_index // per_rank] += 1
        return counts
