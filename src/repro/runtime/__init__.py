"""Event-driven schedule execution (Section 5's component architecture).

The Unified Scheduler emits a static task plan; at run time an
event-driven loop dispatches those tasks to three components exactly as
the paper describes — the **Allocator** moves pages between tiers, the
**Executor** launches computations when their inputs' events complete,
and the **Communicator** runs collectives from its queue. This package
executes an Algorithm-1 schedule against the *functional* memory pools,
so the plan's feasibility claims (no OOM, every page present before its
gather) are validated with real page movements rather than arithmetic.

``pipeline`` is the live counterpart: the background prefetch worker and
async writeback queue that drive the same schedule inside the training
engine, overlapping page movement with compute.
"""

from repro.runtime.events import Event, EventBus
from repro.runtime.executor import ScheduleExecutor, ExecutionReport
from repro.runtime.pipeline import (
    MoveGroup,
    PrefetchWorker,
    WritebackQueue,
    coalesce_schedule,
)

__all__ = [
    "Event",
    "EventBus",
    "ScheduleExecutor",
    "ExecutionReport",
    "MoveGroup",
    "PrefetchWorker",
    "WritebackQueue",
    "coalesce_schedule",
]
