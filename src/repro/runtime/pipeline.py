"""Pipelined runtime: schedule-driven asynchronous page movement.

Algorithm 1's output is a list of ``{operation, page, trigger_id}`` tasks;
inside the simulator those tasks overlap with compute for free, but the
live functional engine used to execute every fetch synchronously on first
touch. This module supplies the two background workers that close that
gap:

- :class:`PrefetchWorker` consumes the planned ``move_to_gpu`` /
  ``move_to_cpu`` tasks ahead of the compute loop. Tasks are released by
  trigger id — a fetch may run up to ``window`` triggers ahead of the
  last announced compute op, an eviction never before its trigger — and
  small page moves on the same (src, dst) edge are coalesced into one
  batched transfer per (trigger, layer) group. The compute loop *awaits*
  a layer (already in flight or resident) instead of fetching it; a
  prefetch that cannot fit is abandoned and the demand path (which may
  evict) takes over, so the pipeline is always a performance layer, never
  a correctness layer.

- :class:`WritebackQueue` takes the FP32-state flushes off the update
  path: the sweep enqueues copies of the refreshed master/moment arrays
  and continues, while a writer thread round-trips them through the SSD
  tier. ``wait(key)`` gives the next sweep read-your-writes on a single
  parameter's states; ``barrier()`` flushes everything (checkpoints,
  close); ``abort()`` discards queued writes when the tier dies (the
  optimizer's host arrays stay authoritative, matching
  ``AngelModel.degrade_tier``).

Both workers follow the repo's threading discipline (see
:mod:`repro.lockfree.threaded`): daemon threads, every cross-thread
attribute guarded by one condition variable, errors captured and
re-raised on the training thread at the next step boundary.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.errors import ConfigurationError, OutOfMemoryError, SchedulingError
from repro.lockfree.queues import WorkQueue
from repro.scheduler.tasks import Operation, Schedule


@dataclass(frozen=True)
class MoveGroup:
    """One coalesced page-movement burst: all of a layer's planned pages
    sharing one (trigger, direction) — the unit the worker executes."""

    trigger_id: int
    layer_index: int
    fetch: bool  # True = move_to_gpu, False = move_to_cpu (eviction)
    nbytes: int
    pages: int


def coalesce_schedule(schedule: Schedule) -> list[MoveGroup]:
    """Group the schedule's page moves by (trigger, layer, direction).

    The lifetime scheduler emits per-page tasks in non-decreasing trigger
    order; merging same-edge neighbours turns dozens of page-sized
    transfers into one batched ``move_many`` per layer per trigger,
    mirroring the coalescing the simulator already applies.
    """
    groups: list[MoveGroup] = []
    order: dict[tuple[int, int, bool], int] = {}
    sums: dict[tuple[int, int, bool], list[int]] = {}
    for task in schedule:
        if task.operation == Operation.MOVE_TO_GPU:
            fetch = True
        elif task.operation == Operation.MOVE_TO_CPU:
            fetch = False
        else:
            continue
        key = (task.trigger_id, task.layer_index, fetch)
        if key not in order:
            order[key] = len(order)
            sums[key] = [0, 0]
        sums[key][0] += task.nbytes
        sums[key][1] += 1
    for key in sorted(order, key=lambda k: (k[0], order[k])):
        trigger_id, layer_index, fetch = key
        nbytes, pages = sums[key]
        groups.append(MoveGroup(
            trigger_id=trigger_id, layer_index=layer_index, fetch=fetch,
            nbytes=nbytes, pages=pages,
        ))
    return groups


class PrefetchWorker:
    """Background executor of a planned iteration's page movements.

    ``fetch_fn(layer_index)`` stages a layer's pages on the GPU (raising
    :class:`~repro.errors.OutOfMemoryError` when the pool is full, never
    evicting); ``evict_fn(layer_index)`` returns them to the CPU. Both
    run on the worker thread — the engine serializes them against its
    demand path with its own move lock.
    """

    def __init__(
        self,
        groups: list[MoveGroup],
        fetch_fn,
        evict_fn,
        num_ops: int,
        window: int = 2,
        telemetry=None,
    ):
        if window < 1:
            raise ConfigurationError("prefetch window must be >= 1 trigger")
        if telemetry is None:
            from repro.telemetry.core import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self.telemetry = telemetry
        self.window = window
        self.num_ops = num_ops
        self._groups = list(groups)
        self._fetch_fn = fetch_fn
        self._evict_fn = evict_fn
        #: Guards every cross-thread field below (repro check --self).
        self._cond = threading.Condition()
        self._cursor = len(self._groups)  # idle until begin_iteration()
        self._horizon = 0
        self._inflight: int | None = None  # layer being moved right now
        #: layer -> triggers of its unfinished fetch groups, in order.
        self._undone: dict[int, list[int]] = {}
        self._stopping = False
        self._error: BaseException | None = None
        self.prefetched_bytes = 0
        self.prefetched_groups = 0
        self.abandoned = 0
        self.deferred = 0
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="prefetch"
        )
        self._io_histogram = telemetry.histogram("pipeline.prefetch_seconds")

    # ------------------------------------------------------------------
    # Worker thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        try:
            while True:
                group = self._next_group()
                if group is None:
                    return
                self._execute(group)
        except BaseException as exc:  # re-raised at the step boundary
            with self._cond:
                self._error = exc
                self._inflight = None
                self._undone.clear()
                self._cond.notify_all()

    def _next_group(self) -> MoveGroup | None:
        """Block until the next group's trigger is released (or stop)."""
        with self._cond:
            while True:
                if self._stopping:
                    return None
                if self._cursor < len(self._groups):
                    group = self._groups[self._cursor]
                    ahead = group.trigger_id - self._horizon
                    limit = self.window if group.fetch else 0
                    if ahead <= limit:
                        self._cursor += 1
                        self._inflight = (
                            group.layer_index if group.fetch else None
                        )
                        return group
                self._cond.wait()

    def _execute(self, group: MoveGroup) -> None:
        clock = self.telemetry.clock
        if not group.fetch:
            started = clock.perf()
            self._evict_fn(group.layer_index)
            self._io_histogram.observe(clock.perf() - started)
            return
        moved = self._try_fetch(group)
        if not moved:
            # Ran ahead into a full pool: hold the slot until the group's
            # own trigger is due, then try once more before giving up.
            with self._cond:
                self.deferred += 1
                while (
                    self._horizon < group.trigger_id
                    and not self._stopping
                ):
                    self._cond.wait()
            moved = self._try_fetch(group)
        with self._cond:
            self._inflight = None
            triggers = self._undone.get(group.layer_index, [])
            if group.trigger_id in triggers:
                triggers.remove(group.trigger_id)
                if not triggers:
                    self._undone.pop(group.layer_index, None)
            if moved:
                self.prefetched_groups += 1
                self.prefetched_bytes += group.nbytes
            else:
                self.abandoned += 1
            self._cond.notify_all()
        self.telemetry.record_prefetch("completed" if moved else "abandoned")

    def _try_fetch(self, group: MoveGroup) -> bool:
        clock = self.telemetry.clock
        started = clock.perf()
        try:
            self._fetch_fn(group.layer_index)
        except OutOfMemoryError:
            return False
        self._io_histogram.observe(clock.perf() - started)
        return True

    # ------------------------------------------------------------------
    # Compute-loop side
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._thread.start()

    def begin_iteration(self) -> None:
        """Arm the worker for one iteration's schedule replay."""
        self.raise_if_failed()
        undone: dict[int, list[int]] = {}
        for group in self._groups:
            if group.fetch:
                undone.setdefault(group.layer_index, []).append(
                    group.trigger_id
                )
        with self._cond:
            self._cursor = 0
            self._horizon = 0
            self._undone = undone
            self._cond.notify_all()

    def advance(self, op_id: int) -> None:
        """Announce that compute has reached logical op ``op_id``."""
        with self._cond:
            if op_id > self._horizon:
                self._horizon = op_id
                self._cond.notify_all()

    def await_layer(self, layer_index: int, op_id: int) -> float:
        """Block until no due or in-flight fetch of ``layer_index`` is
        pending; returns the seconds stalled (the overlap-gap metric).

        Only groups whose trigger has been released (``<= op_id``) or
        that are already executing gate the caller — a fetch planned for
        a later trigger cannot be waited on without deadlock, and the
        demand path covers it if it is really needed now.
        """
        clock = self.telemetry.clock
        with self._cond:
            if not self._relevant(layer_index, op_id):
                return 0.0
            started = clock.perf()
            while (
                self._relevant(layer_index, op_id)
                and self._error is None
                and not self._stopping
            ):
                self._cond.wait()
            return clock.perf() - started

    def _relevant(self, layer_index: int, op_id: int) -> bool:
        if self._inflight == layer_index:
            return True
        triggers = self._undone.get(layer_index)
        return bool(triggers) and triggers[0] <= op_id

    def finish_iteration(self, timeout: float = 30.0) -> None:
        """Drain the iteration: release every trigger and join the tail."""
        self.advance(self.num_ops - 1)
        with self._cond:
            drained = self._cond.wait_for(
                lambda: (
                    self._cursor >= len(self._groups)
                    and self._inflight is None
                ) or self._error is not None or self._stopping,
                timeout=timeout,
            )
        self.raise_if_failed()
        if not drained:
            raise SchedulingError(
                f"prefetch worker did not drain the iteration within "
                f"{timeout:.0f}s (stuck page move?)"
            )

    def raise_if_failed(self) -> None:
        with self._cond:
            error = self._error
        if error is not None:
            raise error

    def stop(self, timeout: float = 30.0) -> None:
        with self._cond:
            self._stopping = True
            self._cond.notify_all()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        with self._cond:
            return {
                "groups": len(self._groups),
                "prefetched_groups": self.prefetched_groups,
                "prefetched_bytes": self.prefetched_bytes,
                "abandoned": self.abandoned,
                "deferred": self.deferred,
                "window": self.window,
            }


class WritebackQueue:
    """Asynchronous FP32-state flusher (the update path's d2h+SSD leg).

    ``submit(key, fn)`` enqueues one state write; a daemon writer thread
    executes it through ``io_fn`` (which applies the engine's retry
    policy). The queue is bounded, so a dying SSD tier backpressures the
    sweep instead of ballooning host memory.
    """

    def __init__(self, io_fn, telemetry=None, maxsize: int = 64,
                 wait_timeout: float | None = 60.0):
        if telemetry is None:
            from repro.telemetry.core import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self.telemetry = telemetry
        self._io_fn = io_fn
        #: Default bound on wait()/barrier(): a writer thread that died
        #: without closing the queue surfaces as TimeoutError at the
        #: next sweep instead of a permanent hang.
        self._wait_timeout = wait_timeout
        self._queue = WorkQueue(maxsize=maxsize)
        #: Guards the error slot and counters (repro check --self).
        self._cond = threading.Condition()
        self._error: BaseException | None = None
        self.flushed = 0
        self._seconds = telemetry.histogram("pipeline.writeback_seconds")
        self._depth = telemetry.gauge("pipeline.writeback_depth")
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="writeback"
        )

    # ------------------------------------------------------------------
    # Writer thread
    # ------------------------------------------------------------------
    def _run(self) -> None:
        clock = self.telemetry.clock
        while True:
            entry = self._queue.get()
            if entry is None:
                return
            key, fn = entry
            try:
                started = clock.perf()
                self._io_fn(fn)
                self._seconds.observe(clock.perf() - started)
                with self._cond:
                    self.flushed += 1
            except BaseException as exc:
                with self._cond:
                    self._error = exc
                # Queued writes can no longer be trusted to land; drop
                # them so barrier()/wait() callers wake and see the error
                # instead of hanging on a dead writer.
                self._queue.abort()
                self._queue.task_done(key)
                self._queue.close()
                return
            finally:
                self._depth.set(len(self._queue))
            self._queue.task_done(key)

    # ------------------------------------------------------------------
    # Sweep side
    # ------------------------------------------------------------------
    def start(self) -> None:
        self._thread.start()

    def submit(self, key, fn) -> None:
        self.raise_if_failed()
        self._queue.put(key, fn)
        self._depth.set(len(self._queue))

    def wait(self, key, timeout: float | None = None) -> None:
        """Read-your-writes: block until ``key``'s flushes landed.

        Bounded by ``timeout`` (default: the queue's ``wait_timeout``);
        raises :class:`TimeoutError` instead of hanging on a dead writer.
        """
        try:
            self._queue.wait_key(
                key, timeout if timeout is not None else self._wait_timeout
            )
        except TimeoutError:
            self.raise_if_failed()  # a captured writer error is the cause
            raise
        self.raise_if_failed()

    def barrier(self, timeout: float | None = None) -> None:
        """Block until every submitted write landed (close/checkpoint).

        Bounded like :meth:`wait`; raises :class:`TimeoutError` instead
        of hanging forever.
        """
        try:
            self._queue.wait_idle(
                timeout if timeout is not None else self._wait_timeout
            )
        except TimeoutError:
            self.raise_if_failed()
            raise
        self.raise_if_failed()

    def abort(self) -> int:
        """Drop queued writes and outlast the in-flight one.

        Used on tier death: the optimizer's host arrays mirror the paged
        states, so dropping the queue loses nothing the degradation path
        cannot rebuild. Returns the number of writes dropped.
        """
        dropped = len(self._queue.abort())
        self._queue.wait_idle(self._wait_timeout)
        return dropped

    def raise_if_failed(self) -> None:
        with self._cond:
            error = self._error
        if error is not None:
            raise error

    def close(self, timeout: float = 30.0) -> None:
        self._queue.close()
        if self._thread.is_alive():
            self._thread.join(timeout=timeout)

    def stats(self) -> dict:
        with self._cond:
            return {"flushed": self.flushed, "queued": len(self._queue)}
