"""Out-of-process page copies over named shared arenas.

The GIL is the last serialization point on the page hot path: threads
overlap compute with I/O *waits* (PR 5), but the byte copies themselves
still contend for the interpreter. :class:`PageCopyService` runs those
copies in a dedicated **worker process** that attaches the pools' named
arenas — ``multiprocessing.shared_memory`` segments for RAM tiers, the
preallocated arena file for the SSD tier — by the descriptors the
backends export (:meth:`repro.memory.pool.DevicePool.backend_descriptor`,
following the cluster transport's segment-naming discipline). While the
parent blocks on the worker's ack it holds no GIL, so the compute thread
runs at full speed.

Division of labour with :mod:`repro.runtime.pipeline`: the
:class:`~repro.runtime.pipeline.PrefetchWorker` and
:class:`~repro.runtime.pipeline.WritebackQueue` remain the *control
plane* — they share condition variables and iteration state with the
engine, which only threads can do cheaply — and hand the *data plane*
(the physical gather/scatter) to this service whenever both endpoints
export a descriptor. A fault-injection wrapper deliberately exports
none, so chaos tests keep intercepting every byte in-process.

The worker is started with the ``spawn`` context: the engine runs
prefetch/writeback threads, and forking a multi-threaded process is
undefined behaviour. The worker function lives at module level so spawn
can import it.
"""

from __future__ import annotations

import multiprocessing
import os
import threading

from repro.errors import TransientIOError
from repro.memory.arena import (
    FILE_DESCRIPTOR,
    SHM_DESCRIPTOR,
    arena_session_token,
)


def _attach_view(desc, segments, files):
    """Resolve a descriptor to (kind, handle) in the worker, caching.

    Attachments never owe cleanup: the engine that created an arena
    closes and unlinks it; the worker's cached segments are closed in
    ``_copy_worker``'s shutdown path.
    """
    kind, address = desc
    if kind == SHM_DESCRIPTOR:
        if address not in segments:
            from multiprocessing import resource_tracker, shared_memory

            # Python 3.11 registers attached segments with the resource
            # tracker as if the attacher owned them; it does not — the
            # creating engine unlinks. Spawned workers share the parent's
            # tracker, so letting the registration through (or
            # unregistering it afterwards) would fight the owner's own
            # entry. Suppress registration for the attach only.
            original_register = resource_tracker.register
            resource_tracker.register = lambda name, rtype: None
            try:
                segment = shared_memory.SharedMemory(name=address)
            finally:
                resource_tracker.register = original_register
            segments[address] = (segment, memoryview(segment.buf))
        return SHM_DESCRIPTOR, segments[address][1]
    if kind == FILE_DESCRIPTOR:
        if address not in files:
            files[address] = os.open(address, os.O_RDWR)
        return FILE_DESCRIPTOR, files[address]
    raise ValueError(f"unknown arena descriptor kind {kind!r}")


def _pread_full(fd: int, offset: int, view: memoryview) -> None:
    done = 0
    while done < len(view):
        chunk = os.pread(fd, len(view) - done, offset + done)
        if not chunk:
            raise OSError(
                f"short read at {offset + done}: {done}/{len(view)} bytes"
            )
        view[done:done + len(chunk)] = chunk
        done += len(chunk)


def _pwrite_full(fd: int, offset: int, view: memoryview) -> None:
    done = 0
    while done < len(view):
        done += os.pwrite(fd, view[done:], offset + done)


def _copy_range(src, dst, src_off: int, dst_off: int, nbytes: int) -> None:
    src_kind, src_handle = src
    dst_kind, dst_handle = dst
    if src_kind == SHM_DESCRIPTOR and dst_kind == SHM_DESCRIPTOR:
        dst_handle[dst_off:dst_off + nbytes] = (
            src_handle[src_off:src_off + nbytes]
        )
    elif src_kind == SHM_DESCRIPTOR:
        _pwrite_full(dst_handle, dst_off, src_handle[src_off:src_off + nbytes])
    elif dst_kind == SHM_DESCRIPTOR:
        _pread_full(src_handle, src_off, dst_handle[dst_off:dst_off + nbytes])
    else:
        staging = bytearray(nbytes)
        view = memoryview(staging)
        _pread_full(src_handle, src_off, view)
        _pwrite_full(dst_handle, dst_off, view)


def _copy_worker(conn) -> None:
    """Worker-process main loop: attach arenas, execute copy batches."""
    segments: dict = {}
    files: dict = {}
    try:
        while True:
            # Bounded block: wake periodically so a vanished parent (pipe
            # EOF surfaces via recv below) can never wedge the worker.
            if not conn.poll(1.0):
                continue
            message = conn.recv()
            if message is None:
                break
            src_desc, dst_desc, runs = message
            try:
                src = _attach_view(src_desc, segments, files)
                dst = _attach_view(dst_desc, segments, files)
                for src_off, dst_off, nbytes in runs:
                    _copy_range(src, dst, src_off, dst_off, nbytes)
            except Exception as exc:  # report, keep serving
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
            else:
                conn.send(("ok", len(runs)))
    except (EOFError, OSError):
        pass  # parent went away; exit quietly
    finally:
        for _, view in segments.values():
            view.release()
        for segment, _ in segments.values():
            try:
                segment.close()
            except OSError:
                pass
        for fd in files.values():
            try:
                os.close(fd)
            except OSError:
                pass
        conn.close()


class PageCopyService:
    """A copy worker process plus the parent-side RPC to drive it.

    ``copy`` is synchronous — the caller's move already happens on an
    I/O thread (prefetch worker / writeback queue), so blocking here
    *is* the overlap: the parent blocks in an OS pipe read with the GIL
    released while the worker does the memcpy/file I/O.
    """

    def __init__(self):
        ctx = multiprocessing.get_context("spawn")
        self._parent, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_copy_worker, args=(child,), daemon=True,
            name="repro-page-copy",
        )
        self._proc.start()
        child.close()
        # One outstanding batch at a time; the lock serializes callers
        # (prefetch thread vs writeback threads) onto the single pipe.
        self._lock = threading.Lock()
        self._staging = None
        self._staging_name = None
        self._closed = False

    @property
    def alive(self) -> bool:
        return not self._closed and self._proc.is_alive()

    def _roundtrip(self, message) -> tuple:
        """Send one batch, await its ack; caller holds ``_lock``.

        The poll loop bounds every wait: if the worker process dies the
        next 1 s tick notices and raises instead of blocking forever.
        While this thread sits in ``poll`` it holds no GIL, so the
        compute thread runs at full speed — that wait IS the overlap.
        """
        self._parent.send(message)
        try:
            while not self._parent.poll(1.0):
                if not self._proc.is_alive():
                    raise TransientIOError(
                        "page copy worker died before acknowledging"
                    )
            return self._parent.recv()
        except (EOFError, OSError) as exc:
            raise TransientIOError(
                f"page copy worker died mid-copy: {exc}"
            ) from exc

    def copy(self, src_desc, dst_desc, runs) -> None:
        """Execute ``[(src_off, dst_off, nbytes), ...]`` in the worker."""
        with self._lock:
            if self._closed:
                raise TransientIOError("page copy service is closed")
            status, detail = self._roundtrip(
                (tuple(src_desc), tuple(dst_desc), list(runs))
            )
        if status != "ok":
            raise TransientIOError(f"page copy worker failed: {detail}")

    # ------------------------------------------------------------------
    # Writeback staging: scatter a parent-side payload into an arena
    # ------------------------------------------------------------------
    def _staging_view(self, nbytes: int) -> memoryview:
        """A shared staging segment at least ``nbytes`` big (grown lazily)."""
        from multiprocessing import shared_memory

        from repro.cluster.transport import scoped_segment_name

        if self._staging is None or self._staging.size < nbytes:
            if self._staging is not None:
                self._staging.close()
                try:
                    self._staging.unlink()
                except FileNotFoundError:
                    pass
            name = scoped_segment_name(arena_session_token(), "stage")
            self._staging = shared_memory.SharedMemory(
                create=True, size=max(nbytes, 1), name=name
            )
            self._staging_name = self._staging.name
        return memoryview(self._staging.buf)

    def scatter(self, dst_desc, payload, runs) -> None:
        """Stage ``payload`` once, scatter slices of it into ``dst_desc``.

        ``runs`` are ``(payload_off, dst_off, nbytes)``. The parent pays
        one GIL-releasing memcpy into the staging segment; the worker
        does the per-page scatter against the destination arena.
        """
        source = memoryview(payload).cast("B")
        with self._lock:
            if self._closed:
                raise TransientIOError("page copy service is closed")
            staging = self._staging_view(len(source))
            staging[: len(source)] = source
            staging.release()
            status, detail = self._roundtrip(
                ((SHM_DESCRIPTOR, self._staging_name), tuple(dst_desc),
                 list(runs))
            )
        if status != "ok":
            raise TransientIOError(f"page copy worker failed: {detail}")

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._parent.send(None)
            except (BrokenPipeError, OSError):
                pass
        self._proc.join(timeout=5.0)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=5.0)
        self._parent.close()
        if self._staging is not None:
            self._staging.close()
            try:
                self._staging.unlink()
            except FileNotFoundError:
                pass
            self._staging = None

    def __enter__(self) -> "PageCopyService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
