"""Executes an Algorithm-1 schedule against functional page pools.

This is the validation half of the Unified Scheduler: the plan's
``{operation, page, trigger_id}`` list is dispatched in logical-op order —
moves and gathers release at their trigger, computations launch when the
events of their inputs complete (the paper's event-driven rule) — while
every allocation goes through a real :class:`~repro.memory.pool.DevicePool`
sized to the scheduler's GPU budget. If Algorithm 1's memory arithmetic
were wrong anywhere, the pool would raise :class:`OutOfMemoryError` here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SchedulingError
from repro.hardware.device import DeviceKind
from repro.memory.allocator import PageAllocator
from repro.memory.pool import DevicePool
from repro.runtime.events import EventBus
from repro.scheduler.tasks import Operation, index_by_trigger
from repro.scheduler.unified import IterationPlan


@dataclass
class ExecutionReport:
    """What one schedule replay did, and its observed memory behaviour."""

    moves_executed: int = 0
    gathers_executed: int = 0
    computes_executed: int = 0
    peak_gpu_pages: int = 0
    gpu_pool_pages: int = 0
    events_fired: int = 0
    op_order: list[int] = field(default_factory=list)

    @property
    def peak_gpu_fraction(self) -> float:
        if not self.gpu_pool_pages:
            return 0.0
        return self.peak_gpu_pages / self.gpu_pool_pages


class ScheduleExecutor:
    """Replays an :class:`IterationPlan` over functional pools."""

    #: The planner's memory model tracks exact byte counts; physical
    #: buffers quantize to whole pages, so up to one page per concurrent
    #: buffer (gather + activations + gradients) of slack is needed on
    #: top of the byte budget. Production systems reserve the same way.
    ROUNDING_SLACK_PAGES = 4

    def __init__(
        self,
        plan: IterationPlan,
        gpu_budget_bytes: int,
        page_bytes: int,
        backend: str = "null",
        retry_policy=None,
        telemetry=None,
        forensics=None,
    ):
        self.plan = plan
        self.page_bytes = page_bytes
        #: Optional repro.resilience RetryPolicy: transient faults during
        #: page staging are absorbed without invalidating the schedule.
        self.retry_policy = retry_policy
        if telemetry is None:
            from repro.telemetry.core import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        #: repro.telemetry.Telemetry: replay spans, per-edge page traffic
        #: (via the allocator) and all-gather byte counters.
        self.telemetry = telemetry
        if forensics is None:
            from repro.observe.forensics import ForensicRecorder

            forensics = ForensicRecorder()
        #: repro.observe ForensicRecorder: an OOM during replay carries
        #: the failing trigger id and the tasks the scheduler had planned
        #: there — Algorithm 1's arithmetic error, made legible.
        self.forensics = forensics
        cpu_capacity = max(
            2 * sum(t.shard_bytes for t in plan.layer_pages) + 64 * page_bytes,
            4 * page_bytes,
        )
        self.allocator = PageAllocator(
            {
                DeviceKind.GPU: DevicePool(
                    DeviceKind.GPU,
                    gpu_budget_bytes + self.ROUNDING_SLACK_PAGES * page_bytes,
                    page_bytes,
                    backend=backend,
                ),
                DeviceKind.CPU: DevicePool(
                    DeviceKind.CPU, cpu_capacity, page_bytes, backend=backend
                ),
            },
            retry_policy=retry_policy,
            telemetry=telemetry if telemetry.enabled else None,
            forensics=forensics,
        )
        self.bus = EventBus()

    # ------------------------------------------------------------------
    def run(self) -> ExecutionReport:
        with self.telemetry.span("schedule_replay", track="executor"):
            return self._run()

    def _run(self) -> ExecutionReport:
        plan = self.plan
        trace = plan.trace
        gpu_pool = self.allocator.pool(DeviceKind.GPU)
        report = ExecutionReport(gpu_pool_pages=gpu_pool.num_pages)

        # Materialize every layer's shard as its individual pages on CPU.
        page_tensors: dict[tuple[int, int], object] = {}
        num_pages: dict[int, int] = {}
        for table in plan.layer_pages:
            num_pages[table.layer_index] = table.num_pages
            for page_id in range(table.num_pages):
                page_tensors[(table.layer_index, page_id)] = self.allocator.allocate(
                    (table.page_nbytes(page_id),), np.uint8, DeviceKind.CPU,
                    share_tail=False,
                )

        by_trigger = index_by_trigger(
            plan.schedule, exclude=frozenset({Operation.COMPUTE})
        )
        computes: dict[int, int] = {}
        gather_of_op: dict[int, object] = {}
        for task in plan.schedule:
            if task.operation == Operation.COMPUTE:
                computes[task.op_id] = task.layer_index
            elif task.operation == Operation.ALL_GATHER:
                gather_of_op[task.op_id] = None  # filled when executed

        layer_by_index = {layer.layer_index: layer for layer in trace.layers}
        on_gpu: set[tuple[int, int]] = set()

        def track_peak() -> None:
            report.peak_gpu_pages = max(report.peak_gpu_pages, gpu_pool.pages_in_use)

        for op_id in sorted(computes):
            layer_index = computes[op_id]
            layer = layer_by_index[layer_index]
            # An OOM anywhere in this trigger's work names the trigger and
            # the tasks the scheduler planned to release here.
            self.forensics.set_context(
                trigger_id=op_id, planned_tasks=by_trigger.get(op_id, [])
            )
            self.forensics.sample(op_id, self.allocator.residency_report())

            # Allocator / Communicator tasks released at this trigger.
            # Evictions free space first, then staging moves, then the
            # gather allocations that need the space.
            order = {
                Operation.MOVE_TO_CPU: 0,
                Operation.MOVE_TO_GPU: 1,
                Operation.ALL_GATHER: 2,
            }
            for task in sorted(
                by_trigger.get(op_id, []), key=lambda t: order[t.operation]
            ):
                if task.operation == Operation.MOVE_TO_GPU:
                    key = (task.layer_index, task.page_id)
                    self.allocator.move_pages(
                        [page_tensors[key]], DeviceKind.GPU
                    )
                    on_gpu.add(key)
                    report.moves_executed += 1
                    self.bus.complete(f"move.l{key[0]}.p{key[1]}.t{op_id}")
                elif task.operation == Operation.MOVE_TO_CPU:
                    key = (task.layer_index, task.page_id)
                    self.allocator.move_pages(
                        [page_tensors[key]], DeviceKind.CPU
                    )
                    on_gpu.discard(key)
                    report.moves_executed += 1
                elif task.operation == Operation.ALL_GATHER:
                    missing = [
                        page_id
                        for page_id in range(num_pages[task.layer_index])
                        if (task.layer_index, page_id) not in on_gpu
                    ]
                    if missing:
                        raise SchedulingError(
                            f"gather of layer {task.layer_index} before pages "
                            f"{missing} arrived — the schedule is invalid"
                        )
                    gather_of_op[task.op_id] = self.allocator.allocate(
                        (max(1, task.nbytes),), np.uint8, DeviceKind.GPU,
                        share_tail=False,
                    )
                    report.gathers_executed += 1
                    self.telemetry.record_collective("all_gather", task.nbytes)
                    self.bus.complete(f"gather.op{task.op_id}")
                track_peak()

            # Event-driven launch: the computation fires only once the
            # event of its gathered input has completed (Section 5).
            launched = {"ok": False}

            def launch(op=op_id):
                launched["ok"] = True
                report.computes_executed += 1
                report.op_order.append(op)

            self.bus.when_all([f"gather.op{op_id}"], launch)
            if not launched["ok"]:
                raise SchedulingError(
                    f"compute op {op_id} never received its gather event"
                )

            is_backward = op_id >= trace.num_layers
            if not is_backward:
                # Activations materialize on the GPU during the forward
                # and are released immediately under recomputation.
                acts = self.allocator.allocate(
                    (max(1, layer.act_bytes_fp16),), np.uint8, DeviceKind.GPU,
                    share_tail=False,
                )
                track_peak()
                acts.release()
            else:
                # Backward: transient gradients coexist with the gather.
                grads = self.allocator.allocate(
                    (max(1, layer.grad_bytes_fp16),), np.uint8, DeviceKind.GPU,
                    share_tail=False,
                )
                track_peak()
                grads.release()

            buffer = gather_of_op.get(op_id)
            if buffer is not None:
                buffer.release()
                gather_of_op[op_id] = None

            # After a layer's backward its shard leaves the GPU.
            if is_backward:
                evicting = [
                    (layer_index, page_id)
                    for page_id in range(num_pages[layer_index])
                    if (layer_index, page_id) in on_gpu
                ]
                if evicting:
                    self.allocator.move_pages(
                        [page_tensors[key] for key in evicting],
                        DeviceKind.CPU,
                    )
                    on_gpu.difference_update(evicting)
            track_peak()

        report.events_fired = len(self.bus._events)
        self.telemetry.counter("events.fired").inc(report.events_fired)
        for tensor in page_tensors.values():
            tensor.release()
        return report

    def close(self) -> None:
        self.allocator.close()

    def __enter__(self) -> "ScheduleExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
