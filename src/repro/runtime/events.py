"""A small synchronous event bus.

Section 5: "Sending instructions by the message passing will bring severe
overheads into training, thus we adopt the event-driven programming
techniques. For example, computations will be launched into threads only
if the events of modifying its input tensor are completed."

Events are named one-shot latches; callbacks registered before or after
completion both fire exactly once, in registration order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError


@dataclass
class Event:
    """A one-shot completion latch with callbacks."""

    name: str
    _done: bool = False
    _callbacks: list = field(default_factory=list)

    @property
    def done(self) -> bool:
        return self._done

    def on_complete(self, callback) -> None:
        if self._done:
            callback()
        else:
            self._callbacks.append(callback)

    def complete(self) -> None:
        if self._done:
            raise SchedulingError(f"event {self.name!r} completed twice")
        self._done = True
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback()


class EventBus:
    """Named events with lazy creation and barrier helpers."""

    def __init__(self) -> None:
        self._events: dict[str, Event] = {}

    def event(self, name: str) -> Event:
        if name not in self._events:
            self._events[name] = Event(name)
        return self._events[name]

    def complete(self, name: str) -> None:
        self.event(name).complete()

    def when_all(self, names: list[str], callback) -> None:
        """Fire ``callback`` once every named event has completed."""
        pending = [name for name in names if not self.event(name).done]
        if not pending:
            callback()
            return
        remaining = {"count": len(pending)}

        def arm():
            remaining["count"] -= 1
            if remaining["count"] == 0:
                callback()

        for name in pending:
            self.event(name).on_complete(arm)

    @property
    def incomplete(self) -> list[str]:
        return [name for name, event in self._events.items() if not event.done]
