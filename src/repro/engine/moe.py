"""Expert-parallel training engine for T5-MoE models (Sections 6.4-6.5).

Under expert parallelism the expert parameters of each MoE layer are
sharded across all GPUs while non-MoE parameters are duplicated. Each MoE
layer's forward pass is: attention (dense, local) -> all-to-all dispatch ->
expert FFN on the owning GPUs -> all-to-all combine; the backward pass
mirrors it. Expert optimizer states are updated locally (no gradient
synchronization for experts); dense parameters take an all-reduce.

With the SSD tier enabled, each GPU's expert optimizer states stream
through the CPU from SSD; the lock-free mechanism (Section 4.3) removes
that path from the critical iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.cluster import ClusterSpec
from repro.models.moe import MoEConfig
from repro.models.transformer import FP16, FP32
from repro.tracer.costmodel import CostModel
from repro.sim.engine import Simulator
from repro.zero.collectives import CollectiveModel
from repro.zero.expert_parallel import ExpertParallelPlan


@dataclass(frozen=True)
class MoEIterationResult:
    """Steady-state iteration metrics for an expert-parallel model."""

    iteration_time: float
    samples_per_second: float
    total_params: int
    experts_per_gpu: int
    gpu_busy_fraction: float
    alltoall_fraction: float
    update_sweep_time: float
    staleness: float


class MoESimEngine:
    """Discrete-event model of Angel-PTM's expert-parallel training."""

    #: MoE kernels run far below dense efficiency: every expert processes a
    #: small slice of the batch (narrow GEMMs), and routing/permutation
    #: overhead surrounds each layer. Calibrated against Table 6's sync
    #: throughput at the 10T/576-GPU operating point.
    MOE_COMPUTE_EFFICIENCY = 0.045

    def __init__(self, cluster: ClusterSpec, cost_model: CostModel | None = None):
        self.cluster = cluster
        server = cluster.server
        self.cost = cost_model or CostModel(gpu=server.gpus[0], cpu=server.cpu)
        self.collectives = CollectiveModel(cluster)

    def simulate(
        self,
        moe: MoEConfig,
        num_moe_layers: int,
        micro_batch: int,
        seq_len: int = 2048,
        num_heads: int = 16,
        use_ssd: bool = False,
        lock_free: bool = False,
    ) -> MoEIterationResult:
        """One iteration of the T5-MoE training loop."""
        if num_moe_layers <= 0:
            raise ConfigurationError("num_moe_layers must be positive")
        num_gpus = self.cluster.num_gpus
        server = self.cluster.server
        plan = ExpertParallelPlan(moe, num_gpus, num_moe_layers)
        collect = self.collectives

        tokens = micro_batch * seq_len
        dm = moe.d_model
        # Dense (replicated) per-layer work: attention + router.
        attn_params = 4 * dm * dm
        attn_flops = 2.0 * attn_params * tokens
        # Expert work landing on each GPU: with uniform top-k routing and
        # capacity factor 1 every GPU processes its share of routed tokens,
        # which equals its local token count.
        expert_flops = 2.0 * moe.expert_param_count * tokens * moe.top_k
        efficiency = self.cost.efficiency(micro_batch) * (
            self.MOE_COMPUTE_EFFICIENCY / self.cost.base_efficiency
        )
        gpu_flops = server.gpus[0].compute_flops * efficiency
        fwd_dense = attn_flops / gpu_flops
        fwd_expert = expert_flops / gpu_flops

        a2a_fwd = plan.alltoall_time_per_layer(collect, micro_batch, seq_len)

        sim = Simulator()
        gpu = sim.stream("gpu", "compute")
        nccl = sim.stream("nccl", "nccl")
        cpu = sim.stream("cpu", "cpu")
        h2d = sim.stream("h2d", "pcie")
        d2h = sim.stream("d2h", "pcie")
        # Each rank streams its optimizer shard from its own NVMe device;
        # reads and writes pipeline on independent queues (full duplex).
        ssd_read_stream = sim.stream("ssd.read", "ssd")
        ssd_write_stream = sim.stream("ssd.write", "ssd")

        # The buffered FP16 parameters of this rank's experts live in CPU
        # memory (Algorithm 2's p'16 buffers) and cross PCIe every pass;
        # computed gradients flow back over PCIe after each backward layer.
        expert_layer_fp16 = (
            plan.expert_params_per_gpu // num_moe_layers
        ) * FP16

        prev = None
        for phase, scale in (("fwd", 1.0), ("bwd", 2.0)):
            for i in range(num_moe_layers):
                deps = [prev] if prev is not None else []
                fetch = sim.add_task(
                    f"{phase}.fetch.l{i}", h2d,
                    server.pcie.transfer_time(expert_layer_fp16), deps=deps,
                )
                dense = sim.add_task(
                    f"{phase}.attn.l{i}", gpu, scale * fwd_dense, deps=deps
                )
                dispatch = sim.add_task(
                    f"{phase}.a2a1.l{i}", nccl, scale * a2a_fwd / 2, deps=[dense]
                )
                expert = sim.add_task(
                    f"{phase}.expert.l{i}", gpu, scale * fwd_expert,
                    deps=[dispatch, fetch],
                )
                prev = sim.add_task(
                    f"{phase}.a2a2.l{i}", nccl, scale * a2a_fwd / 2, deps=[expert]
                )
                if phase == "bwd":
                    prev = sim.add_task(
                        f"bwd.offload.l{i}", d2h,
                        server.pcie.transfer_time(expert_layer_fp16),
                        deps=[prev],
                    )

        # Dense gradient all-reduce (attention + router are replicated).
        dense_grad_bytes = num_moe_layers * (attn_params + dm * moe.num_experts) * FP16
        grad_sync = sim.add_task(
            "dense.allreduce", nccl,
            collect.all_reduce(dense_grad_bytes, num_gpus), deps=[prev],
        )

        # Local expert updates: memory-bound Adam over this GPU's experts.
        expert_params_local = plan.expert_params_per_gpu
        dense_params_local = dense_grad_bytes // FP16
        update_tasks = []
        last = None
        ssd_link = server.ssd_io
        optim_bytes_local = 3 * expert_params_local * FP32
        per_layer_params = expert_params_local // num_moe_layers
        per_layer_optim = optim_bytes_local // num_moe_layers
        for i in range(num_moe_layers):
            deps = [grad_sync] if last is None else [last]
            if use_ssd:
                if ssd_link is None:
                    raise ConfigurationError("cluster has no SSD tier")
                read = sim.add_task(
                    f"ssd.read.l{i}", ssd_read_stream,
                    ssd_link.transfer_time(per_layer_optim),
                )
                deps.append(read)
            update = sim.add_task(
                f"upd.l{i}", cpu,
                self.cost.cpu_update_time(per_layer_params + dense_params_local // num_moe_layers),
                deps=deps,
            )
            last = update
            update_tasks.append(update)
            if use_ssd:
                write = sim.add_task(
                    f"ssd.write.l{i}", ssd_write_stream,
                    ssd_link.transfer_time(per_layer_optim), deps=[update],
                )
                update_tasks.append(write)

        timeline = sim.run()
        gpu_path_end = timeline.end_of(grad_sync.name)
        update_end = max(timeline.end_of(t.name) for t in update_tasks)
        update_sweep = update_end - timeline.end_of(grad_sync.name)
        if lock_free:
            iteration_time = gpu_path_end
            staleness = update_sweep / gpu_path_end if gpu_path_end else 0.0
        else:
            iteration_time = timeline.makespan
            staleness = 0.0

        total_params = (
            moe.total_expert_params * num_moe_layers
            + dense_params_local * 1  # replicated dense parameters
        )
        global_batch = micro_batch * num_gpus
        alltoall_time = timeline.busy_time(kind="nccl")
        return MoEIterationResult(
            iteration_time=iteration_time,
            samples_per_second=global_batch / iteration_time,
            total_params=total_params,
            experts_per_gpu=plan.experts_per_gpu,
            gpu_busy_fraction=timeline.busy_time(stream="gpu") / iteration_time,
            alltoall_fraction=alltoall_time / iteration_time,
            update_sweep_time=update_sweep,
            staleness=staleness,
        )
