"""Plan an Algorithm-1 schedule from the live engine's own trace.

The paper's Tracer exploits the iterative nature of training: iteration
1's access pattern predicts every later one (Section 4.2). The functional
engine already records that pattern — the first-touch order of its
parameterized modules — so this module converts it into a genuine
:class:`~repro.tracer.tracer.IterationTrace` and runs the *same* planning
pipeline (:func:`~repro.scheduler.unified.plan_iteration`: page tables,
dynamic GPU cache, memory model, the lifetime scheduler) the analytic
simulator uses. The resulting :class:`IterationPlan` drives the engine's
prefetch worker, and is verifiable with ``repro check --schedule`` /
:func:`repro.analysis.verifier.verify_plan` exactly like a simulated
plan.

Logical-ID convention (matching :mod:`repro.tracer.tracer`): each
distinct parameterized module, in first-touch order, is one "layer" — the
forward of layer ``i`` is op ``i``, its backward op ``2L - 1 - i``, its
update op ``2L + (L - 1 - i)``; an iteration spans ``3L`` ops.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.models.transformer import TensorKind
from repro.scheduler.unified import IterationPlan, plan_iteration
from repro.tracer.access import AccessPattern, TensorAccess
from repro.tracer.tracer import IterationTrace, LayerTrace


def live_layer_modules(engine) -> list:
    """Distinct parameterized modules in first-touch order (the layers)."""
    seen: set[int] = set()
    modules = []
    for module_id in engine._module_order:
        if module_id in seen:
            continue  # recompute revisits keep the first-touch slot
        seen.add(module_id)
        modules.append(engine._module_of_id[module_id])
    return modules


def record_live_trace(engine) -> IterationTrace:
    """Build an :class:`IterationTrace` from the engine's first iteration.

    Byte sizes come from the engine's actual paged tensors (FP16 working
    copies and FP32 master/moment states); activations are not paged by
    the functional engine, so their GPU load contribution is zero and the
    trace records none. Op durations are not needed by the planner or
    verifier and are left at zero — re-simulating a live plan uses the
    analytic cost model instead.
    """
    modules = live_layer_modules(engine)
    if not modules:
        raise ConfigurationError(
            "no recorded module accesses; run one training iteration first"
        )
    num_layers = len(modules)
    num_ops = 3 * num_layers
    accesses: list[TensorAccess] = []
    layers: list[LayerTrace] = []
    next_tensor_id = 0
    for index, module in enumerate(modules):
        fwd_id = index
        bwd_id = 2 * num_layers - 1 - index
        update_id = 2 * num_layers + (num_layers - 1 - index)
        managed = [
            engine._by_param[id(p)] for p in module._parameters.values()
        ]
        param_bytes = sum(m.fp16.nbytes for m in managed)
        optim_bytes = sum(
            m.master.nbytes + m.moment1.nbytes + m.moment2.nbytes
            for m in managed
        )
        param_count = sum(m.param.size for m in managed)
        for m in managed:
            accesses.append(TensorAccess(
                tensor_id=next_tensor_id,
                name=m.name,
                first_id=fwd_id,
                end_id=update_id,
                cpu_time=0.0,
                gpu_time=0.0,
                nbytes=m.fp16.nbytes,
                kind=TensorKind.PARAM,
                layer_index=index,
            ))
            next_tensor_id += 1
            accesses.append(TensorAccess(
                tensor_id=next_tensor_id,
                name=f"{m.name}.grad",
                first_id=bwd_id,
                end_id=update_id,
                cpu_time=0.0,
                gpu_time=0.0,
                nbytes=m.fp16.nbytes,
                kind=TensorKind.PARAM,
                layer_index=index,
            ))
            next_tensor_id += 1
            accesses.append(TensorAccess(
                tensor_id=next_tensor_id,
                name=f"{m.name}.optim",
                first_id=update_id,
                end_id=update_id,
                cpu_time=0.0,
                gpu_time=0.0,
                nbytes=m.master.nbytes + m.moment1.nbytes + m.moment2.nbytes,
                kind=TensorKind.OPTIM,
                layer_index=index,
            ))
            next_tensor_id += 1
        layers.append(LayerTrace(
            layer_index=index,
            name=type(module).__name__,
            fwd_id=fwd_id,
            bwd_id=bwd_id,
            update_id=update_id,
            fwd_time=0.0,
            bwd_time=0.0,
            recompute_time=0.0,
            cpu_update_time=0.0,
            gpu_update_time=0.0,
            param_bytes_fp16=param_bytes,
            grad_bytes_fp16=param_bytes,
            optim_bytes_fp32=optim_bytes,
            act_bytes_fp16=0,
            param_count=param_count,
        ))
    pattern = AccessPattern(accesses=tuple(accesses), num_ops=num_ops)
    return IterationTrace(
        model_name=f"live:{type(engine.module).__name__}",
        pattern=pattern,
        layers=tuple(layers),
        batch_size=0,
        seq_len=0,
    )


def build_live_plan(engine, telemetry=None) -> IterationPlan:
    """Plan the engine's recorded iteration with the unified pipeline.

    The GPU budget is the engine's configured GPU pool; one rank is
    planned (the functional engine trains a single rank; under ZeRO data
    parallelism ranks are symmetric).
    """
    trace = record_live_trace(engine)
    return plan_iteration(
        trace,
        gpu_budget_bytes=engine.config.gpu_memory_bytes,
        num_ranks=1,
        page_bytes=engine.config.page_bytes,
        micro_batch=1,
        use_recompute=False,
        telemetry=telemetry,
    )
