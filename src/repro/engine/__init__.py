"""Angel-PTM engines: capacity planning and the Figure-6 training API.

``planner`` answers "what is the largest model / batch this cluster can
train?" for Angel-PTM and the baselines (Table 5). ``angel`` exposes the
paper's programming interface (Figure 6) over the functional numpy
substrate, so real models actually train through the paged hierarchical
memory.
"""

from repro.engine.planner import CapacityPlanner, CapacityReport
from repro.engine.angel import AngelConfig, AngelModel, initialize
from repro.engine.liveplan import build_live_plan, record_live_trace
from repro.engine.moe import MoEIterationResult, MoESimEngine

__all__ = [
    "CapacityPlanner",
    "CapacityReport",
    "AngelConfig",
    "AngelModel",
    "initialize",
    "build_live_plan",
    "record_live_trace",
    "MoESimEngine",
    "MoEIterationResult",
]
