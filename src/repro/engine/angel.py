"""The Angel-PTM programming interface (Figure 6), functional mode.

``initialize(model, optimizer, config)`` wraps a numpy model so that its
FP16 working parameters and FP32 optimizer states physically live in paged
hierarchical memory: a capacity-limited "GPU" pool, a CPU pool, and an
optional file-backed SSD pool. Forward hooks fetch each module's parameter
pages into the GPU pool on first touch (evicting least-recently-used pages
under pressure), the backward pass deposits gradients into CPU buffers,
and ``step()`` round-trips the FP32 master states through their pages —
through real file I/O when the SSD tier is enabled.

With ``pipeline=True`` the engine becomes schedule-driven after its first
(recording) iteration: the recorded access pattern is planned by the same
Algorithm-1 pipeline the simulator uses (:mod:`repro.engine.liveplan`), a
background prefetch worker stages pages ahead of the compute loop
(:mod:`repro.runtime.pipeline`), the forward hooks *await* a layer instead
of fetching it, FP32-state flushes move to an async writeback queue, and
the planned dynamic GPU cache (Section 4.2) is installed live. Numerics
are bit-identical to the synchronous path — the pipeline only reorders
byte-preserving page movements.

The training loop is exactly the paper's:

    model = angelptm.initialize(model, optimizer, config)
    for batch in batches:
        loss = model(batch)
        model.backward(loss)
        model.step()
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigurationError, OutOfMemoryError
from repro.hardware.device import DeviceKind
from repro.lockfree.buffers import GradientBuffers
from repro.memory.allocator import PageAllocator, PageQuota
from repro.memory.pool import DevicePool
from repro.memory.tensor import PagedTensor
from repro.nn.data import Batch
from repro.nn.functional import cross_entropy
from repro.nn.layers import Module
from repro.nn.optim import MixedPrecisionAdam
from repro.nn.tensor import Tensor
from repro.protocols import FaultPlanLike, RetryPolicyLike, TelemetryLike
from repro.units import KiB, MiB

if TYPE_CHECKING:  # pragma: no cover - the scheduler builds on the engine
    from repro.scheduler.unified import IterationPlan

#: AngelConfig fields that round-trip through ``to_dict``/``from_dict``.
#: Collaborator objects (fault_plan, retry_policy, telemetry) and a
#: pre-built plan are live-only and intentionally excluded.
_ANGEL_CONFIG_FIELDS = (
    "gpu_memory_bytes",
    "cpu_memory_bytes",
    "ssd_bytes",
    "page_bytes",
    "mixed_precision",
    "lock_free",
    "update_interval",
    "ssd_path",
    "pipeline",
    "prefetch_window",
    "writeback",
    "io_workers",
    "owner",
)


@dataclass(frozen=True)
class AngelConfig:
    """Functional-engine configuration (the ``config`` of Figure 6)."""

    gpu_memory_bytes: int = 64 * MiB
    cpu_memory_bytes: int = 256 * MiB
    ssd_bytes: int = 0
    page_bytes: int = 256 * KiB
    mixed_precision: bool = True
    lock_free: bool = False
    update_interval: int = 1
    ssd_path: str | None = None
    #: Schedule-driven pipelined runtime: after the recording iteration,
    #: plan the access pattern and drive prefetch/eviction/writeback from
    #: background workers (Section 4.3's hierarchical pipeline, live).
    pipeline: bool = False
    #: How many triggers ahead of the compute horizon the prefetch worker
    #: may run (the bounded in-flight window).
    prefetch_window: int = 2
    #: Flush FP32 states through the async writeback queue instead of
    #: synchronously inside the update sweep (pipeline mode only).
    writeback: bool = True
    #: Where the page-copy data plane runs. ``"thread"`` keeps every byte
    #: copy in-process (the PR 5 behaviour); ``"process"`` backs the GPU
    #: and CPU pools with named shared-memory arenas and routes coalesced
    #: page copies plus FP32-state scatters through a
    #: :class:`~repro.runtime.ioproc.PageCopyService` worker process —
    #: outside this interpreter's GIL. The prefetch/writeback *control*
    #: plane stays on threads either way (it shares condition variables
    #: with the compute loop); only the data plane moves.
    io_workers: str = "thread"
    #: Tenant this engine's pages belong to under multi-tenancy
    #: (``repro.fleet``); labels every page and names the pools.
    owner: str | None = None
    #: Optional shared repro.memory.PageQuota ledger the allocator charges
    #: page acquisitions against (requires ``owner``); exceeding the
    #: tenant's share raises a typed QuotaExceededError. Live-only.
    quota: "PageQuota | None" = None
    #: Optional pre-built repro.scheduler.IterationPlan to execute instead
    #: of planning from the engine's own recorded trace — the same plan
    #: object can flow simulator -> live engine -> verifier.
    plan: "IterationPlan | None" = None
    #: Optional repro.resilience.FaultPlan injected into the SSD tier's
    #: physical backend (chaos testing, Section 3.1's failure model).
    fault_plan: FaultPlanLike | None = None
    #: Optional repro.resilience.RetryPolicy absorbing transient tier I/O
    #: errors on page moves and FP32-state round trips.
    retry_policy: RetryPolicyLike | None = None
    #: Optional repro.telemetry.Telemetry: spans for forward/backward and
    #: update sweeps, per-(src, dst) page-traffic counters, cache hit
    #: rates and sweep-latency histograms. ``None`` keeps the engine on
    #: the no-op fast path.
    telemetry: TelemetryLike | None = None

    def __post_init__(self) -> None:
        if self.update_interval < 1:
            raise ConfigurationError("update_interval must be >= 1")
        if self.lock_free and self.update_interval < 2:
            raise ConfigurationError(
                "lock-free mode implies update_interval >= 2 "
                "(1 is synchronous training)"
            )
        if self.prefetch_window < 1:
            raise ConfigurationError("prefetch_window must be >= 1")
        if self.io_workers not in ("thread", "process"):
            raise ConfigurationError(
                "io_workers must be 'thread' or 'process', "
                f"got {self.io_workers!r}"
            )
        if self.quota is not None and self.owner is None:
            raise ConfigurationError("quota enforcement requires an owner")

    def to_dict(self) -> dict:
        """Serializable knobs; collaborators and plans stay live-only."""
        return {name: getattr(self, name) for name in _ANGEL_CONFIG_FIELDS}

    @classmethod
    def from_dict(cls, config: dict) -> "AngelConfig":
        """Build a config from a parsed JSON object.

        Shares the unknown-field guard with the cluster schema
        (:func:`repro.hardware.config_io.reject_unknown_fields`); value
        validation is ``__post_init__``'s, same as direct construction.
        """
        # Deferred import: hardware.config_io is a leaf, but keep the
        # engine's import set minimal for non-serializing users.
        from repro.hardware.config_io import reject_unknown_fields

        reject_unknown_fields(config, _ANGEL_CONFIG_FIELDS, "engine")
        return cls(**config)


@dataclass
class _Managed:
    """One parameter's presence across the memory hierarchy."""

    index: int
    name: str
    param: Tensor
    fp16: PagedTensor     # buffered FP16 parameters (p'16)
    master: PagedTensor   # FP32 master parameters (p32)
    moment1: PagedTensor  # FP32 first moment (m32)
    moment2: PagedTensor  # FP32 second moment (v32)
    last_access: int = -1
    first_access: int = -1


class AngelModel:
    """A model wrapped by the Angel-PTM functional engine."""

    def __init__(self, model: Module, optimizer: MixedPrecisionAdam, config: AngelConfig):
        if not isinstance(optimizer, MixedPrecisionAdam):
            raise ConfigurationError(
                "the functional engine requires MixedPrecisionAdam "
                "(FP32 master states, Section 2.1)"
            )
        self.module = model
        self.optimizer = optimizer
        self.config = config
        self._clock = 0
        self._iteration = 0
        self._pending = 0
        # _move_lock serializes page movement between the prefetch worker
        # and the demand-fetch / sweep paths; _io_lock serializes
        # state-tier I/O between the writeback worker and synchronous
        # sweep reads (the file backend's seek+read/write pairs are not
        # atomic). Created before _register_parameters, which does I/O.
        self._move_lock = threading.RLock()
        self._io_lock = threading.Lock()
        if config.telemetry is not None:
            self.telemetry = config.telemetry
        else:
            # Deferred import keeps the default construction path light.
            from repro.telemetry.core import NULL_TELEMETRY

            self.telemetry = NULL_TELEMETRY
        telemetry = self.telemetry if self.telemetry.enabled else None

        # Process-mode data plane: RAM tiers live in *named* shared-memory
        # arenas so the copy worker can attach them by descriptor.
        ram_backend = "shm" if config.io_workers == "process" else "ram"
        pools = {
            DeviceKind.GPU: DevicePool(
                DeviceKind.GPU, config.gpu_memory_bytes, config.page_bytes,
                backend=ram_backend, telemetry=telemetry, owner=config.owner,
            ),
            DeviceKind.CPU: DevicePool(
                DeviceKind.CPU, config.cpu_memory_bytes, config.page_bytes,
                backend=ram_backend, telemetry=telemetry, owner=config.owner,
            ),
        }
        if config.ssd_bytes:
            pools[DeviceKind.SSD] = DevicePool(
                DeviceKind.SSD, config.ssd_bytes, config.page_bytes,
                backend="file", file_path=config.ssd_path, telemetry=telemetry,
                owner=config.owner,
            )
            if config.fault_plan is not None:
                # Deferred import: repro.resilience builds on this engine.
                from repro.resilience.faults import inject_faults

                inject_faults(pools[DeviceKind.SSD], config.fault_plan, tier="ssd")
        # Deferred import: repro.observe consumes this engine's telemetry.
        from repro.observe.forensics import ForensicRecorder

        #: Memory forensics: waterline timeline sampled at step boundaries;
        #: any OOM raised by the pools carries a dump (``exc.forensics``).
        self.forensics = ForensicRecorder()
        self.allocator = PageAllocator(
            pools, retry_policy=config.retry_policy, telemetry=telemetry,
            forensics=self.forensics, owner=config.owner, quota=config.quota,
        )
        self._state_tier = DeviceKind.SSD if config.ssd_bytes else DeviceKind.CPU

        #: Out-of-process data plane (io_workers="process"): coalesced
        #: page-run copies and FP32-state scatters execute in the copy
        #: worker, leaving this interpreter's GIL to the compute thread.
        self._io_service = None
        if config.io_workers == "process":
            # Deferred import: multiprocessing spawn machinery is only
            # paid for by engines that opt in.
            from repro.runtime.ioproc import PageCopyService

            self._io_service = PageCopyService()
            self.allocator.io_service = self._io_service

        self._managed: list[_Managed] = []
        self._by_param: dict[int, _Managed] = {}
        try:
            self._register_parameters()
        except Exception:
            # A half-registered engine has no handle the caller could close;
            # return the pages (and any quota charges) before propagating —
            # a tenant rejected at its quota must not leak charged pages.
            self.allocator.close()
            if self._io_service is not None:
                self._io_service.close()
            raise
        self._buffers = GradientBuffers([m.param for m in self._managed])
        self._install_hooks()

        # Tracer-informed prefetch: training is iterative, so the module
        # access order recorded in the first iteration predicts every
        # later one (Section 4.2). While module k computes, module k+1's
        # pages are staged if the pool has room.
        self._module_order: list[int] = []      # module ids, first iteration
        self._module_cursor = 0
        self._order_recorded = False
        self._module_of_id: dict[int, Module] = {}
        self.prefetch_hits = 0
        self.demand_fetches = 0
        # GPU-cache and eviction counters, fetched once (identity-stable).
        self._hits_counter = self.telemetry.counter("cache.prefetch_hits")
        self._demand_counter = self.telemetry.counter("cache.demand_fetches")
        self._evict_counter = self.telemetry.counter("pages.evictions")
        # Pending-iterations-behind gauge: the watchdog's staleness signal.
        self._lag_gauge = self.telemetry.gauge("updater.lag_iterations")

        # Pipelined runtime, constructed lazily once the recording
        # iteration completes (see _start_pipeline).
        self._pipeline = None
        self._writeback = None
        self._live_plan: "IterationPlan | None" = config.plan
        self._layer_modules: list[Module] = []
        self._layer_managed: list[list[_Managed]] = []
        self._layer_of_module: dict[int, int] = {}
        self._cache_resident: set[int] = set()
        self._stall_seconds = 0.0
        self._demand_seconds = 0.0

    # ------------------------------------------------------------------
    # Registration and hooks
    # ------------------------------------------------------------------
    def _register_parameters(self) -> None:
        params = list(self.module.named_parameters())
        if len(params) != len(self.optimizer.params):
            raise ConfigurationError("optimizer does not cover the model's parameters")
        for index, (name, param) in enumerate(params):
            fp16 = self.allocator.allocate(param.shape, np.float16, DeviceKind.CPU)
            fp16.write_array(param.data.astype(np.float16))
            master = self.allocator.allocate(param.shape, np.float32, self._state_tier)
            self._io(lambda t=master, p=param: t.write_array(p.data))
            moment1 = self.allocator.allocate(param.shape, np.float32, self._state_tier)
            self._io(lambda t=moment1: t.fill(0.0))
            moment2 = self.allocator.allocate(param.shape, np.float32, self._state_tier)
            self._io(lambda t=moment2: t.fill(0.0))
            managed = _Managed(
                index=index, name=name, param=param, fp16=fp16,
                master=master, moment1=moment1, moment2=moment2,
            )
            self._managed.append(managed)
            self._by_param[id(param)] = managed

    def _io(self, fn):
        """Run a paged-state I/O op under the configured retry policy.

        The lock keeps the writeback worker's flushes and the sweep's
        synchronous reads from interleaving inside the shared file
        backend.
        """
        policy = self.config.retry_policy
        with self._io_lock:
            if policy is None:
                return fn()
            return policy.run(fn)

    def _install_hooks(self) -> None:
        for module in self.module.modules():
            if module._parameters:
                module.add_forward_hook(self._on_module_forward)

    def _on_module_forward(self, module: Module) -> None:
        """Fetch (sync) or await (pipelined) the module's parameter pages."""
        self._record_access(module)
        needed = [self._by_param[id(p)] for p in module._parameters.values()]
        pinned = {m.index for m in needed}
        if self._pipeline is not None:
            self._await_module(module)
        with self._move_lock:
            for managed in needed:
                if managed.fp16.device_kind == DeviceKind.GPU:
                    self.prefetch_hits += 1
                    self._hits_counter.inc()
                else:
                    self.demand_fetches += 1
                    self._demand_counter.inc()
                self._fetch(managed, pinned=pinned)
        if self._pipeline is None:
            self._prefetch_next(pinned=pinned)

    def _await_module(self, module: Module) -> None:
        """Release due schedule triggers and wait for this layer's fetch.

        The first visit in an iteration is the layer's forward op; a
        revisit (recompute during backward) lands at a later horizon, so
        ``advance`` — which is monotonic — simply keeps the released
        horizon at the furthest op seen.
        """
        layer = self._layer_of_module.get(id(module))
        if layer is None:
            return  # module appeared after recording; demand path covers it
        self._pipeline.advance(layer)
        stalled = self._pipeline.await_layer(layer, layer)
        if stalled > 0.0:
            self._stall_seconds += stalled
            self.telemetry.record_stall("cpu->gpu", stalled)

    # ------------------------------------------------------------------
    # Tracer-informed prefetch
    # ------------------------------------------------------------------
    def _record_access(self, module: Module) -> None:
        if not self._order_recorded:
            self._module_order.append(id(module))
            self._module_of_id[id(module)] = module
            return
        # Keep the replay cursor aligned with the recorded order; the
        # order can repeat within an iteration (e.g. recompute), so we
        # resynchronize by searching forward.
        order = self._module_order
        cursor = self._module_cursor
        for offset in range(len(order)):
            if order[(cursor + offset) % len(order)] == id(module):
                self._module_cursor = (cursor + offset + 1) % len(order)
                return

    def _prefetch_next(self, pinned: set[int]) -> None:
        """Best-effort staging of the next module's parameters."""
        if not self._order_recorded or not self._module_order:
            return
        next_id = self._module_order[self._module_cursor % len(self._module_order)]
        next_module = self._module_of_id.get(next_id)
        if next_module is None:
            return
        for param in next_module._parameters.values():
            managed = self._by_param[id(param)]
            if managed.fp16.device_kind == DeviceKind.GPU:
                continue
            try:
                self.allocator.move_pages([managed.fp16], DeviceKind.GPU)
            except OutOfMemoryError:
                return  # best effort: never evict for a prefetch

    def _fetch(self, managed: _Managed, pinned: set[int]) -> None:
        self._clock += 1
        if managed.first_access < 0:
            managed.first_access = self._clock
        managed.last_access = self._clock
        if managed.fp16.device_kind != DeviceKind.GPU:
            started = self.telemetry.clock.perf()
            self._move_with_eviction(managed, pinned)
            self._demand_seconds += self.telemetry.clock.perf() - started
        # The compute path reads the buffered FP16 parameters.
        managed.param.data[...] = managed.fp16.read_array().astype(np.float32)

    def _move_with_eviction(self, managed: _Managed, pinned: set[int]) -> None:
        # An OOM here is the interesting kind: record what could not move.
        self.forensics.set_context(
            pinned=sorted(self._managed[i].name for i in pinned)
        )
        while True:
            try:
                self.allocator.move_pages([managed.fp16], DeviceKind.GPU)
                return
            except OutOfMemoryError:
                victim = self._pick_victim(pinned)
                if victim is None:
                    raise
                self._evict_counter.inc()
                self.allocator.move_pages([victim.fp16], DeviceKind.CPU)

    def _pick_victim(self, pinned: set[int]) -> _Managed | None:
        """Least-recently-used GPU-resident parameter outside ``pinned``."""
        candidates = [
            m for m in self._managed
            if m.index not in pinned and m.fp16.device_kind == DeviceKind.GPU
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda m: m.last_access)

    # ------------------------------------------------------------------
    # Pipelined runtime (schedule-driven, Section 4.3 live)
    # ------------------------------------------------------------------
    def _start_pipeline(self) -> None:
        """Plan the recorded iteration and start the background workers.

        Runs once, at the end of the first (recording) step. The plan is
        either the one injected via ``config.plan`` or built from the
        engine's own trace through the unified planning pipeline; both go
        through the same :class:`IterationPlan` currency the simulator
        and ``repro check --schedule`` consume.
        """
        # Deferred imports: liveplan pulls in the scheduler stack, which
        # builds on this engine.
        from repro.engine.liveplan import build_live_plan, live_layer_modules
        from repro.runtime.pipeline import (
            PrefetchWorker,
            WritebackQueue,
            coalesce_schedule,
        )

        modules = live_layer_modules(self)
        plan = self.config.plan
        if plan is None:
            telemetry = self.telemetry if self.telemetry.enabled else None
            plan = build_live_plan(self, telemetry=telemetry)
        if plan.trace.num_layers != len(modules):
            raise ConfigurationError(
                f"injected plan covers {plan.trace.num_layers} layers but the "
                f"engine recorded {len(modules)} parameterized modules"
            )
        self._live_plan = plan
        self._layer_modules = modules
        self._layer_of_module = {id(m): i for i, m in enumerate(modules)}
        self._layer_managed = [
            [self._by_param[id(p)] for p in m._parameters.values()]
            for m in modules
        ]
        self._install_cache(plan)
        if self.config.writeback:
            self._writeback = WritebackQueue(self._io, telemetry=self.telemetry)
            self._writeback.start()
        worker = PrefetchWorker(
            coalesce_schedule(plan.schedule),
            self._pipeline_fetch,
            self._pipeline_evict,
            num_ops=plan.trace.num_ops,
            window=self.config.prefetch_window,
            telemetry=self.telemetry,
        )
        worker.start()
        worker.begin_iteration()
        self._pipeline = worker

    def _install_cache(self, plan) -> int:
        """Pin the planned dynamic GPU cache's FP32 states in the GPU pool.

        Best-effort: the plan reasons about logical shard bytes, while the
        engine gives every small tensor its own physical page, so the
        physical footprint can exceed the planned one. Layers are
        installed (coldest-planned first, matching the plan's reverse
        admission) while the pool keeps a reserve large enough to stage
        the two largest FP16 working sets — the demand path must never be
        starved by the cache. Cached states are invisible to LRU eviction
        (``_pick_victim`` only considers FP16 pages), so they stay
        resident for the run.
        """
        cached = sorted(plan.cache.cached_layers)
        if not cached:
            return 0
        gpu_pool = self.allocator.pools[DeviceKind.GPU]
        page_bytes = self.config.page_bytes
        reserve = 2 * page_bytes * max(
            sum(len(m.fp16.page_list) for m in group)
            for group in self._layer_managed
        )
        installed = 0
        for layer in reversed(cached):
            tensors = [
                t
                for m in self._layer_managed[layer]
                for t in (m.master, m.moment1, m.moment2)
            ]
            pending = {
                id(page)
                for t in tensors
                for page in t.page_list
                if page.pool is not gpu_pool
            }
            if gpu_pool.free_bytes - len(pending) * page_bytes < reserve:
                break
            try:
                with self._move_lock:
                    self.allocator.move_pages(tensors, DeviceKind.GPU)
            except OutOfMemoryError:
                break
            self._cache_resident.add(layer)
            installed += 1
        self.telemetry.gauge("cache.live_layers").set(installed)
        return installed

    def _pipeline_fetch(self, layer: int) -> None:
        """Worker callback: stage one layer's FP16 pages onto the GPU."""
        with self._move_lock:
            self.allocator.move_pages(
                [m.fp16 for m in self._layer_managed[layer]], DeviceKind.GPU
            )

    def _pipeline_evict(self, layer: int) -> None:
        """Worker callback: return one layer's FP16 pages to the CPU."""
        with self._move_lock:
            self.allocator.move_pages(
                [m.fp16 for m in self._layer_managed[layer]], DeviceKind.CPU
            )

    def executed_plan(self) -> "IterationPlan | None":
        """The plan the live pipeline executes (None before it starts)."""
        return self._live_plan

    def pipeline_report(self) -> dict:
        """Overlap accounting for profile output and run reports."""
        report = {
            "enabled": self._pipeline is not None,
            "stall_seconds": self._stall_seconds,
            "demand_fetch_seconds": self._demand_seconds,
            "cached_layers_live": len(self._cache_resident),
        }
        if self._pipeline is not None:
            report["prefetch"] = self._pipeline.stats()
        if self._writeback is not None:
            report["writeback"] = self._writeback.stats()
        return report

    # ------------------------------------------------------------------
    # Figure 6 training API
    # ------------------------------------------------------------------
    def __call__(self, batch: Batch) -> Tensor:
        with self.telemetry.span(
            f"fwd/iter{self._iteration}", track="train"
        ):
            logits = self.module(batch.inputs, self.config.mixed_precision)
            return cross_entropy(logits, batch.targets)

    def backward(self, loss: Tensor) -> None:
        with self.telemetry.span(
            f"bwd/iter{self._iteration}", track="train"
        ):
            self.module.zero_grad()
            loss.backward()
            # Offload gradients to the CPU buffers (Algorithm 2, line 24).
            self._buffers.accumulate_all([m.param for m in self._managed])
        if self._pipeline is not None:
            # Backward is complete: every backward-phase trigger is due
            # (op convention: backward of layer i is op 2L - 1 - i).
            self._pipeline.advance(2 * len(self._layer_modules) - 1)

    def step(self) -> bool:
        """Run (or defer) the optimizer pass; returns True if it ran."""
        self._iteration += 1
        self._pending += 1
        if not self._order_recorded and self._module_order:
            # The first iteration's access pattern is now complete; later
            # iterations replay it, enabling prefetch (Section 4.2).
            self._order_recorded = True
            self._module_cursor = 0
        interval = self.config.update_interval if self.config.lock_free else 1
        self.telemetry.counter("engine.steps").inc()
        if self._pipeline is not None:
            # Everything up to the last update op is now due; surface any
            # worker failure on the training thread (step boundary).
            self._pipeline.advance(self._live_plan.trace.num_ops - 1)
            self._pipeline.raise_if_failed()
        if self._writeback is not None:
            self._writeback.raise_if_failed()
        ran = self._pending >= interval
        if ran:
            self._update_sweep()
            self._pending = 0
        self._lag_gauge.set(self._pending)
        self.forensics.sample(self._iteration, self.memory_report())
        if self.config.pipeline and self._pipeline is None and self._order_recorded:
            self._start_pipeline()
        elif self._pipeline is not None:
            # Close out this iteration's schedule and re-arm it: the
            # recorded pattern replays every iteration (Section 4.2).
            self._pipeline.finish_iteration()
            self._pipeline.begin_iteration()
        return ran

    def _update_sweep(self) -> None:
        """One updating-thread pass: page in FP32 states, apply Adam,
        page out (Algorithm 2, lines 2-7)."""
        telemetry = self.telemetry
        started = telemetry.clock.perf() if telemetry.enabled else 0.0
        with telemetry.span(f"update_sweep/iter{self._iteration}", track="updater"):
            self._sweep_body()
        if telemetry.enabled:
            telemetry.histogram("updater.sweep_seconds").observe(
                telemetry.clock.perf() - started
            )
            telemetry.counter("engine.update_sweeps").inc()

    def _sweep_body(self) -> None:
        opt = self.optimizer
        writeback = self._writeback
        opt.bump_step()
        for managed in reversed(self._managed):
            grad, count = self._buffers.drain(managed.index)
            if count == 0:
                continue
            index = managed.index
            if writeback is not None:
                # Read-your-writes: any still-queued flush for this
                # parameter must land before we read its states back.
                writeback.wait(index)
            # Fetch p32, m32, v32 from their tier (real file I/O on SSD);
            # transient faults are retried, permanent tier death escalates.
            opt.master[index][...] = self._io(managed.master.read_array)
            opt.m[index][...] = self._io(managed.moment1.read_array)
            opt.v[index][...] = self._io(managed.moment2.read_array)
            refreshed = opt.apply_gradient(index, grad / count)
            if writeback is not None and managed.master.device_kind != DeviceKind.GPU:
                # Offload updated states off the critical path. The
                # snapshots are copies: the optimizer's host arrays mutate
                # on the next sweep while the flush may still be queued.
                writeback.submit(
                    index,
                    lambda t=managed.master,
                    a=opt.master[index].copy(): self._flush_state(t, a),
                )
                writeback.submit(
                    index,
                    lambda t=managed.moment1,
                    a=opt.m[index].copy(): self._flush_state(t, a),
                )
                writeback.submit(
                    index,
                    lambda t=managed.moment2,
                    a=opt.v[index].copy(): self._flush_state(t, a),
                )
            else:
                # Synchronous path: no pipeline, or the state pages are
                # GPU-cache-resident and the write is a cheap pool write.
                self._io(lambda: self._flush_state(managed.master, opt.master[index]))
                self._io(lambda: self._flush_state(managed.moment1, opt.m[index]))
                self._io(lambda: self._flush_state(managed.moment2, opt.v[index]))
            # The FP16 refresh stays synchronous: the very next forward
            # reads it, and deferring it would reintroduce staleness.
            with self._move_lock:
                managed.fp16.write_array(refreshed.astype(np.float16))
            managed.param.data[...] = refreshed

    def _flush_state(self, tensor: PagedTensor, array: np.ndarray) -> None:
        """Write one FP32 state snapshot into its pages.

        With the out-of-process data plane active and the tensor's pages
        in a single descriptor-exporting arena, the payload is staged
        once into a shared segment and the copy worker scatters it page
        by page — the per-page byte pushing leaves this interpreter.
        Otherwise (thread mode, fault-wrapped SSD backends, pages split
        across pools) this is exactly ``tensor.write_array``.
        """
        service = self._io_service
        if service is not None and service.alive:
            array = np.ascontiguousarray(array, dtype=tensor.dtype)
            descriptor = self._scatter_descriptor(tensor)
            if descriptor is not None and array.nbytes == tensor.nbytes:
                raw = array.view(np.uint8).reshape(-1)
                runs = []
                for page, offset, nbytes, cursor in tensor._segments():
                    storage = page.storage
                    arena_offset = (
                        storage.index * storage.pool.page_bytes + offset
                    )
                    runs.append((cursor, arena_offset, nbytes))
                service.scatter(descriptor, raw, runs)
                return
        tensor.write_array(array)

    @staticmethod
    def _scatter_descriptor(tensor: PagedTensor):
        """The tensor's single arena descriptor, or None if not scatterable."""
        pools = {id(page.pool): page.pool for page in tensor.page_list}
        if len(pools) != 1:
            return None
        return next(iter(pools.values())).backend_descriptor()

    # ------------------------------------------------------------------
    # Graceful degradation (Section 3.1's failure model)
    # ------------------------------------------------------------------
    @property
    def state_tier(self) -> DeviceKind:
        """Where the FP32 master states currently live."""
        return self._state_tier

    def degrade_tier(
        self,
        dead: DeviceKind = DeviceKind.SSD,
        survivor: DeviceKind = DeviceKind.CPU,
    ) -> int:
        """Evacuate the FP32 states off a permanently failed tier.

        The dead tier's bytes are unreadable, but the optimizer's host
        arrays mirror the paged states as of the last completed update
        sweep (they are written back together), so the states are rebuilt
        exactly on ``survivor`` and the dead pool is dropped. Any
        gradients buffered for the aborted step are discarded — the
        supervised driver replays that step. Returns the number of
        tensors rebuilt.
        """
        if self._state_tier != dead:
            raise ConfigurationError(
                f"FP32 states live on {self._state_tier.name}, not {dead.name}"
            )
        if self._writeback is not None:
            # Flushes targeting the dead tier can never land (and the
            # worker may already have died on one); drop the queue and
            # restart it with a clean error state for the survivor tier.
            from repro.runtime.pipeline import WritebackQueue

            self._writeback.abort()
            self._writeback.close()
            self._writeback = WritebackQueue(self._io, telemetry=self.telemetry)
            self._writeback.start()
        with self._move_lock:
            return self._degrade_locked(dead, survivor)

    def _degrade_locked(self, dead: DeviceKind, survivor: DeviceKind) -> int:
        opt = self.optimizer
        rebuilt = 0
        for managed in self._managed:
            index = managed.index
            for attr, host in (
                ("master", opt.master[index]),
                ("moment1", opt.m[index]),
                ("moment2", opt.v[index]),
            ):
                old = getattr(managed, attr)
                if old.device_kind != dead:
                    continue
                self.allocator.release(old)
                fresh = self.allocator.allocate(
                    managed.param.shape, np.float32, survivor
                )
                fresh.write_array(host)
                setattr(managed, attr, fresh)
                rebuilt += 1
            # Re-derive the FP16 working copy from the authoritative
            # master so every layer is consistent with the rebuilt state.
            refreshed = opt.master[index].astype(np.float16).astype(np.float32)
            managed.fp16.write_array(refreshed.astype(np.float16))
            managed.param.data[...] = refreshed
        for index in range(len(self._managed)):
            self._buffers.drain(index)
        self._pending = 0
        self.allocator.drop_pool(dead)
        self._state_tier = survivor
        return rebuilt

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def access_trace(self) -> list[tuple[str, int, int]]:
        """(name, first_id, end_id) per parameter — the Tracer's view."""
        return [
            (m.name, m.first_access, m.last_access)
            for m in self._managed
            if m.first_access >= 0
        ]

    def memory_report(self) -> dict[str, dict[str, int]]:
        return self.allocator.residency_report()

    def close(self) -> None:
        try:
            if self._pipeline is not None:
                self._pipeline.stop()
                self._pipeline = None
            if self._writeback is not None:
                writeback, self._writeback = self._writeback, None
                try:
                    writeback.barrier()
                finally:
                    writeback.close()
        finally:
            self.allocator.close()
            if self._io_service is not None:
                service, self._io_service = self._io_service, None
                self.allocator.io_service = None
                service.close()

    def __enter__(self) -> "AngelModel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def initialize(
    model: Module, optimizer: MixedPrecisionAdam, config: AngelConfig | None = None
) -> AngelModel:
    """Figure 6's ``angelptm.initialize(model, optimizer, config)``."""
    return AngelModel(model, optimizer, config or AngelConfig())
