"""Capacity planner: maximum model scale and maximum batch size (Table 5).

The planner captures the paper's Section 6.2 analysis:

- DeepSpeed "statically partitions the model states across GPUs and CPUs,
  the maximum model scale will be limited by the CPU memory" — despite
  free GPU memory.
- Angel-PTM "uses the dynamic memory management that moves partial model
  states into GPU memory to achieve larger model scale": the capacity pool
  is page-efficient CPU memory *plus* whatever GPU memory the working set
  leaves free (plus SSD for optimizer states when enabled).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OutOfMemoryError
from repro.hardware.cluster import ClusterSpec
from repro.models.zoo import ModelConfig
from repro.tracer.costmodel import CostModel
from repro.tracer.tracer import IterationTrace, Tracer
from repro.zero.sharding import shard_bytes

#: Page-based management wastes only page-tail slack, but the host also
#: needs the OS, dataset pipeline and NCCL bounce buffers; 80% of DDR is
#: available to the pre-allocated page pools.
ANGEL_CPU_USABLE_FRACTION = 0.80

#: Angel's per-GPU reserve for workspaces and communication buffers.
ANGEL_GPU_RESERVE_FRACTION = 0.08

#: Table 1's activation totals deliberately simplify attention scores to
#: ``b x s``; real working sets also hold the per-head ``b x h x s x s``
#: score tensors and kernel workspaces. The batch-capacity checks scale
#: activation bytes by this factor (calibrated against Table 5's #Batch).
ACT_WORKING_SET_OVERHEAD = 1.5


@dataclass(frozen=True)
class CapacityReport:
    """Whether a model fits a cluster under a given system's rules."""

    system: str
    fits: bool
    reason: str
    state_bytes_per_server: int
    capacity_bytes_per_server: int
    gpu_working_set: int
    gpu_budget: int


class CapacityPlanner:
    """Max-model-scale and max-batch search for Angel-PTM and DeepSpeed."""

    def __init__(self, cluster: ClusterSpec, cost_model: CostModel | None = None):
        self.cluster = cluster
        server = cluster.server
        self.cost = cost_model or CostModel(gpu=server.gpus[0], cpu=server.cpu)
        self._tracer = Tracer(self.cost, use_recompute=True)

    # ------------------------------------------------------------------
    # Shared accounting
    # ------------------------------------------------------------------
    def _trace(self, config: ModelConfig, micro_batch: int, seq_len: int) -> IterationTrace:
        return self._tracer.trace(config.build(batch_size=micro_batch, seq_len=seq_len))

    def _per_rank_state_bytes(self, trace: IterationTrace) -> int:
        """Host bytes per rank: FP16 buffered params + FP16 buffered grads
        (Algorithm 2's double buffers), the FP32 optimizer states, and a
        pinned page-pool staging copy of params + grads for asynchronous
        PCIe movement — 20 bytes per parameter in total."""
        num_ranks = self.cluster.num_gpus
        return (
            4 * shard_bytes(trace.total_fp16_param_bytes, num_ranks)
            + shard_bytes(trace.total_optim_bytes, num_ranks)
        )

    def _gpu_working_set(self, trace: IterationTrace) -> int:
        """Transient GPU bytes Angel-PTM needs with full streaming:
        the largest gathered layer (x2 for the gather of the next layer
        overlapping the current compute), plus that layer's activations
        (with the working-set overhead factor) and gradients."""
        largest = max(l.param_bytes_fp16 for l in trace.layers)
        act_peak = max(
            l.act_bytes_fp16 * ACT_WORKING_SET_OVERHEAD + l.grad_bytes_fp16
            for l in trace.layers
        )
        return int(2 * largest + act_peak)

    # ------------------------------------------------------------------
    # Fit checks
    # ------------------------------------------------------------------
    def angel_fits(
        self,
        config: ModelConfig,
        micro_batch: int = 1,
        seq_len: int = 2048,
        use_ssd: bool = False,
    ) -> CapacityReport:
        trace = self._trace(config, micro_batch, seq_len)
        server = self.cluster.server
        ranks_per_server = server.num_gpus
        num_ranks = self.cluster.num_gpus

        gpu_budget = int(server.gpus[0].memory_bytes * (1 - ANGEL_GPU_RESERVE_FRACTION))
        working_set = self._gpu_working_set(trace)
        if working_set > gpu_budget:
            return CapacityReport(
                "angel-ptm", False, "working set exceeds GPU memory",
                0, 0, working_set, gpu_budget,
            )

        state_per_server = self._per_rank_state_bytes(trace) * ranks_per_server
        if use_ssd and server.ssd is not None:
            # FP32 optimizer states spill to SSD; CPU holds the FP16
            # buffers of Algorithm 2 (params + grads).
            optim = shard_bytes(trace.total_optim_bytes, num_ranks) * ranks_per_server
            state_per_server -= optim
            ssd_capacity = server.ssd.memory_bytes
            if optim > ssd_capacity:
                return CapacityReport(
                    "angel-ptm+ssd", False, "optimizer states exceed SSD",
                    optim, ssd_capacity, working_set, gpu_budget,
                )
        gpu_leftover = (gpu_budget - working_set) * ranks_per_server
        capacity = int(
            server.cpu.memory_bytes * ANGEL_CPU_USABLE_FRACTION + gpu_leftover
        )
        fits = state_per_server <= capacity
        return CapacityReport(
            "angel-ptm" + ("+ssd" if use_ssd else ""),
            fits,
            "ok" if fits else "model states exceed CPU+GPU capacity",
            state_per_server, capacity, working_set, gpu_budget,
        )

    def deepspeed_fits(
        self, config: ModelConfig, micro_batch: int = 1, seq_len: int = 2048
    ) -> CapacityReport:
        from repro.baselines.deepspeed_like import DeepSpeedEngine

        engine = DeepSpeedEngine(self.cluster, cost_model=self.cost)
        trace = self._trace(config, micro_batch, seq_len)
        check = engine.check_capacity(trace)
        return CapacityReport(
            "deepspeed", check.fits, check.reason,
            check.cpu_needed, check.cpu_usable, check.gpu_needed, check.gpu_usable,
        )

    # ------------------------------------------------------------------
    # Searches
    # ------------------------------------------------------------------
    def max_layers(
        self,
        base: ModelConfig,
        system: str,
        micro_batch: int = 1,
        seq_len: int = 2048,
        use_ssd: bool = False,
        upper: int = 512,
    ) -> int:
        """Largest layer count of ``base``'s architecture that fits."""
        def fits(num_layers: int) -> bool:
            candidate = base.with_layers(num_layers)
            if system == "angel-ptm":
                return self.angel_fits(candidate, micro_batch, seq_len, use_ssd).fits
            if system == "deepspeed":
                return self.deepspeed_fits(candidate, micro_batch, seq_len).fits
            raise ValueError(f"unknown system {system!r}")

        if not fits(1):
            raise OutOfMemoryError(system, 0, 0)
        low, high = 1, 1
        while high < upper and fits(high * 2):
            low = high * 2
            high = low
        high = min(upper, high * 2)
        while low < high:
            mid = (low + high + 1) // 2
            if fits(mid):
                low = mid
            else:
                high = mid - 1
        return low

    def max_micro_batch(
        self,
        config: ModelConfig,
        system: str,
        seq_len: int = 2048,
        upper: int = 256,
        use_ssd: bool = False,
    ) -> int:
        """Largest per-GPU micro-batch that fits (Table 5's #Batch)."""
        def fits(micro_batch: int) -> bool:
            if system == "angel-ptm":
                return self.angel_fits(config, micro_batch, seq_len, use_ssd).fits
            if system == "deepspeed":
                return self.deepspeed_fits(config, micro_batch, seq_len).fits
            raise ValueError(f"unknown system {system!r}")

        if not fits(1):
            raise OutOfMemoryError(system, 0, 0)
        low, high = 1, 1
        while high < upper and fits(high * 2):
            low = high * 2
            high = low
        high = min(upper, high * 2)
        while low < high:
            mid = (low + high + 1) // 2
            if fits(mid):
                low = mid
            else:
                high = mid - 1
        return low
